//! End-to-end integration of the Fig. 1 / Fig. 2 loops across all crates:
//! grammar → examples → learner → generation → PDP decisions → feedback →
//! adaptation.

use agenp_core::arch::{Ams, Feedback, Verdict};
use agenp_core::scenarios::cav;
use agenp_grammar::{Asg, GenOptions, ProdId};
use agenp_learn::{Example, HypothesisSpace, Learner, LearningTask};
use agenp_policy::{Decision, Request};

#[test]
fn fig1_workflow_learns_and_generates() {
    // Initial GPM + examples → learned GPM, then generation per context.
    let initial: Asg = r#"
        policy -> "grant" level { lv(L) :- l(L)@2. }
        level -> "basic"    { l(1). }
        level -> "elevated" { l(2). }
    "#
    .parse()
    .unwrap();
    let space = HypothesisSpace::from_texts(&[
        (ProdId::from_index(0), ":- lv(V1), clearance(V2), V2 < V1."),
        (ProdId::from_index(0), ":- lv(V1), V1 >= 2."),
    ]);
    let c1: agenp_asp::Program = "clearance(1).".parse().unwrap();
    let c2: agenp_asp::Program = "clearance(2).".parse().unwrap();
    let task = LearningTask::new(initial.clone(), space)
        .pos(Example::in_context("grant basic", c1.clone()))
        .neg(Example::in_context("grant elevated", c1.clone()))
        .pos(Example::in_context("grant elevated", c2.clone()));
    let h = Learner::new().learn(&task).unwrap();
    assert_eq!(h.rules.len(), 1);
    let learned = h.apply(&initial);
    let lang1 = learned
        .with_context(&c1)
        .language(GenOptions::default())
        .unwrap();
    assert_eq!(lang1, vec!["grant basic"]);
    let lang2 = learned
        .with_context(&c2)
        .language(GenOptions::default())
        .unwrap();
    assert_eq!(lang2.len(), 2);
}

#[test]
fn ams_loop_with_canonical_policies() {
    let g: Asg = r#"
        policy -> effect "if" "subject" "clearance" "=" level
        effect -> "permit" { e(permit). }
        effect -> "deny"   { e(deny). }
        level -> "low"  { lvl(low). }
        level -> "high" { lvl(high). }
    "#
    .parse()
    .unwrap();
    let space = HypothesisSpace::from_texts(&[
        (ProdId::from_index(1), ":- alert."),
        (ProdId::from_index(2), ":- not alert."),
    ]);
    let mut ams = Ams::new("gate", g, space);

    // Quiet context: feedback says permits are valid, denies are not.
    let quiet: agenp_asp::Program = agenp_asp::Program::new();
    let alert: agenp_asp::Program = "alert.".parse().unwrap();
    for lvl in ["low", "high"] {
        ams.observe(Feedback::valid(
            &format!("permit if subject clearance = {lvl}"),
            quiet.clone(),
        ));
        ams.observe(Feedback::invalid(
            &format!("deny if subject clearance = {lvl}"),
            quiet.clone(),
        ));
        ams.observe(Feedback::invalid(
            &format!("permit if subject clearance = {lvl}"),
            alert.clone(),
        ));
        ams.observe(Feedback::valid(
            &format!("deny if subject clearance = {lvl}"),
            alert.clone(),
        ));
    }
    ams.set_context(quiet);
    let adaptation = ams.adapt().unwrap();
    assert_eq!(adaptation.hypothesis.rules.len(), 2);

    // In the quiet context only permit policies are generated.
    let screened = ams.refresh_policies().unwrap();
    let accepted: Vec<&String> = screened
        .iter()
        .filter(|(_, v)| *v == Verdict::Accepted)
        .map(|(s, _)| s)
        .collect();
    assert_eq!(accepted.len(), 2);
    assert!(accepted.iter().all(|s| s.starts_with("permit")));
    let req = Request::new().subject("clearance", "high");
    assert_eq!(ams.decide(&req).decision(), Decision::Permit);

    // Alert context: regenerate → only denies.
    ams.set_context(alert);
    ams.refresh_policies().unwrap();
    assert_eq!(ams.decide(&req).decision(), Decision::Deny);

    // The representations repository recorded both versions.
    assert_eq!(ams.representations().len(), 2);
}

#[test]
fn cav_scenario_learned_gpm_matches_oracle_closely() {
    let train = cav::samples(64, 3);
    let test = cav::samples(256, 4);
    let task = cav::learning_task(&train, None);
    let h = Learner::new().learn(&task).unwrap();
    // Definition 3 holds on the training set (verified with full semantics).
    assert!(task.violations(&h).unwrap().is_empty());
    let acc = cav::gpm_accuracy(&h.apply(&task.grammar), &test);
    assert!(acc > 0.9, "accuracy {acc}");
}

#[test]
fn incremental_and_batch_agree_end_to_end() {
    let train = cav::samples(40, 21);
    let task = cav::learning_task(&train, None);
    let batch = Learner::new().learn(&task).unwrap();
    let (inc, stats) = Learner::new().learn_incremental(&task).unwrap();
    assert_eq!(batch.cost, inc.cost, "batch and incremental costs differ");
    assert!(stats.relevant <= stats.total);
    assert!(task.violations(&inc).unwrap().is_empty());
}

#[test]
fn ams_adaptation_loop_improves_with_observations() {
    // The PAdaP loop on the CAV scenario: feedback accumulates across
    // rounds and each adaptation re-learns a better GPM.
    let mut ams = Ams::new("cav", cav::grammar(), cav::hypothesis_space());
    let test = cav::samples(150, 9999);
    let mut last_acc = 0.0;
    let mut improved = false;
    for round in 0..3u64 {
        for s in cav::samples(16, 100 + round) {
            let fb = if s.accept {
                Feedback::valid(&cav::policy_text(s.task), s.context.to_program())
            } else {
                Feedback::invalid(&cav::policy_text(s.task), s.context.to_program())
            };
            ams.observe(fb);
        }
        ams.adapt().expect("adaptation succeeds");
        let acc = cav::gpm_accuracy(ams.gpm(), &test);
        if acc > last_acc {
            improved = true;
        }
        last_acc = acc;
    }
    assert!(improved, "accuracy never improved across adaptation rounds");
    assert!(last_acc > 0.9, "final accuracy {last_acc}");
    // One GPM version per adaptation plus the initial one.
    assert_eq!(ams.representations().len(), 4);
    assert_eq!(ams.feedback_len(), 48);
}

#[test]
fn explainability_composes_with_the_learned_ams() {
    use agenp_core::explain::{explain_policy, PolicyExplanation};
    let mut ams = Ams::new("cav", cav::grammar(), cav::hypothesis_space());
    for s in cav::samples(64, 7) {
        let fb = if s.accept {
            Feedback::valid(&cav::policy_text(s.task), s.context.to_program())
        } else {
            Feedback::invalid(&cav::policy_text(s.task), s.context.to_program())
        };
        ams.observe(fb);
    }
    ams.adapt().expect("adaptation succeeds");
    let low = cav::CavContext {
        loa: 1,
        limit: 5,
        rain: false,
        emergency: false,
    };
    let e = explain_policy(ams.gpm(), &low.to_program(), "accept park").unwrap();
    match e {
        PolicyExplanation::Rejected { trees } => {
            assert!(!trees.is_empty());
            assert!(trees.iter().any(|t| !t.decisive.is_empty()));
        }
        other => panic!("expected rejection, got {other:?}"),
    }
}

#[test]
fn goal_violations_trigger_adaptation() {
    use agenp_core::arch::GoalPolicy;
    // A gate whose initial GPM generates both permit and deny policies; the
    // PBMS goal demands that requests are not left uncovered and that the
    // system doesn't deny everything.
    let g: Asg = r#"
        policy -> effect "if" "subject" "clearance" "=" level
        effect -> "permit" { e(permit). }
        effect -> "deny"   { e(deny). }
        level -> "low"  { lvl(low). }
        level -> "high" { lvl(high). }
    "#
    .parse()
    .unwrap();
    let space = HypothesisSpace::from_texts(&[
        (ProdId::from_index(0), ":- e(permit)@1, lvl(low)@6."),
        (ProdId::from_index(0), ":- e(deny)@1, lvl(high)@6."),
    ]);
    let mut ams = Ams::new("goaled", g, space);
    ams.set_goals(
        vec![GoalPolicy::at_least("availability", "grant_rate", 0.4)],
        8,
    );
    ams.refresh_policies().unwrap();

    // With both permit and deny rules generated, deny-overrides denies
    // everything: the availability goal is missed.
    let req_high = Request::new().subject("clearance", "high");
    for _ in 0..8 {
        assert_eq!(ams.decide(&req_high).decision(), Decision::Deny);
    }
    assert!(!ams.goal_violations().is_empty());

    // Feedback says: permits valid for high clearance, denies valid only
    // for low clearance. Off-goal → adaptation fires.
    let quiet = agenp_asp::Program::new();
    ams.observe(Feedback::valid(
        "permit if subject clearance = high",
        quiet.clone(),
    ));
    ams.observe(Feedback::invalid(
        "deny if subject clearance = high",
        quiet.clone(),
    ));
    ams.observe(Feedback::valid(
        "deny if subject clearance = low",
        quiet.clone(),
    ));
    ams.observe(Feedback::invalid(
        "permit if subject clearance = low",
        quiet.clone(),
    ));
    let adapted = ams.adapt_if_off_goal().unwrap();
    assert!(adapted.is_some(), "off-goal system must adapt");

    // Decisions now permit high clearance; the goal recovers.
    for _ in 0..8 {
        assert_eq!(ams.decide(&req_high).decision(), Decision::Permit);
    }
    assert!(ams.goal_violations().is_empty());
    // On-goal: no further adaptation.
    assert!(ams.adapt_if_off_goal().unwrap().is_none());
}

#[test]
fn scenario_translator_populates_the_policy_repo() {
    use agenp_core::arch::FnTranslator;
    use agenp_policy::{Category, Cond, Effect, PolicyRule};
    let mut ams = Ams::new("cav", cav::grammar(), cav::hypothesis_space());
    ams.set_translator(Box::new(FnTranslator(|text, id| {
        let task = text.strip_prefix("accept ")?;
        Some(PolicyRule::new(
            id,
            Effect::Permit,
            Cond::eq(Category::Action, "task", task),
        ))
    })));
    for s in cav::samples(48, 7) {
        let fb = if s.accept {
            Feedback::valid(&cav::policy_text(s.task), s.context.to_program())
        } else {
            Feedback::invalid(&cav::policy_text(s.task), s.context.to_program())
        };
        ams.observe(fb);
    }
    let calm = cav::CavContext {
        loa: 5,
        limit: 5,
        rain: false,
        emergency: false,
    };
    ams.set_context(calm.to_program());
    ams.adapt().unwrap();
    // All four tasks are acceptable in the calm context → four permit rules.
    assert_eq!(ams.policies().policies()[0].rules.len(), 4);
    let d = ams.decide(&Request::new().action("task", "park"));
    assert_eq!(d.decision(), Decision::Permit);
    // A restrictive context regenerates a smaller repository.
    let stormy = cav::CavContext {
        loa: 5,
        limit: 5,
        rain: true,
        emergency: false,
    };
    ams.set_context(stormy.to_program());
    ams.refresh_policies().unwrap();
    // Rain suspends the high-autonomy tasks; with 48 samples the learned
    // rain threshold may be 2 or 3, so 1–2 permit rules remain.
    let remaining = ams.policies().policies()[0].rules.len();
    assert!((1..=2).contains(&remaining), "remaining rules: {remaining}");
    let d2 = ams.decide(&Request::new().action("task", "park"));
    assert_ne!(d2.decision(), Decision::Permit);
    let d3 = ams.decide(&Request::new().action("task", "lane_keep"));
    assert_eq!(d3.decision(), Decision::Permit);
}
