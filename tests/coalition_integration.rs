//! Coalition-level integration: concurrent distributed learning, shared
//! knowledge, trust dynamics, and the governance scenarios.

use agenp_coalition::{
    datashare, distributed_cav_learning, federated, warm_start_comparison, CasWiki, Contribution,
    TrustModel,
};
use agenp_core::scenarios::cav;
use agenp_learn::Learner;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn three_party_coalition_round_trip() {
    let wiki = CasWiki::new();
    let reports = distributed_cav_learning(3, 40, 1, &wiki);
    assert_eq!(reports.len(), 3);
    assert!(reports.iter().all(|r| r.accuracy > 0.8));
    assert_eq!(wiki.len(), 120);

    // Trust evolves from validation outcomes.
    let mut trust = TrustModel::new();
    for r in &reports {
        if r.accuracy > 0.8 {
            trust.reward(&r.name, 0.6);
        } else {
            trust.penalize(&r.name, 0.6);
        }
    }
    assert!(trust.trusted(0.7).len() == 3);

    // Newcomer warm start from the wiki.
    let outcome = warm_start_comparison(6, &wiki, &trust, 0.6, 99);
    assert!(outcome.warm_accuracy >= outcome.cold_accuracy - 0.02);
    assert!(outcome.warm_accuracy > 0.9);
}

#[test]
fn poisoned_wiki_is_neutralized_by_trust_and_penalties() {
    let wiki = CasWiki::new();
    let _ = distributed_cav_learning(2, 40, 2, &wiki);
    // Poison: inverted labels from an untrusted party.
    let poison: Vec<Contribution> = cav::samples(60, 900)
        .iter()
        .map(|s| Contribution {
            contributor: "poisoner".into(),
            policy: cav::policy_text(s.task),
            context: s.context.to_program(),
            valid: !s.accept,
        })
        .collect();
    wiki.contribute_all(poison);

    let mut trust = TrustModel::new();
    trust.set("party-0", 0.9);
    trust.set("party-1", 0.9);
    trust.set("poisoner", 0.05);
    let outcome = warm_start_comparison(4, &wiki, &trust, 0.5, 5);
    assert_eq!(outcome.shared_used, 80, "trust filter failed");
    assert!(outcome.warm_accuracy > 0.85);
}

#[test]
fn datashare_and_federated_scenarios_compose() {
    // A party learns both a sharing GPM and a federated-governance GPM and
    // applies them in sequence: decide whether to accept a partner's model,
    // then whether to share data back.
    let partners = ["amber", "bravo"];
    let mut trust = TrustModel::new();
    trust.set("amber", 0.9);
    trust.set("bravo", 0.3);

    let share_train = datashare::samples(80, &partners, &trust, 10);
    let share_task = datashare::learning_task(&share_train);
    let share_h = Learner::new().learn(&share_task).unwrap();
    let share_gpm = share_h.apply(&share_task.grammar);

    let mut rng = StdRng::seed_from_u64(20);
    let offers: Vec<federated::ModelOffer> = (0..60)
        .map(|_| federated::ModelOffer::random(&mut rng))
        .collect();
    let gov_task = federated::learning_task(&offers);
    let gov_h = Learner::new().learn(&gov_task).unwrap();
    let gov_gpm = gov_h.apply(&gov_task.grammar);

    // amber (trust level 3) offers a good fresh model → adopt; and sharing
    // good imagery back with amber is fine.
    let offer = federated::ModelOffer {
        src_trust: trust.level("amber"),
        remote_acc: 85,
        local_acc: 70,
        staleness: 1,
    };
    assert_eq!(federated::governed_action(&gov_gpm, offer), "adopt");
    let item = datashare::DataItem {
        dtype: 2,
        resolution: 9,
        noise: 1,
    };
    assert!(share_gpm
        .with_context(&datashare::sharing_context(&item, trust.level("amber")))
        .accepts("share")
        .unwrap());
    // bravo (trust level 1) gets neither the adoption nor the imagery.
    let offer_b = federated::ModelOffer {
        src_trust: trust.level("bravo"),
        ..offer
    };
    assert_ne!(federated::governed_action(&gov_gpm, offer_b), "adopt");
    assert!(!share_gpm
        .with_context(&datashare::sharing_context(&item, trust.level("bravo")))
        .accepts("share")
        .unwrap());
}

#[test]
fn governance_accuracy_is_high_after_learning() {
    let mut rng = StdRng::seed_from_u64(33);
    let offers: Vec<federated::ModelOffer> = (0..80)
        .map(|_| federated::ModelOffer::random(&mut rng))
        .collect();
    let task = federated::learning_task(&offers);
    let h = Learner::new().learn(&task).unwrap();
    let gpm = h.apply(&task.grammar);
    assert!(federated::governance_accuracy(&gpm, 300, 71) > 0.9);
}

#[test]
fn six_party_coalition_scales() {
    // Stress the thread fabric with more parties and verify every report
    // arrives exactly once.
    let wiki = CasWiki::new();
    let reports = distributed_cav_learning(6, 24, 3, &wiki);
    assert_eq!(reports.len(), 6);
    let names: std::collections::HashSet<&str> = reports.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names.len(), 6, "duplicate or missing parties");
    assert_eq!(wiki.len(), 6 * 24);
}

#[test]
fn gpm_rollback_via_representations_repository() {
    use agenp_core::arch::{Ams, Feedback};
    let mut ams = Ams::new("roll", cav::grammar(), cav::hypothesis_space());
    for s in cav::samples(32, 5) {
        let fb = if s.accept {
            Feedback::valid(&cav::policy_text(s.task), s.context.to_program())
        } else {
            Feedback::invalid(&cav::policy_text(s.task), s.context.to_program())
        };
        ams.observe(fb);
    }
    ams.adapt().unwrap();
    assert_eq!(ams.representations().len(), 2);
    // Roll back to the initial (unconstrained) GPM.
    let v1 = ams.representations().version(1).unwrap().gpm.clone();
    ams.adopt_gpm(v1, "rollback to initial");
    assert_eq!(ams.representations().len(), 3);
    // The unconstrained grammar admits everything again.
    let risky = cav::CavContext {
        loa: 0,
        limit: 0,
        rain: true,
        emergency: true,
    };
    ams.set_context(risky.to_program());
    assert!(ams.admits("accept park").unwrap());
}
