//! Multi-threaded stress for the shared-snapshot serving tier: worker
//! threads hammer an AMS's serving handle while the control thread adopts
//! a new GPM and refreshes mid-stream. Every decision must agree with the
//! policy set of the epoch that served it — a single disagreement means a
//! stale cache entry crossed a snapshot swap.

use agenp_core::arch::Ams;
use agenp_grammar::Asg;
use agenp_learn::HypothesisSpace;
use agenp_policy::{Decision, Request};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::thread;

/// A counting front for the system allocator, installed only in debug
/// builds: the warm-path allocation-budget test reads it to prove the
/// per-thread cache really did eliminate hot-path allocation churn.
#[cfg(debug_assertions)]
mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Heap allocations since process start (this test binary only).
    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    // SAFETY: defers every operation to `System`; only adds a relaxed
    // counter bump on the allocating entry points.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }
    }

    #[global_allocator]
    static COUNTING: Counting = Counting;
}

fn grammar(effect: &str) -> Asg {
    format!(r#"policy -> "{effect}" "if" "subject" "clearance" "=" "high""#)
        .parse()
        .expect("grammar parses")
}

/// What the serving tier must answer at each epoch, for each of the two
/// request shapes the workers send.
fn expected(epoch: u64, first_refresh: u64, matching: bool) -> Decision {
    if !matching {
        // Neither grammar emits a rule for low clearance.
        return Decision::NotApplicable;
    }
    if epoch < first_refresh {
        Decision::NotApplicable // pre-refresh snapshots carry no policies
    } else if epoch < first_refresh + 2 {
        // first_refresh: permit grammar's policies.
        // first_refresh + 1: adopt_gpm republished the same policies.
        Decision::Permit
    } else {
        Decision::Deny // first_refresh + 2: refresh under the deny grammar
    }
}

#[test]
fn no_stale_decision_survives_a_mid_stream_gpm_swap() {
    let mut ams = Ams::new("stress", grammar("permit"), HypothesisSpace::new());
    ams.refresh_policies().expect("initial refresh");
    let first_refresh = ams.current_snapshot().epoch();
    let final_epoch = first_refresh + 2; // adopt_gpm + refresh_policies
    let handle = ams.serving_handle();

    let matching = Request::new().subject("clearance", "high");
    let other = Request::new().subject("clearance", "low");
    assert_eq!(ams.decide(&matching).decision(), Decision::Permit);

    const WORKERS: usize = 4;
    const MAX_ITERS: usize = 200_000;
    let observed: Vec<Vec<(u64, bool, Decision)>> = thread::scope(|s| {
        let spawned: Vec<_> = (0..WORKERS)
            .map(|w| {
                let h = handle.clone();
                let (matching, other) = (matching.clone(), other.clone());
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xD15C0 + w as u64);
                    let mut seen = Vec::new();
                    // Run until the post-swap snapshot has been observed, so
                    // every worker crosses the swap; MAX_ITERS only guards
                    // against a control-thread bug leaving us spinning.
                    for _ in 0..MAX_ITERS {
                        let pick_matching = rng.gen_bool(0.7);
                        let req = if pick_matching { &matching } else { &other };
                        let outcome = h.decide(req);
                        let done = outcome.epoch >= final_epoch;
                        seen.push((outcome.epoch, pick_matching, outcome.decision));
                        if done && seen.len() >= 100 {
                            break;
                        }
                    }
                    seen
                })
            })
            .collect();
        // Mid-stream: adopt a GPM with the opposite effect and regenerate.
        thread::yield_now();
        ams.adopt_gpm(grammar("deny"), "adopted from partner");
        ams.refresh_policies()
            .expect("refresh under the deny grammar");
        spawned
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    assert_eq!(ams.current_snapshot().epoch(), final_epoch);

    let mut permits = 0u64;
    let mut denies = 0u64;
    for (w, seen) in observed.iter().enumerate() {
        assert!(
            seen.last().is_some_and(|(e, _, _)| *e >= final_epoch),
            "worker {w} never observed the post-swap snapshot"
        );
        for &(epoch, was_matching, decision) in seen {
            assert_eq!(
                decision,
                expected(epoch, first_refresh, was_matching),
                "worker {w} served a stale decision at epoch {epoch}"
            );
            match decision {
                Decision::Permit => permits += 1,
                Decision::Deny => denies += 1,
                _ => {}
            }
        }
    }
    // The stream genuinely crossed the swap: both regimes were served.
    assert!(permits > 0, "no pre-swap Permit observed");
    assert!(denies > 0, "no post-swap Deny observed");
    // And the cache did real work across the swap without serving stale
    // entries.
    let stats = handle.stats();
    assert!(stats.cache_hits > 0);
    assert!(stats.publishes >= 3);
}

#[test]
fn cached_and_uncached_decisions_agree_across_epochs() {
    let mut ams = Ams::new("parity", grammar("permit"), HypothesisSpace::new());
    ams.refresh_policies().unwrap();
    let handle = ams.serving_handle();
    let req = Request::new().subject("clearance", "high");
    let cold = handle.decide(&req);
    let warm = handle.decide(&req);
    assert!(!cold.cached);
    assert!(warm.cached);
    assert_eq!(cold.decision, warm.decision);
    // After a swap the first decision is recomputed, not replayed.
    ams.adopt_gpm(grammar("deny"), "swap");
    ams.refresh_policies().unwrap();
    let post = handle.decide(&req);
    assert!(!post.cached, "stale entry replayed across the swap");
    assert_eq!(post.decision, Decision::Deny);
}

/// The warm pinned path must be allocation-light: after the per-thread
/// cache is warm, a decide should cost little more than rendering the
/// canonical key. The bound is amortized and deliberately loose — the
/// counter is process-global and other tests in this binary run
/// concurrently — but it would still catch a per-decide clone of the
/// policy set, the snapshot error, or a cache rebuild regression, each
/// of which costs tens of allocations per call.
#[cfg(debug_assertions)]
#[test]
fn warm_pin_decides_stay_within_allocation_budget() {
    use std::sync::atomic::Ordering;

    let mut ams = Ams::new("alloc-budget", grammar("permit"), HypothesisSpace::new());
    ams.refresh_policies().unwrap();
    let handle = ams.serving_handle();
    let mut pin = handle.pin();

    let workload: Vec<Request> = (0..16)
        .map(|i| {
            Request::new()
                .subject("clearance", if i % 2 == 0 { "high" } else { "low" })
                .subject("id", i as i64)
        })
        .collect();
    // Warm the private cache: every distinct key computed once.
    for req in &workload {
        pin.decide(req);
    }

    const DECIDES: u64 = 100_000;
    const MAX_ALLOCS_PER_DECIDE: u64 = 8;
    let before = alloc_count::ALLOCS.load(Ordering::Relaxed);
    for i in 0..DECIDES {
        let outcome = pin.decide(&workload[(i % 16) as usize]);
        assert!(outcome.cached, "warm decide missed the private cache");
    }
    let spent = alloc_count::ALLOCS.load(Ordering::Relaxed) - before;
    assert!(
        spent < DECIDES * MAX_ALLOCS_PER_DECIDE,
        "warm pin decides allocated too much: {spent} allocations over {DECIDES} \
         decides (budget {MAX_ALLOCS_PER_DECIDE}/decide)"
    );
}
