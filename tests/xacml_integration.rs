//! Cross-crate integration for the XACML case study: symbolic learning →
//! enforceable policies → PDP decisions → PCP quality assessment.

use agenp_core::scenarios::xacml::{self, NoiseHandling, SpaceConfig, XacmlRequest};
use agenp_learn::Learner;
use agenp_policy::{Decision, Pdp, PolicyRepository, QualityChecker, Request};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn learned_policies_drive_a_pdp() {
    let log = xacml::generate_log(120, 7, 0.0);
    let task = xacml::learning_task(&log, SpaceConfig::default(), NoiseHandling::Filter);
    let h = Learner::new().learn(&task).unwrap();
    let policy = xacml::learned_policy(&h.rules);

    let mut repo = PolicyRepository::new();
    repo.add(policy);
    let mut pdp = Pdp::default();

    // The learned PDP agrees with the oracle on fresh requests.
    let mut rng = StdRng::seed_from_u64(404);
    let mut agree = 0;
    for _ in 0..200 {
        let r = XacmlRequest::random(&mut rng);
        let d = pdp.decide(&repo, &r.to_request());
        if d == xacml::oracle(&r) {
            agree += 1;
        }
    }
    assert!(agree >= 195, "agreement {agree}/200");
    assert_eq!(pdp.history().len(), 200);
}

#[test]
fn learned_policy_set_quality_is_clean_on_covered_space() {
    let log = xacml::generate_log(150, 11, 0.0);
    let task = xacml::learning_task(&log, SpaceConfig::default(), NoiseHandling::Filter);
    let h = Learner::new().learn(&task).unwrap();
    let policy = xacml::learned_policy(&h.rules);

    let mut rng = StdRng::seed_from_u64(42);
    let space: Vec<Request> = (0..100)
        .map(|_| XacmlRequest::random(&mut rng).to_request())
        .collect();
    let report = QualityChecker::new().assess(&[policy], &space);
    // Completeness: the default-deny covers everything.
    assert!((report.completeness - 1.0).abs() < 1e-9, "{report}");
    // Consistency: permit rules conflict with the default deny on permitted
    // requests — that's inherent to the permit-overrides encoding, so
    // conflicts are with the default rule only.
    for c in &report.conflicts {
        assert_eq!(c.deny_rule.1, "default-deny", "unexpected conflict {c}");
    }
}

#[test]
fn ground_truth_policy_quality_baseline() {
    let gt = xacml::ground_truth_policy();
    let mut rng = StdRng::seed_from_u64(1);
    let space: Vec<Request> = (0..150)
        .map(|_| XacmlRequest::random(&mut rng).to_request())
        .collect();
    let report = QualityChecker::new().assess(&[gt], &space);
    assert!((report.completeness - 1.0).abs() < 1e-9);
    // Every ground-truth rule is relevant on a large enough space.
    assert!(
        report.irrelevant.is_empty(),
        "irrelevant: {:?}",
        report.irrelevant
    );
}

#[test]
fn decisions_translate_to_contexts_and_back() {
    // request → ASP context → GPM membership must match request → PDP.
    let log = xacml::generate_log(100, 23, 0.0);
    let task = xacml::learning_task(&log, SpaceConfig::default(), NoiseHandling::Filter);
    let h = Learner::new().learn(&task).unwrap();
    let gpm = h.apply(&task.grammar);
    let policy = xacml::learned_policy(&h.rules);

    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..60 {
        let r = XacmlRequest::random(&mut rng);
        let deny_in_language = gpm.with_context(&r.context()).accepts("deny").unwrap();
        let pdp_decision = policy.evaluate(&r.to_request());
        // `deny ∈ L(G(C))` ⟺ the PDP denies.
        assert_eq!(
            deny_in_language,
            pdp_decision == Decision::Deny,
            "mismatch on {r:?}"
        );
    }
}
