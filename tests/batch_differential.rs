//! Differential tests for `decide_batch`: over randomized request
//! streams, the batched path must render element-wise identical decisions
//! to sequential `decide()` — including while a control thread swaps
//! snapshots mid-stream. Batches must never tear: every outcome in one
//! batch carries the same epoch, and that epoch's policy set must agree
//! with every decision in the batch.

use agenp_core::arch::{DecisionSnapshot, PdpHandle};
use agenp_core::scenarios::xacml::{ground_truth_policy, XacmlRequest};
use agenp_policy::{
    evaluate_policies, CombiningAlg, Decision, Effect, Policy, PolicyRule, Request,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};

fn workload(distinct: usize, seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..distinct)
        .map(|_| XacmlRequest::random(&mut rng).to_request())
        .collect()
}

fn scenario_handle() -> PdpHandle {
    let handle = PdpHandle::new();
    handle.publish(DecisionSnapshot::new(
        vec![ground_truth_policy()],
        CombiningAlg::DenyOverrides,
    ));
    handle
}

/// Random batch shapes over a randomized stream: batched and sequential
/// answers must match element-wise, on both the handle and the pin path.
#[test]
fn batched_decisions_match_sequential_on_random_streams() {
    let handle = scenario_handle();
    let mut pin = handle.pin();
    let requests = workload(96, 0xBA7C);
    let mut rng = StdRng::seed_from_u64(31);

    let mut cursor = 0usize;
    while cursor < requests.len() {
        // Batch sizes from empty-adjacent (1) to larger than the distinct
        // request pool, with duplicates spliced in.
        let size = rng.gen_range(1..=24).min(requests.len() - cursor);
        let mut batch: Vec<Request> = requests[cursor..cursor + size].to_vec();
        if size > 2 {
            let dup = batch[0].clone();
            batch.push(dup); // duplicate keys answer once, identically
        }
        cursor += size;

        let sequential: Vec<Decision> = batch.iter().map(|r| handle.decide(r).decision).collect();
        let via_handle = handle.decide_batch(&batch);
        let via_pin = pin.decide_batch(&batch);
        assert_eq!(via_handle.len(), batch.len());
        assert_eq!(via_pin.len(), batch.len());
        for (i, want) in sequential.iter().enumerate() {
            assert_eq!(via_handle[i].decision, *want, "handle batch slot {i}");
            assert_eq!(via_pin[i].decision, *want, "pin batch slot {i}");
        }
        // One snapshot per batch: every outcome shares the epoch.
        let epoch = via_handle[0].epoch;
        assert!(via_handle.iter().all(|o| o.epoch == epoch));
        let pin_epoch = via_pin[0].epoch;
        assert!(via_pin.iter().all(|o| o.epoch == pin_epoch));
    }
}

/// Swaps snapshots from a control thread while worker threads push
/// batches. Every batch must be answered by exactly one epoch, and every
/// decision must agree with the policy set published at that epoch — a
/// disagreement is a stale cache entry, a torn batch is a mixed-epoch
/// result set.
#[test]
fn mid_batch_snapshot_swaps_never_tear_or_stale() {
    let real = vec![ground_truth_policy()];
    let deny_all = vec![Policy::new(
        "deny-all",
        vec![PolicyRule::unconditional("deny-everything", Effect::Deny)],
    )];
    let requests = workload(24, 0x5EED);
    // Oracle decision per request under each regime. Epoch 0 is the empty
    // initial snapshot; odd published epochs carry the real set, even
    // ones deny-all (same alternation the swapper below applies).
    let under_real: Vec<Decision> = requests
        .iter()
        .map(|r| evaluate_policies(&real, CombiningAlg::DenyOverrides, r))
        .collect();
    let under_empty: Vec<Decision> = requests
        .iter()
        .map(|r| evaluate_policies(&[], CombiningAlg::DenyOverrides, r))
        .collect();

    let handle = PdpHandle::new();
    let stop = AtomicBool::new(false);
    const WORKERS: usize = 3;
    const SWAPS: u64 = 200;

    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let h = handle.clone();
            let (stop, requests) = (&stop, &requests);
            let (under_real, under_empty) = (&under_real, &under_empty);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xF00D + w as u64);
                let mut pin = h.pin();
                let mut batches = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let size = rng.gen_range(1..=requests.len());
                    let start = rng.gen_range(0..requests.len());
                    let idxs: Vec<usize> =
                        (0..size).map(|k| (start + k) % requests.len()).collect();
                    let batch: Vec<Request> = idxs.iter().map(|&i| requests[i].clone()).collect();
                    let outcomes = if batches.is_multiple_of(2) {
                        pin.decide_batch(&batch)
                    } else {
                        h.decide_batch(&batch)
                    };
                    assert_eq!(outcomes.len(), batch.len());
                    // Not torn: one epoch answered the whole batch.
                    let epoch = outcomes[0].epoch;
                    for o in &outcomes {
                        assert_eq!(
                            o.epoch, epoch,
                            "worker {w}: torn batch mixed epochs {} and {epoch}",
                            o.epoch
                        );
                    }
                    // Not stale: every decision agrees with its epoch's
                    // published policy set.
                    for (&i, o) in idxs.iter().zip(&outcomes) {
                        let want = match epoch {
                            0 => under_empty[i],
                            e if e % 2 == 1 => under_real[i],
                            _ => Decision::Deny,
                        };
                        assert_eq!(
                            o.decision, want,
                            "worker {w}: stale decision for request {i} at epoch {epoch}"
                        );
                    }
                    batches += 1;
                }
                assert!(batches > 0, "worker {w} never completed a batch");
            });
        }
        for swap in 0..SWAPS {
            let snapshot = if swap % 2 == 0 {
                DecisionSnapshot::new(real.clone(), CombiningAlg::DenyOverrides)
            } else {
                DecisionSnapshot::new(deny_all.clone(), CombiningAlg::DenyOverrides)
            };
            handle.publish(snapshot);
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });
    let stats = handle.stats();
    assert_eq!(stats.publishes, SWAPS, "every swap must have published");
    assert!(stats.decisions > 0);
}

/// A pin that crosses a swap between two batches self-invalidates: the
/// next batch answers at the new epoch with recomputed (not replayed)
/// decisions.
#[test]
fn pin_batches_self_invalidate_across_swaps() {
    let real = vec![ground_truth_policy()];
    let deny_all = vec![Policy::new(
        "deny-all",
        vec![PolicyRule::unconditional("deny-everything", Effect::Deny)],
    )];
    let handle = PdpHandle::new();
    handle.publish(DecisionSnapshot::new(
        real.clone(),
        CombiningAlg::DenyOverrides,
    ));
    let mut pin = handle.pin();
    let batch = workload(8, 9);

    let first = pin.decide_batch(&batch);
    let warm = pin.decide_batch(&batch);
    assert!(warm.iter().all(|o| o.cached), "second pass must be warm");
    assert_eq!(first[0].epoch, warm[0].epoch);

    handle.publish(DecisionSnapshot::new(deny_all, CombiningAlg::DenyOverrides));
    let post = pin.decide_batch(&batch);
    assert_eq!(post[0].epoch, warm[0].epoch + 1);
    assert!(
        post.iter().all(|o| !o.cached),
        "post-swap batch replayed stale private-cache entries"
    );
    assert!(post.iter().all(|o| o.decision == Decision::Deny));
    // And the sequential path agrees with the batch at the new epoch.
    for (r, o) in batch.iter().zip(&post) {
        assert_eq!(handle.decide(r).decision, o.decision);
    }
}
