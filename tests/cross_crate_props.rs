//! Cross-crate property tests: the learner's output always satisfies
//! Definition 3 on its training set (verified with full ASG semantics), the
//! monotone and generic learner paths agree, and scenario encodings are
//! mutually consistent.

use agenp_core::scenarios::{cav, resupply, xacml};
use agenp_learn::{LearnOptions, Learner};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the sample, a successful learn satisfies Definition 3 on
    /// every training example (checked via full answer-set semantics).
    #[test]
    fn cav_learning_satisfies_def3(seed in 0u64..500, n in 4usize..40) {
        let train = cav::samples(n, seed);
        let task = cav::learning_task(&train, None);
        if let Ok(h) = Learner::new().learn(&task) {
            let violations = task.violations(&h).unwrap();
            prop_assert!(violations.is_empty(), "violations: {violations:?}");
        }
    }

    /// The monotone fast path and the generic subset search find hypotheses
    /// of the same optimal cost.
    #[test]
    fn learner_paths_agree_on_cost(seed in 0u64..200) {
        let train = cav::samples(5, seed);
        let task = cav::learning_task(&train, None);
        let fast = Learner::new().learn(&task);
        let slow = Learner::with_options(
            LearnOptions::default()
                .with_force_generic(true)
                .with_max_nodes(800_000),
        )
        .learn(&task);
        match (fast, slow) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.cost, b.cost),
            (Err(_), Err(_)) => {}
            // The generic subset search is exponential; running out of
            // budget on a task the fast path solves is legitimate.
            (Ok(_), Err(agenp_learn::LearnError::Budget)) => {}
            (a, b) => prop_assert!(false, "paths disagree: {a:?} vs {b:?}"),
        }
    }

    /// XACML: `deny ∈ L(G(C))` after learning iff the translated policy
    /// denies — the two views of the learned model stay consistent.
    #[test]
    fn xacml_views_are_consistent(seed in 0u64..200) {
        let log = xacml::generate_log(60, seed, 0.0);
        let task = xacml::learning_task(
            &log,
            xacml::SpaceConfig::default(),
            xacml::NoiseHandling::Filter,
        );
        if let Ok(h) = Learner::new().learn(&task) {
            let gpm = h.apply(&task.grammar);
            let policy = xacml::learned_policy(&h.rules);
            for (req, _) in log.iter().take(20) {
                let in_lang = gpm.with_context(&req.context()).accepts("deny").unwrap();
                let denies =
                    policy.evaluate(&req.to_request()) == agenp_policy::Decision::Deny;
                prop_assert_eq!(in_lang, denies, "request {:?}", req);
            }
        }
    }

    /// Resupply plans: oracle validity always matches the *ground-truth*
    /// constraint set applied through the grammar machinery.
    #[test]
    fn resupply_oracle_matches_asg_encoding(
        t0 in 0i64..4, t1 in 0i64..4, t2 in 0i64..4,
        rain in any::<bool>(), appetite in 0i64..3,
    ) {
        use agenp_grammar::ProdId;
        let mission = resupply::Mission { threat: [t0, t1, t2], rain, appetite };
        // Hand-written ground-truth constraints on the plan production.
        let gt_rules: Vec<(ProdId, agenp_asp::Rule)> = [
            ":- my_threat(V1), appetite(V2), V2 < V1.",
            ":- weather(rain), my_route(east).",
            ":- my_slot(night), my_threat(V1), V1 >= 1.",
        ]
        .iter()
        .map(|s| (resupply::plan_production(), s.parse().unwrap()))
        .collect();
        let gt_gpm = resupply::grammar().with_added_rules(&gt_rules).unwrap();
        let g = gt_gpm.with_context(&mission.to_program());
        for plan in resupply::Plan::all() {
            let admitted = g.accepts(&plan.text()).unwrap();
            prop_assert_eq!(
                admitted,
                resupply::oracle(mission, plan),
                "mission {:?} plan {:?}", mission, plan
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// All three learner backends (monotone branch-and-bound, generic
    /// subset search, ASP meta-encoding) agree on the optimal cost.
    #[test]
    fn three_learner_backends_agree(seed in 0u64..100) {
        let train = cav::samples(5, seed);
        let task = cav::learning_task(&train, None);
        let native = Learner::new().learn(&task);
        let meta = Learner::new().learn_meta(&task);
        let generic = Learner::with_options(
            LearnOptions::default()
                .with_force_generic(true)
                .with_max_nodes(2_000_000),
        )
        .learn(&task);
        match (native, meta, generic) {
            (Ok(a), Ok(b), Ok(c)) => {
                prop_assert_eq!(a.cost, b.cost);
                prop_assert_eq!(a.cost, c.cost);
                prop_assert!(task.violations(&b).unwrap().is_empty());
            }
            (Err(_), Err(_), Err(_)) => {}
            // Budget exhaustion of the exponential backends is legitimate;
            // when two backends do produce optima they must agree.
            (Ok(a), Ok(b), Err(agenp_learn::LearnError::Budget)) => {
                prop_assert_eq!(a.cost, b.cost);
            }
            (Ok(a), Err(agenp_learn::LearnError::Budget), Ok(c)) => {
                prop_assert_eq!(a.cost, c.cost);
            }
            (Ok(_), Err(agenp_learn::LearnError::Budget), Err(agenp_learn::LearnError::Budget)) => {}
            other => prop_assert!(false, "backends disagree: {other:?}"),
        }
    }
}
