//! The logistical-resupply scenario (paper §IV-B): convoy route/time
//! policies learned from after-action reviews, improving as missions
//! accumulate, and re-admitting risky options when the coalition's risk
//! appetite rises.
//!
//! Run with `cargo run --example resupply`.

use agenp_core::scenarios::resupply::{self, Mission, Plan};
use agenp_learn::Learner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("plan grammar:\n{}", resupply::grammar());

    println!("{:>10} {:>10} {:>10}", "missions", "examples", "accuracy");
    let mut last_gpm = None;
    for n_missions in [2usize, 4, 8, 16, 32] {
        let reviews = resupply::reviews(n_missions, 3, 9);
        let task = resupply::learning_task(&reviews);
        match Learner::new().learn(&task) {
            Ok(h) => {
                let gpm = h.apply(&task.grammar);
                let acc = resupply::gpm_accuracy(&gpm, 50, 555);
                println!("{n_missions:>10} {:>10} {acc:>10.3}", reviews.len());
                last_gpm = Some((h, gpm));
            }
            Err(e) => println!("{n_missions:>10} {:>10} learn failed: {e}", reviews.len()),
        }
    }

    let (h, gpm) = last_gpm.expect("at least one learning round succeeded");
    println!("\nlearned plan constraints:\n{h}");

    // Risk-appetite shift: "options that were previously discounted on
    // grounds of risk may later become acceptable" (§IV-B).
    let cautious = Mission {
        threat: [2, 3, 3],
        rain: false,
        appetite: 1,
    };
    let bold = Mission {
        appetite: 2,
        ..cautious
    };
    let plan = Plan { route: 0, slot: 0 };
    println!("\nplan `{}` with route threat 2:", plan.text());
    for (label, mission) in [
        ("appetite 1 (cautious)", cautious),
        ("appetite 2 (bold)", bold),
    ] {
        let admitted = gpm
            .with_context(&mission.to_program())
            .accepts(&plan.text())?;
        println!(
            "  {label:<22} -> {}",
            if admitted { "admitted" } else { "discounted" }
        );
    }

    // Show the full generated plan menu for one mission.
    let mission = Mission {
        threat: [0, 2, 1],
        rain: true,
        appetite: 2,
    };
    println!("\nmission {mission:?} — generated plan menu:");
    for plan in Plan::all() {
        let ok = gpm
            .with_context(&mission.to_program())
            .accepts(&plan.text())?;
        println!(
            "  {:<28} {}",
            plan.text(),
            if ok { "valid" } else { "rejected" }
        );
    }

    // Utility-based selection (paper §I's third policy type): weak
    // constraints rank the admitted plans by threat and time of day.
    let preferenced = resupply::with_preferences(&gpm);
    match resupply::preferred_plan(&preferenced, mission) {
        Some((plan, cost)) => {
            println!("\nutility-preferred plan: {} (cost {cost})", plan.text());
        }
        None => println!("\nno admissible plan for this mission"),
    }
    Ok(())
}
