//! The connected-and-autonomous-vehicle generative policy model (paper
//! §IV-A): learn whether driving-task requests should be accepted from
//! context-labelled examples, and compare sample-efficiency with a
//! decision-tree baseline — the paper's headline claim is that the
//! symbolic learner needs fewer examples for greater accuracy.
//!
//! Run with `cargo run --example cav_policies`.

use agenp_baselines::{Classifier, DecisionTree};
use agenp_core::scenarios::cav;
use agenp_grammar::GenOptions;
use agenp_learn::Learner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("CAV grammar:\n{}", cav::grammar());
    println!(
        "hypothesis space: {} candidate constraints",
        cav::hypothesis_space().len()
    );

    let test = cav::samples(300, 2024);
    println!(
        "\n{:>8} {:>12} {:>14}",
        "n_train", "ASG-GPM acc", "DecisionTree acc"
    );
    for n in [4usize, 8, 16, 32, 64] {
        let train = cav::samples(n, 7);
        // Symbolic.
        let task = cav::learning_task(&train, None);
        let symbolic = match Learner::new().learn(&task) {
            Ok(h) => cav::gpm_accuracy(&h.apply(&task.grammar), &test),
            Err(_) => f64::NAN,
        };
        // Statistical.
        let tree = DecisionTree::fit(&cav::to_dataset(&train));
        let statistical = tree.accuracy(&cav::to_dataset(&test));
        println!("{n:>8} {symbolic:>12.3} {statistical:>14.3}");
    }

    // Show the learned model and the policies it generates in one context.
    let train = cav::samples(64, 7);
    let task = cav::learning_task(&train, None);
    let h = Learner::new().learn(&task)?;
    println!("\nlearned hypothesis from 64 examples:\n{h}");
    let gpm = h.apply(&task.grammar);
    let ctx = cav::CavContext {
        loa: 3,
        limit: 5,
        rain: true,
        emergency: false,
    };
    println!("context: {ctx:?}");
    println!("policies the CAV generates for itself in this context:");
    for p in gpm.with_context(&ctx.to_program()).language(GenOptions {
        max_depth: 4,
        max_trees: 100,
    })? {
        println!("  {p}");
    }
    Ok(())
}
