//! Federated-learning governance (paper §IV-E): learn policies that decide
//! whether to adopt, combine, or reject models offered by partially trusted
//! partners, then show that the governed node ends up with a better model
//! than one that adopts every reported improvement.
//!
//! Run with `cargo run --example federated_governance`.

use agenp_coalition::federated::{self, ModelOffer};
use agenp_learn::Learner;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("governance grammar:\n{}", federated::grammar());

    // Learn the governance GPM from labelled offers.
    let mut rng = StdRng::seed_from_u64(12);
    let offers: Vec<ModelOffer> = (0..80).map(|_| ModelOffer::random(&mut rng)).collect();
    let task = federated::learning_task(&offers);
    let h = Learner::new().learn(&task)?;
    println!("learned governance constraints:\n{h}");

    let gpm = h.apply(&task.grammar);
    println!(
        "governance accuracy vs oracle on fresh offers: {:.3}",
        federated::governance_accuracy(&gpm, 400, 777)
    );

    // Walk through a few concrete offers.
    println!("\nsample decisions:");
    let cases = [
        ModelOffer {
            src_trust: 3,
            remote_acc: 90,
            local_acc: 70,
            staleness: 0,
        },
        ModelOffer {
            src_trust: 3,
            remote_acc: 90,
            local_acc: 70,
            staleness: 4,
        },
        ModelOffer {
            src_trust: 0,
            remote_acc: 95,
            local_acc: 70,
            staleness: 0,
        },
        ModelOffer {
            src_trust: 2,
            remote_acc: 68,
            local_acc: 70,
            staleness: 1,
        },
    ];
    for offer in cases {
        println!(
            "  {offer:?}\n    -> {} (oracle: {})",
            federated::governed_action(&gpm, offer),
            federated::oracle_action(offer)
        );
    }

    // Federated simulation: governed vs ungoverned adoption.
    println!("\nfederated rounds (untrusted sources overreport, stale models decay):");
    let outcome = federated::simulate_federation(&gpm, 60, 99);
    println!(
        "  governed node:   final accuracy {:.1} ({} adoptions)",
        outcome.governed_final_acc, outcome.governed_adoptions
    );
    println!(
        "  ungoverned node: final accuracy {:.1}",
        outcome.ungoverned_final_acc
    );
    Ok(())
}
