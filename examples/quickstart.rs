//! Quickstart: the Fig. 1 workflow of the paper — an initial generative
//! policy model (an answer set grammar), context-dependent examples of
//! valid/invalid policies, the ILASP-style learner, and the learned GPM.
//!
//! Run with `cargo run --example quickstart`.

use agenp_grammar::{Asg, GenOptions, ProdId};
use agenp_learn::{Example, HypothesisSpace, Learner, LearningTask};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The initial GPM: a tiny policy language for a device that may run
    //    tasks at a power level, with no semantic constraints yet.
    let initial: Asg = r#"
        policy -> "run" task "at" power {
            my_power(P) :- pw(P)@4.
            my_task(T)  :- tk(T)@2.
        }
        task -> "sensing"   { tk(sensing). }
        task -> "uploading" { tk(uploading). }
        power -> "low"  { pw(1). }
        power -> "high" { pw(2). }
    "#
    .parse()?;
    println!("== initial GPM (answer set grammar) ==\n{initial}");

    // 2. The hypothesis space: candidate semantic constraints on the policy
    //    production.
    let policy_prod = ProdId::from_index(0);
    let space = HypothesisSpace::from_texts(&[
        (policy_prod, ":- my_power(P), battery(B), B < P."),
        (policy_prod, ":- my_task(uploading), jamming."),
        (policy_prod, ":- my_task(sensing), jamming."),
        (policy_prod, ":- my_power(P), P >= 2."),
    ]);
    println!("== hypothesis space ({} candidates) ==", space.len());
    for c in space.candidates() {
        println!("  {c}");
    }

    // 3. Context-dependent examples ⟨policy, context⟩ (Definition 3).
    let low_batt: agenp_asp::Program = "battery(1).".parse()?;
    let full_batt: agenp_asp::Program = "battery(2).".parse()?;
    let jammed: agenp_asp::Program = "battery(2). jamming.".parse()?;
    let task = LearningTask::new(initial.clone(), space)
        .pos(Example::in_context("run sensing at low", low_batt.clone()))
        .neg(Example::in_context("run sensing at high", low_batt.clone()))
        .pos(Example::in_context(
            "run uploading at high",
            full_batt.clone(),
        ))
        .neg(Example::in_context("run uploading at high", jammed.clone()))
        .pos(Example::in_context("run sensing at low", jammed.clone()));

    // 4. Learn.
    let hypothesis = Learner::new().learn(&task)?;
    println!("\n== learned hypothesis ==\n{hypothesis}");

    // 5. The learned GPM generates exactly the policies valid per context.
    let learned = hypothesis.apply(&initial);
    for (name, ctx) in [
        ("low battery", &low_batt),
        ("full battery", &full_batt),
        ("jammed", &jammed),
    ] {
        let lang = learned.with_context(ctx).language(GenOptions::default())?;
        println!("\npolicies generated under {name}:");
        for p in lang {
            println!("  {p}");
        }
    }
    Ok(())
}
