//! Policy explainability (paper §V-B): why a policy was generated, why
//! another was not, derivation proofs for the symbols involved, and
//! counterfactual explanations ("if your LOA had been 4 …") of the kind
//! the paper connects to the GDPR's right to explanation.
//!
//! Run with `cargo run --example explainability`.

use agenp_core::explain::{counterfactual, explain_policy, explain_policy_atom, MutableFact};
use agenp_core::scenarios::cav;
use agenp_learn::Learner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Learn a CAV policy model.
    let train = cav::samples(64, 7);
    let task = cav::learning_task(&train, None);
    let h = Learner::new().learn(&task)?;
    let gpm = h.apply(&task.grammar);
    println!("learned GPM:\n{gpm}");

    // 1. Why is a policy generated?
    let good = cav::CavContext {
        loa: 5,
        limit: 5,
        rain: false,
        emergency: false,
    };
    println!("--- context {good:?} ---");
    println!(
        "{}",
        explain_policy(&gpm, &good.to_program(), "accept park")?
    );

    // Derivation of the lifted requirement symbol.
    if let Some(d) = explain_policy_atom(
        &gpm,
        &good.to_program(),
        "accept park",
        &"task_req(4)".parse()?,
    )? {
        println!("why does task_req(4) hold?\n{d}");
    }

    // 2. Why is a policy NOT generated?
    let low = cav::CavContext {
        loa: 2,
        limit: 5,
        rain: false,
        emergency: false,
    };
    println!("--- context {low:?} ---");
    println!(
        "{}",
        explain_policy(&gpm, &low.to_program(), "accept park")?
    );

    // 3. Counterfactual: what would have to change?
    let mutable = vec![
        MutableFact::parse(
            "loa(2).",
            &["loa(0).", "loa(1).", "loa(3).", "loa(4).", "loa(5)."],
        ),
        MutableFact::parse("weather(clear).", &["weather(rain)."]),
    ];
    match counterfactual(
        &gpm,
        &low.to_program(),
        "accept overtake",
        &mutable,
        true,
        2,
    )? {
        Some(cf) => println!("`accept overtake` was rejected; {cf}, it would have been accepted."),
        None => println!("no counterfactual within 2 changes"),
    }

    // And the reverse direction: what would make an accepted policy invalid?
    let mutable_back = vec![MutableFact::parse("weather(clear).", &["weather(rain)."])];
    match counterfactual(
        &gpm,
        &good.to_program(),
        "accept park",
        &mutable_back,
        false,
        1,
    )? {
        Some(cf) => println!("`accept park` was accepted; {cf}, it would have been rejected."),
        None => println!("no single-change counterfactual rejects `accept park`"),
    }
    Ok(())
}
