//! The full Fig. 2 autonomic loop: a PBMS hands an AMS its policy-space
//! characterization (grammar + hypothesis space + restrictions + goals);
//! the AMS generates policies, decides requests, monitors its goals, and
//! adapts when it drifts off-goal.
//!
//! Run with `cargo run --example autonomic_loop`.

use agenp_core::arch::{Ams, Feedback, GoalPolicy, Verdict};
use agenp_grammar::{Asg, ProdId};
use agenp_learn::HypothesisSpace;
use agenp_policy::{Decision, Request};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- PBMS characterization (top of Fig. 2) ---------------------------
    let grammar: Asg = r#"
        policy -> effect "if" "subject" "clearance" "=" level
        effect -> "permit" { e(permit). }
        effect -> "deny"   { e(deny). }
        level -> "low"  { lvl(low). }
        level -> "high" { lvl(high). }
    "#
    .parse()?;
    let space = HypothesisSpace::from_texts(&[
        (ProdId::from_index(0), ":- e(permit)@1, lvl(low)@6."),
        (ProdId::from_index(0), ":- e(deny)@1, lvl(high)@6."),
        (ProdId::from_index(0), ":- e(permit)@1, lockdown."),
    ]);
    let mut ams = Ams::new("device-7", grammar, space);
    // A high-level PBMS restriction the PCP screens against: never generate
    // permits during lockdown, whatever is learned.
    ams.pcp_mut()
        .add_restriction(ProdId::from_index(0), ":- e(permit)@1, lockdown.".parse()?);
    // Goal policies (paper type (ii)): serve requests (grant rate) while
    // never leaving gaps.
    ams.set_goals(
        vec![
            GoalPolicy::at_least("availability", "grant_rate", 0.3),
            GoalPolicy::at_most("coverage", "gap_rate", 0.05),
        ],
        8,
    );

    // --- Round 1: initial policies deny everything (over-generation) -----
    ams.refresh_policies()?;
    println!("round 1 — initial generation:");
    run_requests(&mut ams);
    report_goals(&ams);

    // --- Feedback from operations (the monitoring arrows of Fig. 2) ------
    let quiet = agenp_asp::Program::new();
    for (policy, valid) in [
        ("permit if subject clearance = high", true),
        ("deny if subject clearance = high", false),
        ("deny if subject clearance = low", true),
        ("permit if subject clearance = low", false),
    ] {
        let fb = if valid {
            Feedback::valid(policy, quiet.clone())
        } else {
            Feedback::invalid(policy, quiet.clone())
        };
        ams.observe(fb);
    }

    // --- Round 2: the off-goal trigger fires the PAdaP -------------------
    match ams.adapt_if_off_goal()? {
        Some(adaptation) => {
            println!(
                "\nadaptation triggered (off-goal): learned\n{}",
                adaptation.hypothesis
            )
        }
        None => println!("\nno adaptation needed"),
    }
    println!("round 2 — after adaptation:");
    run_requests(&mut ams);
    report_goals(&ams);
    println!("GPM versions stored: {}", ams.representations().len());

    // --- Round 3: context change (lockdown) — the PCP restriction bites --
    ams.set_context("lockdown.".parse()?);
    let screened = ams.refresh_policies()?;
    println!("\nround 3 — lockdown context; PCP screening:");
    for (policy, verdict) in &screened {
        println!(
            "  {policy:<40} {}",
            match verdict {
                Verdict::Accepted => "accepted",
                Verdict::Violation => "BLOCKED by restriction",
                Verdict::Malformed => "malformed",
            }
        );
    }
    let d = ams.decide(&Request::new().subject("clearance", "high"));
    println!("decision for high clearance under lockdown: {}", d.decision);
    Ok(())
}

fn run_requests(ams: &mut Ams) {
    for clearance in ["high", "high", "high", "low", "low", "high", "low", "high"] {
        let req = Request::new().subject("clearance", clearance);
        let d = ams.decide(&req);
        let mark = match d.decision {
            Decision::Permit => "permit",
            Decision::Deny => "deny",
            _ => "gap",
        };
        println!("  clearance={clearance:<5} -> {mark}");
    }
}

fn report_goals(ams: &Ams) {
    let violations = ams.goal_violations();
    if violations.is_empty() {
        println!("goals: all met");
    } else {
        for v in violations {
            println!("goals: {v}");
        }
    }
}
