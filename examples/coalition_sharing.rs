//! Coalition data sharing (paper §IV-D) and community policy sharing
//! (§III-A-3 / CASWiki [16]): concurrent parties learn locally, contribute
//! experiences to a shared knowledge base, newcomers warm-start from
//! trusted contributions, and the learned symbolic sharing policy survives
//! a coalition change that breaks a statistical baseline (§V-C).
//!
//! Run with `cargo run --example coalition_sharing`.

use agenp_coalition::{
    datashare, distributed_cav_learning, warm_start_comparison, CasWiki, TrustModel,
};
use agenp_learn::Learner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Community policy learning over the wiki ------------------------
    println!("=== CASWiki: concurrent parties + newcomer warm start ===");
    let wiki = CasWiki::new();
    let reports = distributed_cav_learning(3, 50, 5, &wiki);
    for r in &reports {
        println!(
            "  {:<10} learned {} rules from {} local examples, accuracy {:.3}",
            r.name, r.learned_rules, r.local_examples, r.accuracy
        );
    }
    println!("  wiki now holds {} contributions", wiki.len());
    let mut trust = TrustModel::new();
    for r in &reports {
        trust.set(&r.name, 0.9);
    }
    let outcome = warm_start_comparison(4, &wiki, &trust, 0.5, 4242);
    println!(
        "  newcomer with 4 local examples: cold {:.3} vs warm {:.3} (using {} shared)",
        outcome.cold_accuracy, outcome.warm_accuracy, outcome.shared_used
    );

    // --- Data sharing with helper microservices -------------------------
    println!("\n=== data sharing: trust x sensitivity x helper-computed quality ===");
    let partners = ["amber", "bravo", "delta"];
    let mut before = TrustModel::new();
    before.set("amber", 0.95);
    before.set("bravo", 0.6);
    before.set("delta", 0.6);
    let train = datashare::samples(100, &partners, &before, 3);
    let task = datashare::learning_task(&train);
    let h = Learner::new().learn(&task)?;
    println!("learned sharing constraints:\n{h}");

    let gpm = h.apply(&task.grammar);
    let item = datashare::DataItem {
        dtype: 2,
        resolution: 9,
        noise: 2,
    };
    for level in 0..=3 {
        let ok = gpm
            .with_context(&datashare::sharing_context(&item, level))
            .accepts("share")?;
        println!(
            "  imagery (quality {}) to a level-{level} partner: {}",
            datashare::quality(&item),
            if ok { "share" } else { "withhold" }
        );
    }

    // --- Coalition change (§V-C) ----------------------------------------
    println!("\n=== coalition change: symbolic vs statistical robustness ===");
    let mut after = before.clone();
    after.set("delta", 0.05); // delta's verifier left; trust collapsed
    let shift = datashare::coalition_shift_experiment(&partners, &before, &after, 120, 17);
    println!(
        "  before shift: symbolic {:.3}, decision tree {:.3}",
        shift.symbolic_before, shift.statistical_before
    );
    println!(
        "  after  shift: symbolic {:.3}, decision tree {:.3}",
        shift.symbolic_after, shift.statistical_after
    );
    println!("  (the tree memorized partner behaviour; the GPM conditions on trust facts)");
    Ok(())
}
