//! The XACML access-control case study (paper §IV-C, Fig. 3): learn
//! policies from request/response logs, then reproduce the three
//! incorrect-learning modes of Fig. 3b and their mitigations.
//!
//! Run with `cargo run --example xacml_learning`.

use agenp_core::scenarios::xacml::{self, NoiseHandling, Response, SpaceConfig, XacmlRequest};
use agenp_learn::Learner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Fig. 3a: correctly learned policies from a clean log -----------
    println!("=== Fig. 3a — correctly learned policies ===");
    let log = xacml::generate_log(120, 7, 0.0);
    let task = xacml::learning_task(&log, SpaceConfig::default(), NoiseHandling::Filter);
    let h = Learner::new().learn(&task)?;
    let policy = xacml::learned_policy(&h.rules);
    println!("{policy}");
    println!(
        "accuracy vs ground truth on fresh requests: {:.3}",
        xacml::policy_accuracy(&policy, 500, 99)
    );

    // --- Fig. 3b-1: overfitting on a sparse log -------------------------
    println!("\n=== Fig. 3b-1 — overfitting without statistical knowledge ===");
    let sparse = vec![
        (
            XacmlRequest {
                role: 1,
                age: 30,
                rtype: 1,
                action: 0,
            },
            Response::Permit,
        ),
        (
            XacmlRequest {
                role: 3,
                age: 40,
                rtype: 2,
                action: 2,
            },
            Response::Deny,
        ),
    ];
    let cfg = SpaceConfig {
        include_age: true,
        require_subject_attribute: false,
    };
    let h_sparse =
        Learner::new().learn(&xacml::learning_task(&sparse, cfg, NoiseHandling::Filter))?;
    println!("learned from 2 examples (note the incidental attribute):");
    println!("{}", xacml::learned_policy(&h_sparse.rules));
    println!("mitigation: augment with statistics (a larger log over the role's users):");
    let log2 = xacml::generate_log(150, 21, 0.0);
    let h_stats = Learner::new().learn(&xacml::learning_task(&log2, cfg, NoiseHandling::Filter))?;
    let p_stats = xacml::learned_policy(&h_stats.rules);
    println!("{p_stats}");
    println!("accuracy: {:.3}", xacml::policy_accuracy(&p_stats, 500, 31));

    // --- Fig. 3b-2: under-specified subjects ----------------------------
    println!("\n=== Fig. 3b-2 — target-based restriction ===");
    let unrestricted = xacml::hypothesis_space(SpaceConfig::default());
    let restricted = xacml::hypothesis_space(SpaceConfig {
        include_age: false,
        require_subject_attribute: true,
    });
    println!(
        "hypothesis space: {} candidates unrestricted, {} after requiring explicit subject attributes",
        unrestricted.len(),
        restricted.len()
    );

    // --- Fig. 3b-3: noisy responses --------------------------------------
    println!("\n=== Fig. 3b-3 — NotApplicable responses mislearned as decisions ===");
    let noisy = xacml::generate_log(120, 13, 0.25);
    let n_na = noisy
        .iter()
        .filter(|(_, r)| *r == Response::NotApplicable)
        .count();
    println!("log: 120 entries, {n_na} NotApplicable");
    for (name, handling) in [
        ("naive (NA treated as Deny)", NoiseHandling::Naive),
        ("filtered (NA pruned)", NoiseHandling::Filter),
        ("penalty (soft examples)", NoiseHandling::Penalty(1)),
    ] {
        let t = xacml::learning_task(&noisy, SpaceConfig::default(), handling);
        match Learner::new().learn(&t) {
            Ok(h) => {
                let p = xacml::learned_policy(&h.rules);
                println!(
                    "  {name:<28} accuracy {:.3} ({} rules)",
                    xacml::policy_accuracy(&p, 500, 5),
                    p.rules.len()
                );
            }
            Err(e) => println!("  {name:<28} failed: {e}"),
        }
    }
    Ok(())
}
