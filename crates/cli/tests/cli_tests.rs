//! End-to-end tests of the `agenp` binary via `std::process::Command`.

use std::io::Write;
use std::process::Command;

fn agenp(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_agenp"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("agenp-cli-test-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

#[test]
fn solve_enumerates_models() {
    let lp = temp_file("even.lp", "p :- not q. q :- not p.");
    let (stdout, _, ok) = agenp(&["solve", lp.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("Answer 1"));
    assert!(stdout.contains("Answer 2"));
}

#[test]
fn solve_reports_unsat() {
    let lp = temp_file("unsat.lp", "a. :- a.");
    let (stdout, _, ok) = agenp(&["solve", lp.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("UNSATISFIABLE"));
}

#[test]
fn solve_optimizes() {
    let lp = temp_file("opt.lp", "a :- not b. b :- not a. :~ a. [3] :~ b. [1]");
    let (stdout, _, ok) = agenp(&["solve", lp.to_str().unwrap(), "--optimize"]);
    assert!(ok);
    assert!(stdout.contains("OPTIMUM 1@0"), "{stdout}");
    assert!(stdout.contains('b'));
}

#[test]
fn grammar_accepts_respects_context() {
    let asg = temp_file(
        "gate.asg",
        "policy -> \"allow\" { :- alert. }\npolicy -> \"deny\" { :- not alert. }\n",
    );
    let ctx = temp_file("alert.lp", "alert.");
    let (o1, _, ok1) = agenp(&[
        "grammar",
        "accepts",
        asg.to_str().unwrap(),
        "deny",
        "--context",
        ctx.to_str().unwrap(),
    ]);
    assert!(ok1);
    assert!(o1.contains("ACCEPTED"));
    let (o2, _, _) = agenp(&["grammar", "accepts", asg.to_str().unwrap(), "deny"]);
    assert!(o2.contains("REJECTED"));
}

#[test]
fn grammar_language_enumerates() {
    let asg = temp_file(
        "lang.asg",
        "s -> \"a\" s { size(X + 1) :- size(X)@2. :- size(X), X >= 3. }\ns -> { size(0). }\n",
    );
    let (stdout, _, ok) = agenp(&["grammar", "language", asg.to_str().unwrap(), "--depth", "8"]);
    assert!(ok);
    let lines: Vec<&str> = stdout.lines().collect();
    // ε, a, a a (size < 3 at every node).
    assert_eq!(lines.len(), 3, "{stdout}");
}

#[test]
fn grammar_check_reports_issues() {
    let asg = temp_file("bad.asg", "s -> \"x\" { p :- q(X)@9. }\norphan -> \"y\"\n");
    let (stdout, _, ok) = agenp(&["grammar", "check", asg.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("warning"), "{stdout}");
    assert!(stdout.contains("child 9"), "{stdout}");
}

#[test]
fn learn_solves_task_files() {
    let task = temp_file(
        "demo.task",
        "%% grammar\npolicy -> \"allow\" { act(allow). }\n%% space\n0 :- storm.\n%% pos\nallow | calm.\n%% neg\nallow | storm.\n",
    );
    let (stdout, _, ok) = agenp(&["learn", task.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains(":- storm."), "{stdout}");
    let (inc, _, ok2) = agenp(&["learn", task.to_str().unwrap(), "--incremental"]);
    assert!(ok2);
    assert!(inc.contains("incremental:"), "{inc}");
}

#[test]
fn explain_diagnoses_rejections() {
    let asg = temp_file("explain.asg", "policy -> \"allow\" { :- lockdown. }\n");
    let ctx = temp_file("lockdown.lp", "lockdown.");
    let (stdout, _, ok) = agenp(&[
        "explain",
        asg.to_str().unwrap(),
        "allow",
        "--context",
        ctx.to_str().unwrap(),
    ]);
    assert!(ok);
    assert!(stdout.contains("decisive constraint"), "{stdout}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let (_, stderr, ok) = agenp(&["solve", "/nonexistent/file.lp"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
    let (_, stderr2, ok2) = agenp(&["nonsense"]);
    assert!(!ok2);
    assert!(stderr2.contains("unknown command"));
    let bad = temp_file("bad.lp", "p :- .");
    let (_, stderr3, ok3) = agenp(&["solve", bad.to_str().unwrap()]);
    assert!(!ok3);
    assert!(stderr3.contains("parse error"));
}

#[test]
fn learn_persists_the_learned_grammar() {
    let task = temp_file(
        "persist.task",
        "%% grammar\npolicy -> \"allow\" { act(allow). }\n%% space\n0 :- storm.\n%% pos\nallow | calm.\n%% neg\nallow | storm.\n",
    );
    let out = std::env::temp_dir().join(format!("agenp-learned-{}.asg", std::process::id()));
    let (stdout, _, ok) = agenp(&[
        "learn",
        task.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    // The persisted grammar is loadable and enforces the learned constraint.
    let ctx = temp_file("storm.lp", "storm.");
    let (verdict, _, ok2) = agenp(&[
        "grammar",
        "accepts",
        out.to_str().unwrap(),
        "allow",
        "--context",
        ctx.to_str().unwrap(),
    ]);
    assert!(ok2);
    assert!(verdict.contains("REJECTED"), "{verdict}");
    let (verdict2, _, _) = agenp(&["grammar", "accepts", out.to_str().unwrap(), "allow"]);
    assert!(verdict2.contains("ACCEPTED"));
}
