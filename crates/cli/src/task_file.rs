//! The `.task` file format: a self-contained context-dependent ASG learning
//! task (Definition 3) in one file, with `%%`-delimited sections.
//!
//! ```text
//! %% grammar
//! policy -> "allow" { act(allow). }
//! policy -> "deny"  { act(deny). }
//!
//! %% space
//! 0 :- weather(rain).
//! 1 :- weather(clear).
//!
//! %% pos
//! allow | weather(clear).
//! deny  | weather(rain).
//!
//! %% neg
//! allow | weather(rain).
//! allow [2] | weather(rain). storm.   % soft example with penalty 2
//! ```
//!
//! Example lines are `<policy string> [penalty] | <context facts>`; the
//! context part is ordinary ASP fact/rule syntax.

use agenp_grammar::{Asg, ProdId};
use agenp_learn::{Candidate, Example, HypothesisSpace, LearningTask};
use std::fmt;

/// An error from parsing a task file.
#[derive(Debug)]
pub struct TaskFileError {
    msg: String,
    line: usize,
}

impl TaskFileError {
    fn new(msg: impl Into<String>, line: usize) -> TaskFileError {
        TaskFileError {
            msg: msg.into(),
            line,
        }
    }
}

impl fmt::Display for TaskFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task file error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TaskFileError {}

/// Parses a `.task` file into a [`LearningTask`].
///
/// # Errors
///
/// Reports the offending line for malformed sections, grammars, rules, or
/// examples.
pub fn parse_task(src: &str) -> Result<LearningTask, TaskFileError> {
    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        None,
        Grammar,
        Space,
        Pos,
        Neg,
    }
    let mut section = Section::None;
    let mut grammar_text = String::new();
    let mut space_lines: Vec<(usize, String)> = Vec::new();
    let mut pos_lines: Vec<(usize, String)> = Vec::new();
    let mut neg_lines: Vec<(usize, String)> = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("%%") {
            section = match rest.trim() {
                "grammar" => Section::Grammar,
                "space" => Section::Space,
                "pos" => Section::Pos,
                "neg" => Section::Neg,
                other => {
                    return Err(TaskFileError::new(
                        format!("unknown section `{other}` (expected grammar/space/pos/neg)"),
                        lineno,
                    ))
                }
            };
            continue;
        }
        if line.is_empty() || line.starts_with('%') {
            // Comments are permitted everywhere except inside the grammar,
            // whose own parser handles them.
            if section == Section::Grammar {
                grammar_text.push_str(raw);
                grammar_text.push('\n');
            }
            continue;
        }
        match section {
            Section::None => {
                return Err(TaskFileError::new(
                    "content before the first `%%` section header",
                    lineno,
                ))
            }
            Section::Grammar => {
                grammar_text.push_str(raw);
                grammar_text.push('\n');
            }
            Section::Space => space_lines.push((lineno, line.to_owned())),
            Section::Pos => pos_lines.push((lineno, line.to_owned())),
            Section::Neg => neg_lines.push((lineno, line.to_owned())),
        }
    }
    let grammar: Asg = grammar_text
        .parse()
        .map_err(|e| TaskFileError::new(format!("in grammar: {e}"), 1))?;
    let mut candidates = Vec::new();
    for (lineno, line) in space_lines {
        let (idx_text, rule_text) = line
            .split_once(' ')
            .ok_or_else(|| TaskFileError::new("expected `<production> <rule>`", lineno))?;
        let idx: usize = idx_text
            .parse()
            .map_err(|_| TaskFileError::new("expected a production index", lineno))?;
        let rule = rule_text
            .trim()
            .parse()
            .map_err(|e| TaskFileError::new(format!("in rule: {e}"), lineno))?;
        candidates.push(Candidate::new(ProdId::from_index(idx), rule));
    }
    let mut task = LearningTask::new(grammar, HypothesisSpace::from_candidates(candidates));
    for (lineno, line) in pos_lines {
        task = task.pos(parse_example(&line, lineno)?);
    }
    for (lineno, line) in neg_lines {
        task = task.neg(parse_example(&line, lineno)?);
    }
    Ok(task)
}

fn parse_example(line: &str, lineno: usize) -> Result<Example, TaskFileError> {
    let (head, ctx) = line
        .split_once('|')
        .ok_or_else(|| TaskFileError::new("expected `<string> | <context>`", lineno))?;
    let mut head = head.trim().to_owned();
    let mut penalty = None;
    // Optional trailing `[k]` penalty on the string side.
    if let Some(open) = head.rfind('[') {
        if head.ends_with(']') {
            let inner = &head[open + 1..head.len() - 1];
            penalty = Some(inner.trim().parse().map_err(|_| {
                TaskFileError::new("expected an integer penalty inside `[ ]`", lineno)
            })?);
            head.truncate(open);
            head = head.trim().to_owned();
        }
    }
    let context = ctx
        .trim()
        .parse()
        .map_err(|e| TaskFileError::new(format!("in context: {e}"), lineno))?;
    let mut e = Example::in_context(head, context);
    if let Some(p) = penalty {
        e = e.with_penalty(p);
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TASK: &str = r#"
%% grammar
policy -> "allow" { act(allow). }
policy -> "deny"  { act(deny). }

%% space
0 :- weather(rain).
1 :- weather(clear).

%% pos
allow | weather(clear).
deny | weather(rain).

%% neg
allow | weather(rain).
allow [3] | weather(rain). storm.
"#;

    #[test]
    fn parses_full_task() {
        let task = parse_task(TASK).unwrap();
        assert_eq!(task.grammar.cfg().production_count(), 2);
        assert_eq!(task.space.len(), 2);
        assert_eq!(task.positive.len(), 2);
        assert_eq!(task.negative.len(), 2);
        assert_eq!(task.negative[1].penalty, Some(3));
        assert_eq!(task.negative[1].context.len(), 2);
        // And it is solvable.
        let h = agenp_learn::Learner::new().learn(&task).unwrap();
        assert_eq!(h.rules[0].1.to_string(), ":- weather(rain).");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "%% grammar\ns -> \"x\"\n%% space\nnot-an-index :- x.\n";
        let err = parse_task(bad).unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
        let bad2 = "junk before sections\n";
        assert!(parse_task(bad2).is_err());
        let bad3 = "%% unknown\n";
        assert!(parse_task(bad3).is_err());
    }

    #[test]
    fn example_lines_validate() {
        assert!(parse_example("allow | weather(rain).", 1).is_ok());
        assert!(parse_example("no pipe here", 1).is_err());
        assert!(parse_example("allow [x] | a.", 1).is_err());
        let soft = parse_example("allow [7] | a.", 1).unwrap();
        assert_eq!(soft.penalty, Some(7));
        assert_eq!(soft.text, "allow");
    }
}
