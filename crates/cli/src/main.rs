//! `agenp` — the AGENP command-line tool.
//!
//! ```text
//! agenp solve <file.lp> [--models N] [--optimize]
//! agenp ground <file.lp>
//! agenp grammar check <file.asg>
//! agenp grammar accepts <file.asg> "<string>" [--context <ctx.lp>]
//! agenp grammar language <file.asg> [--context <ctx.lp>] [--depth N]
//! agenp learn <file.task> [--incremental]
//! agenp explain <file.asg> "<string>" [--context <ctx.lp>]
//! ```

mod task_file;

use agenp_asp::{ground, Program, Solver};
use agenp_core::explain::explain_policy;
use agenp_grammar::{ambiguity_sample, validate_asg, Asg, CfgAnalysis, GenOptions};
use agenp_learn::Learner;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("agenp: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  agenp solve <file.lp> [--models N] [--optimize]
  agenp ground <file.lp>
  agenp grammar check <file.asg>
  agenp grammar accepts <file.asg> \"<string>\" [--context <ctx.lp>]
  agenp grammar language <file.asg> [--context <ctx.lp>] [--depth N]
  agenp learn <file.task> [--incremental] [--out <learned.asg>]
  agenp explain <file.asg> \"<string>\" [--context <ctx.lp>]";

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("solve") => cmd_solve(&args[1..]),
        Some("ground") => cmd_ground(&args[1..]),
        Some("grammar") => cmd_grammar(&args[1..]),
        Some("learn") => cmd_learn(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn read_program(path: &str) -> Result<Program, String> {
    read_file(path)?
        .parse()
        .map_err(|e| format!("in `{path}`: {e}"))
}

fn read_grammar(path: &str) -> Result<Asg, String> {
    read_file(path)?
        .parse::<Asg>()
        .map_err(|e| format!("in `{path}`: {e}"))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn optional_context(args: &[String]) -> Result<Program, String> {
    match flag_value(args, "--context") {
        Some(path) => read_program(path),
        None => Ok(Program::new()),
    }
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(USAGE)?;
    let program = read_program(path)?;
    let g = ground(&program).map_err(|e| e.to_string())?;
    let max_models: usize = flag_value(args, "--models")
        .map(|v| v.parse().map_err(|_| "--models expects a number"))
        .transpose()?
        .unwrap_or(0);
    if args.iter().any(|a| a == "--optimize") {
        let r = Solver::new().max_models(max_models).optimize(&g);
        match r.cost() {
            None => println!("UNSATISFIABLE"),
            Some(cost) => {
                println!(
                    "OPTIMUM {cost} ({} model(s), proven: {})",
                    r.optima().len(),
                    r.proven_optimal()
                );
                for m in r.optima() {
                    println!("{m}");
                }
            }
        }
        return Ok(());
    }
    let r = Solver::new().max_models(max_models).solve(&g);
    if !r.satisfiable() {
        println!("UNSATISFIABLE");
    } else {
        for (i, m) in r.models().iter().enumerate() {
            println!("Answer {}: {m}", i + 1);
        }
        if !r.complete() {
            println!("(enumeration incomplete)");
        }
    }
    Ok(())
}

fn cmd_ground(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(USAGE)?;
    let program = read_program(path)?;
    let g = ground(&program).map_err(|e| e.to_string())?;
    print!("{g}");
    Ok(())
}

fn cmd_grammar(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("check") => {
            let path = args.get(1).ok_or(USAGE)?;
            let g = read_grammar(path)?;
            let analysis = CfgAnalysis::of(g.cfg());
            println!(
                "{} productions, {} nonterminals ({} reachable, {} productive)",
                g.cfg().production_count(),
                g.cfg().nt_count(),
                analysis.reachable.len(),
                analysis.productive.len()
            );
            for p in &analysis.useless_productions {
                println!("warning: production p{} is useless", p.index());
            }
            for nt in &analysis.unit_cyclic {
                println!(
                    "warning: nonterminal `{}` is in a unit cycle",
                    g.cfg().nt_name(*nt)
                );
            }
            for issue in validate_asg(&g) {
                println!("warning: {issue}");
            }
            let ambiguous = ambiguity_sample(
                g.cfg(),
                GenOptions {
                    max_depth: 6,
                    max_trees: 500,
                },
                3,
            );
            for (s, n) in ambiguous {
                println!("note: `{s}` has {n} parse trees");
            }
            Ok(())
        }
        Some("accepts") => {
            let path = args.get(1).ok_or(USAGE)?;
            let string = args.get(2).ok_or(USAGE)?;
            let g = read_grammar(path)?;
            let ctx = optional_context(&args[3..])?;
            let ok = g
                .with_context(&ctx)
                .accepts(string)
                .map_err(|e| e.to_string())?;
            println!("{}", if ok { "ACCEPTED" } else { "REJECTED" });
            Ok(())
        }
        Some("language") => {
            let path = args.get(1).ok_or(USAGE)?;
            let g = read_grammar(path)?;
            let ctx = optional_context(&args[2..])?;
            let depth: usize = flag_value(&args[2..], "--depth")
                .map(|v| v.parse().map_err(|_| "--depth expects a number"))
                .transpose()?
                .unwrap_or(8);
            let lang = g
                .with_context(&ctx)
                .language(GenOptions {
                    max_depth: depth,
                    max_trees: 20_000,
                })
                .map_err(|e| e.to_string())?;
            for s in lang {
                println!("{s}");
            }
            Ok(())
        }
        _ => Err(format!("unknown grammar subcommand\n{USAGE}")),
    }
}

fn cmd_learn(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(USAGE)?;
    let task = task_file::parse_task(&read_file(path)?).map_err(|e| e.to_string())?;
    println!(
        "task: {} productions, {} candidates, {}+ / {}- examples",
        task.grammar.cfg().production_count(),
        task.space.len(),
        task.positive.len(),
        task.negative.len()
    );
    let learner = Learner::new();
    let hypothesis = if args.iter().any(|a| a == "--incremental") {
        let (h, stats) = learner
            .learn_incremental(&task)
            .map_err(|e| e.to_string())?;
        println!(
            "incremental: {} rounds, {}/{} relevant",
            stats.rounds, stats.relevant, stats.total
        );
        h
    } else {
        learner.learn(&task).map_err(|e| e.to_string())?
    };
    print!("{hypothesis}");
    let learned = hypothesis.apply(&task.grammar);
    println!("learned grammar:\n{learned}");
    if let Some(out) = flag_value(args, "--out") {
        std::fs::write(out, learned.to_string())
            .map_err(|e| format!("cannot write `{out}`: {e}"))?;
        println!("wrote learned grammar to {out}");
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(USAGE)?;
    let string = args.get(1).ok_or(USAGE)?;
    let g = read_grammar(path)?;
    let ctx = optional_context(&args[2..])?;
    let explanation = explain_policy(&g, &ctx, string).map_err(|e| e.to_string())?;
    print!("{explanation}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--context", "ctx.lp", "--depth", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--context"), Some("ctx.lp"));
        assert_eq!(flag_value(&args, "--depth"), Some("5"));
        assert_eq!(flag_value(&args, "--missing"), None);
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&["frobnicate".to_owned()]).is_err());
        assert!(run(&[]).is_ok()); // prints usage
    }
}
