//! Typed views over the global `agenp-obs` metrics registry for the ASP
//! engine: the grounder and solver publish their per-run counters here
//! (when telemetry is enabled), and readers get cumulative
//! [`GroundStats`]/[`SolveStats`] totals back without knowing the metric
//! names. The per-run structs stay the call-site API; these views are
//! the shared vocabulary (`docs/OBSERVABILITY.md`).

use crate::ground::GroundStats;
use crate::solve::SolveStats;
use agenp_obs::Counter;
use std::sync::{Arc, OnceLock};

/// Registry-backed totals for the grounder (`asp.ground.*`).
#[derive(Clone, Debug)]
pub struct GroundMetrics {
    /// Completed grounding runs (`asp.ground.runs`).
    pub runs: Arc<Counter>,
    /// Runs aborted by an error or budget (`asp.ground.errors`).
    pub errors: Arc<Counter>,
    /// Saturation passes (`asp.ground.passes`).
    pub passes: Arc<Counter>,
    /// Ground-rule instantiations (`asp.ground.rules_instantiated`).
    pub rules_instantiated: Arc<Counter>,
    /// Join candidates scanned (`asp.ground.join_candidates`).
    pub join_candidates: Arc<Counter>,
    /// Work units executed via the work-stealing pool
    /// (`asp.ground.parallel_units`).
    pub parallel_units: Arc<Counter>,
}

impl GroundMetrics {
    /// The process-wide view (handles resolve once and are cached).
    pub fn global() -> &'static GroundMetrics {
        static VIEW: OnceLock<GroundMetrics> = OnceLock::new();
        VIEW.get_or_init(|| {
            let r = agenp_obs::registry();
            GroundMetrics {
                runs: r.counter("asp.ground.runs"),
                errors: r.counter("asp.ground.errors"),
                passes: r.counter("asp.ground.passes"),
                rules_instantiated: r.counter("asp.ground.rules_instantiated"),
                join_candidates: r.counter("asp.ground.join_candidates"),
                parallel_units: r.counter("asp.ground.parallel_units"),
            }
        })
    }

    /// Folds one finished run into the registry (no-op when telemetry is
    /// disabled).
    pub fn publish(stats: &GroundStats) {
        if !agenp_obs::enabled() {
            return;
        }
        let m = GroundMetrics::global();
        m.runs.incr();
        m.passes.add(stats.passes);
        m.rules_instantiated.add(stats.rules_instantiated);
        m.join_candidates.add(stats.join_candidates);
        m.parallel_units.add(stats.parallel_units);
    }

    /// Cumulative totals as a [`GroundStats`] façade.
    pub fn read() -> GroundStats {
        let m = GroundMetrics::global();
        GroundStats {
            passes: m.passes.value(),
            rules_instantiated: m.rules_instantiated.value(),
            join_candidates: m.join_candidates.value(),
            parallel_units: m.parallel_units.value(),
        }
    }
}

/// Registry-backed totals for the solver (`asp.solve.*`).
#[derive(Clone, Debug)]
pub struct SolveMetrics {
    /// Completed solve runs (`asp.solve.runs`).
    pub runs: Arc<Counter>,
    /// Runs answered by the stratified fast path
    /// (`asp.solve.stratified_runs`).
    pub stratified_runs: Arc<Counter>,
    /// DPLL decisions (`asp.solve.decisions`).
    pub decisions: Arc<Counter>,
    /// Unit propagations (`asp.solve.propagations`).
    pub propagations: Arc<Counter>,
    /// Conflicts/backtracks (`asp.solve.conflicts`).
    pub conflicts: Arc<Counter>,
    /// Stability verifications (`asp.solve.stability_checks`).
    pub stability_checks: Arc<Counter>,
}

impl SolveMetrics {
    /// The process-wide view.
    pub fn global() -> &'static SolveMetrics {
        static VIEW: OnceLock<SolveMetrics> = OnceLock::new();
        VIEW.get_or_init(|| {
            let r = agenp_obs::registry();
            SolveMetrics {
                runs: r.counter("asp.solve.runs"),
                stratified_runs: r.counter("asp.solve.stratified_runs"),
                decisions: r.counter("asp.solve.decisions"),
                propagations: r.counter("asp.solve.propagations"),
                conflicts: r.counter("asp.solve.conflicts"),
                stability_checks: r.counter("asp.solve.stability_checks"),
            }
        })
    }

    /// Folds one finished run into the registry (no-op when telemetry is
    /// disabled).
    pub fn publish(stats: &SolveStats) {
        if !agenp_obs::enabled() {
            return;
        }
        let m = SolveMetrics::global();
        m.runs.incr();
        if stats.used_stratified {
            m.stratified_runs.incr();
        }
        m.decisions.add(stats.decisions);
        m.propagations.add(stats.propagations);
        m.conflicts.add(stats.conflicts);
        m.stability_checks.add(stats.stability_checks);
    }

    /// Cumulative totals as a [`SolveStats`] façade (`used_stratified` is
    /// true when any run took the fast path; `tight` is not aggregated).
    pub fn read() -> SolveStats {
        let m = SolveMetrics::global();
        SolveStats {
            decisions: m.decisions.value(),
            propagations: m.propagations.value(),
            conflicts: m.conflicts.value(),
            stability_checks: m.stability_checks.value(),
            used_stratified: m.stratified_runs.value() > 0,
            tight: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_is_gated_and_cumulative() {
        // Disabled: publishing must not move the registry.
        agenp_obs::install(agenp_obs::ObsConfig::disabled());
        let before = GroundMetrics::read();
        GroundMetrics::publish(&GroundStats {
            passes: 3,
            rules_instantiated: 5,
            join_candidates: 7,
            parallel_units: 0,
        });
        assert_eq!(GroundMetrics::read(), before);

        // Enabled: totals accumulate.
        agenp_obs::install(agenp_obs::ObsConfig::enabled());
        GroundMetrics::publish(&GroundStats {
            passes: 3,
            rules_instantiated: 5,
            join_candidates: 7,
            parallel_units: 0,
        });
        let after = GroundMetrics::read();
        assert!(after.passes >= before.passes + 3);
        assert!(after.rules_instantiated >= before.rules_instantiated + 5);
        SolveMetrics::publish(&SolveStats {
            decisions: 2,
            used_stratified: true,
            ..SolveStats::default()
        });
        assert!(SolveMetrics::read().used_stratified);
        agenp_obs::install(agenp_obs::ObsConfig::disabled());
    }
}
