//! Explanation support (paper §V-B): derivation proofs for atoms in an
//! answer set, and identification of the constraints that eliminate a
//! candidate interpretation. These are the building blocks for
//! policy-level explanations ("why was this policy generated / not
//! generated?") in `agenp-core`.

use crate::atom::Atom;
use crate::ground::{AtomId, GroundProgram};
use crate::solve::AnswerSet;
use std::collections::HashMap;
use std::fmt;

/// A proof tree: the atom, the ground rule instance that derives it, and
/// the derivations of the rule's positive premises. Negative premises hold
/// by absence and are listed as assumptions.
#[derive(Clone, Debug)]
pub struct Derivation {
    /// The derived atom.
    pub atom: Atom,
    /// The deriving ground rule, rendered.
    pub rule: String,
    /// Derivations of the positive body atoms.
    pub premises: Vec<Derivation>,
    /// Negative body atoms assumed absent.
    pub assumptions: Vec<Atom>,
}

impl Derivation {
    /// Renders the proof tree with indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        out.push_str(&format!("{indent}{}   [{}]\n", self.atom, self.rule));
        for a in &self.assumptions {
            out.push_str(&format!("{indent}  (assuming not {a})\n"));
        }
        for p in &self.premises {
            p.render_into(out, depth + 1);
        }
    }

    /// Total number of nodes in the proof.
    pub fn size(&self) -> usize {
        1 + self.premises.iter().map(Derivation::size).sum::<usize>()
    }
}

impl fmt::Display for Derivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Explains why `target` is in `model` (an answer set of `program`): a
/// non-circular proof through the Gelfond–Lifschitz reduct. Returns `None`
/// if `target` is not in the model (or not an atom of the program).
///
/// ```
/// use agenp_asp::{explain_atom, ground_with, GroundOptions, Program, Solver};
/// let p: Program = "base. top :- base, not blocked.".parse()?;
/// // Explanations need the unsimplified grounding.
/// let g = ground_with(&p, GroundOptions { simplify: false, ..Default::default() })?;
/// let result = Solver::new().solve(&g);
/// let proof = explain_atom(&g, &result.models()[0], &"top".parse()?).expect("top holds");
/// assert_eq!(proof.premises[0].atom.to_string(), "base");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn explain_atom(
    program: &GroundProgram,
    model: &AnswerSet,
    target: &Atom,
) -> Option<Derivation> {
    let target_id = program.atoms().get(target)?;
    if !model.contains(target) {
        return None;
    }
    let in_model = |id: AtomId| model.contains(program.atoms().resolve(id));
    // Forward chain through the reduct, recording the first supporting rule
    // per atom (this ordering guarantees acyclic proofs).
    let mut support: HashMap<AtomId, usize> = HashMap::new();
    let mut order: HashMap<AtomId, usize> = HashMap::new();
    let mut derived: Vec<AtomId> = Vec::new();
    loop {
        let mut changed = false;
        for (ri, rule) in program.rules().iter().enumerate() {
            let Some(h) = rule.head else { continue };
            if support.contains_key(&h) || !in_model(h) {
                continue;
            }
            let pos_ok = rule.pos.iter().all(|p| support.contains_key(p));
            let neg_ok = rule.neg.iter().all(|&n| !in_model(n));
            if pos_ok && neg_ok {
                support.insert(h, ri);
                order.insert(h, derived.len());
                derived.push(h);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    build_proof(program, &support, target_id)
}

fn build_proof(
    program: &GroundProgram,
    support: &HashMap<AtomId, usize>,
    id: AtomId,
) -> Option<Derivation> {
    let &ri = support.get(&id)?;
    let rule = &program.rules()[ri];
    let premises: Option<Vec<Derivation>> = rule
        .pos
        .iter()
        .map(|&p| build_proof(program, support, p))
        .collect();
    Some(Derivation {
        atom: program.atoms().resolve(id).clone(),
        rule: render_rule(program, ri),
        premises: premises?,
        assumptions: rule
            .neg
            .iter()
            .map(|&n| program.atoms().resolve(n).clone())
            .collect(),
    })
}

fn render_rule(program: &GroundProgram, ri: usize) -> String {
    let rule = &program.rules()[ri];
    let mut parts: Vec<String> = Vec::new();
    for &p in &rule.pos {
        parts.push(program.atoms().resolve(p).to_string());
    }
    for &n in &rule.neg {
        parts.push(format!("not {}", program.atoms().resolve(n)));
    }
    match rule.head {
        Some(h) => {
            let head = program.atoms().resolve(h);
            if parts.is_empty() {
                format!("{head}.")
            } else {
                format!("{head} :- {}.", parts.join(", "))
            }
        }
        None => format!(":- {}.", parts.join(", ")),
    }
}

/// The constraints of `program` whose bodies are satisfied by the given set
/// of atoms (rendered). A candidate interpretation is eliminated exactly by
/// these.
pub fn violated_constraints(program: &GroundProgram, atoms: &[Atom]) -> Vec<String> {
    let holds = |id: AtomId| atoms.contains(program.atoms().resolve(id));
    program
        .rules()
        .iter()
        .enumerate()
        .filter(|(_, r)| {
            r.is_constraint() && r.pos.iter().all(|&p| holds(p)) && r.neg.iter().all(|&n| !holds(n))
        })
        .map(|(ri, _)| render_rule(program, ri))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::{ground_with, GroundOptions};
    use crate::program::Program;
    use crate::solve::Solver;

    fn ground(p: &Program) -> Result<GroundProgram, crate::ground::GroundError> {
        // Explanations need the unsimplified program.
        ground_with(
            p,
            GroundOptions {
                simplify: false,
                ..GroundOptions::default()
            },
        )
    }

    #[test]
    fn explains_chained_derivation() {
        let p: Program = "
            base.
            mid :- base, not blocked.
            top :- mid.
        "
        .parse()
        .unwrap();
        let g = ground(&p).unwrap();
        let r = Solver::new().solve(&g);
        let m = &r.models()[0];
        let d = explain_atom(&g, m, &"top".parse().unwrap()).unwrap();
        assert_eq!(d.atom.to_string(), "top");
        assert_eq!(d.premises.len(), 1);
        assert_eq!(d.premises[0].atom.to_string(), "mid");
        let rendered = d.render();
        assert!(rendered.contains("base"), "{rendered}");
        assert!(d.size() >= 3);
        assert_eq!(d.premises[0].assumptions.len(), 1);
        assert_eq!(d.premises[0].assumptions[0].to_string(), "blocked");
    }

    #[test]
    fn absent_atoms_have_no_explanation() {
        let p: Program = "a.".parse().unwrap();
        let g = ground(&p).unwrap();
        let r = Solver::new().solve(&g);
        let m = &r.models()[0];
        assert!(explain_atom(&g, m, &"b".parse().unwrap()).is_none());
    }

    #[test]
    fn proofs_are_noncircular_for_positive_loops() {
        // a and b support each other, but also a :- e. In the answer set
        // {e, a, b}, proofs must bottom out at e.
        let p: Program = "e. a :- b. b :- a. a :- e.".parse().unwrap();
        let g = ground(&p).unwrap();
        let r = Solver::new().solve(&g);
        let m = r.models().iter().find(|m| m.len() == 3).unwrap();
        let d = explain_atom(&g, m, &"b".parse().unwrap()).unwrap();
        // b :- a, a :- e, e.
        assert_eq!(d.size(), 3);
    }

    #[test]
    fn violated_constraints_are_reported() {
        let p: Program = "
            x :- not y. y :- not x.
            :- x, not y.
        "
        .parse()
        .unwrap();
        let g = ground(&p).unwrap();
        let x: Atom = "x".parse().unwrap();
        let y: Atom = "y".parse().unwrap();
        let v1 = violated_constraints(&g, std::slice::from_ref(&x));
        assert_eq!(v1.len(), 1);
        assert!(v1[0].contains(":- x"));
        let v2 = violated_constraints(&g, &[y]);
        assert!(v2.is_empty());
        let v3 = violated_constraints(&g, std::slice::from_ref(&x));
        assert_eq!(v3.len(), 1);
    }
}
