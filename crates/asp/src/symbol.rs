//! Global string interning for predicate, constant, and variable names.
//!
//! Symbols are cheap (`u32`) copyable handles into a process-wide interner.
//! Interning the same string twice yields the same [`Symbol`], so equality
//! and hashing are O(1). The interner is never purged; the set of distinct
//! names in a policy-management workload is small and long-lived.

use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned name (predicate symbol, constant, or variable name).
///
/// ```
/// use agenp_asp::Symbol;
/// let a = Symbol::new("permit");
/// let b = Symbol::new("permit");
/// assert_eq!(a, b);
/// assert_eq!(a.name(), "permit");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

#[derive(Default)]
struct Interner {
    names: Vec<String>,
    index: std::collections::HashMap<String, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::default()))
}

impl Symbol {
    /// Interns `name` and returns its handle.
    pub fn new(name: &str) -> Symbol {
        {
            let guard = interner().read().expect("symbol interner poisoned");
            if let Some(&id) = guard.index.get(name) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write().expect("symbol interner poisoned");
        if let Some(&id) = guard.index.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(guard.names.len()).expect("symbol table overflow");
        guard.names.push(name.to_owned());
        guard.index.insert(name.to_owned(), id);
        Symbol(id)
    }

    /// Returns the interned string for this symbol.
    pub fn name(self) -> String {
        interner().read().expect("symbol interner poisoned").names[self.0 as usize].clone()
    }

    /// Applies `f` to the interned string without cloning it.
    pub fn with_name<R>(self, f: impl FnOnce(&str) -> R) -> R {
        let guard = interner().read().expect("symbol interner poisoned");
        f(&guard.names[self.0 as usize])
    }

    /// Compares two symbols by their interned strings (not by handle id).
    pub fn cmp_by_name(self, other: Symbol) -> std::cmp::Ordering {
        if self == other {
            return std::cmp::Ordering::Equal;
        }
        let guard = interner().read().expect("symbol interner poisoned");
        guard.names[self.0 as usize].cmp(&guard.names[other.0 as usize])
    }

    /// True if the name is a valid bare ASP constant: `[a-z][A-Za-z0-9_]*`.
    pub fn is_bare_constant(self) -> bool {
        self.with_name(|n| {
            let mut chars = n.chars();
            match chars.next() {
                Some(c) if c.is_ascii_lowercase() => {
                    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
                }
                _ => false,
            }
        })
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_name(|n| write!(f, "Symbol({n:?})"))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_name(|n| f.write_str(n))
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Symbol {
        Symbol::new(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = Symbol::new("alpha");
        let b = Symbol::new("alpha");
        let c = Symbol::new("beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.name(), "alpha");
        assert_eq!(c.name(), "beta");
    }

    #[test]
    fn name_ordering_is_lexicographic() {
        let z = Symbol::new("zz_order_test");
        let a = Symbol::new("aa_order_test");
        assert_eq!(a.cmp_by_name(z), std::cmp::Ordering::Less);
        assert_eq!(z.cmp_by_name(a), std::cmp::Ordering::Greater);
        assert_eq!(a.cmp_by_name(a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn bare_constant_detection() {
        assert!(Symbol::new("abc_1").is_bare_constant());
        assert!(!Symbol::new("Abc").is_bare_constant());
        assert!(!Symbol::new("with space").is_bare_constant());
        assert!(!Symbol::new("").is_bare_constant());
    }

    #[test]
    fn display_shows_name() {
        assert_eq!(Symbol::new("shown").to_string(), "shown");
    }
}
