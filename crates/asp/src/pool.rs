//! A small work-stealing thread pool for round-structured workloads, built
//! from scratch on `std::thread` + `std::sync::mpsc` channels (consistent
//! with the workspace's no-external-deps discipline; see `shims/README.md`).
//!
//! The pool is shaped around the grounder's needs: a *round* is a batch of
//! independent work units identified by index, all reading shared state that
//! stays frozen for the duration of the round. [`WorkPool::run`] distributes
//! the unit indices across per-worker deques (round-robin), lets idle
//! workers steal from the back of other deques, and does not return until
//! every worker has finished the round — so the closure may safely borrow
//! round-local state even though the workers are long-lived threads.
//!
//! Design properties:
//!
//! - **The caller is worker 0.** A pool of `threads` uses `threads - 1`
//!   spawned threads; `WorkPool::new(1)` spawns nothing and `run` degenerates
//!   to an inline loop. This keeps the single-threaded configuration free of
//!   synchronization entirely.
//! - **Deterministic shutdown.** Dropping the pool sends a shutdown message
//!   to every worker and joins all handles; no worker outlives the pool.
//! - **Panic propagation.** A unit that panics is caught, the round is
//!   cancelled, and [`WorkPool::run`] returns a typed
//!   [`PoolError::WorkerPanic`] instead of hanging or aborting. The pool
//!   stays usable for subsequent rounds.
//! - **Cooperative cancellation.** A unit may return [`UnitControl::Cancel`]
//!   (e.g. on a [`Deadline`](crate::Deadline) expiry) to stop the round
//!   early; remaining units are skipped and `run` returns `Ok` — the caller
//!   inspects its own per-unit results to surface the typed cause.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// What a work unit tells the pool after executing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnitControl {
    /// Keep executing the remaining units of the round.
    Continue,
    /// Cancel the round: workers stop picking up new units.
    Cancel,
}

/// An error surfaced by [`WorkPool::run`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PoolError {
    /// A work unit panicked. The round was cancelled; the payload message
    /// (if it was a string) is preserved.
    WorkerPanic(String),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for PoolError {}

/// A round job: maps a unit index to work. Lifetime-erased internally; see
/// the safety notes on [`WorkPool::run`].
type Job<'a> = &'a (dyn Fn(usize) -> UnitControl + Sync);

/// Shared state of one in-flight round.
struct Round {
    /// The unit closure with its lifetime erased to `'static`. Only valid
    /// while the owning `run` call is on the stack — workers drop their
    /// handle to the round before acknowledging completion, and `run` waits
    /// for every acknowledgement before returning.
    job: Job<'static>,
    /// Per-worker unit queues. Owners pop from the front; thieves steal
    /// from the back.
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Set by a cancelling or panicking unit; checked before each pop.
    cancelled: AtomicBool,
    /// First panic payload observed this round.
    panic: Mutex<Option<String>>,
}

/// Locks a mutex, ignoring poisoning (a poisoned queue just means another
/// unit panicked; its state — plain indices — is still coherent).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

enum Msg {
    Round(Arc<Round>),
    Shutdown,
}

/// The work-stealing pool. See the module docs for the design.
pub struct WorkPool {
    senders: Vec<Sender<Msg>>,
    done_rx: Receiver<()>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkPool {
    /// A pool of `threads` workers total (the calling thread included, so
    /// `threads - 1` are spawned). `threads` is clamped to at least 1.
    pub fn new(threads: usize) -> WorkPool {
        let threads = threads.max(1);
        let (done_tx, done_rx) = channel();
        let mut senders = Vec::with_capacity(threads - 1);
        let mut handles = Vec::with_capacity(threads - 1);
        for worker in 1..threads {
            let (tx, rx) = channel::<Msg>();
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("agenp-ground-{worker}"))
                .spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            Msg::Shutdown => break,
                            Msg::Round(round) => {
                                work(&round, worker);
                                drop(round);
                                if done.send(()).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                })
                .expect("spawning grounder worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        WorkPool {
            senders,
            done_rx,
            handles,
            threads,
        }
    }

    /// Total worker count (calling thread included).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one round of `units` work units. `job(i)` is called exactly once
    /// for every unit index `i < units` unless the round is cancelled (by a
    /// unit returning [`UnitControl::Cancel`] or panicking). Units are dealt
    /// round-robin to worker deques and executed with work-stealing; any
    /// unit may run on any worker, so `job` must not rely on execution
    /// order — deterministic callers keep per-unit output slots and merge in
    /// unit order afterwards.
    ///
    /// `run` does not return until every worker has finished the round, so
    /// `job` may borrow state local to the caller's stack frame.
    ///
    /// # Errors
    ///
    /// [`PoolError::WorkerPanic`] if a unit panicked; the pool remains
    /// usable.
    pub fn run(&self, units: usize, job: Job<'_>) -> Result<(), PoolError> {
        if units == 0 {
            return Ok(());
        }
        let mut deques: Vec<VecDeque<usize>> = (0..self.threads).map(|_| VecDeque::new()).collect();
        for i in 0..units {
            deques[i % self.threads].push_back(i);
        }
        // SAFETY: the erased borrow in `Round::job` never escapes this call.
        // Every worker drops its `Arc<Round>` before sending its done
        // acknowledgement, and we receive exactly one acknowledgement per
        // spawned worker below before returning, so no reference to `job`
        // (or anything it borrows) survives `run`.
        let job_static: Job<'static> = unsafe { std::mem::transmute::<Job<'_>, Job<'static>>(job) };
        let round = Arc::new(Round {
            job: job_static,
            deques: deques.into_iter().map(Mutex::new).collect(),
            cancelled: AtomicBool::new(false),
            panic: Mutex::new(None),
        });
        for tx in &self.senders {
            tx.send(Msg::Round(Arc::clone(&round)))
                .expect("grounder worker hung up");
        }
        work(&round, 0);
        for _ in &self.senders {
            self.done_rx.recv().expect("grounder worker hung up");
        }
        let panicked = lock(&round.panic).take();
        match panicked {
            Some(msg) => Err(PoolError::WorkerPanic(msg)),
            None => Ok(()),
        }
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        for tx in &self.senders {
            // A send can only fail if the worker already exited; ignore.
            let _ = tx.send(Msg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One worker's participation in a round: drain the own deque from the
/// front, then steal from the back of the others until nothing is left or
/// the round is cancelled.
fn work(round: &Round, me: usize) {
    loop {
        if round.cancelled.load(Ordering::Relaxed) {
            return;
        }
        let unit = next_unit(round, me);
        let Some(unit) = unit else { return };
        match catch_unwind(AssertUnwindSafe(|| (round.job)(unit))) {
            Ok(UnitControl::Continue) => {}
            Ok(UnitControl::Cancel) => {
                round.cancelled.store(true, Ordering::Relaxed);
                return;
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".to_string());
                *lock(&round.panic) = Some(msg);
                round.cancelled.store(true, Ordering::Relaxed);
                return;
            }
        }
    }
}

fn next_unit(round: &Round, me: usize) -> Option<usize> {
    if let Some(u) = lock(&round.deques[me]).pop_front() {
        return Some(u);
    }
    let n = round.deques.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        if let Some(u) = lock(&round.deques[victim]).pop_back() {
            return Some(u);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn every_unit_runs_exactly_once() {
        for threads in [1, 2, 4] {
            let pool = WorkPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
            pool.run(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
                UnitControl::Continue
            })
            .unwrap();
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn pool_is_reusable_across_rounds() {
        let pool = WorkPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.run(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
                UnitControl::Continue
            })
            .unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn empty_round_is_a_noop() {
        let pool = WorkPool::new(4);
        pool.run(0, &|_| unreachable!("no units to run")).unwrap();
    }

    #[test]
    fn shutdown_is_deterministic() {
        // Dropping the pool joins every worker; this test hangs on failure.
        let pool = WorkPool::new(4);
        pool.run(16, &|_| UnitControl::Continue).unwrap();
        drop(pool);
    }

    #[test]
    fn panic_propagates_as_typed_error_and_pool_survives() {
        let pool = WorkPool::new(4);
        let err = pool
            .run(32, &|i| {
                if i == 7 {
                    panic!("unit 7 exploded");
                }
                UnitControl::Continue
            })
            .unwrap_err();
        assert_eq!(err, PoolError::WorkerPanic("unit 7 exploded".to_string()));
        // The pool must remain usable after a panicked round.
        let ran = AtomicUsize::new(0);
        pool.run(5, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
            UnitControl::Continue
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn cancellation_stops_the_round_early() {
        let pool = WorkPool::new(2);
        let executed = AtomicUsize::new(0);
        pool.run(10_000, &|_| {
            let n = executed.fetch_add(1, Ordering::Relaxed);
            if n >= 3 {
                UnitControl::Cancel
            } else {
                UnitControl::Continue
            }
        })
        .unwrap();
        let n = executed.load(Ordering::Relaxed);
        assert!(n >= 4, "at least the cancelling unit ran: {n}");
        assert!(n < 10_000, "cancellation skipped the tail: {n}");
        // And the pool still works afterwards.
        let again = AtomicUsize::new(0);
        pool.run(7, &|_| {
            again.fetch_add(1, Ordering::Relaxed);
            UnitControl::Continue
        })
        .unwrap();
        assert_eq!(again.load(Ordering::Relaxed), 7);
    }
}
