//! Rules and programs of the ASP fragment used by AGENP: normal rules and
//! constraints (paper §II-A).

use crate::atom::{Atom, Literal, Trace};
use crate::symbol::Symbol;
use crate::term::Term;
use std::fmt;

/// A normal rule `h :- b1, …, bn, not c1, …, not cm` or a constraint
/// (`head == None`). A fact is a rule with a ground head and empty body.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Rule {
    /// Head atom; `None` for constraints.
    pub head: Option<Atom>,
    /// Body literals.
    pub body: Vec<Literal>,
}

impl Rule {
    /// A fact (rule with empty body).
    pub fn fact(head: Atom) -> Rule {
        Rule {
            head: Some(head),
            body: Vec::new(),
        }
    }

    /// A normal rule.
    pub fn new(head: Atom, body: Vec<Literal>) -> Rule {
        Rule {
            head: Some(head),
            body,
        }
    }

    /// A constraint `:- body`.
    pub fn constraint(body: Vec<Literal>) -> Rule {
        Rule { head: None, body }
    }

    /// True if this rule is a constraint.
    pub fn is_constraint(&self) -> bool {
        self.head.is_none()
    }

    /// True if this rule is a ground fact.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty() && self.head.as_ref().is_some_and(Atom::is_ground)
    }

    /// All variables occurring anywhere in the rule.
    pub fn vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        if let Some(h) = &self.head {
            h.collect_vars(&mut out);
        }
        for l in &self.body {
            l.collect_vars(&mut out);
        }
        out
    }

    /// Number of literals (head counts as one); the ILASP-style cost of a
    /// rule in a hypothesis space.
    pub fn len(&self) -> usize {
        self.body.len() + usize::from(self.head.is_some())
    }

    /// True if the rule has neither head nor body (degenerate).
    pub fn is_empty(&self) -> bool {
        self.head.is_none() && self.body.is_empty()
    }

    /// Re-annotates the rule for instantiation at parse-tree node `t`
    /// (paper §II-A: `P R @ t`).
    pub fn instantiate_at(&self, t: &Trace) -> Rule {
        Rule {
            head: self.head.as_ref().map(|h| h.instantiate_at(t)),
            body: self.body.iter().map(|l| l.instantiate_at(t)).collect(),
        }
    }

    /// Checks rule safety: every variable must occur in a positive body atom,
    /// or be bound through a chain of `V = expr` assignments rooted in
    /// positive atoms. Returns the first unsafe variable, if any.
    pub fn unsafe_var(&self) -> Option<Symbol> {
        use crate::atom::CmpOp;
        let mut bound: Vec<Symbol> = Vec::new();
        for l in &self.body {
            if let Literal::Pos(a) = l {
                a.collect_vars(&mut bound);
            }
        }
        // Assignment binders: iterate to fixpoint since assignments may chain.
        loop {
            let mut changed = false;
            for l in &self.body {
                if let Literal::Cmp(CmpOp::Eq, Term::Var(v), rhs) = l {
                    if !bound.contains(v) && rhs.vars().iter().all(|x| bound.contains(x)) {
                        bound.push(*v);
                        changed = true;
                    }
                }
                if let Literal::Cmp(CmpOp::Eq, lhs, Term::Var(v)) = l {
                    if !bound.contains(v) && lhs.vars().iter().all(|x| bound.contains(x)) {
                        bound.push(*v);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.vars().into_iter().find(|v| !bound.contains(v))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(h) = &self.head {
            write!(f, "{h}")?;
            if !self.body.is_empty() {
                write!(f, " :- ")?;
            }
        } else {
            write!(f, ":- ")?;
        }
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ".")
    }
}

/// A weak constraint `:~ b1, …, bn. [w@l]`: a soft preference penalizing
/// answer sets in which the body holds by `w` at priority level `l`
/// (supporting the paper's *utility-based* policy type, §I).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct WeakConstraint {
    /// Body literals.
    pub body: Vec<Literal>,
    /// Penalty (a term evaluating to an integer after grounding).
    pub weight: Term,
    /// Priority level (higher levels are minimized first).
    pub level: i64,
}

impl WeakConstraint {
    /// A level-0 weak constraint.
    pub fn new(body: Vec<Literal>, weight: Term) -> WeakConstraint {
        WeakConstraint {
            body,
            weight,
            level: 0,
        }
    }

    /// All variables occurring in the constraint.
    pub fn vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        for l in &self.body {
            l.collect_vars(&mut out);
        }
        self.weight.collect_vars(&mut out);
        out
    }

    /// Re-annotates the constraint at parse-tree node `t`.
    pub fn instantiate_at(&self, t: &Trace) -> WeakConstraint {
        WeakConstraint {
            body: self.body.iter().map(|l| l.instantiate_at(t)).collect(),
            weight: self.weight.clone(),
            level: self.level,
        }
    }

    /// Safety: every variable (including the weight's) must be bound by a
    /// positive body literal or assignment chain. Returns the first unsafe
    /// variable, if any, by delegating to the equivalent hard rule.
    pub fn unsafe_var(&self) -> Option<Symbol> {
        let proxy = Rule {
            head: None,
            body: self.body.clone(),
        };
        if let Some(v) = proxy.unsafe_var() {
            return Some(v);
        }
        // Weight vars must also be bound.
        let bound: Vec<Symbol> = {
            let mut b = Vec::new();
            for l in &self.body {
                if let Literal::Pos(a) = l {
                    a.collect_vars(&mut b);
                }
            }
            b
        };
        self.weight.vars().into_iter().find(|v| !bound.contains(v))
    }
}

impl fmt::Display for WeakConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":~ ")?;
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ". [{}@{}]", self.weight, self.level)
    }
}

/// An ASP program: a set of normal rules and constraints, plus optional
/// weak constraints for optimization.
///
/// ```
/// use agenp_asp::Program;
/// let p: Program = "p :- not q. q :- not p.".parse()?;
/// assert_eq!(p.rules().len(), 2);
/// # Ok::<(), agenp_asp::ParseError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    rules: Vec<Rule>,
    weaks: Vec<WeakConstraint>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// The program's rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Adds a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Adds a weak constraint.
    pub fn push_weak(&mut self, weak: WeakConstraint) {
        self.weaks.push(weak);
    }

    /// The program's weak constraints.
    pub fn weak_constraints(&self) -> &[WeakConstraint] {
        &self.weaks
    }

    /// Appends all rules and weak constraints of `other`.
    pub fn extend_from(&mut self, other: &Program) {
        self.rules.extend(other.rules.iter().cloned());
        self.weaks.extend(other.weaks.iter().cloned());
    }

    /// Union of two programs.
    pub fn union(&self, other: &Program) -> Program {
        let mut out = self.clone();
        out.extend_from(other);
        out
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// First safety violation in any rule, as `(rule_index, variable)`.
    pub fn unsafe_rule(&self) -> Option<(usize, Symbol)> {
        self.rules
            .iter()
            .enumerate()
            .find_map(|(i, r)| r.unsafe_var().map(|v| (i, v)))
    }

    /// Re-annotates every rule and weak constraint at parse-tree node `t`.
    pub fn instantiate_at(&self, t: &Trace) -> Program {
        Program {
            rules: self.rules.iter().map(|r| r.instantiate_at(t)).collect(),
            weaks: self.weaks.iter().map(|w| w.instantiate_at(t)).collect(),
        }
    }
}

impl FromIterator<Rule> for Program {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Program {
        Program {
            rules: iter.into_iter().collect(),
            weaks: Vec::new(),
        }
    }
}

impl Extend<Rule> for Program {
    fn extend<I: IntoIterator<Item = Rule>>(&mut self, iter: I) {
        self.rules.extend(iter);
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        for w in &self.weaks {
            writeln!(f, "{w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::CmpOp;

    #[test]
    fn rule_display_forms() {
        let fact = Rule::fact(Atom::prop("p"));
        assert_eq!(fact.to_string(), "p.");
        let rule = Rule::new(
            Atom::prop("p"),
            vec![Literal::Pos(Atom::prop("q")), Literal::Neg(Atom::prop("r"))],
        );
        assert_eq!(rule.to_string(), "p :- q, not r.");
        let c = Rule::constraint(vec![Literal::Pos(Atom::prop("bad"))]);
        assert_eq!(c.to_string(), ":- bad.");
    }

    #[test]
    fn safety_detects_unbound_head_var() {
        let r = Rule::new(Atom::new("p", vec![Term::var("X")]), vec![]);
        assert_eq!(r.unsafe_var(), Some(Symbol::new("X")));
        let ok = Rule::new(
            Atom::new("p", vec![Term::var("X")]),
            vec![Literal::Pos(Atom::new("dom", vec![Term::var("X")]))],
        );
        assert_eq!(ok.unsafe_var(), None);
    }

    #[test]
    fn safety_accepts_assignment_chains() {
        // p(Z) :- dom(X), Y = X + 1, Z = Y * 2.
        let r = Rule::new(
            Atom::new("p", vec![Term::var("Z")]),
            vec![
                Literal::Pos(Atom::new("dom", vec![Term::var("X")])),
                Literal::Cmp(
                    CmpOp::Eq,
                    Term::var("Y"),
                    Term::Arith(
                        crate::term::ArithOp::Add,
                        Box::new(Term::var("X")),
                        Box::new(Term::Int(1)),
                    ),
                ),
                Literal::Cmp(
                    CmpOp::Eq,
                    Term::var("Z"),
                    Term::Arith(
                        crate::term::ArithOp::Mul,
                        Box::new(Term::var("Y")),
                        Box::new(Term::Int(2)),
                    ),
                ),
            ],
        );
        assert_eq!(r.unsafe_var(), None);
    }

    #[test]
    fn safety_rejects_neg_only_vars() {
        let r = Rule::constraint(vec![Literal::Neg(Atom::new("q", vec![Term::var("X")]))]);
        assert_eq!(r.unsafe_var(), Some(Symbol::new("X")));
    }

    #[test]
    fn program_collects_and_displays() {
        let mut p = Program::new();
        p.push(Rule::fact(Atom::prop("a")));
        p.push(Rule::constraint(vec![Literal::Pos(Atom::prop("a"))]));
        assert_eq!(p.to_string(), "a.\n:- a.\n");
        assert_eq!(p.len(), 2);
    }
}
