//! The workspace-wide parallelism knob.
//!
//! Three layers historically carried their own thread-count field —
//! `GroundOptions::threads`, `RunBudget::ground_threads`, and the learner's
//! `CompileOptions::ground_threads` — each a raw `usize` with `0 = auto`,
//! each re-documenting the same environment-variable fallback. The
//! [`Parallelism`] type replaces all three with one value and **one**
//! resolution order:
//!
//! 1. [`Parallelism::Fixed`] — an explicit worker count always wins;
//! 2. [`Parallelism::Auto`] consults the `AGENP_GROUND_THREADS` environment
//!    variable when set to a positive integer (read once per process);
//! 3. otherwise [`std::thread::available_parallelism`] (falling back to 1).
//!
//! The legacy `usize` fields and their one-release `or_legacy` migration
//! shims are gone; `Parallelism` (with `From<usize>` keeping `0 = auto`
//! ergonomics) is the only knob.

use std::fmt;
use std::sync::OnceLock;

/// A worker-thread count that is either pinned or resolved automatically.
///
/// ```
/// use agenp_asp::Parallelism;
/// assert_eq!(Parallelism::fixed(4).resolve(), 4);
/// assert_eq!(Parallelism::from(0), Parallelism::Auto); // legacy 0 = auto
/// assert!(Parallelism::Auto.resolve() >= 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Parallelism {
    /// Resolve automatically: `AGENP_GROUND_THREADS` when set to a positive
    /// integer, else the machine's available parallelism, else 1.
    #[default]
    Auto,
    /// Exactly this many workers (clamped to at least 1 at resolution).
    Fixed(usize),
}

impl Parallelism {
    /// The automatic policy (environment override, then hardware).
    pub fn auto() -> Parallelism {
        Parallelism::Auto
    }

    /// A pinned worker count. `0` maps to [`Parallelism::Auto`], matching
    /// the legacy `usize` knobs where zero meant "decide for me".
    pub fn fixed(threads: usize) -> Parallelism {
        if threads == 0 {
            Parallelism::Auto
        } else {
            Parallelism::Fixed(threads)
        }
    }

    /// True for the automatic policy.
    pub fn is_auto(self) -> bool {
        self == Parallelism::Auto
    }

    /// Resolves to a concrete worker count (always at least 1) using the
    /// single workspace-wide order: `Fixed` wins, then the
    /// `AGENP_GROUND_THREADS` environment variable, then available
    /// parallelism. The automatic value is computed once per process.
    pub fn resolve(self) -> usize {
        match self {
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => auto_threads(),
        }
    }
}

impl From<usize> for Parallelism {
    fn from(threads: usize) -> Parallelism {
        Parallelism::fixed(threads)
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Auto => f.write_str("auto"),
            Parallelism::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// Resolves the automatic thread count once per process: the
/// `AGENP_GROUND_THREADS` environment variable when set to a positive
/// integer, else [`std::thread::available_parallelism`].
fn auto_threads() -> usize {
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| {
        if let Some(n) = std::env::var("AGENP_GROUND_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            if n > 0 {
                return n;
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_wins_and_clamps() {
        assert_eq!(Parallelism::fixed(3).resolve(), 3);
        assert_eq!(Parallelism::Fixed(0).resolve(), 1);
        assert_eq!(Parallelism::fixed(0), Parallelism::Auto);
    }

    #[test]
    fn auto_resolves_to_at_least_one() {
        assert!(Parallelism::Auto.resolve() >= 1);
        assert!(Parallelism::default().is_auto());
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(Parallelism::from(0), Parallelism::Auto);
        assert_eq!(Parallelism::from(5), Parallelism::Fixed(5));
        assert_eq!(Parallelism::Auto.to_string(), "auto");
        assert_eq!(Parallelism::Fixed(4).to_string(), "4");
    }
}
