//! Wall-clock deadlines and unified run budgets for the long-running
//! symbolic calls (grounding, solving, learning).
//!
//! Every potentially expensive entry point in the stack accepts some bound
//! already — `max_atoms` on the grounder, `max_steps` on the solver,
//! `max_nodes` on the learner. [`RunBudget`] bundles those with a
//! [`Deadline`] so a caller (e.g. a coalition party answering within a
//! service-level deadline) can cancel by *time* as well as by work, and
//! [`Exhausted`] names which bound fired in a uniform way across layers.

use crate::parallel::Parallelism;
use std::fmt;
use std::time::{Duration, Instant};

/// A wall-clock deadline. [`Deadline::none`] never expires, costs nothing
/// to check, and is the default everywhere.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// A deadline that never expires.
    pub fn none() -> Deadline {
        Deadline(None)
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Deadline {
        Deadline(Some(instant))
    }

    /// A deadline `duration` from now.
    pub fn after(duration: Duration) -> Deadline {
        Deadline(Some(Instant::now() + duration))
    }

    /// True if no deadline is set.
    pub fn is_none(&self) -> bool {
        self.0.is_none()
    }

    /// True if the deadline is set and has passed. Unset deadlines never
    /// expire and short-circuit without reading the clock.
    pub fn expired(&self) -> bool {
        self.0.is_some_and(|t| Instant::now() >= t)
    }

    /// Time left before expiry (`None` if no deadline is set; zero once
    /// expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.0.map(|t| t.saturating_duration_since(Instant::now()))
    }
}

/// Which resource bound a computation ran out of.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Exhausted {
    /// The wall-clock [`Deadline`] expired.
    Deadline,
    /// The solver's decision/conflict step budget ran out.
    Steps,
    /// The grounder's atom budget ran out.
    Atoms,
    /// The learner's search-node budget ran out.
    Nodes,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Exhausted::Deadline => "wall-clock deadline expired",
            Exhausted::Steps => "solver step budget exhausted",
            Exhausted::Atoms => "grounding atom budget exhausted",
            Exhausted::Nodes => "search node budget exhausted",
        })
    }
}

impl std::error::Error for Exhausted {}

/// A bundle of resource bounds threaded through the ground → solve → learn
/// pipeline. The default matches each layer's standalone default (no
/// deadline, unlimited solver steps, 4M ground atoms, 2M learner nodes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunBudget {
    /// Wall-clock deadline applied to grounding, solving, and learning.
    pub deadline: Deadline,
    /// Solver decision+conflict budget (`u64::MAX` = unlimited).
    pub max_steps: u64,
    /// Grounder atom budget.
    pub max_atoms: usize,
    /// Learner search-node budget.
    pub max_nodes: u64,
    /// Grounder worker-thread policy (see [`Parallelism`] for the
    /// resolution order).
    pub parallelism: Parallelism,
}

impl Default for RunBudget {
    fn default() -> RunBudget {
        RunBudget {
            deadline: Deadline::none(),
            max_steps: u64::MAX,
            max_atoms: 4_000_000,
            max_nodes: 2_000_000,
            parallelism: Parallelism::Auto,
        }
    }
}

impl RunBudget {
    /// The default budget (component defaults, no deadline).
    pub fn new() -> RunBudget {
        RunBudget::default()
    }

    /// A budget with every bound effectively disabled.
    pub fn unlimited() -> RunBudget {
        RunBudget {
            max_atoms: usize::MAX,
            max_nodes: u64::MAX,
            ..RunBudget::default()
        }
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> RunBudget {
        self.deadline = deadline;
        self
    }

    /// Sets the solver step budget.
    pub fn with_max_steps(mut self, max_steps: u64) -> RunBudget {
        self.max_steps = max_steps;
        self
    }

    /// Sets the grounder atom budget.
    pub fn with_max_atoms(mut self, max_atoms: usize) -> RunBudget {
        self.max_atoms = max_atoms;
        self
    }

    /// Sets the learner node budget.
    pub fn with_max_nodes(mut self, max_nodes: u64) -> RunBudget {
        self.max_nodes = max_nodes;
        self
    }

    /// Sets the unified grounder worker-thread policy.
    pub fn with_parallelism(mut self, parallelism: impl Into<Parallelism>) -> RunBudget {
        self.parallelism = parallelism.into();
        self
    }

    /// The parallelism policy this budget applies to grounding.
    pub fn effective_parallelism(&self) -> Parallelism {
        self.parallelism
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_deadline_never_expires() {
        let d = Deadline::none();
        assert!(d.is_none());
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn elapsed_deadline_expires() {
        let d = Deadline::after(Duration::ZERO);
        assert!(!d.is_none());
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_reports_remaining() {
        let d = Deadline::at(Instant::now() + Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().expect("deadline set") > Duration::from_secs(3000));
    }

    #[test]
    fn budget_builders_compose() {
        let b = RunBudget::new()
            .with_max_steps(10)
            .with_max_atoms(100)
            .with_max_nodes(1000)
            .with_deadline(Deadline::after(Duration::from_secs(1)));
        assert_eq!(b.max_steps, 10);
        assert_eq!(b.max_atoms, 100);
        assert_eq!(b.max_nodes, 1000);
        assert!(!b.deadline.is_none());
        assert_eq!(RunBudget::unlimited().max_atoms, usize::MAX);
    }

    #[test]
    fn exhausted_kinds_render() {
        for (k, needle) in [
            (Exhausted::Deadline, "deadline"),
            (Exhausted::Steps, "step"),
            (Exhausted::Atoms, "atom"),
            (Exhausted::Nodes, "node"),
        ] {
            assert!(k.to_string().contains(needle));
        }
    }
}
