//! Text syntax for the ASP fragment: normal rules, constraints, negation as
//! failure, builtin comparisons, arithmetic, `@k` child annotations, and
//! `lo..hi` ranges in facts.
//!
//! ```text
//! num(1..3).
//! even(0).
//! even(Y) :- num(X), Y = X + 1, not even(X).
//! :- even(2), not even(0).
//! size(X) :- size(X)@1.
//! ```

use crate::atom::{Atom, CmpOp, Literal, Trace};
use crate::program::{Program, Rule, WeakConstraint};
use crate::symbol::Symbol;
use crate::term::{ArithOp, Term};
use std::fmt;
use std::str::FromStr;

/// An error produced while parsing ASP text, with 1-based line/column.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    msg: String,
    line: usize,
    col: usize,
}

impl ParseError {
    fn new(msg: impl Into<String>, line: usize, col: usize) -> ParseError {
        ParseError {
            msg: msg.into(),
            line,
            col,
        }
    }

    /// 1-based line of the error.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of the error.
    pub fn col(&self) -> usize {
        self.col
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Ident(String),
    Var(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    DotDot,
    If,     // :-
    WeakIf, // :~
    LBracket,
    RBracket,
    At,
    Not,
    Plus,
    Minus,
    Star,
    Slash,
    Backslash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.line, self.col)
    }

    fn bump(&mut self) -> u8 {
        let c = self.src[self.pos];
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn skip_trivia(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                self.bump();
            } else if c == b'%' {
                while let Some(c) = self.peek() {
                    self.bump();
                    if c == b'\n' {
                        break;
                    }
                }
            } else {
                break;
            }
        }
    }

    fn tokenize(mut self) -> Result<Vec<(Tok, usize, usize)>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else { break };
            let tok = match c {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'@' => {
                    self.bump();
                    Tok::At
                }
                b'+' => {
                    self.bump();
                    Tok::Plus
                }
                b'-' => {
                    self.bump();
                    Tok::Minus
                }
                b'*' => {
                    self.bump();
                    Tok::Star
                }
                b'/' => {
                    self.bump();
                    Tok::Slash
                }
                b'\\' => {
                    self.bump();
                    Tok::Backslash
                }
                b'.' => {
                    self.bump();
                    if self.peek() == Some(b'.') {
                        self.bump();
                        Tok::DotDot
                    } else {
                        Tok::Dot
                    }
                }
                b':' => {
                    self.bump();
                    match self.peek() {
                        Some(b'-') => {
                            self.bump();
                            Tok::If
                        }
                        Some(b'~') => {
                            self.bump();
                            Tok::WeakIf
                        }
                        _ => return Err(self.err("expected `:-` or `:~`")),
                    }
                }
                b'[' => {
                    self.bump();
                    Tok::LBracket
                }
                b']' => {
                    self.bump();
                    Tok::RBracket
                }
                b'=' => {
                    self.bump();
                    Tok::Eq
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Ne
                    } else {
                        return Err(self.err("expected `!=`"));
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Le
                    } else {
                        Tok::Lt
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Ge
                    } else {
                        Tok::Gt
                    }
                }
                b'"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.peek() {
                            None => return Err(self.err("unterminated string")),
                            Some(b'"') => {
                                self.bump();
                                break;
                            }
                            Some(b'\\') if self.peek2() == Some(b'"') => {
                                self.bump();
                                s.push(self.bump() as char);
                            }
                            Some(c) => {
                                self.bump();
                                s.push(c as char);
                            }
                        }
                    }
                    Tok::Str(s)
                }
                c if c.is_ascii_digit() => {
                    let mut n: i64 = 0;
                    while let Some(d) = self.peek() {
                        if d.is_ascii_digit() {
                            self.bump();
                            n = n
                                .checked_mul(10)
                                .and_then(|n| n.checked_add(i64::from(d - b'0')))
                                .ok_or_else(|| self.err("integer literal overflow"))?;
                        } else {
                            break;
                        }
                    }
                    Tok::Int(n)
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let mut s = String::new();
                    while let Some(d) = self.peek() {
                        if d.is_ascii_alphanumeric() || d == b'_' {
                            self.bump();
                            s.push(d as char);
                        } else {
                            break;
                        }
                    }
                    if s == "not" {
                        Tok::Not
                    } else if s.starts_with(|c: char| c.is_ascii_uppercase() || c == '_') {
                        Tok::Var(s)
                    } else {
                        Tok::Ident(s)
                    }
                }
                other => return Err(self.err(format!("unexpected character `{}`", other as char))),
            };
            out.push((tok, line, col));
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<(Tok, usize, usize)>,
    pos: usize,
    anon_counter: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _, _)| t)
    }

    fn loc(&self) -> (usize, usize) {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or((1, 1), |&(_, l, c)| (l, c))
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let (l, c) = self.loc();
        ParseError::new(msg, l, c)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::new();
        while self.peek().is_some() {
            if self.peek() == Some(&Tok::WeakIf) {
                prog.push_weak(self.parse_weak()?);
            } else {
                for rule in self.parse_rule()? {
                    prog.push(rule);
                }
            }
        }
        Ok(prog)
    }

    /// Parses `:~ body. [weight@level]` (level optional, default 0).
    fn parse_weak(&mut self) -> Result<WeakConstraint, ParseError> {
        self.expect(&Tok::WeakIf, "`:~`")?;
        let mut body = Vec::new();
        loop {
            body.push(self.parse_literal()?);
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::Dot, "`.` after weak-constraint body")?;
        self.expect(&Tok::LBracket, "`[` for weak-constraint weight")?;
        let weight = self.parse_term()?;
        let level = if self.peek() == Some(&Tok::At) {
            self.bump();
            match self.bump() {
                Some(Tok::Int(l)) => l,
                Some(Tok::Minus) => match self.bump() {
                    Some(Tok::Int(l)) => -l,
                    _ => return Err(self.err("expected level after `@-`")),
                },
                _ => return Err(self.err("expected integer level after `@`")),
            }
        } else {
            0
        };
        self.expect(&Tok::RBracket, "`]` after weak-constraint weight")?;
        Ok(WeakConstraint {
            body,
            weight,
            level,
        })
    }

    /// Parses one rule; range facts expand to several rules.
    fn parse_rule(&mut self) -> Result<Vec<Rule>, ParseError> {
        let head = if self.peek() == Some(&Tok::If) {
            None
        } else {
            Some(self.parse_atom()?)
        };
        let mut body = Vec::new();
        if self.peek() == Some(&Tok::If) {
            self.bump();
            loop {
                body.push(self.parse_literal()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::Dot, "`.` at end of rule")?;
        let rule = Rule { head, body };
        expand_ranges(rule).map_err(|m| self.err(m))
    }

    fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        if self.peek() == Some(&Tok::Not) {
            self.bump();
            return Ok(Literal::Neg(self.parse_atom()?));
        }
        // Could be an atom or a comparison; parse a term first and look ahead.
        let save = self.pos;
        let lhs = self.parse_term()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Some(CmpOp::Eq),
            Some(Tok::Ne) => Some(CmpOp::Ne),
            Some(Tok::Lt) => Some(CmpOp::Lt),
            Some(Tok::Le) => Some(CmpOp::Le),
            Some(Tok::Gt) => Some(CmpOp::Gt),
            Some(Tok::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_term()?;
            return Ok(Literal::Cmp(op, lhs, rhs));
        }
        // Not a comparison: reparse as an atom (handles annotations).
        self.pos = save;
        Ok(Literal::Pos(self.parse_atom()?))
    }

    fn parse_atom(&mut self) -> Result<Atom, ParseError> {
        let name = match self.bump() {
            Some(Tok::Ident(s)) => s,
            Some(Tok::Str(s)) => s,
            _ => return Err(self.err("expected predicate name")),
        };
        let mut args = Vec::new();
        if self.peek() == Some(&Tok::LParen) {
            self.bump();
            loop {
                args.push(self.parse_term()?);
                match self.bump() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RParen) => break,
                    _ => return Err(self.err("expected `,` or `)` in argument list")),
                }
            }
        }
        let mut atom = Atom::new(Symbol::new(&name), args);
        if self.peek() == Some(&Tok::At) {
            self.bump();
            // A single child index is the paper's surface syntax; traces
            // deeper than one level only arise programmatically.
            let index = match self.bump() {
                Some(Tok::Int(i)) if (0..=u16::MAX as i64).contains(&i) => i as u16,
                _ => return Err(self.err("expected child index after `@`")),
            };
            atom = atom.with_trace(Trace::from_indices([index]));
        }
        Ok(atom)
    }

    /// term := factor (('+'|'-') factor)*
    fn parse_term(&mut self) -> Result<Term, ParseError> {
        let mut t = self.parse_factor()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => ArithOp::Add,
                Some(Tok::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_factor()?;
            t = Term::Arith(op, Box::new(t), Box::new(rhs));
        }
        Ok(t)
    }

    /// factor := primary (('*'|'/'|'\') primary)*
    fn parse_factor(&mut self) -> Result<Term, ParseError> {
        let mut t = self.parse_primary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => ArithOp::Mul,
                Some(Tok::Slash) => ArithOp::Div,
                Some(Tok::Backslash) => ArithOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_primary()?;
            t = Term::Arith(op, Box::new(t), Box::new(rhs));
        }
        Ok(t)
    }

    fn parse_primary(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Tok::Int(n)) => self.maybe_range(Term::Int(n)),
            Some(Tok::Minus) => match self.bump() {
                Some(Tok::Int(n)) => self.maybe_range(Term::Int(-n)),
                _ => Err(self.err("expected integer after unary `-`")),
            },
            Some(Tok::Str(s)) => Ok(Term::Sym(Symbol::new(&s))),
            Some(Tok::Var(v)) => {
                if v == "_" {
                    self.anon_counter += 1;
                    Ok(Term::Var(Symbol::new(&format!(
                        "_Anon{}",
                        self.anon_counter
                    ))))
                } else {
                    Ok(Term::Var(Symbol::new(&v)))
                }
            }
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    loop {
                        args.push(self.parse_term()?);
                        match self.bump() {
                            Some(Tok::Comma) => continue,
                            Some(Tok::RParen) => break,
                            _ => return Err(self.err("expected `,` or `)` in term arguments")),
                        }
                    }
                    Ok(Term::Func(Symbol::new(&name), args))
                } else {
                    Ok(Term::Sym(Symbol::new(&name)))
                }
            }
            Some(Tok::LParen) => {
                let t = self.parse_term()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(t)
            }
            _ => Err(self.err("expected term")),
        }
    }

    /// After an integer, `..` introduces a range `lo..hi`, represented as the
    /// reserved compound term `..(lo, hi)` and expanded in facts.
    fn maybe_range(&mut self, lo: Term) -> Result<Term, ParseError> {
        if self.peek() == Some(&Tok::DotDot) {
            self.bump();
            let hi = match self.bump() {
                Some(Tok::Int(n)) => Term::Int(n),
                Some(Tok::Minus) => match self.bump() {
                    Some(Tok::Int(n)) => Term::Int(-n),
                    _ => return Err(self.err("expected integer range bound")),
                },
                _ => return Err(self.err("expected integer range bound")),
            };
            Ok(Term::Func(Symbol::new(RANGE_MARKER), vec![lo, hi]))
        } else {
            Ok(lo)
        }
    }
}

const RANGE_MARKER: &str = "..";

/// Expands `lo..hi` range terms in a fact into one fact per value (cartesian
/// product across several ranges). Ranges elsewhere are rejected.
fn expand_ranges(rule: Rule) -> Result<Vec<Rule>, String> {
    fn contains_range(t: &Term) -> bool {
        match t {
            Term::Func(f, args) => {
                f.with_name(|n| n == RANGE_MARKER) || args.iter().any(contains_range)
            }
            Term::Arith(_, l, r) => contains_range(l) || contains_range(r),
            _ => false,
        }
    }
    let head_has_range = rule
        .head
        .as_ref()
        .is_some_and(|h| h.args.iter().any(contains_range));
    let body_has_range = rule.body.iter().any(|l| match l {
        Literal::Pos(a) | Literal::Neg(a) => a.args.iter().any(contains_range),
        Literal::Cmp(_, l, r) => contains_range(l) || contains_range(r),
    });
    if body_has_range {
        return Err("ranges are only supported in facts".to_owned());
    }
    if !head_has_range {
        return Ok(vec![rule]);
    }
    if !rule.body.is_empty() {
        return Err("ranges are only supported in facts".to_owned());
    }
    let head = rule.head.expect("checked above");
    // Expand one range at a time until none remain.
    fn expand_first(t: &Term) -> Option<Vec<Term>> {
        match t {
            Term::Func(f, args) => {
                if f.with_name(|n| n == RANGE_MARKER) {
                    if let (Term::Int(lo), Term::Int(hi)) = (&args[0], &args[1]) {
                        return Some((*lo..=*hi).map(Term::Int).collect());
                    }
                    return Some(Vec::new());
                }
                for (i, a) in args.iter().enumerate() {
                    if let Some(vals) = expand_first(a) {
                        return Some(
                            vals.into_iter()
                                .map(|v| {
                                    let mut new_args = args.clone();
                                    new_args[i] = v;
                                    Term::Func(*f, new_args)
                                })
                                .collect(),
                        );
                    }
                }
                None
            }
            _ => None,
        }
    }
    let mut pending = vec![head];
    let mut done = Vec::new();
    while let Some(h) = pending.pop() {
        let mut expanded = false;
        for (i, a) in h.args.iter().enumerate() {
            if let Some(vals) = expand_first(a) {
                for v in vals {
                    let mut args = h.args.clone();
                    args[i] = v;
                    pending.push(Atom {
                        pred: h.pred,
                        args,
                        trace: h.trace.clone(),
                    });
                }
                expanded = true;
                break;
            }
        }
        if !expanded {
            done.push(h);
        }
    }
    done.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
    Ok(done.into_iter().map(Rule::fact).collect())
}

/// Parses a full program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser {
        toks,
        pos: 0,
        anon_counter: 0,
    };
    p.parse_program()
}

/// Parses a single rule (must be terminated with `.`).
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser {
        toks,
        pos: 0,
        anon_counter: 0,
    };
    let rules = p.parse_rule()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after rule"));
    }
    match <[Rule; 1]>::try_from(rules) {
        Ok([r]) => Ok(r),
        Err(_) => Err(ParseError::new("expected exactly one rule", 1, 1)),
    }
}

/// Parses a single (possibly non-ground) atom.
pub fn parse_atom(src: &str) -> Result<Atom, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser {
        toks,
        pos: 0,
        anon_counter: 0,
    };
    let atom = p.parse_atom()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after atom"));
    }
    Ok(atom)
}

impl FromStr for Program {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Program, ParseError> {
        parse_program(s)
    }
}

impl FromStr for Rule {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Rule, ParseError> {
        parse_rule(s)
    }
}

impl FromStr for Atom {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Atom, ParseError> {
        parse_atom(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_normal_rules_and_constraints() {
        let p: Program = "p(X) :- q(X), not r(X). :- p(1).".parse().unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.rules()[1].is_constraint());
        assert_eq!(p.rules()[0].to_string(), "p(X) :- q(X), not r(X).");
    }

    #[test]
    fn parses_comparisons_and_arithmetic() {
        let r: Rule = "p(Y) :- q(X), Y = X + 1, Y <= 10.".parse().unwrap();
        assert_eq!(r.body.len(), 3);
        assert_eq!(r.to_string(), "p(Y) :- q(X), Y = (X + 1), Y <= 10.");
    }

    #[test]
    fn parses_annotations() {
        let r: Rule = "size(X) :- size(X)@1.".parse().unwrap();
        let Literal::Pos(a) = &r.body[0] else {
            panic!()
        };
        assert_eq!(a.trace, Trace::from_indices([1]));
        assert!(r.head.as_ref().unwrap().trace.is_root());
    }

    #[test]
    fn expands_ranges_in_facts() {
        let p: Program = "num(1..3).".parse().unwrap();
        assert_eq!(p.len(), 3);
        assert!(p.rules().iter().all(|r| r.is_fact()));
        let p2: Program = "pair(1..2, 1..2).".parse().unwrap();
        assert_eq!(p2.len(), 4);
    }

    #[test]
    fn rejects_ranges_in_rule_bodies() {
        assert!("p(X) :- q(1..3).".parse::<Program>().is_err());
    }

    #[test]
    fn parses_strings_and_negatives() {
        let r: Rule = "role(\"data analyst\", -3).".parse().unwrap();
        let h = r.head.unwrap();
        assert_eq!(h.args[1], Term::Int(-3));
        assert_eq!(h.args[0], Term::Sym(Symbol::new("data analyst")));
    }

    #[test]
    fn comments_are_skipped() {
        let p: Program = "% header\np. % trailing\nq.".parse().unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn error_positions_are_reported() {
        let err = "p :- .".parse::<Program>().unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.col() >= 5);
    }

    #[test]
    fn anonymous_variables_are_fresh() {
        let r: Rule = "p :- q(_, _).".parse().unwrap();
        let Literal::Pos(a) = &r.body[0] else {
            panic!()
        };
        assert_ne!(a.args[0], a.args[1]);
    }

    #[test]
    fn display_parse_round_trip() {
        let src = "p(X) :- q(X), not r(X), X < 5.";
        let r: Rule = src.parse().unwrap();
        let again: Rule = r.to_string().parse().unwrap();
        assert_eq!(r, again);
    }
}
