//! First-order terms: constants, integers, variables, compound terms, and
//! arithmetic expressions evaluated at grounding time.

use crate::symbol::Symbol;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;

/// Binary arithmetic operators usable inside terms (evaluated at grounding).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division; evaluation fails on division by zero)
    Div,
    /// `\` (modulo; evaluation fails on modulo by zero)
    Mod,
}

impl ArithOp {
    /// Applies the operator to two integers; `None` on division/modulo by zero
    /// or overflow.
    pub fn apply(self, a: i64, b: i64) -> Option<i64> {
        match self {
            ArithOp::Add => a.checked_add(b),
            ArithOp::Sub => a.checked_sub(b),
            ArithOp::Mul => a.checked_mul(b),
            ArithOp::Div => {
                if b == 0 {
                    None
                } else {
                    a.checked_div(b)
                }
            }
            ArithOp::Mod => {
                if b == 0 {
                    None
                } else {
                    a.checked_rem(b)
                }
            }
        }
    }

    /// The concrete syntax for the operator.
    pub fn token(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "\\",
        }
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// A first-order term.
///
/// Ground terms (no variables, no unevaluated arithmetic) are totally ordered:
/// integers sort before symbolic constants, which sort before compound terms.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// An integer constant, e.g. `42`.
    Int(i64),
    /// A symbolic constant, e.g. `permit`.
    Sym(Symbol),
    /// A variable, e.g. `X`.
    Var(Symbol),
    /// A compound term, e.g. `route(R, 3)`.
    Func(Symbol, Vec<Term>),
    /// An arithmetic expression, e.g. `X + 1`; only well-formed when its
    /// operands evaluate to integers after substitution.
    Arith(ArithOp, Box<Term>, Box<Term>),
}

/// A substitution mapping variable names to ground terms.
pub type Bindings = HashMap<Symbol, Term>;

impl Term {
    /// Convenience constructor for a symbolic constant.
    pub fn sym(name: &str) -> Term {
        Term::Sym(Symbol::new(name))
    }

    /// Convenience constructor for a variable.
    pub fn var(name: &str) -> Term {
        Term::Var(Symbol::new(name))
    }

    /// Convenience constructor for a compound term.
    pub fn func(name: &str, args: Vec<Term>) -> Term {
        Term::Func(Symbol::new(name), args)
    }

    /// True if the term contains no variables and no unevaluated arithmetic.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Int(_) | Term::Sym(_) => true,
            Term::Var(_) | Term::Arith(..) => false,
            Term::Func(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// Collects the variables occurring in the term into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            Term::Int(_) | Term::Sym(_) => {}
            Term::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Term::Func(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Term::Arith(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }

    /// The set of variables in the term.
    pub fn vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    /// Applies `bindings`, then evaluates arithmetic. Returns `None` if a
    /// variable remains unbound, an arithmetic operand is non-integer, or
    /// evaluation fails (division by zero, overflow).
    pub fn substitute(&self, bindings: &Bindings) -> Option<Term> {
        match self {
            Term::Int(_) | Term::Sym(_) => Some(self.clone()),
            Term::Var(v) => bindings.get(v).cloned(),
            Term::Func(f, args) => {
                let mut new_args = Vec::with_capacity(args.len());
                for a in args {
                    new_args.push(a.substitute(bindings)?);
                }
                Some(Term::Func(*f, new_args))
            }
            Term::Arith(op, l, r) => {
                let lv = l.substitute(bindings)?;
                let rv = r.substitute(bindings)?;
                match (lv, rv) {
                    (Term::Int(a), Term::Int(b)) => op.apply(a, b).map(Term::Int),
                    _ => None,
                }
            }
        }
    }

    /// Syntactic match of `self` (a pattern, possibly with variables) against
    /// a ground `value`, extending `bindings`. Returns false (leaving
    /// `bindings` in an unspecified extended state the caller must discard)
    /// on mismatch. Arithmetic subterms never match structurally.
    pub fn match_ground(&self, value: &Term, bindings: &mut Bindings) -> bool {
        match (self, value) {
            (Term::Int(a), Term::Int(b)) => a == b,
            (Term::Sym(a), Term::Sym(b)) => a == b,
            (Term::Var(v), _) => match bindings.get(v) {
                Some(bound) => bound == value,
                None => {
                    bindings.insert(*v, value.clone());
                    true
                }
            },
            (Term::Func(f, fargs), Term::Func(g, gargs)) => {
                f == g
                    && fargs.len() == gargs.len()
                    && fargs
                        .iter()
                        .zip(gargs)
                        .all(|(p, v)| p.match_ground(v, bindings))
            }
            _ => false,
        }
    }

    /// Total order on ground terms: integers < symbols < compound terms.
    ///
    /// # Panics
    ///
    /// Panics if either term is non-ground (variables or arithmetic).
    pub fn ground_cmp(&self, other: &Term) -> Ordering {
        fn rank(t: &Term) -> u8 {
            match t {
                Term::Int(_) => 0,
                Term::Sym(_) => 1,
                Term::Func(..) => 2,
                Term::Var(_) | Term::Arith(..) => {
                    panic!("ground_cmp called on non-ground term {t:?}")
                }
            }
        }
        match (self, other) {
            (Term::Int(a), Term::Int(b)) => a.cmp(b),
            (Term::Sym(a), Term::Sym(b)) => a.cmp_by_name(*b),
            (Term::Func(f, fa), Term::Func(g, ga)) => f
                .cmp_by_name(*g)
                .then_with(|| fa.len().cmp(&ga.len()))
                .then_with(|| {
                    for (x, y) in fa.iter().zip(ga) {
                        match x.ground_cmp(y) {
                            Ordering::Equal => continue,
                            ord => return ord,
                        }
                    }
                    Ordering::Equal
                }),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl From<i64> for Term {
    fn from(v: i64) -> Term {
        Term::Int(v)
    }
}

impl From<Symbol> for Term {
    fn from(s: Symbol) -> Term {
        Term::Sym(s)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Int(v) => write!(f, "{v}"),
            Term::Sym(s) => {
                if s.is_bare_constant() {
                    write!(f, "{s}")
                } else {
                    s.with_name(|n| write!(f, "{n:?}"))
                }
            }
            Term::Var(v) => write!(f, "{v}"),
            Term::Func(g, args) => {
                write!(f, "{g}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Term::Arith(op, l, r) => write!(f, "({l} {op} {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(pairs: &[(&str, Term)]) -> Bindings {
        pairs
            .iter()
            .map(|(n, t)| (Symbol::new(n), t.clone()))
            .collect()
    }

    #[test]
    fn substitution_evaluates_arithmetic() {
        let t = Term::Arith(
            ArithOp::Add,
            Box::new(Term::var("X")),
            Box::new(Term::Int(1)),
        );
        let b = bind(&[("X", Term::Int(4))]);
        assert_eq!(t.substitute(&b), Some(Term::Int(5)));
    }

    #[test]
    fn substitution_fails_on_unbound_and_nonint() {
        let t = Term::Arith(
            ArithOp::Mul,
            Box::new(Term::var("X")),
            Box::new(Term::Int(2)),
        );
        assert_eq!(t.substitute(&Bindings::new()), None);
        let b = bind(&[("X", Term::sym("a"))]);
        assert_eq!(t.substitute(&b), None);
    }

    #[test]
    fn division_by_zero_fails() {
        let t = Term::Arith(ArithOp::Div, Box::new(Term::Int(3)), Box::new(Term::Int(0)));
        assert_eq!(t.substitute(&Bindings::new()), None);
        let m = Term::Arith(ArithOp::Mod, Box::new(Term::Int(3)), Box::new(Term::Int(0)));
        assert_eq!(m.substitute(&Bindings::new()), None);
    }

    #[test]
    fn matching_binds_variables_consistently() {
        let pat = Term::func("edge", vec![Term::var("X"), Term::var("X")]);
        let ok = Term::func("edge", vec![Term::Int(1), Term::Int(1)]);
        let bad = Term::func("edge", vec![Term::Int(1), Term::Int(2)]);
        let mut b = Bindings::new();
        assert!(pat.match_ground(&ok, &mut b));
        assert_eq!(b.get(&Symbol::new("X")), Some(&Term::Int(1)));
        let mut b2 = Bindings::new();
        assert!(!pat.match_ground(&bad, &mut b2));
    }

    #[test]
    fn ground_ordering_is_total_over_kinds() {
        let i = Term::Int(99);
        let s = Term::sym("aardvark");
        let c = Term::func("f", vec![Term::Int(0)]);
        assert_eq!(i.ground_cmp(&s), Ordering::Less);
        assert_eq!(s.ground_cmp(&c), Ordering::Less);
        assert_eq!(c.ground_cmp(&i), Ordering::Greater);
        assert_eq!(s.ground_cmp(&Term::sym("aardvark")), Ordering::Equal);
    }

    #[test]
    fn display_round_trips_shape() {
        let t = Term::func("route", vec![Term::sym("north"), Term::Int(3)]);
        assert_eq!(t.to_string(), "route(north, 3)");
        let q = Term::Sym(Symbol::new("has space"));
        assert_eq!(q.to_string(), "\"has space\"");
    }

    #[test]
    fn vars_are_deduplicated() {
        let t = Term::func("f", vec![Term::var("X"), Term::var("Y"), Term::var("X")]);
        assert_eq!(t.vars().len(), 2);
    }
}
