//! Grounding: instantiating a program's variables over its Herbrand universe.
//!
//! The grounder computes an over-approximation of the derivable atoms
//! (treating negation-as-failure literals as always satisfiable), emits the
//! ground instances of each rule restricted to that approximation, and then
//! simplifies: positive literals on definite facts are removed, negative
//! literals on underivable atoms are removed, and rules blocked by definite
//! facts are dropped.

use crate::atom::{Atom, CmpOp, Literal, Trace};
use crate::budget::{Deadline, Exhausted};
use crate::program::{Program, Rule};
use crate::symbol::Symbol;
use crate::term::{Bindings, Term};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifier of a ground atom inside a [`GroundProgram`].
pub type AtomId = u32;

/// An error raised while grounding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GroundError {
    /// A rule contains a variable not bound by any positive body literal or
    /// assignment chain.
    UnsafeRule {
        /// Rendered rule text.
        rule: String,
        /// The offending variable.
        var: Symbol,
    },
    /// Instantiation exceeded the configured atom budget.
    Budget {
        /// The configured maximum number of ground atoms.
        max_atoms: usize,
    },
    /// Instantiation ran out of a [`RunBudget`](crate::RunBudget) resource
    /// (currently: the wall-clock deadline).
    Exhausted(Exhausted),
}

impl GroundError {
    /// The resource-exhaustion kind behind this error, if any. Both the
    /// legacy [`GroundError::Budget`] and the newer
    /// [`GroundError::Exhausted`] qualify; unsafe rules do not.
    pub fn exhausted(&self) -> Option<Exhausted> {
        match self {
            GroundError::Budget { .. } => Some(Exhausted::Atoms),
            GroundError::Exhausted(kind) => Some(*kind),
            GroundError::UnsafeRule { .. } => None,
        }
    }
}

impl fmt::Display for GroundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundError::UnsafeRule { rule, var } => {
                write!(f, "unsafe rule `{rule}`: variable {var} is not bound")
            }
            GroundError::Budget { max_atoms } => {
                write!(f, "grounding exceeded the budget of {max_atoms} atoms")
            }
            GroundError::Exhausted(kind) => write!(f, "grounding aborted: {kind}"),
        }
    }
}

impl std::error::Error for GroundError {}

/// Interning table mapping ground atoms to dense [`AtomId`]s.
#[derive(Clone, Debug, Default)]
pub struct AtomTable {
    atoms: Vec<Atom>,
    index: HashMap<Atom, AtomId>,
}

impl AtomTable {
    /// An empty table.
    pub fn new() -> AtomTable {
        AtomTable::default()
    }

    /// Interns `atom`, returning its id.
    pub fn intern(&mut self, atom: &Atom) -> AtomId {
        if let Some(&id) = self.index.get(atom) {
            return id;
        }
        let id = u32::try_from(self.atoms.len()).expect("atom table overflow");
        self.atoms.push(atom.clone());
        self.index.insert(atom.clone(), id);
        id
    }

    /// Looks up an atom's id without interning.
    pub fn get(&self, atom: &Atom) -> Option<AtomId> {
        self.index.get(atom).copied()
    }

    /// Resolves an id back to its atom.
    pub fn resolve(&self, id: AtomId) -> &Atom {
        &self.atoms[id as usize]
    }

    /// Number of interned atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if no atoms are interned.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterates over `(id, atom)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AtomId, &Atom)> {
        self.atoms.iter().enumerate().map(|(i, a)| (i as AtomId, a))
    }
}

/// A ground rule over [`AtomId`]s. `head == None` encodes a constraint.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GroundRule {
    /// Head atom id, or `None` for a constraint.
    pub head: Option<AtomId>,
    /// Positive body atom ids.
    pub pos: Vec<AtomId>,
    /// Negative (naf) body atom ids.
    pub neg: Vec<AtomId>,
}

impl GroundRule {
    /// True for constraints.
    pub fn is_constraint(&self) -> bool {
        self.head.is_none()
    }

    /// True for unconditional facts.
    pub fn is_fact(&self) -> bool {
        self.head.is_some() && self.pos.is_empty() && self.neg.is_empty()
    }
}

/// A ground weak constraint: penalize models satisfying the body by
/// `weight` at `level`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GroundWeak {
    /// Positive body atom ids.
    pub pos: Vec<AtomId>,
    /// Negative body atom ids.
    pub neg: Vec<AtomId>,
    /// Penalty.
    pub weight: i64,
    /// Priority level.
    pub level: i64,
}

/// The result of grounding: interned atoms plus simplified ground rules.
#[derive(Clone, Debug, Default)]
pub struct GroundProgram {
    table: AtomTable,
    rules: Vec<GroundRule>,
    weaks: Vec<GroundWeak>,
    definite_facts: Vec<AtomId>,
    inconsistent: bool,
}

impl GroundProgram {
    /// The atom table.
    pub fn atoms(&self) -> &AtomTable {
        &self.table
    }

    /// The simplified ground rules.
    pub fn rules(&self) -> &[GroundRule] {
        &self.rules
    }

    /// The ground weak constraints.
    pub fn weak_constraints(&self) -> &[GroundWeak] {
        &self.weaks
    }

    /// Atoms established as definitely true during simplification.
    pub fn definite_facts(&self) -> &[AtomId] {
        &self.definite_facts
    }

    /// True if simplification already proved there is no answer set (a
    /// constraint reduced to the empty body).
    pub fn proven_inconsistent(&self) -> bool {
        self.inconsistent
    }

    /// Number of ground rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if there are no ground rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl fmt::Display for GroundProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            if let Some(h) = r.head {
                write!(f, "{}", self.table.resolve(h))?;
                if !r.pos.is_empty() || !r.neg.is_empty() {
                    write!(f, " :- ")?;
                }
            } else {
                write!(f, ":- ")?;
            }
            let mut first = true;
            for &p in &r.pos {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{}", self.table.resolve(p))?;
            }
            for &n in &r.neg {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "not {}", self.table.resolve(n))?;
            }
            writeln!(f, ".")?;
        }
        for w in &self.weaks {
            write!(f, ":~ ")?;
            let mut first = true;
            for &p in &w.pos {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{}", self.table.resolve(p))?;
            }
            for &n in &w.neg {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "not {}", self.table.resolve(n))?;
            }
            writeln!(f, ". [{}@{}]", w.weight, w.level)?;
        }
        Ok(())
    }
}

/// Grounding options.
#[derive(Clone, Copy, Debug)]
pub struct GroundOptions {
    /// Abort with [`GroundError::Budget`] once this many distinct ground
    /// atoms have been created.
    pub max_atoms: usize,
    /// Apply fact-folding simplification (default). Disable to preserve the
    /// full rule structure — e.g. for derivation-based explanations.
    pub simplify: bool,
    /// Abort with [`GroundError::Exhausted`] once this wall-clock deadline
    /// passes (default: no deadline).
    pub deadline: Deadline,
}

impl Default for GroundOptions {
    fn default() -> GroundOptions {
        GroundOptions {
            max_atoms: 4_000_000,
            simplify: true,
            deadline: Deadline::none(),
        }
    }
}

/// One scheduled body element, in evaluation order.
#[derive(Clone, Debug)]
enum Step {
    /// Join against derivable instances of this positive atom.
    Join(Atom),
    /// Evaluate a comparison whose variables are all bound.
    Filter(CmpOp, Term, Term),
    /// Bind `var` to the evaluation of `expr`.
    Bind(Symbol, Term),
    /// Instantiate a negative literal (kept in the ground rule).
    Naf(Atom),
}

/// A rule with its body scheduled for grounding.
#[derive(Clone, Debug)]
struct ScheduledRule {
    head: Option<Atom>,
    steps: Vec<Step>,
}

fn schedule(rule: &Rule) -> Result<ScheduledRule, GroundError> {
    if let Some(v) = rule.unsafe_var() {
        return Err(GroundError::UnsafeRule {
            rule: rule.to_string(),
            var: v,
        });
    }
    let mut remaining: Vec<&Literal> = rule.body.iter().collect();
    let mut bound: HashSet<Symbol> = HashSet::new();
    let mut steps = Vec::with_capacity(remaining.len());
    let all_bound = |t: &Term, bound: &HashSet<Symbol>| t.vars().iter().all(|v| bound.contains(v));
    while !remaining.is_empty() {
        // 1. A comparison with all variables bound is a pure filter.
        if let Some(i) = remaining.iter().position(|l| match l {
            Literal::Cmp(_, a, b) => all_bound(a, &bound) && all_bound(b, &bound),
            _ => false,
        }) {
            let Literal::Cmp(op, a, b) = remaining.remove(i) else {
                unreachable!()
            };
            steps.push(Step::Filter(*op, a.clone(), b.clone()));
            continue;
        }
        // 2. An `=` with exactly one unbound variable side is a binder.
        if let Some(i) = remaining.iter().position(|l| match l {
            Literal::Cmp(CmpOp::Eq, Term::Var(v), rhs) => {
                !bound.contains(v) && all_bound(rhs, &bound)
            }
            Literal::Cmp(CmpOp::Eq, lhs, Term::Var(v)) => {
                !bound.contains(v) && all_bound(lhs, &bound)
            }
            _ => false,
        }) {
            let Literal::Cmp(_, a, b) = remaining.remove(i) else {
                unreachable!()
            };
            match (a, b) {
                (Term::Var(v), rhs) if !bound.contains(v) => {
                    bound.insert(*v);
                    steps.push(Step::Bind(*v, rhs.clone()));
                }
                (lhs, Term::Var(v)) => {
                    bound.insert(*v);
                    steps.push(Step::Bind(*v, lhs.clone()));
                }
                _ => unreachable!(),
            }
            continue;
        }
        // 3. A positive atom join, preferring maximal already-bound overlap.
        let best = remaining
            .iter()
            .enumerate()
            .filter_map(|(i, l)| match l {
                Literal::Pos(a) => {
                    let mut vs = Vec::new();
                    a.collect_vars(&mut vs);
                    let overlap = vs.iter().filter(|v| bound.contains(v)).count();
                    Some((i, overlap))
                }
                _ => None,
            })
            .max_by_key(|&(i, overlap)| (overlap, std::cmp::Reverse(i)));
        if let Some((i, _)) = best {
            let Literal::Pos(a) = remaining.remove(i) else {
                unreachable!()
            };
            let mut vs = Vec::new();
            a.collect_vars(&mut vs);
            bound.extend(vs);
            steps.push(Step::Join(a.clone()));
            continue;
        }
        // 4. Negative literals once bound (safety guarantees this succeeds).
        if let Some(i) = remaining.iter().position(|l| match l {
            Literal::Neg(a) => {
                let mut vs = Vec::new();
                a.collect_vars(&mut vs);
                vs.iter().all(|v| bound.contains(v))
            }
            _ => false,
        }) {
            let Literal::Neg(a) = remaining.remove(i) else {
                unreachable!()
            };
            steps.push(Step::Naf(a.clone()));
            continue;
        }
        // Safety said this cannot happen.
        let lit = remaining[0].clone();
        let mut vs = Vec::new();
        lit.collect_vars(&mut vs);
        let var = vs
            .into_iter()
            .find(|v| !bound.contains(v))
            .unwrap_or(Symbol::new("_"));
        return Err(GroundError::UnsafeRule {
            rule: rule.to_string(),
            var,
        });
    }
    Ok(ScheduledRule {
        head: rule.head.clone(),
        steps,
    })
}

/// Join index over the current over-approximation, keyed by predicate
/// signature + trace.
#[derive(Default)]
struct PossibleAtoms {
    by_sig: HashMap<(Symbol, usize, Trace), Vec<AtomId>>,
    set: HashSet<AtomId>,
}

impl PossibleAtoms {
    fn insert(&mut self, id: AtomId, atom: &Atom) -> bool {
        if !self.set.insert(id) {
            return false;
        }
        self.by_sig
            .entry((atom.pred, atom.args.len(), atom.trace.clone()))
            .or_default()
            .push(id);
        true
    }

    fn candidates(&self, pattern: &Atom) -> &[AtomId] {
        self.by_sig
            .get(&(pattern.pred, pattern.args.len(), pattern.trace.clone()))
            .map_or(&[], Vec::as_slice)
    }
}

/// Grounds `program` with default options.
///
/// # Errors
///
/// Returns [`GroundError::UnsafeRule`] if a rule is unsafe, or
/// [`GroundError::Budget`] if instantiation explodes past the atom budget.
pub fn ground(program: &Program) -> Result<GroundProgram, GroundError> {
    ground_with(program, GroundOptions::default())
}

/// Grounds `program` with explicit [`GroundOptions`].
///
/// # Errors
///
/// See [`ground`].
pub fn ground_with(program: &Program, opts: GroundOptions) -> Result<GroundProgram, GroundError> {
    let scheduled: Vec<ScheduledRule> = program
        .rules()
        .iter()
        .map(schedule)
        .collect::<Result<_, _>>()?;

    let mut table = AtomTable::new();
    let mut possible = PossibleAtoms::default();
    let mut seen_rules: HashSet<GroundRule> = HashSet::new();
    let mut ground_rules: Vec<GroundRule> = Vec::new();

    // Saturate: keep instantiating until no new atoms or rules appear.
    loop {
        let mut changed = false;
        for rule in &scheduled {
            let mut bindings = Bindings::new();
            instantiate(
                rule,
                0,
                &mut bindings,
                &mut table,
                &mut possible,
                &mut seen_rules,
                &mut ground_rules,
                &mut changed,
                opts,
            )?;
        }
        if !changed {
            break;
        }
    }

    // Ground the weak constraints against the final over-approximation.
    let mut ground_weaks: Vec<GroundWeak> = Vec::new();
    {
        let mut seen_weaks: HashSet<GroundWeak> = HashSet::new();
        for weak in program.weak_constraints() {
            if let Some(v) = weak.unsafe_var() {
                return Err(GroundError::UnsafeRule {
                    rule: weak.to_string(),
                    var: v,
                });
            }
            let proxy = Rule {
                head: None,
                body: weak.body.clone(),
            };
            let sched = schedule(&proxy)?;
            let mut bindings = Bindings::new();
            instantiate_weak(
                &sched,
                &weak.weight,
                weak.level,
                0,
                &mut bindings,
                &mut table,
                &possible,
                &mut seen_weaks,
                &mut ground_weaks,
            );
        }
    }

    if !opts.simplify {
        // Keep the instantiation untouched (used by explanation tooling).
        let mut definite_facts: Vec<AtomId> = ground_rules
            .iter()
            .filter(|r| r.is_fact())
            .map(|r| r.head.expect("facts have heads"))
            .collect();
        definite_facts.sort_unstable();
        definite_facts.dedup();
        let inconsistent = ground_rules
            .iter()
            .any(|r| r.is_constraint() && r.pos.is_empty() && r.neg.is_empty());
        return Ok(GroundProgram {
            table,
            rules: ground_rules,
            weaks: ground_weaks,
            definite_facts,
            inconsistent,
        });
    }

    // --- Simplification ---------------------------------------------------
    // Definite facts: least fixpoint over rules whose negative atoms are
    // never derivable.
    let derivable = &possible.set;
    let mut fact_set: HashSet<AtomId> = HashSet::new();
    loop {
        let mut changed = false;
        for r in &ground_rules {
            let Some(h) = r.head else { continue };
            if fact_set.contains(&h) {
                continue;
            }
            if r.pos.iter().all(|p| fact_set.contains(p))
                && r.neg.iter().all(|n| !derivable.contains(n))
            {
                fact_set.insert(h);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut simplified: Vec<GroundRule> = Vec::new();
    let mut seen_simplified: HashSet<GroundRule> = HashSet::new();
    let mut inconsistent = false;
    for r in &ground_rules {
        // `not a` with `a` a definite fact blocks the rule.
        if r.neg.iter().any(|n| fact_set.contains(n)) {
            continue;
        }
        // A rule whose head is a definite fact contributes nothing beyond the
        // fact itself.
        if r.head.is_some_and(|h| fact_set.contains(&h)) {
            continue;
        }
        let pos: Vec<AtomId> = r
            .pos
            .iter()
            .copied()
            .filter(|p| !fact_set.contains(p))
            .collect();
        let neg: Vec<AtomId> = r
            .neg
            .iter()
            .copied()
            .filter(|n| derivable.contains(n))
            .collect();
        // A positive literal that can never be derived falsifies the body.
        if pos
            .iter()
            .any(|p| !derivable.contains(p) && !fact_set.contains(p))
        {
            continue;
        }
        let new_rule = GroundRule {
            head: r.head,
            pos,
            neg,
        };
        if new_rule.is_constraint() && new_rule.pos.is_empty() && new_rule.neg.is_empty() {
            inconsistent = true;
        }
        if seen_simplified.insert(new_rule.clone()) {
            simplified.push(new_rule);
        }
    }
    let mut definite_facts: Vec<AtomId> = fact_set.into_iter().collect();
    definite_facts.sort_unstable();
    for &f in &definite_facts {
        let fact = GroundRule {
            head: Some(f),
            pos: Vec::new(),
            neg: Vec::new(),
        };
        if seen_simplified.insert(fact.clone()) {
            simplified.push(fact);
        }
    }

    // Simplify weak constraints with the same fact/derivability knowledge.
    let mut weaks: Vec<GroundWeak> = Vec::new();
    let mut seen_weaks: HashSet<GroundWeak> = HashSet::new();
    let fact_lookup: HashSet<AtomId> = definite_facts.iter().copied().collect();
    for w in ground_weaks {
        if w.neg.iter().any(|n| fact_lookup.contains(n)) {
            continue;
        }
        if w.pos
            .iter()
            .any(|p| !derivable.contains(p) && !fact_lookup.contains(p))
        {
            continue;
        }
        let pos: Vec<AtomId> = w
            .pos
            .iter()
            .copied()
            .filter(|p| !fact_lookup.contains(p))
            .collect();
        let neg: Vec<AtomId> = w
            .neg
            .iter()
            .copied()
            .filter(|n| derivable.contains(n))
            .collect();
        let new_weak = GroundWeak {
            pos,
            neg,
            weight: w.weight,
            level: w.level,
        };
        if seen_weaks.insert(new_weak.clone()) {
            weaks.push(new_weak);
        }
    }

    Ok(GroundProgram {
        table,
        rules: simplified,
        weaks,
        definite_facts,
        inconsistent,
    })
}

/// Instantiates one weak constraint over the final over-approximation.
#[allow(clippy::too_many_arguments)]
fn instantiate_weak(
    rule: &ScheduledRule,
    weight: &Term,
    level: i64,
    step: usize,
    bindings: &mut Bindings,
    table: &mut AtomTable,
    possible: &PossibleAtoms,
    seen: &mut HashSet<GroundWeak>,
    out: &mut Vec<GroundWeak>,
) {
    if step == rule.steps.len() {
        let Some(Term::Int(w)) = weight.substitute(bindings) else {
            return;
        };
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for s in &rule.steps {
            match s {
                Step::Join(a) => {
                    let g = a.substitute(bindings).expect("join leaves atom ground");
                    pos.push(table.intern(&g));
                }
                Step::Naf(a) => {
                    let Some(g) = a.substitute(bindings) else {
                        return;
                    };
                    neg.push(table.intern(&g));
                }
                Step::Filter(..) | Step::Bind(..) => {}
            }
        }
        pos.sort_unstable();
        pos.dedup();
        neg.sort_unstable();
        neg.dedup();
        let gw = GroundWeak {
            pos,
            neg,
            weight: w,
            level,
        };
        if seen.insert(gw.clone()) {
            out.push(gw);
        }
        return;
    }
    match &rule.steps[step] {
        Step::Filter(op, a, b) => {
            let (Some(ga), Some(gb)) = (a.substitute(bindings), b.substitute(bindings)) else {
                return;
            };
            if op.eval(&ga, &gb) {
                instantiate_weak(
                    rule,
                    weight,
                    level,
                    step + 1,
                    bindings,
                    table,
                    possible,
                    seen,
                    out,
                );
            }
        }
        Step::Bind(v, expr) => {
            let Some(val) = expr.substitute(bindings) else {
                return;
            };
            bindings.insert(*v, val);
            instantiate_weak(
                rule,
                weight,
                level,
                step + 1,
                bindings,
                table,
                possible,
                seen,
                out,
            );
            bindings.remove(v);
        }
        Step::Naf(_) => instantiate_weak(
            rule,
            weight,
            level,
            step + 1,
            bindings,
            table,
            possible,
            seen,
            out,
        ),
        Step::Join(pattern) => {
            let candidates: Vec<AtomId> = possible.candidates(pattern).to_vec();
            for id in candidates {
                let atom = table.resolve(id).clone();
                let mut trial = bindings.clone();
                if pattern.match_ground(&atom, &mut trial) {
                    instantiate_weak(
                        rule,
                        weight,
                        level,
                        step + 1,
                        &mut trial,
                        table,
                        possible,
                        seen,
                        out,
                    );
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn instantiate(
    rule: &ScheduledRule,
    step: usize,
    bindings: &mut Bindings,
    table: &mut AtomTable,
    possible: &mut PossibleAtoms,
    seen_rules: &mut HashSet<GroundRule>,
    out: &mut Vec<GroundRule>,
    changed: &mut bool,
    opts: GroundOptions,
) -> Result<(), GroundError> {
    if table.len() > opts.max_atoms {
        return Err(GroundError::Budget {
            max_atoms: opts.max_atoms,
        });
    }
    if opts.deadline.expired() {
        return Err(GroundError::Exhausted(Exhausted::Deadline));
    }
    if step == rule.steps.len() {
        // Complete binding: emit the ground rule.
        let head = match &rule.head {
            Some(h) => match h.substitute(bindings) {
                Some(g) => Some(table.intern(&g)),
                // Head arithmetic failed (e.g. division by zero): skip.
                None => return Ok(()),
            },
            None => None,
        };
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for s in &rule.steps {
            match s {
                Step::Join(a) => {
                    let g = a.substitute(bindings).expect("join leaves atom ground");
                    pos.push(table.intern(&g));
                }
                Step::Naf(a) => {
                    let Some(g) = a.substitute(bindings) else {
                        return Ok(());
                    };
                    neg.push(table.intern(&g));
                }
                Step::Filter(..) | Step::Bind(..) => {}
            }
        }
        pos.sort_unstable();
        pos.dedup();
        neg.sort_unstable();
        neg.dedup();
        let gr = GroundRule { head, pos, neg };
        if seen_rules.insert(gr.clone()) {
            if let Some(h) = gr.head {
                let atom = table.resolve(h).clone();
                if possible.insert(h, &atom) {
                    *changed = true;
                }
            }
            out.push(gr);
            *changed = true;
        }
        return Ok(());
    }
    match &rule.steps[step] {
        Step::Filter(op, a, b) => {
            let (Some(ga), Some(gb)) = (a.substitute(bindings), b.substitute(bindings)) else {
                return Ok(());
            };
            if op.eval(&ga, &gb) {
                instantiate(
                    rule,
                    step + 1,
                    bindings,
                    table,
                    possible,
                    seen_rules,
                    out,
                    changed,
                    opts,
                )?;
            }
            Ok(())
        }
        Step::Bind(v, expr) => {
            let Some(val) = expr.substitute(bindings) else {
                return Ok(());
            };
            bindings.insert(*v, val);
            instantiate(
                rule,
                step + 1,
                bindings,
                table,
                possible,
                seen_rules,
                out,
                changed,
                opts,
            )?;
            bindings.remove(v);
            Ok(())
        }
        Step::Naf(_) => instantiate(
            rule,
            step + 1,
            bindings,
            table,
            possible,
            seen_rules,
            out,
            changed,
            opts,
        ),
        Step::Join(pattern) => {
            // Snapshot candidate list: atoms added during this join are
            // picked up by the next outer fixpoint pass.
            let candidates: Vec<AtomId> = possible.candidates(pattern).to_vec();
            for id in candidates {
                let atom = table.resolve(id).clone();
                let mut trial = bindings.clone();
                if pattern.match_ground(&atom, &mut trial) {
                    instantiate(
                        rule,
                        step + 1,
                        &mut trial,
                        table,
                        possible,
                        seen_rules,
                        out,
                        changed,
                        opts,
                    )?;
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atoms_of(g: &GroundProgram) -> Vec<String> {
        let mut v: Vec<String> = g
            .definite_facts()
            .iter()
            .map(|&f| g.atoms().resolve(f).to_string())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn grounds_transitive_closure() {
        let p: Program = "
            edge(1, 2). edge(2, 3). edge(3, 4).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
        "
        .parse()
        .unwrap();
        let g = ground(&p).unwrap();
        let facts = atoms_of(&g);
        assert!(facts.contains(&"path(1, 4)".to_string()));
        assert!(facts.contains(&"path(2, 4)".to_string()));
        assert!(!facts.contains(&"path(4, 1)".to_string()));
        // 3 edges + 6 paths
        assert_eq!(facts.len(), 9);
    }

    #[test]
    fn arithmetic_binders_ground() {
        let p: Program = "
            num(0). num(1). num(2).
            succ(X, Y) :- num(X), Y = X + 1, Y <= 2.
        "
        .parse()
        .unwrap();
        let g = ground(&p).unwrap();
        let facts = atoms_of(&g);
        assert!(facts.contains(&"succ(0, 1)".to_string()));
        assert!(facts.contains(&"succ(1, 2)".to_string()));
        assert!(!facts.iter().any(|f| f.starts_with("succ(2")));
    }

    #[test]
    fn negation_is_kept_not_evaluated() {
        let p: Program = "
            a.
            b :- not c.
            c :- not b.
        "
        .parse()
        .unwrap();
        let g = ground(&p).unwrap();
        // a is a definite fact; b/c remain as a cycle through negation.
        assert!(atoms_of(&g).contains(&"a".to_string()));
        let cyclic: Vec<&GroundRule> = g.rules().iter().filter(|r| !r.neg.is_empty()).collect();
        assert_eq!(cyclic.len(), 2);
    }

    #[test]
    fn simplification_drops_blocked_rules() {
        let p: Program = "
            a.
            b :- not a.
            c :- not never.
        "
        .parse()
        .unwrap();
        let g = ground(&p).unwrap();
        let facts = atoms_of(&g);
        // b is blocked (a is a fact); c becomes a fact (never underivable).
        assert!(facts.contains(&"c".to_string()));
        assert!(!facts.contains(&"b".to_string()));
        assert!(!g.proven_inconsistent());
    }

    #[test]
    fn constraint_violation_detected_during_simplification() {
        let p: Program = "a. :- a.".parse().unwrap();
        let g = ground(&p).unwrap();
        assert!(g.proven_inconsistent());
    }

    #[test]
    fn unsafe_rules_are_rejected() {
        let p: Program = "p(X) :- not q(X).".parse().unwrap();
        match ground(&p) {
            Err(GroundError::UnsafeRule { var, .. }) => assert_eq!(var, Symbol::new("X")),
            other => panic!("expected unsafe-rule error, got {other:?}"),
        }
    }

    #[test]
    fn budget_is_enforced() {
        let p: Program = "
            n(1..50).
            p(X, Y, Z) :- n(X), n(Y), n(Z).
        "
        .parse()
        .unwrap();
        let err = ground_with(
            &p,
            GroundOptions {
                max_atoms: 1000,
                ..GroundOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, GroundError::Budget { .. }));
        assert_eq!(err.exhausted(), Some(Exhausted::Atoms));
    }

    #[test]
    fn deadline_is_enforced() {
        let p: Program = "
            n(1..20).
            p(X, Y) :- n(X), n(Y).
        "
        .parse()
        .unwrap();
        let err = ground_with(
            &p,
            GroundOptions {
                deadline: Deadline::after(std::time::Duration::ZERO),
                ..GroundOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, GroundError::Exhausted(Exhausted::Deadline));
        assert_eq!(err.exhausted(), Some(Exhausted::Deadline));
    }

    #[test]
    fn annotated_atoms_ground_per_trace() {
        let p: Program = "
            size(3)@1.
            size(X) :- size(X)@1.
        "
        .parse()
        .unwrap();
        let g = ground(&p).unwrap();
        let facts = atoms_of(&g);
        assert!(facts.contains(&"size(3)@1".to_string()));
        assert!(facts.contains(&"size(3)".to_string()));
    }

    #[test]
    fn comparison_filters_prune() {
        let p: Program = "
            n(1..5).
            big(X) :- n(X), X >= 4.
        "
        .parse()
        .unwrap();
        let g = ground(&p).unwrap();
        let facts = atoms_of(&g);
        assert_eq!(facts.iter().filter(|f| f.starts_with("big")).count(), 2);
    }

    #[test]
    fn symbolic_comparison_uses_term_order() {
        let p: Program = "
            item(apple). item(pear).
            first(X) :- item(X), X < pear.
        "
        .parse()
        .unwrap();
        let g = ground(&p).unwrap();
        assert!(atoms_of(&g).contains(&"first(apple)".to_string()));
        assert!(!atoms_of(&g).contains(&"first(pear)".to_string()));
    }
}
