//! Grounding: instantiating a program's variables over its Herbrand universe.
//!
//! The grounder computes an over-approximation of the derivable atoms
//! (treating negation-as-failure literals as always satisfiable), emits the
//! ground instances of each rule restricted to that approximation, and then
//! simplifies: positive literals on definite facts are removed, negative
//! literals on underivable atoms are removed, and rules blocked by definite
//! facts are dropped.
//!
//! # Semi-naive evaluation
//!
//! Saturation is *semi-naive* (delta-driven): each round only re-evaluates a
//! rule through join orders that can consume at least one atom derived in the
//! previous round. For a rule with joins `j0, …, jk` and the round's delta
//! window `Δ`, the variant with delta position `d` reads pre-delta atoms at
//! joins before `d`, exactly `Δ` at join `d`, and everything derived so far at
//! joins after `d` — so every new combination of body atoms is enumerated
//! exactly once over the whole run instead of once per pass. The classic
//! naive fixpoint is retained behind [`GroundMode::Naive`] as a reference
//! implementation for differential testing and benchmarking.
//!
//! # Index-driven joins and parallel rounds
//!
//! Every signature slice of the join index additionally maintains an
//! *argument-value index*: for each argument position, a hash map from
//! ground value to the (ascending) positions holding that value. A join
//! whose pattern has bound arguments probes the smallest matching bucket and
//! window-clips it with binary search instead of scanning the whole
//! signature slice — `join_candidates` drops by an order of magnitude on
//! recursive workloads (see `BENCH_asp.json`).
//!
//! Each saturation pass is decomposed into independent *work units* (rule
//! variants, with large first-join windows chunked by
//! [`GroundOptions::parallel_grain`]) evaluated against a frozen snapshot of
//! the engine state, optionally fanned out across a from-scratch
//! work-stealing pool ([`crate::pool::WorkPool`]); results are merged
//! strictly in unit order, so the output (atom table, rule order, stats
//! except [`GroundStats::parallel_units`]) is byte-identical for every
//! thread count, the serial path included.
//!
//! [`IncrementalGrounder`] additionally snapshots a saturated base program so
//! that small rule deltas (e.g. candidate hypotheses during learning) can be
//! grounded on top without re-deriving the base. See `docs/PERFORMANCE.md`
//! for the algorithm write-up and the benchmark harness that tracks it.

use crate::atom::{Atom, CmpOp, Literal, Trace};
use crate::budget::{Deadline, Exhausted};
use crate::parallel::Parallelism;
use crate::pool::{UnitControl, WorkPool};
use crate::program::{Program, Rule, WeakConstraint};
use crate::symbol::Symbol;
use crate::term::{Bindings, Term};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Mutex;

/// Identifier of a ground atom inside a [`GroundProgram`].
pub type AtomId = u32;

/// An error raised while grounding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GroundError {
    /// A rule contains a variable not bound by any positive body literal or
    /// assignment chain.
    UnsafeRule {
        /// Rendered rule text.
        rule: String,
        /// The offending variable.
        var: Symbol,
    },
    /// Instantiation exceeded the configured atom budget.
    Budget {
        /// The configured maximum number of ground atoms.
        max_atoms: usize,
    },
    /// Instantiation ran out of a [`RunBudget`](crate::RunBudget) resource
    /// (currently: the wall-clock deadline).
    Exhausted(Exhausted),
}

impl GroundError {
    /// The resource-exhaustion kind behind this error, if any. Both the
    /// legacy [`GroundError::Budget`] and the newer
    /// [`GroundError::Exhausted`] qualify; unsafe rules do not.
    pub fn exhausted(&self) -> Option<Exhausted> {
        match self {
            GroundError::Budget { .. } => Some(Exhausted::Atoms),
            GroundError::Exhausted(kind) => Some(*kind),
            GroundError::UnsafeRule { .. } => None,
        }
    }
}

impl fmt::Display for GroundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundError::UnsafeRule { rule, var } => {
                write!(f, "unsafe rule `{rule}`: variable {var} is not bound")
            }
            GroundError::Budget { max_atoms } => {
                write!(f, "grounding exceeded the budget of {max_atoms} atoms")
            }
            GroundError::Exhausted(kind) => write!(f, "grounding aborted: {kind}"),
        }
    }
}

impl std::error::Error for GroundError {}

/// Interning table mapping ground atoms to dense [`AtomId`]s.
#[derive(Clone, Debug, Default)]
pub struct AtomTable {
    atoms: Vec<Atom>,
    index: HashMap<Atom, AtomId>,
}

impl AtomTable {
    /// An empty table.
    pub fn new() -> AtomTable {
        AtomTable::default()
    }

    /// Interns `atom`, returning its id.
    pub fn intern(&mut self, atom: &Atom) -> AtomId {
        if let Some(&id) = self.index.get(atom) {
            return id;
        }
        let id = u32::try_from(self.atoms.len()).expect("atom table overflow");
        self.atoms.push(atom.clone());
        self.index.insert(atom.clone(), id);
        id
    }

    /// Looks up an atom's id without interning.
    pub fn get(&self, atom: &Atom) -> Option<AtomId> {
        self.index.get(atom).copied()
    }

    /// Resolves an id back to its atom.
    pub fn resolve(&self, id: AtomId) -> &Atom {
        &self.atoms[id as usize]
    }

    /// Number of interned atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if no atoms are interned.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterates over `(id, atom)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AtomId, &Atom)> {
        self.atoms.iter().enumerate().map(|(i, a)| (i as AtomId, a))
    }
}

/// A ground rule over [`AtomId`]s. `head == None` encodes a constraint.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GroundRule {
    /// Head atom id, or `None` for a constraint.
    pub head: Option<AtomId>,
    /// Positive body atom ids.
    pub pos: Vec<AtomId>,
    /// Negative (naf) body atom ids.
    pub neg: Vec<AtomId>,
}

impl GroundRule {
    /// True for constraints.
    pub fn is_constraint(&self) -> bool {
        self.head.is_none()
    }

    /// True for unconditional facts.
    pub fn is_fact(&self) -> bool {
        self.head.is_some() && self.pos.is_empty() && self.neg.is_empty()
    }
}

/// A ground weak constraint: penalize models satisfying the body by
/// `weight` at `level`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GroundWeak {
    /// Positive body atom ids.
    pub pos: Vec<AtomId>,
    /// Negative body atom ids.
    pub neg: Vec<AtomId>,
    /// Penalty.
    pub weight: i64,
    /// Priority level.
    pub level: i64,
}

/// The result of grounding: interned atoms plus simplified ground rules.
#[derive(Clone, Debug, Default)]
pub struct GroundProgram {
    table: AtomTable,
    rules: Vec<GroundRule>,
    weaks: Vec<GroundWeak>,
    definite_facts: Vec<AtomId>,
    inconsistent: bool,
}

impl GroundProgram {
    /// The atom table.
    pub fn atoms(&self) -> &AtomTable {
        &self.table
    }

    /// The simplified ground rules.
    pub fn rules(&self) -> &[GroundRule] {
        &self.rules
    }

    /// The ground weak constraints.
    pub fn weak_constraints(&self) -> &[GroundWeak] {
        &self.weaks
    }

    /// Atoms established as definitely true during simplification.
    pub fn definite_facts(&self) -> &[AtomId] {
        &self.definite_facts
    }

    /// True if simplification already proved there is no answer set (a
    /// constraint reduced to the empty body).
    pub fn proven_inconsistent(&self) -> bool {
        self.inconsistent
    }

    /// Number of ground rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if there are no ground rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl fmt::Display for GroundProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            if let Some(h) = r.head {
                write!(f, "{}", self.table.resolve(h))?;
                if !r.pos.is_empty() || !r.neg.is_empty() {
                    write!(f, " :- ")?;
                }
            } else {
                write!(f, ":- ")?;
            }
            let mut first = true;
            for &p in &r.pos {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{}", self.table.resolve(p))?;
            }
            for &n in &r.neg {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "not {}", self.table.resolve(n))?;
            }
            writeln!(f, ".")?;
        }
        for w in &self.weaks {
            write!(f, ":~ ")?;
            let mut first = true;
            for &p in &w.pos {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{}", self.table.resolve(p))?;
            }
            for &n in &w.neg {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "not {}", self.table.resolve(n))?;
            }
            writeln!(f, ". [{}@{}]", w.weight, w.level)?;
        }
        Ok(())
    }
}

/// Grounding options.
#[derive(Clone, Copy, Debug)]
pub struct GroundOptions {
    /// Abort with [`GroundError::Budget`] once this many distinct ground
    /// atoms have been created.
    pub max_atoms: usize,
    /// Apply fact-folding simplification (default). Disable to preserve the
    /// full rule structure — e.g. for derivation-based explanations.
    pub simplify: bool,
    /// Abort with [`GroundError::Exhausted`] once this wall-clock deadline
    /// passes (default: no deadline).
    pub deadline: Deadline,
    /// Saturation strategy (semi-naive by default; the naive reference is
    /// kept for differential testing and speedup measurements).
    pub mode: GroundMode,
    /// Worker threads for saturation passes, as a unified
    /// [`Parallelism`] policy (default: [`Parallelism::Auto`]). A resolved
    /// count of `1` pins the grounder to the calling thread and spawns
    /// nothing. Output is byte-identical for every thread count.
    pub parallelism: Parallelism,
    /// Work-unit chunk size: a pass's first-join candidate windows are
    /// split into chunks of at most this many candidates, and the pass only
    /// moves to the pool when its total candidate work reaches this size
    /// (small rounds stay inline on the calling thread).
    pub parallel_grain: usize,
}

impl Default for GroundOptions {
    fn default() -> GroundOptions {
        GroundOptions {
            max_atoms: 4_000_000,
            simplify: true,
            deadline: Deadline::none(),
            mode: GroundMode::SemiNaive,
            parallelism: Parallelism::Auto,
            parallel_grain: 256,
        }
    }
}

impl GroundOptions {
    /// Sets the atom budget.
    pub fn with_max_atoms(mut self, max_atoms: usize) -> GroundOptions {
        self.max_atoms = max_atoms;
        self
    }

    /// Enables or disables fact-folding simplification.
    pub fn with_simplify(mut self, simplify: bool) -> GroundOptions {
        self.simplify = simplify;
        self
    }

    /// Sets the grounding deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> GroundOptions {
        self.deadline = deadline;
        self
    }

    /// Selects the saturation strategy.
    pub fn with_mode(mut self, mode: GroundMode) -> GroundOptions {
        self.mode = mode;
        self
    }

    /// Sets the unified worker-thread policy.
    pub fn with_parallelism(mut self, parallelism: impl Into<Parallelism>) -> GroundOptions {
        self.parallelism = parallelism.into();
        self
    }

    /// Sets the work-unit chunk size.
    pub fn with_parallel_grain(mut self, parallel_grain: usize) -> GroundOptions {
        self.parallel_grain = parallel_grain.max(1);
        self
    }

    /// The parallelism policy these options apply.
    pub fn effective_parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The thread count a run with these options uses (see
    /// [`Parallelism::resolve`] for the resolution order).
    pub fn effective_threads(&self) -> usize {
        self.effective_parallelism().resolve()
    }
}

/// Which saturation strategy the grounder runs. Both produce identical
/// atoms, rules, and weak constraints; they differ only in the work spent
/// re-deriving known facts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum GroundMode {
    /// Delta-driven semi-naive evaluation (the production strategy).
    #[default]
    SemiNaive,
    /// Full re-saturation every pass — the reference implementation, kept
    /// for differential testing and for quantifying the semi-naive speedup.
    Naive,
}

/// Work counters reported by the grounder.
///
/// `rules_instantiated` is the primary cost metric: it counts every complete
/// body instantiation reaching rule emission (before deduplication), which is
/// what the semi-naive strategy reduces relative to naive saturation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct GroundStats {
    /// Saturation passes: semi-naive rounds (including the seed pass) or
    /// naive fixpoint sweeps.
    pub passes: u64,
    /// Complete ground-rule (and weak-constraint) instantiations emitted by
    /// the join machinery, counted before deduplication.
    pub rules_instantiated: u64,
    /// Candidate atoms scanned across all join steps (after argument-value
    /// index probing — this is what indexing collapses).
    pub join_candidates: u64,
    /// Work units executed on pool worker threads. `0` for fully serial
    /// runs; this is the only counter that varies with the execution venue.
    pub parallel_units: u64,
}

impl GroundStats {
    /// Accumulates another run's counters into this one.
    pub fn absorb(&mut self, other: GroundStats) {
        self.passes += other.passes;
        self.rules_instantiated += other.rules_instantiated;
        self.join_candidates += other.join_candidates;
        self.parallel_units += other.parallel_units;
    }
}

/// Dense ids for parse-tree traces, so join-index keys are `Copy` and a
/// candidate lookup never clones a [`Trace`].
type TraceId = u32;

#[derive(Clone, Debug, Default)]
struct TraceIds {
    ids: HashMap<Trace, TraceId>,
}

impl TraceIds {
    fn intern(&mut self, trace: &Trace) -> TraceId {
        if let Some(&id) = self.ids.get(trace) {
            return id;
        }
        let id = u32::try_from(self.ids.len()).expect("trace id overflow");
        self.ids.insert(trace.clone(), id);
        id
    }
}

/// Join-index key: predicate, arity, interned trace. All `Copy`.
type SigKey = (Symbol, usize, TraceId);

fn sig_key(atom: &Atom, traces: &mut TraceIds) -> SigKey {
    (atom.pred, atom.args.len(), traces.intern(&atom.trace))
}

/// One scheduled body element, in evaluation order. Borrows from the source
/// program — scheduling clones no atoms or terms.
#[derive(Debug)]
enum Step<'p> {
    /// Join against derivable instances of this positive atom.
    Join {
        pattern: &'p Atom,
        key: SigKey,
        /// Variables first bound by this join (computed at schedule time);
        /// removed from the bindings after each candidate to undo the match.
        fresh: Vec<Symbol>,
        /// Argument positions whose pattern terms are fully bound before
        /// this join (and arithmetic-free): the join probes the smallest of
        /// these argument-value buckets instead of scanning the window.
        probe: Vec<usize>,
    },
    /// Evaluate a comparison whose variables are all bound.
    Filter(CmpOp, &'p Term, &'p Term),
    /// Bind `var` to the evaluation of `expr`.
    Bind(Symbol, &'p Term),
    /// Instantiate a negative literal (kept in the ground rule).
    Naf(&'p Atom),
}

/// A rule with its body scheduled for grounding.
#[derive(Debug)]
struct ScheduledRule<'p> {
    head: Option<&'p Atom>,
    /// Join-index key of the head (fixed at schedule time: substitution
    /// never changes predicate, arity, or trace).
    head_key: Option<SigKey>,
    steps: Vec<Step<'p>>,
    /// Join-index key per join ordinal, for delta-variant skipping.
    joins: Vec<SigKey>,
}

fn schedule_rule<'p>(
    rule: &'p Rule,
    traces: &mut TraceIds,
) -> Result<ScheduledRule<'p>, GroundError> {
    if let Some(var) = rule.unsafe_var() {
        return Err(GroundError::UnsafeRule {
            rule: rule.to_string(),
            var,
        });
    }
    schedule_body(rule.head.as_ref(), &rule.body, traces, &|| rule.to_string())
}

fn schedule_weak<'p>(
    weak: &'p WeakConstraint,
    traces: &mut TraceIds,
) -> Result<ScheduledRule<'p>, GroundError> {
    if let Some(var) = weak.unsafe_var() {
        return Err(GroundError::UnsafeRule {
            rule: weak.to_string(),
            var,
        });
    }
    schedule_body(None, &weak.body, traces, &|| weak.to_string())
}

fn schedule_program<'p>(
    program: &'p Program,
    traces: &mut TraceIds,
) -> Result<Vec<ScheduledRule<'p>>, GroundError> {
    program
        .rules()
        .iter()
        .map(|r| schedule_rule(r, traces))
        .collect()
}

fn schedule_body<'p>(
    head: Option<&'p Atom>,
    body: &'p [Literal],
    traces: &mut TraceIds,
    render: &dyn Fn() -> String,
) -> Result<ScheduledRule<'p>, GroundError> {
    let mut remaining: Vec<&'p Literal> = body.iter().collect();
    let mut bound: HashSet<Symbol> = HashSet::new();
    let mut steps: Vec<Step<'p>> = Vec::with_capacity(remaining.len());
    let mut joins: Vec<SigKey> = Vec::new();
    let all_bound = |t: &Term, bound: &HashSet<Symbol>| t.vars().iter().all(|v| bound.contains(v));
    while !remaining.is_empty() {
        // 1. A comparison with all variables bound is a pure filter.
        if let Some(i) = remaining.iter().position(|l| match l {
            Literal::Cmp(_, a, b) => all_bound(a, &bound) && all_bound(b, &bound),
            _ => false,
        }) {
            let Literal::Cmp(op, a, b) = remaining.remove(i) else {
                unreachable!()
            };
            steps.push(Step::Filter(*op, a, b));
            continue;
        }
        // 2. An `=` with exactly one unbound variable side is a binder.
        if let Some(i) = remaining.iter().position(|l| match l {
            Literal::Cmp(CmpOp::Eq, Term::Var(v), rhs) => {
                !bound.contains(v) && all_bound(rhs, &bound)
            }
            Literal::Cmp(CmpOp::Eq, lhs, Term::Var(v)) => {
                !bound.contains(v) && all_bound(lhs, &bound)
            }
            _ => false,
        }) {
            let Literal::Cmp(_, a, b) = remaining.remove(i) else {
                unreachable!()
            };
            match (a, b) {
                (Term::Var(v), rhs) if !bound.contains(v) => {
                    bound.insert(*v);
                    steps.push(Step::Bind(*v, rhs));
                }
                (lhs, Term::Var(v)) => {
                    bound.insert(*v);
                    steps.push(Step::Bind(*v, lhs));
                }
                _ => unreachable!(),
            }
            continue;
        }
        // 3. A positive atom join, preferring maximal already-bound overlap.
        let best = remaining
            .iter()
            .enumerate()
            .filter_map(|(i, l)| match l {
                Literal::Pos(a) => {
                    let mut vs = Vec::new();
                    a.collect_vars(&mut vs);
                    let overlap = vs.iter().filter(|v| bound.contains(v)).count();
                    Some((i, overlap))
                }
                _ => None,
            })
            .max_by_key(|&(i, overlap)| (overlap, std::cmp::Reverse(i)));
        if let Some((i, _)) = best {
            let Literal::Pos(a) = remaining.remove(i) else {
                unreachable!()
            };
            // Argument positions already fully bound (and arithmetic-free —
            // arithmetic never matches structurally) can be probed in the
            // argument-value index at evaluation time.
            let probe: Vec<usize> = a
                .args
                .iter()
                .enumerate()
                .filter(|(_, t)| !term_has_arith(t) && all_bound(t, &bound))
                .map(|(i, _)| i)
                .collect();
            let mut vs = Vec::new();
            a.collect_vars(&mut vs);
            let mut fresh = Vec::new();
            for v in vs {
                if bound.insert(v) {
                    fresh.push(v);
                }
            }
            let key = sig_key(a, traces);
            joins.push(key);
            steps.push(Step::Join {
                pattern: a,
                key,
                fresh,
                probe,
            });
            continue;
        }
        // 4. Negative literals once bound (safety guarantees this succeeds).
        if let Some(i) = remaining.iter().position(|l| match l {
            Literal::Neg(a) => {
                let mut vs = Vec::new();
                a.collect_vars(&mut vs);
                vs.iter().all(|v| bound.contains(v))
            }
            _ => false,
        }) {
            let Literal::Neg(a) = remaining.remove(i) else {
                unreachable!()
            };
            steps.push(Step::Naf(a));
            continue;
        }
        // Safety said this cannot happen.
        let lit = remaining[0];
        let mut vs = Vec::new();
        lit.collect_vars(&mut vs);
        let var = vs
            .into_iter()
            .find(|v| !bound.contains(v))
            .unwrap_or(Symbol::new("_"));
        return Err(GroundError::UnsafeRule {
            rule: render(),
            var,
        });
    }
    let head_key = head.map(|h| sig_key(h, traces));
    Ok(ScheduledRule {
        head,
        head_key,
        steps,
        joins,
    })
}

/// True if the term contains an arithmetic subterm. Arithmetic patterns
/// never match structurally (`Term::match_ground`), so such argument
/// positions are excluded from index probing.
fn term_has_arith(t: &Term) -> bool {
    match t {
        Term::Arith(..) => true,
        Term::Func(_, args) => args.iter().any(term_has_arith),
        Term::Int(_) | Term::Sym(_) | Term::Var(_) => false,
    }
}

/// Per-signature slice of the join index, with the delta window of the
/// current semi-naive round.
///
/// `ids[..frontier_start]` are *old* atoms (derived before the current
/// round's delta), `ids[frontier_start..frontier_end]` are the *delta*, and
/// atoms appended past `frontier_end` stay invisible until the next round.
#[derive(Clone, Debug, Default)]
struct SigEntry {
    ids: Vec<AtomId>,
    frontier_start: usize,
    frontier_end: usize,
    /// Argument-value index: for each argument position, ground value →
    /// ascending positions into `ids`. Joins with bound arguments probe the
    /// smallest bucket and clip it to their visibility window with binary
    /// search instead of scanning the whole slice.
    by_arg: Vec<HashMap<Term, Vec<u32>>>,
}

/// Join index over the current over-approximation, keyed by `Copy`
/// signature keys — candidate lookups clone nothing.
#[derive(Clone, Debug, Default)]
struct PossibleIndex {
    by_sig: HashMap<SigKey, SigEntry>,
    /// All derivable atoms (the heads emitted so far).
    derivable: HashSet<AtomId>,
}

impl PossibleIndex {
    fn insert(&mut self, id: AtomId, key: SigKey, atom: &Atom) -> bool {
        if !self.derivable.insert(id) {
            return false;
        }
        let e = self.by_sig.entry(key).or_default();
        if e.by_arg.len() != atom.args.len() {
            // First atom of this signature sizes the per-position maps (the
            // key fixes the arity, so this happens exactly once).
            e.by_arg.resize_with(atom.args.len(), HashMap::new);
        }
        let pos = u32::try_from(e.ids.len()).expect("signature index overflow");
        e.ids.push(id);
        for (k, arg) in atom.args.iter().enumerate() {
            e.by_arg[k].entry(arg.clone()).or_default().push(pos);
        }
        true
    }

    /// Rotates every delta window forward: the previous delta becomes old,
    /// atoms appended since become the new delta. Returns true if any
    /// signature gained atoms (i.e. another round is needed).
    fn advance(&mut self) -> bool {
        let mut any = false;
        for e in self.by_sig.values_mut() {
            e.frontier_start = e.frontier_end;
            e.frontier_end = e.ids.len();
            if e.frontier_end > e.frontier_start {
                any = true;
            }
        }
        any
    }

    fn has_delta(&self, key: SigKey) -> bool {
        self.by_sig
            .get(&key)
            .is_some_and(|e| e.frontier_end > e.frontier_start)
    }
}

/// Which window each join of a rule variant reads.
#[derive(Clone, Copy, Debug)]
enum JoinPlan {
    /// Every join reads the full visible window (seed pass / naive sweep).
    Full,
    /// Semi-naive variant: the join at this ordinal reads the delta window,
    /// earlier joins read pre-delta atoms, later joins read everything
    /// visible.
    Delta(usize),
}

fn plan_range(entry: &SigEntry, join_idx: usize, plan: JoinPlan, naive: bool) -> (usize, usize) {
    if naive {
        // Naive sweeps re-read the whole atom set every pass (frozen at the
        // pass boundary, like every other venue) and re-run until a full
        // sweep derives nothing new.
        return (0, entry.ids.len());
    }
    match plan {
        JoinPlan::Full => (0, entry.frontier_end),
        JoinPlan::Delta(d) => {
            if join_idx < d {
                (0, entry.frontier_start)
            } else if join_idx == d {
                (entry.frontier_start, entry.frontier_end)
            } else {
                (0, entry.frontier_end)
            }
        }
    }
}

/// Immutable view of the engine state one saturation pass reads. Shared by
/// every worker evaluating units of the pass — the atom table and join
/// index stay frozen until the merge step folds the results back in.
struct EvalView<'e> {
    table: &'e AtomTable,
    possible: &'e PossibleIndex,
    naive: bool,
    deadline: Deadline,
    max_atoms: usize,
}

/// One complete body instantiation produced by a worker. The merge step
/// interns the head and negative atoms; positive atoms need no interning —
/// they are the matched candidates, recorded by id during the walk.
struct Emission {
    /// Substituted ground head (`None` for constraints).
    head: Option<Atom>,
    /// Matched positive body atom ids, sorted and deduplicated.
    pos: Vec<AtomId>,
    /// Substituted ground negative body atoms, in body-step order.
    negs: Vec<Atom>,
}

/// A work unit's result: counters plus its emissions in walk order.
#[derive(Default)]
struct UnitOut {
    rules_instantiated: u64,
    join_candidates: u64,
    emissions: Vec<Emission>,
}

/// One schedulable work unit of a saturation pass: a rule variant whose
/// first-join candidate window is optionally chunked so large frontiers
/// spread across pool workers. Unit decomposition depends only on the grain
/// and the window sizes — never on the thread count — and the merge step
/// consumes results strictly in unit order, so the output is byte-identical
/// for any decomposition and any execution venue.
struct Unit<'a, 'p> {
    rule: &'a ScheduledRule<'p>,
    plan: JoinPlan,
    /// Absolute `[start, end)` position range the ordinal-0 join reads
    /// (`None` when the rule does not start with a join).
    chunk: Option<(usize, usize)>,
}

/// The candidate positions one join visits: a window-clipped bucket of the
/// argument-value index, or a full window scan when nothing is bound.
enum Candidates<'e> {
    /// Ascending positions (into `SigEntry::ids`) from the probed bucket.
    Probed(&'e [u32]),
    /// Scan `ids[start..end]` directly.
    Scan(std::ops::Range<usize>),
}

impl Candidates<'_> {
    fn len(&self) -> usize {
        match self {
            Candidates::Probed(p) => p.len(),
            Candidates::Scan(r) => r.len(),
        }
    }
}

/// Selects the candidates for a join over `entry` restricted to the window
/// `[start, end)`. With probe positions available, substitutes each probed
/// argument, looks up its value bucket, and returns the smallest bucket
/// clipped to the window; `None` means no candidate can match (a probed
/// value has no bucket, or its substitution failed). Every returned
/// candidate is still verified with `match_ground` — probing only needs to
/// be a superset of the matches, which bucket equality guarantees.
fn select_candidates<'e>(
    entry: &'e SigEntry,
    pattern: &Atom,
    probe: &[usize],
    bindings: &Bindings,
    start: usize,
    end: usize,
) -> Option<Candidates<'e>> {
    if probe.is_empty() {
        return Some(Candidates::Scan(start..end));
    }
    let mut best: Option<&'e Vec<u32>> = None;
    for &p in probe {
        let val = pattern.args[p].substitute(bindings)?;
        let bucket = entry.by_arg[p].get(&val)?;
        if best.is_none_or(|b| bucket.len() < b.len()) {
            best = Some(bucket);
        }
    }
    let bucket = best.expect("probe positions are non-empty");
    let lo = bucket.partition_point(|&pos| (pos as usize) < start);
    let hi = bucket.partition_point(|&pos| (pos as usize) < end);
    Some(Candidates::Probed(&bucket[lo..hi]))
}

/// Invariant inputs of one unit evaluation; the recursion varies only the
/// step cursor, the bindings, and the matched-atom path.
struct WalkFrame<'w, 'p> {
    view: &'w EvalView<'w>,
    rule: &'w ScheduledRule<'p>,
    chunk: Option<(usize, usize)>,
    plan: JoinPlan,
}

/// Evaluates one unit against the frozen view, returning its emissions and
/// counters. A unit whose emission buffer alone exceeds the atom budget
/// fails fast with [`GroundError::Budget`] — a pessimistic bound (the exact
/// check happens at merge) that keeps a single unit from buffering
/// unbounded memory.
fn eval_unit(view: &EvalView<'_>, unit: &Unit<'_, '_>) -> Result<UnitOut, GroundError> {
    let mut out = UnitOut::default();
    let frame = WalkFrame {
        view,
        rule: unit.rule,
        chunk: unit.chunk,
        plan: unit.plan,
    };
    let mut bindings = Bindings::new();
    let mut path = Vec::new();
    walk_unit(&frame, 0, 0, &mut bindings, &mut path, &mut out)?;
    Ok(out)
}

fn walk_unit(
    frame: &WalkFrame<'_, '_>,
    step: usize,
    join_idx: usize,
    bindings: &mut Bindings,
    path: &mut Vec<AtomId>,
    out: &mut UnitOut,
) -> Result<(), GroundError> {
    let view = frame.view;
    let rule = frame.rule;
    if view.deadline.expired() {
        return Err(GroundError::Exhausted(Exhausted::Deadline));
    }
    if step == rule.steps.len() {
        // Complete binding: emit. Substitution failures (e.g. head
        // arithmetic dividing by zero) skip the whole emission.
        out.rules_instantiated += 1;
        let head = match rule.head {
            Some(h) => match h.substitute(bindings) {
                Some(g) => Some(g),
                None => return Ok(()),
            },
            None => None,
        };
        let mut negs = Vec::new();
        for s in &rule.steps {
            if let Step::Naf(a) = s {
                match a.substitute(bindings) {
                    Some(g) => negs.push(g),
                    None => return Ok(()),
                }
            }
        }
        let mut pos = path.clone();
        pos.sort_unstable();
        pos.dedup();
        out.emissions.push(Emission { head, pos, negs });
        if out.emissions.len() > view.max_atoms {
            return Err(GroundError::Budget {
                max_atoms: view.max_atoms,
            });
        }
        return Ok(());
    }
    match &rule.steps[step] {
        Step::Filter(op, a, b) => {
            let (Some(ga), Some(gb)) = (a.substitute(bindings), b.substitute(bindings)) else {
                return Ok(());
            };
            if op.eval(&ga, &gb) {
                walk_unit(frame, step + 1, join_idx, bindings, path, out)?;
            }
            Ok(())
        }
        Step::Bind(v, expr) => {
            let Some(val) = expr.substitute(bindings) else {
                return Ok(());
            };
            bindings.insert(*v, val);
            walk_unit(frame, step + 1, join_idx, bindings, path, out)?;
            bindings.remove(v);
            Ok(())
        }
        Step::Naf(_) => walk_unit(frame, step + 1, join_idx, bindings, path, out),
        Step::Join {
            pattern,
            key,
            fresh,
            probe,
        } => {
            let Some(entry) = view.possible.by_sig.get(key) else {
                return Ok(());
            };
            let (start, end) = match (join_idx, frame.chunk) {
                // The unit's chunk overrides the ordinal-0 window.
                (0, Some((cs, ce))) => (cs, ce),
                _ => plan_range(entry, join_idx, frame.plan, view.naive),
            };
            if start >= end {
                return Ok(());
            }
            let Some(cands) = select_candidates(entry, pattern, probe, bindings, start, end) else {
                return Ok(());
            };
            out.join_candidates += cands.len() as u64;
            let visit = |id: AtomId,
                         bindings: &mut Bindings,
                         path: &mut Vec<AtomId>,
                         out: &mut UnitOut|
             -> Result<(), GroundError> {
                if pattern.match_ground(view.table.resolve(id), bindings) {
                    path.push(id);
                    walk_unit(frame, step + 1, join_idx + 1, bindings, path, out)?;
                    path.pop();
                }
                // Undo whatever the match bound (a failed match may bind a
                // prefix); pre-existing bindings are never overwritten.
                for v in fresh {
                    bindings.remove(v);
                }
                Ok(())
            };
            match cands {
                Candidates::Probed(positions) => {
                    for &p in positions {
                        visit(entry.ids[p as usize], bindings, path, out)?;
                    }
                }
                Candidates::Scan(range) => {
                    for pos in range {
                        visit(entry.ids[pos], bindings, path, out)?;
                    }
                }
            }
            Ok(())
        }
    }
}

/// A ground weak-constraint instantiation awaiting merge.
struct WeakEmission {
    pos: Vec<AtomId>,
    negs: Vec<Atom>,
    weight: i64,
    level: i64,
}

/// Result of evaluating one weak constraint over the final approximation.
#[derive(Default)]
struct WeakOut {
    rules_instantiated: u64,
    join_candidates: u64,
    emissions: Vec<WeakEmission>,
}

/// Invariant inputs of one weak-constraint evaluation.
struct WeakFrame<'w, 'p> {
    view: &'w EvalView<'w>,
    rule: &'w ScheduledRule<'p>,
    weight: &'w Term,
    level: i64,
}

fn walk_weak_unit(
    frame: &WeakFrame<'_, '_>,
    step: usize,
    bindings: &mut Bindings,
    path: &mut Vec<AtomId>,
    out: &mut WeakOut,
) {
    let view = frame.view;
    let rule = frame.rule;
    if step == rule.steps.len() {
        out.rules_instantiated += 1;
        let Some(Term::Int(w)) = frame.weight.substitute(bindings) else {
            return;
        };
        let mut negs = Vec::new();
        for s in &rule.steps {
            if let Step::Naf(a) = s {
                match a.substitute(bindings) {
                    Some(g) => negs.push(g),
                    None => return,
                }
            }
        }
        let mut pos = path.clone();
        pos.sort_unstable();
        pos.dedup();
        out.emissions.push(WeakEmission {
            pos,
            negs,
            weight: w,
            level: frame.level,
        });
        return;
    }
    match &rule.steps[step] {
        Step::Filter(op, a, b) => {
            let (Some(ga), Some(gb)) = (a.substitute(bindings), b.substitute(bindings)) else {
                return;
            };
            if op.eval(&ga, &gb) {
                walk_weak_unit(frame, step + 1, bindings, path, out);
            }
        }
        Step::Bind(v, expr) => {
            let Some(val) = expr.substitute(bindings) else {
                return;
            };
            bindings.insert(*v, val);
            walk_weak_unit(frame, step + 1, bindings, path, out);
            bindings.remove(v);
        }
        Step::Naf(_) => walk_weak_unit(frame, step + 1, bindings, path, out),
        Step::Join {
            pattern,
            key,
            fresh,
            probe,
        } => {
            let Some(entry) = view.possible.by_sig.get(key) else {
                return;
            };
            let end = if view.naive {
                entry.ids.len()
            } else {
                entry.frontier_end
            };
            if end == 0 {
                return;
            }
            let Some(cands) = select_candidates(entry, pattern, probe, bindings, 0, end) else {
                return;
            };
            out.join_candidates += cands.len() as u64;
            let mut visit = |id: AtomId, bindings: &mut Bindings, path: &mut Vec<AtomId>| {
                if pattern.match_ground(view.table.resolve(id), bindings) {
                    path.push(id);
                    walk_weak_unit(frame, step + 1, bindings, path, out);
                    path.pop();
                }
                for v in fresh {
                    bindings.remove(v);
                }
            };
            match cands {
                Candidates::Probed(positions) => {
                    for &p in positions {
                        visit(entry.ids[p as usize], bindings, path);
                    }
                }
                Candidates::Scan(range) => {
                    for pos in range {
                        visit(entry.ids[pos], bindings, path);
                    }
                }
            }
        }
    }
}

/// Lazily constructed pool for one grounding run: worker threads are only
/// spawned when a pass actually has enough work to fan out, and
/// `threads <= 1` never allocates anything.
struct PoolSlot {
    threads: usize,
    pool: Option<WorkPool>,
}

impl PoolSlot {
    fn new(threads: usize) -> PoolSlot {
        PoolSlot {
            threads: threads.max(1),
            pool: None,
        }
    }

    fn get(&mut self) -> Option<&WorkPool> {
        if self.threads <= 1 {
            return None;
        }
        Some(self.pool.get_or_insert_with(|| WorkPool::new(self.threads)))
    }
}

/// The grounding engine: interned atoms, the join index, emitted rules, and
/// work counters. Cloneable so [`IncrementalGrounder`] can snapshot a
/// saturated base.
#[derive(Clone, Debug)]
struct Engine {
    table: AtomTable,
    traces: TraceIds,
    possible: PossibleIndex,
    seen_rules: HashSet<GroundRule>,
    rules: Vec<GroundRule>,
    weaks: Vec<GroundWeak>,
    seen_weaks: HashSet<GroundWeak>,
    naive: bool,
    opts: GroundOptions,
    stats: GroundStats,
}

impl Engine {
    fn new(opts: GroundOptions, naive: bool) -> Engine {
        Engine {
            table: AtomTable::new(),
            traces: TraceIds::default(),
            possible: PossibleIndex::default(),
            seen_rules: HashSet::new(),
            rules: Vec::new(),
            weaks: Vec::new(),
            seen_weaks: HashSet::new(),
            naive,
            opts,
            stats: GroundStats::default(),
        }
    }

    /// Decomposes one rule variant into work units, chunking the ordinal-0
    /// join window by [`GroundOptions::parallel_grain`] so large frontiers
    /// spread across pool workers. The decomposition depends only on the
    /// grain and the window sizes — never on the thread count — so the
    /// merged emission sequence matches the unchunked walk exactly.
    fn push_units<'a, 'p>(
        &self,
        rule: &'a ScheduledRule<'p>,
        plan: JoinPlan,
        units: &mut Vec<Unit<'a, 'p>>,
    ) {
        let Some(key0) = rule.joins.first() else {
            // No joins (e.g. a fact): a single chunkless unit.
            units.push(Unit {
                rule,
                plan,
                chunk: None,
            });
            return;
        };
        let Some(entry) = self.possible.by_sig.get(key0) else {
            return;
        };
        let (start, end) = plan_range(entry, 0, plan, self.naive);
        if start >= end {
            return;
        }
        let grain = self.opts.parallel_grain.max(1);
        let mut cs = start;
        while cs < end {
            let ce = (cs + grain).min(end);
            units.push(Unit {
                rule,
                plan,
                chunk: Some((cs, ce)),
            });
            cs = ce;
        }
    }

    /// Evaluates `units` against a frozen view of the current state — fanned
    /// out over the pool when a pass has enough work, serially otherwise —
    /// then merges the results strictly in unit order. The frozen-view +
    /// ordered-merge discipline makes the output byte-identical across
    /// execution venues and thread counts.
    fn run_pass(&mut self, units: &[Unit<'_, '_>], pool: &mut PoolSlot) -> Result<(), GroundError> {
        self.stats.passes += 1;
        if units.is_empty() {
            return Ok(());
        }
        let work: usize = units
            .iter()
            .map(|u| u.chunk.map_or(1, |(s, e)| e - s))
            .sum();
        let mut via_pool = false;
        let outs: Vec<Option<Result<UnitOut, GroundError>>> = {
            let view = EvalView {
                table: &self.table,
                possible: &self.possible,
                naive: self.naive,
                deadline: self.opts.deadline,
                max_atoms: self.opts.max_atoms,
            };
            let engage = units.len() >= 2 && work >= self.opts.parallel_grain.max(1);
            match if engage { pool.get() } else { None } {
                Some(p) => {
                    via_pool = true;
                    let slots: Vec<Mutex<Option<Result<UnitOut, GroundError>>>> =
                        units.iter().map(|_| Mutex::new(None)).collect();
                    let job = |i: usize| {
                        let r = eval_unit(&view, &units[i]);
                        let control = if r.is_err() {
                            UnitControl::Cancel
                        } else {
                            UnitControl::Continue
                        };
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
                        control
                    };
                    if let Err(e) = p.run(units.len(), &job) {
                        // A worker panicked mid-unit: re-raise on the caller
                        // so the defect surfaces instead of silently
                        // dropping that unit's emissions.
                        panic!("grounding pool: {e}");
                    }
                    slots
                        .into_iter()
                        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
                        .collect()
                }
                None => {
                    let mut outs: Vec<Option<Result<UnitOut, GroundError>>> =
                        Vec::with_capacity(units.len());
                    for unit in units {
                        let r = eval_unit(&view, unit);
                        let failed = r.is_err();
                        outs.push(Some(r));
                        if failed {
                            break;
                        }
                    }
                    outs.resize_with(units.len(), || None);
                    outs
                }
            }
        };
        if via_pool {
            self.stats.parallel_units += outs.iter().flatten().count() as u64;
        }
        // Surface the first failure in unit order — deterministic no matter
        // which worker hit its error first.
        for o in &outs {
            if let Some(Err(e)) = o {
                return Err(e.clone());
            }
        }
        for (unit, out) in units.iter().zip(outs) {
            let Some(Ok(out)) = out else { continue };
            self.merge_unit(unit, out)?;
        }
        Ok(())
    }

    /// Folds one unit's result into the engine in emission (walk) order:
    /// interns the head and negative atoms, dedups against `seen_rules`,
    /// indexes new head atoms, and enforces the exact atom budget after
    /// each emission.
    fn merge_unit(&mut self, unit: &Unit<'_, '_>, out: UnitOut) -> Result<(), GroundError> {
        self.stats.rules_instantiated += out.rules_instantiated;
        self.stats.join_candidates += out.join_candidates;
        for em in out.emissions {
            let head = em.head.as_ref().map(|h| self.table.intern(h));
            let mut neg: Vec<AtomId> = em.negs.iter().map(|a| self.table.intern(a)).collect();
            neg.sort_unstable();
            neg.dedup();
            let gr = GroundRule {
                head,
                pos: em.pos,
                neg,
            };
            if self.seen_rules.insert(gr.clone()) {
                if let Some(h) = gr.head {
                    let key = unit.rule.head_key.expect("headed rules carry a head key");
                    let atom = em.head.as_ref().expect("head id implies a head atom");
                    self.possible.insert(h, key, atom);
                }
                self.rules.push(gr);
            }
            // Exact budget check after every emission: semi-naive evaluation
            // visits each instantiation once, so an entry-only check would
            // let a small program overshoot the cap and finish without ever
            // reporting exhaustion.
            if self.table.len() > self.opts.max_atoms {
                return Err(GroundError::Budget {
                    max_atoms: self.opts.max_atoms,
                });
            }
        }
        Ok(())
    }

    /// Evaluates every rule once against the currently visible window.
    fn seed_pass(
        &mut self,
        rules: &[ScheduledRule<'_>],
        pool: &mut PoolSlot,
    ) -> Result<(), GroundError> {
        let mut units = Vec::new();
        for rule in rules {
            self.push_units(rule, JoinPlan::Full, &mut units);
        }
        self.run_pass(&units, pool)
    }

    /// Semi-naive rounds: repeat until no new atoms appear, evaluating only
    /// the delta variants whose join signature actually gained atoms.
    fn delta_rounds(
        &mut self,
        sets: &[&[ScheduledRule<'_>]],
        pool: &mut PoolSlot,
    ) -> Result<(), GroundError> {
        while self.possible.advance() {
            let mut units = Vec::new();
            for rules in sets {
                for rule in *rules {
                    for (d, key) in rule.joins.iter().enumerate() {
                        if !self.possible.has_delta(*key) {
                            continue;
                        }
                        self.push_units(rule, JoinPlan::Delta(d), &mut units);
                    }
                }
            }
            self.run_pass(&units, pool)?;
        }
        Ok(())
    }

    /// Naive saturation: re-evaluate every rule over the full atom set until
    /// a sweep emits no new ground rule. Retained as the reference
    /// implementation for differential testing and benchmarks.
    fn naive_fixpoint(
        &mut self,
        rules: &[ScheduledRule<'_>],
        pool: &mut PoolSlot,
    ) -> Result<(), GroundError> {
        loop {
            let before = self.rules.len();
            self.seed_pass(rules, pool)?;
            if self.rules.len() == before {
                return Ok(());
            }
        }
    }

    /// Grounds `program`'s weak constraints against the final
    /// over-approximation.
    fn ground_weaks(&mut self, program: &Program) -> Result<(), GroundError> {
        for weak in program.weak_constraints() {
            let sched = schedule_weak(weak, &mut self.traces)?;
            let mut out = WeakOut::default();
            {
                let view = EvalView {
                    table: &self.table,
                    possible: &self.possible,
                    naive: self.naive,
                    deadline: self.opts.deadline,
                    max_atoms: self.opts.max_atoms,
                };
                let frame = WeakFrame {
                    view: &view,
                    rule: &sched,
                    weight: &weak.weight,
                    level: weak.level,
                };
                let mut bindings = Bindings::new();
                let mut path = Vec::new();
                walk_weak_unit(&frame, 0, &mut bindings, &mut path, &mut out);
            }
            self.stats.rules_instantiated += out.rules_instantiated;
            self.stats.join_candidates += out.join_candidates;
            for em in out.emissions {
                let mut neg: Vec<AtomId> = em.negs.iter().map(|a| self.table.intern(a)).collect();
                neg.sort_unstable();
                neg.dedup();
                let gw = GroundWeak {
                    pos: em.pos,
                    neg,
                    weight: em.weight,
                    level: em.level,
                };
                if self.seen_weaks.insert(gw.clone()) {
                    self.weaks.push(gw);
                }
            }
        }
        Ok(())
    }

    /// Consumes the engine, applying fact-folding simplification (unless
    /// disabled) and producing the final [`GroundProgram`].
    fn finish(self) -> GroundProgram {
        let Engine {
            table,
            possible,
            rules: ground_rules,
            weaks: ground_weaks,
            opts,
            ..
        } = self;

        if !opts.simplify {
            // Keep the instantiation untouched (used by explanation tooling).
            let mut definite_facts: Vec<AtomId> = ground_rules
                .iter()
                .filter(|r| r.is_fact())
                .map(|r| r.head.expect("facts have heads"))
                .collect();
            definite_facts.sort_unstable();
            definite_facts.dedup();
            let inconsistent = ground_rules
                .iter()
                .any(|r| r.is_constraint() && r.pos.is_empty() && r.neg.is_empty());
            return GroundProgram {
                table,
                rules: ground_rules,
                weaks: ground_weaks,
                definite_facts,
                inconsistent,
            };
        }

        // --- Simplification ------------------------------------------------
        // Definite facts: least fixpoint over rules whose negative atoms are
        // never derivable, via counter-based forward chaining (each eligible
        // rule counts its outstanding positive premises; an atom becoming a
        // fact decrements its watchers) — one pass over the rules instead of
        // a quadratic fixpoint.
        let derivable = &possible.derivable;
        let mut fact_set: HashSet<AtomId> = HashSet::new();
        {
            let mut need: Vec<usize> = Vec::with_capacity(ground_rules.len());
            let mut watch: HashMap<AtomId, Vec<usize>> = HashMap::new();
            let mut queue: Vec<AtomId> = Vec::new();
            for (ri, r) in ground_rules.iter().enumerate() {
                let eligible = r.head.is_some() && r.neg.iter().all(|n| !derivable.contains(n));
                if !eligible {
                    need.push(usize::MAX);
                    continue;
                }
                need.push(r.pos.len());
                if r.pos.is_empty() {
                    let h = r.head.expect("eligible rules have heads");
                    if fact_set.insert(h) {
                        queue.push(h);
                    }
                } else {
                    for &p in &r.pos {
                        watch.entry(p).or_default().push(ri);
                    }
                }
            }
            while let Some(a) = queue.pop() {
                let Some(watchers) = watch.get(&a) else {
                    continue;
                };
                for &ri in watchers {
                    need[ri] -= 1;
                    if need[ri] == 0 {
                        let h = ground_rules[ri].head.expect("watched rules have heads");
                        if fact_set.insert(h) {
                            queue.push(h);
                        }
                    }
                }
            }
        }

        let mut simplified: Vec<GroundRule> = Vec::new();
        let mut seen_simplified: HashSet<GroundRule> = HashSet::new();
        let mut inconsistent = false;
        for r in &ground_rules {
            // `not a` with `a` a definite fact blocks the rule.
            if r.neg.iter().any(|n| fact_set.contains(n)) {
                continue;
            }
            // A rule whose head is a definite fact contributes nothing beyond
            // the fact itself.
            if r.head.is_some_and(|h| fact_set.contains(&h)) {
                continue;
            }
            let pos: Vec<AtomId> = r
                .pos
                .iter()
                .copied()
                .filter(|p| !fact_set.contains(p))
                .collect();
            let neg: Vec<AtomId> = r
                .neg
                .iter()
                .copied()
                .filter(|n| derivable.contains(n))
                .collect();
            // A positive literal that can never be derived falsifies the body.
            if pos
                .iter()
                .any(|p| !derivable.contains(p) && !fact_set.contains(p))
            {
                continue;
            }
            let new_rule = GroundRule {
                head: r.head,
                pos,
                neg,
            };
            if new_rule.is_constraint() && new_rule.pos.is_empty() && new_rule.neg.is_empty() {
                inconsistent = true;
            }
            if seen_simplified.insert(new_rule.clone()) {
                simplified.push(new_rule);
            }
        }
        let mut definite_facts: Vec<AtomId> = fact_set.into_iter().collect();
        definite_facts.sort_unstable();
        for &f in &definite_facts {
            let fact = GroundRule {
                head: Some(f),
                pos: Vec::new(),
                neg: Vec::new(),
            };
            if seen_simplified.insert(fact.clone()) {
                simplified.push(fact);
            }
        }

        // Simplify weak constraints with the same fact/derivability knowledge.
        let mut weaks: Vec<GroundWeak> = Vec::new();
        let mut seen_weaks: HashSet<GroundWeak> = HashSet::new();
        let fact_lookup: HashSet<AtomId> = definite_facts.iter().copied().collect();
        for w in ground_weaks {
            if w.neg.iter().any(|n| fact_lookup.contains(n)) {
                continue;
            }
            if w.pos
                .iter()
                .any(|p| !derivable.contains(p) && !fact_lookup.contains(p))
            {
                continue;
            }
            let pos: Vec<AtomId> = w
                .pos
                .iter()
                .copied()
                .filter(|p| !fact_lookup.contains(p))
                .collect();
            let neg: Vec<AtomId> = w
                .neg
                .iter()
                .copied()
                .filter(|n| derivable.contains(n))
                .collect();
            let new_weak = GroundWeak {
                pos,
                neg,
                weight: w.weight,
                level: w.level,
            };
            if seen_weaks.insert(new_weak.clone()) {
                weaks.push(new_weak);
            }
        }

        GroundProgram {
            table,
            rules: simplified,
            weaks,
            definite_facts,
            inconsistent,
        }
    }
}

fn run_engine(
    program: &Program,
    opts: GroundOptions,
    naive: bool,
) -> Result<(GroundProgram, GroundStats), GroundError> {
    let mut span = agenp_obs::span!(
        "asp.ground",
        mode = if naive { "naive" } else { "seminaive" },
        rules = program.rules().len(),
    );
    let result = run_engine_inner(program, opts, naive);
    match &result {
        Ok((_, stats)) => {
            span.record("passes", stats.passes);
            span.record("rules_instantiated", stats.rules_instantiated);
            span.record("join_candidates", stats.join_candidates);
            crate::obs::GroundMetrics::publish(stats);
        }
        Err(_) => {
            span.record("error", true);
            if agenp_obs::enabled() {
                crate::obs::GroundMetrics::global().errors.incr();
            }
        }
    }
    result
}

fn run_engine_inner(
    program: &Program,
    opts: GroundOptions,
    naive: bool,
) -> Result<(GroundProgram, GroundStats), GroundError> {
    let mut engine = Engine::new(opts, naive);
    let mut pool = PoolSlot::new(opts.effective_threads());
    let scheduled = schedule_program(program, &mut engine.traces)?;
    if naive {
        engine.naive_fixpoint(&scheduled, &mut pool)?;
    } else {
        engine.seed_pass(&scheduled, &mut pool)?;
        engine.delta_rounds(&[&scheduled], &mut pool)?;
    }
    engine.ground_weaks(program)?;
    let stats = engine.stats;
    Ok((engine.finish(), stats))
}

/// Grounds `program` with default options (semi-naive evaluation).
///
/// # Errors
///
/// Returns [`GroundError::UnsafeRule`] if a rule is unsafe, or
/// [`GroundError::Budget`] if instantiation explodes past the atom budget.
pub fn ground(program: &Program) -> Result<GroundProgram, GroundError> {
    ground_with(program, GroundOptions::default())
}

/// Grounds `program` with explicit [`GroundOptions`]. The saturation
/// strategy is selected by [`GroundOptions::mode`]; both modes produce
/// identical output.
///
/// # Errors
///
/// See [`ground`].
pub fn ground_with(program: &Program, opts: GroundOptions) -> Result<GroundProgram, GroundError> {
    ground_with_stats(program, opts).map(|(g, _)| g)
}

/// Like [`ground_with`], additionally reporting [`GroundStats`] counters.
///
/// # Errors
///
/// See [`ground`].
pub fn ground_with_stats(
    program: &Program,
    opts: GroundOptions,
) -> Result<(GroundProgram, GroundStats), GroundError> {
    run_engine(program, opts, opts.mode == GroundMode::Naive)
}

/// Grounds `program` with the retained *naive* saturation strategy and
/// default options.
///
/// # Errors
///
/// See [`ground`].
#[deprecated(note = "use `ground_with` with `GroundOptions::with_mode(GroundMode::Naive)`")]
pub fn ground_naive(program: &Program) -> Result<GroundProgram, GroundError> {
    ground_with(
        program,
        GroundOptions::default().with_mode(GroundMode::Naive),
    )
}

/// Naive-reference grounding with explicit [`GroundOptions`].
///
/// # Errors
///
/// See [`ground`].
#[deprecated(note = "use `ground_with` with `GroundOptions::with_mode(GroundMode::Naive)`")]
pub fn ground_naive_with(
    program: &Program,
    opts: GroundOptions,
) -> Result<GroundProgram, GroundError> {
    ground_with(program, opts.with_mode(GroundMode::Naive))
}

/// Like naive [`ground_with`], additionally reporting [`GroundStats`].
///
/// # Errors
///
/// See [`ground`].
#[deprecated(note = "use `ground_with_stats` with `GroundOptions::with_mode(GroundMode::Naive)`")]
pub fn ground_naive_with_stats(
    program: &Program,
    opts: GroundOptions,
) -> Result<(GroundProgram, GroundStats), GroundError> {
    ground_with_stats(program, opts.with_mode(GroundMode::Naive))
}

/// A saturated base program that can be re-grounded with small rule deltas
/// without re-deriving the base.
///
/// Construction runs semi-naive saturation over the base once and snapshots
/// the engine (atom table, join index, emitted rules). Each
/// [`ground_delta`](IncrementalGrounder::ground_delta) call clones the
/// snapshot, seeds the delta rules against the full saturated atom set, and
/// resumes semi-naive rounds over base + delta rules — so only consequences
/// that actually involve the delta are computed. The learner uses this to
/// evaluate each candidate hypothesis as a delta on top of a once-grounded
/// (grammar + context + example) base.
#[derive(Clone, Debug)]
pub struct IncrementalGrounder {
    base: Program,
    engine: Engine,
    base_stats: GroundStats,
}

impl IncrementalGrounder {
    /// Saturates `base` and snapshots the grounding state.
    ///
    /// # Errors
    ///
    /// See [`ground`].
    pub fn new(base: &Program, opts: GroundOptions) -> Result<IncrementalGrounder, GroundError> {
        let mut engine = Engine::new(opts, false);
        let mut pool = PoolSlot::new(opts.effective_threads());
        let scheduled = schedule_program(base, &mut engine.traces)?;
        engine.seed_pass(&scheduled, &mut pool)?;
        engine.delta_rounds(&[&scheduled], &mut pool)?;
        let base_stats = engine.stats;
        engine.stats = GroundStats::default();
        Ok(IncrementalGrounder {
            base: base.clone(),
            engine,
            base_stats,
        })
    }

    /// Counters spent saturating the base (once, at construction).
    pub fn base_stats(&self) -> GroundStats {
        self.base_stats
    }

    /// The base program this grounder was built from.
    pub fn base(&self) -> &Program {
        &self.base
    }

    /// Grounds base + `delta`, reusing the saturated base state. With an
    /// empty delta this is equivalent to `ground_with(base, opts)`.
    ///
    /// # Errors
    ///
    /// See [`ground`].
    pub fn ground_delta(&self, delta: &[Rule]) -> Result<GroundProgram, GroundError> {
        self.ground_delta_with_stats(delta).map(|(g, _)| g)
    }

    /// Like [`ground_delta`](IncrementalGrounder::ground_delta), additionally
    /// reporting the counters spent on this delta (the base saturation cost
    /// is *not* included; see
    /// [`base_stats`](IncrementalGrounder::base_stats)).
    ///
    /// # Errors
    ///
    /// See [`ground`].
    pub fn ground_delta_with_stats(
        &self,
        delta: &[Rule],
    ) -> Result<(GroundProgram, GroundStats), GroundError> {
        let mut span = agenp_obs::span!("asp.ground.delta", delta_rules = delta.len());
        let result = self.ground_delta_inner(delta);
        if span.is_live() {
            match &result {
                Ok((_, stats)) => {
                    span.record("passes", stats.passes);
                    span.record("rules_instantiated", stats.rules_instantiated);
                    crate::obs::GroundMetrics::publish(stats);
                }
                Err(_) => {
                    span.record("error", true);
                    crate::obs::GroundMetrics::global().errors.incr();
                }
            }
        }
        result
    }

    fn ground_delta_inner(
        &self,
        delta: &[Rule],
    ) -> Result<(GroundProgram, GroundStats), GroundError> {
        let mut engine = self.engine.clone();
        let base_sched = schedule_program(&self.base, &mut engine.traces)?;
        let delta_sched: Vec<ScheduledRule<'_>> = delta
            .iter()
            .map(|r| schedule_rule(r, &mut engine.traces))
            .collect::<Result<_, _>>()?;
        let mut pool = PoolSlot::new(engine.opts.effective_threads());
        // Seed only the delta rules over the full saturated base; base rules
        // already enumerated every pre-existing combination.
        engine.seed_pass(&delta_sched, &mut pool)?;
        engine.delta_rounds(&[&base_sched, &delta_sched], &mut pool)?;
        engine.ground_weaks(&self.base)?;
        let stats = engine.stats;
        Ok((engine.finish(), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atoms_of(g: &GroundProgram) -> Vec<String> {
        let mut v: Vec<String> = g
            .definite_facts()
            .iter()
            .map(|&f| g.atoms().resolve(f).to_string())
            .collect();
        v.sort();
        v
    }

    /// Order-insensitive rendering for cross-grounder comparison (atom ids
    /// may differ between strategies).
    fn rendered_lines(g: &GroundProgram) -> Vec<String> {
        let mut lines: Vec<String> = g.to_string().lines().map(str::to_string).collect();
        lines.sort();
        lines
    }

    #[test]
    fn grounds_transitive_closure() {
        let p: Program = "
            edge(1, 2). edge(2, 3). edge(3, 4).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
        "
        .parse()
        .unwrap();
        let g = ground(&p).unwrap();
        let facts = atoms_of(&g);
        assert!(facts.contains(&"path(1, 4)".to_string()));
        assert!(facts.contains(&"path(2, 4)".to_string()));
        assert!(!facts.contains(&"path(4, 1)".to_string()));
        // 3 edges + 6 paths
        assert_eq!(facts.len(), 9);
    }

    #[test]
    fn arithmetic_binders_ground() {
        let p: Program = "
            num(0). num(1). num(2).
            succ(X, Y) :- num(X), Y = X + 1, Y <= 2.
        "
        .parse()
        .unwrap();
        let g = ground(&p).unwrap();
        let facts = atoms_of(&g);
        assert!(facts.contains(&"succ(0, 1)".to_string()));
        assert!(facts.contains(&"succ(1, 2)".to_string()));
        assert!(!facts.iter().any(|f| f.starts_with("succ(2")));
    }

    #[test]
    fn negation_is_kept_not_evaluated() {
        let p: Program = "
            a.
            b :- not c.
            c :- not b.
        "
        .parse()
        .unwrap();
        let g = ground(&p).unwrap();
        // a is a definite fact; b/c remain as a cycle through negation.
        assert!(atoms_of(&g).contains(&"a".to_string()));
        let cyclic: Vec<&GroundRule> = g.rules().iter().filter(|r| !r.neg.is_empty()).collect();
        assert_eq!(cyclic.len(), 2);
    }

    #[test]
    fn simplification_drops_blocked_rules() {
        let p: Program = "
            a.
            b :- not a.
            c :- not never.
        "
        .parse()
        .unwrap();
        let g = ground(&p).unwrap();
        let facts = atoms_of(&g);
        // b is blocked (a is a fact); c becomes a fact (never underivable).
        assert!(facts.contains(&"c".to_string()));
        assert!(!facts.contains(&"b".to_string()));
        assert!(!g.proven_inconsistent());
    }

    #[test]
    fn constraint_violation_detected_during_simplification() {
        let p: Program = "a. :- a.".parse().unwrap();
        let g = ground(&p).unwrap();
        assert!(g.proven_inconsistent());
    }

    #[test]
    fn unsafe_rules_are_rejected() {
        let p: Program = "p(X) :- not q(X).".parse().unwrap();
        match ground(&p) {
            Err(GroundError::UnsafeRule { var, .. }) => assert_eq!(var, Symbol::new("X")),
            other => panic!("expected unsafe-rule error, got {other:?}"),
        }
    }

    #[test]
    fn budget_is_enforced() {
        let p: Program = "
            n(1..50).
            p(X, Y, Z) :- n(X), n(Y), n(Z).
        "
        .parse()
        .unwrap();
        let err = ground_with(
            &p,
            GroundOptions {
                max_atoms: 1000,
                ..GroundOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, GroundError::Budget { .. }));
        assert_eq!(err.exhausted(), Some(Exhausted::Atoms));
    }

    #[test]
    fn deadline_is_enforced() {
        let p: Program = "
            n(1..20).
            p(X, Y) :- n(X), n(Y).
        "
        .parse()
        .unwrap();
        let err = ground_with(
            &p,
            GroundOptions {
                deadline: Deadline::after(std::time::Duration::ZERO),
                ..GroundOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, GroundError::Exhausted(Exhausted::Deadline));
        assert_eq!(err.exhausted(), Some(Exhausted::Deadline));
    }

    #[test]
    fn annotated_atoms_ground_per_trace() {
        let p: Program = "
            size(3)@1.
            size(X) :- size(X)@1.
        "
        .parse()
        .unwrap();
        let g = ground(&p).unwrap();
        let facts = atoms_of(&g);
        assert!(facts.contains(&"size(3)@1".to_string()));
        assert!(facts.contains(&"size(3)".to_string()));
    }

    #[test]
    fn comparison_filters_prune() {
        let p: Program = "
            n(1..5).
            big(X) :- n(X), X >= 4.
        "
        .parse()
        .unwrap();
        let g = ground(&p).unwrap();
        let facts = atoms_of(&g);
        assert_eq!(facts.iter().filter(|f| f.starts_with("big")).count(), 2);
    }

    #[test]
    fn symbolic_comparison_uses_term_order() {
        let p: Program = "
            item(apple). item(pear).
            first(X) :- item(X), X < pear.
        "
        .parse()
        .unwrap();
        let g = ground(&p).unwrap();
        assert!(atoms_of(&g).contains(&"first(apple)".to_string()));
        assert!(!atoms_of(&g).contains(&"first(pear)".to_string()));
    }

    #[test]
    fn seminaive_matches_naive_reference() {
        let p: Program = "
            edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            far(X) :- path(X, Y), Y > 3.
            near(X) :- path(X, Y), not far(X).
            :~ path(X, Y). [1@0]
        "
        .parse()
        .unwrap();
        let (semi, semi_stats) = ground_with_stats(&p, GroundOptions::default()).unwrap();
        let (naive, naive_stats) =
            ground_with_stats(&p, GroundOptions::default().with_mode(GroundMode::Naive)).unwrap();
        assert_eq!(rendered_lines(&semi), rendered_lines(&naive));
        assert_eq!(atoms_of(&semi), atoms_of(&naive));
        // The whole point: semi-naive instantiates strictly fewer rules on a
        // recursive program.
        assert!(
            semi_stats.rules_instantiated < naive_stats.rules_instantiated,
            "semi-naive ({}) should do less work than naive ({})",
            semi_stats.rules_instantiated,
            naive_stats.rules_instantiated
        );
        assert!(semi_stats.passes >= 2);
    }

    #[test]
    fn seminaive_matches_naive_without_simplification() {
        let p: Program = "
            edge(1, 2). edge(2, 3).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
        "
        .parse()
        .unwrap();
        let opts = GroundOptions::default().with_simplify(false);
        let semi = ground_with(&p, opts).unwrap();
        let naive = ground_with(&p, opts.with_mode(GroundMode::Naive)).unwrap();
        assert_eq!(rendered_lines(&semi), rendered_lines(&naive));
    }

    #[test]
    fn incremental_delta_matches_monolithic() {
        let base: Program = "
            edge(1, 2). edge(2, 3). edge(3, 4).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
        "
        .parse()
        .unwrap();
        let delta: Program = "
            reach(X) :- path(1, X).
            blocked :- reach(4), not open.
        "
        .parse()
        .unwrap();
        let inc = IncrementalGrounder::new(&base, GroundOptions::default()).unwrap();
        let via_delta = inc.ground_delta(delta.rules()).unwrap();
        let mut combined = base.clone();
        for r in delta.rules() {
            combined.push(r.clone());
        }
        let monolithic = ground(&combined).unwrap();
        assert_eq!(rendered_lines(&via_delta), rendered_lines(&monolithic));
        assert_eq!(atoms_of(&via_delta), atoms_of(&monolithic));
    }

    #[test]
    fn incremental_empty_delta_matches_base() {
        let base: Program = "
            n(1..4).
            p(X, Y) :- n(X), n(Y), X < Y.
            :~ p(X, Y). [1@0]
        "
        .parse()
        .unwrap();
        let inc = IncrementalGrounder::new(&base, GroundOptions::default()).unwrap();
        let via_delta = inc.ground_delta(&[]).unwrap();
        let direct = ground(&base).unwrap();
        assert_eq!(rendered_lines(&via_delta), rendered_lines(&direct));
    }

    #[test]
    fn incremental_delta_is_cheaper_than_regrounding() {
        let base: Program = "
            edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5). edge(5, 6).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
        "
        .parse()
        .unwrap();
        let delta: Program = "reach(X) :- path(1, X).".parse().unwrap();
        let inc = IncrementalGrounder::new(&base, GroundOptions::default()).unwrap();
        let (_, delta_stats) = inc.ground_delta_with_stats(delta.rules()).unwrap();
        let mut combined = base.clone();
        for r in delta.rules() {
            combined.push(r.clone());
        }
        let (_, full_stats) = ground_with_stats(&combined, GroundOptions::default()).unwrap();
        assert!(
            delta_stats.rules_instantiated < full_stats.rules_instantiated,
            "delta ({}) should instantiate fewer rules than re-grounding ({})",
            delta_stats.rules_instantiated,
            full_stats.rules_instantiated
        );
    }

    #[test]
    fn incremental_rejects_unsafe_delta() {
        let base: Program = "a.".parse().unwrap();
        let delta: Program = "p(X) :- not q(X).".parse().unwrap();
        let inc = IncrementalGrounder::new(&base, GroundOptions::default()).unwrap();
        assert!(matches!(
            inc.ground_delta(delta.rules()),
            Err(GroundError::UnsafeRule { .. })
        ));
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = GroundStats {
            passes: 1,
            rules_instantiated: 10,
            join_candidates: 5,
            parallel_units: 4,
        };
        a.absorb(GroundStats {
            passes: 2,
            rules_instantiated: 3,
            join_candidates: 7,
            parallel_units: 6,
        });
        assert_eq!(a.passes, 3);
        assert_eq!(a.rules_instantiated, 13);
        assert_eq!(a.join_candidates, 12);
        assert_eq!(a.parallel_units, 10);
    }

    /// A transitive-closure chain large enough that every venue has real
    /// work to chunk.
    fn chain_program(n: usize) -> Program {
        let mut text = String::new();
        for i in 0..n {
            text.push_str(&format!("edge({}, {}).\n", i, i + 1));
        }
        text.push_str("path(X, Y) :- edge(X, Y).\n");
        text.push_str("path(X, Z) :- edge(X, Y), path(Y, Z).\n");
        text.parse().expect("chain program parses")
    }

    #[test]
    fn parallel_output_is_byte_identical_across_thread_counts() {
        let p = chain_program(40);
        let reference = ground_with(&p, GroundOptions::default().with_parallelism(1)).unwrap();
        for threads in [2, 4] {
            let opts = GroundOptions::default()
                .with_parallelism(threads)
                .with_parallel_grain(1);
            let (g, stats) = ground_with_stats(&p, opts).unwrap();
            assert!(
                stats.parallel_units > 0,
                "threads={threads} must actually engage the pool"
            );
            // Byte-identical rendering AND identical atom-id assignment.
            assert_eq!(g.to_string(), reference.to_string(), "threads={threads}");
            let ids: Vec<(AtomId, String)> = g
                .atoms()
                .iter()
                .map(|(id, a)| (id, a.to_string()))
                .collect();
            let ref_ids: Vec<(AtomId, String)> = reference
                .atoms()
                .iter()
                .map(|(id, a)| (id, a.to_string()))
                .collect();
            assert_eq!(ids, ref_ids, "threads={threads}");
        }
    }

    #[test]
    fn parallel_deadline_cancels_mid_round() {
        let p = chain_program(120);
        let err = ground_with(
            &p,
            GroundOptions {
                deadline: Deadline::after(std::time::Duration::ZERO),
                ..GroundOptions::default()
            }
            .with_parallelism(4)
            .with_parallel_grain(1),
        )
        .unwrap_err();
        assert_eq!(err, GroundError::Exhausted(Exhausted::Deadline));
    }

    #[test]
    fn argument_indices_collapse_join_scans() {
        let p = chain_program(40);
        let (_, stats) =
            ground_with_stats(&p, GroundOptions::default().with_parallelism(1)).unwrap();
        let waste = stats.join_candidates as f64 / stats.rules_instantiated.max(1) as f64;
        assert!(
            waste < 8.0,
            "indexed joins should probe few candidates per instantiation, got {waste:.1} \
             ({} candidates / {} instantiations)",
            stats.join_candidates,
            stats.rules_instantiated
        );
    }
}
