//! Atoms, annotated atoms (for answer set grammars), and body literals.

use crate::symbol::Symbol;
use crate::term::{Bindings, Term};
use std::fmt;

/// A parse-tree trace annotation, e.g. `@1_2` for the second child of the
/// first child of the root. The empty trace denotes the root (or, inside an
/// annotated production rule, the node itself).
///
/// Annotated atoms are treated as ordinary atoms that happen to be distinct
/// from their unannotated counterparts (paper §II-A).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Trace(Vec<u16>);

impl Trace {
    /// The empty (root/local) trace.
    pub fn root() -> Trace {
        Trace(Vec::new())
    }

    /// Builds a trace from child indices (1-based, as in the paper).
    pub fn from_indices(indices: impl IntoIterator<Item = u16>) -> Trace {
        Trace(indices.into_iter().collect())
    }

    /// True for the empty trace.
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }

    /// The trace of this node's `i`-th child (1-based).
    pub fn child(&self, i: u16) -> Trace {
        let mut v = self.0.clone();
        v.push(i);
        Trace(v)
    }

    /// Prefix-concatenation: `prefix ++ self`, as used when instantiating an
    /// annotated production rule at a parse-tree node (paper §II-A: `a@i`
    /// becomes `a@(t ++ [i])`, unannotated `a` becomes `a@t`).
    pub fn prefixed_with(&self, prefix: &Trace) -> Trace {
        let mut v = Vec::with_capacity(prefix.0.len() + self.0.len());
        v.extend_from_slice(&prefix.0);
        v.extend_from_slice(&self.0);
        Trace(v)
    }

    /// The child indices making up the trace.
    pub fn indices(&self) -> &[u16] {
        &self.0
    }

    /// Depth of the node (root = 0).
    pub fn depth(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ix) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "_")?;
            }
            write!(f, "{ix}")?;
        }
        Ok(())
    }
}

/// An atom `p(t1, …, tn)`, optionally annotated with a parse-tree [`Trace`].
///
/// Two atoms with the same predicate and arguments but different traces are
/// distinct, matching the paper's treatment of annotated atoms.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// Predicate symbol.
    pub pred: Symbol,
    /// Argument terms (empty for propositional atoms).
    pub args: Vec<Term>,
    /// Parse-tree annotation; [`Trace::root`] for plain ASP atoms.
    pub trace: Trace,
}

impl Atom {
    /// A plain (unannotated) atom.
    pub fn new(pred: impl Into<Symbol>, args: Vec<Term>) -> Atom {
        Atom {
            pred: pred.into(),
            args,
            trace: Trace::root(),
        }
    }

    /// A propositional atom with no arguments.
    pub fn prop(pred: &str) -> Atom {
        Atom::new(Symbol::new(pred), Vec::new())
    }

    /// Returns this atom annotated with `trace`.
    pub fn with_trace(mut self, trace: Trace) -> Atom {
        self.trace = trace;
        self
    }

    /// Predicate name / arity pair, ignoring the trace.
    pub fn signature(&self) -> (Symbol, usize) {
        (self.pred, self.args.len())
    }

    /// True if all arguments are ground.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }

    /// Collects variables from all arguments into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        for a in &self.args {
            a.collect_vars(out);
        }
    }

    /// Applies `bindings` to all arguments; `None` if any argument fails to
    /// become ground (unbound variable, bad arithmetic).
    pub fn substitute(&self, bindings: &Bindings) -> Option<Atom> {
        let mut args = Vec::with_capacity(self.args.len());
        for a in &self.args {
            args.push(a.substitute(bindings)?);
        }
        Some(Atom {
            pred: self.pred,
            args,
            trace: self.trace.clone(),
        })
    }

    /// Matches this (possibly non-ground) atom against a ground atom,
    /// extending `bindings`. Predicate, arity, and trace must agree.
    pub fn match_ground(&self, ground: &Atom, bindings: &mut Bindings) -> bool {
        self.pred == ground.pred
            && self.trace == ground.trace
            && self.args.len() == ground.args.len()
            && self
                .args
                .iter()
                .zip(&ground.args)
                .all(|(p, v)| p.match_ground(v, bindings))
    }

    /// Structural total order on *ground* atoms: predicate name
    /// (lexicographic), then arity, then arguments via
    /// [`Term::ground_cmp`], then trace. Agrees with equality (`Equal` iff
    /// `==`) so it can back sorted-slice binary searches, and allocates
    /// nothing — unlike comparing rendered text.
    ///
    /// # Panics
    ///
    /// Panics if either atom has non-ground arguments.
    pub fn ground_cmp(&self, other: &Atom) -> std::cmp::Ordering {
        self.pred
            .cmp_by_name(other.pred)
            .then_with(|| self.args.len().cmp(&other.args.len()))
            .then_with(|| {
                for (a, b) in self.args.iter().zip(&other.args) {
                    match a.ground_cmp(b) {
                        std::cmp::Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                std::cmp::Ordering::Equal
            })
            .then_with(|| self.trace.cmp(&other.trace))
    }

    /// Re-annotates the atom for instantiation at parse-tree node `t`:
    /// the existing (local) trace is prefixed with `t`.
    pub fn instantiate_at(&self, t: &Trace) -> Atom {
        Atom {
            pred: self.pred,
            args: self.args.clone(),
            trace: self.trace.prefixed_with(t),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Term::Sym(self.pred))?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        if !self.trace.is_root() {
            write!(f, "@{}", self.trace)?;
        }
        Ok(())
    }
}

/// Comparison operators usable as builtin body literals.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum CmpOp {
    /// `=` — also acts as an assignment binder when the left side is an
    /// unbound variable and the right side is evaluable.
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on two ground terms.
    pub fn eval(self, a: &Term, b: &Term) -> bool {
        let ord = a.ground_cmp(b);
        match self {
            CmpOp::Eq => ord == std::cmp::Ordering::Equal,
            CmpOp::Ne => ord != std::cmp::Ordering::Equal,
            CmpOp::Lt => ord == std::cmp::Ordering::Less,
            CmpOp::Le => ord != std::cmp::Ordering::Greater,
            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
            CmpOp::Ge => ord != std::cmp::Ordering::Less,
        }
    }

    /// Concrete syntax.
    pub fn token(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// A body literal: a positive atom, a negation-as-failure atom, or a builtin
/// comparison.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Literal {
    /// `a`
    Pos(Atom),
    /// `not a`
    Neg(Atom),
    /// `t1 ⊙ t2`
    Cmp(CmpOp, Term, Term),
}

impl Literal {
    /// The atom inside a positive or negative literal, if any.
    pub fn atom(&self) -> Option<&Atom> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => Some(a),
            Literal::Cmp(..) => None,
        }
    }

    /// Collects variables into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a.collect_vars(out),
            Literal::Cmp(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }

    /// Re-annotates inner atoms at parse-tree node `t` (comparisons are
    /// unchanged).
    pub fn instantiate_at(&self, t: &Trace) -> Literal {
        match self {
            Literal::Pos(a) => Literal::Pos(a.instantiate_at(t)),
            Literal::Neg(a) => Literal::Neg(a.instantiate_at(t)),
            Literal::Cmp(op, l, r) => Literal::Cmp(*op, l.clone(), r.clone()),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "not {a}"),
            Literal::Cmp(op, l, r) => write!(f, "{l} {op} {r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_compose() {
        let t = Trace::from_indices([1, 2]);
        assert_eq!(t.child(3), Trace::from_indices([1, 2, 3]));
        let local = Trace::from_indices([2]);
        assert_eq!(local.prefixed_with(&t), Trace::from_indices([1, 2, 2]));
        assert_eq!(Trace::root().prefixed_with(&t), t);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn annotated_atoms_are_distinct() {
        let a = Atom::prop("size");
        let b = Atom::prop("size").with_trace(Trace::from_indices([1]));
        assert_ne!(a, b);
        assert_eq!(b.to_string(), "size@1");
    }

    #[test]
    fn instantiate_at_prefixes_trace() {
        let node = Trace::from_indices([2, 1]);
        let a = Atom::new("size", vec![Term::var("X")]).with_trace(Trace::from_indices([2]));
        let inst = a.instantiate_at(&node);
        assert_eq!(inst.trace, Trace::from_indices([2, 1, 2]));
        let plain = Atom::prop("ok").instantiate_at(&node);
        assert_eq!(plain.trace, node);
    }

    #[test]
    fn cmp_ops_evaluate() {
        let one = Term::Int(1);
        let two = Term::Int(2);
        assert!(CmpOp::Lt.eval(&one, &two));
        assert!(CmpOp::Le.eval(&one, &one));
        assert!(CmpOp::Ne.eval(&one, &two));
        assert!(!CmpOp::Eq.eval(&one, &two));
        assert!(CmpOp::Ge.eval(&two, &one));
        assert!(CmpOp::Gt.eval(&two, &one));
    }

    #[test]
    fn literal_display() {
        let l = Literal::Neg(Atom::new("deny", vec![Term::sym("bob")]));
        assert_eq!(l.to_string(), "not deny(bob)");
        let c = Literal::Cmp(CmpOp::Le, Term::var("X"), Term::Int(3));
        assert_eq!(c.to_string(), "X <= 3");
    }

    #[test]
    fn ground_cmp_orders_structurally() {
        use std::cmp::Ordering;
        let p1 = Atom::new("p", vec![Term::Int(2)]);
        let p2 = Atom::new("p", vec![Term::Int(10)]);
        // Numeric order, not rendered-text order ("10" < "2" as strings).
        assert_eq!(p1.ground_cmp(&p2), Ordering::Less);
        let q = Atom::new("q", vec![Term::Int(0)]);
        assert_eq!(p2.ground_cmp(&q), Ordering::Less);
        assert_eq!(q.ground_cmp(&q.clone()), Ordering::Equal);
        // Same atom with a trace annotation sorts after the plain one.
        let traced = q.clone().with_trace(Trace::from_indices([1]));
        assert_eq!(q.ground_cmp(&traced), Ordering::Less);
        // Arity breaks predicate ties.
        let p0 = Atom::prop("p");
        assert_eq!(p0.ground_cmp(&p1), Ordering::Less);
    }

    #[test]
    fn atom_matching_respects_trace() {
        let pat = Atom::new("p", vec![Term::var("X")]);
        let ground = Atom::new("p", vec![Term::Int(1)]).with_trace(Trace::from_indices([1]));
        let mut b = Bindings::new();
        assert!(!pat.match_ground(&ground, &mut b));
        let pat2 = pat.with_trace(Trace::from_indices([1]));
        let mut b2 = Bindings::new();
        assert!(pat2.match_ground(&ground, &mut b2));
    }
}
