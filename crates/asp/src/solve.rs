//! Stable-model (answer set) computation for ground normal programs with
//! constraints.
//!
//! Two evaluation paths:
//!
//! * **Stratified fast path** — if no cycle through negation exists, the
//!   program has at most one answer set (its perfect model), computed
//!   stratum by stratum in linear-ish time.
//! * **DPLL search** — otherwise the Clark completion (with one auxiliary
//!   variable per rule body) is searched with unit propagation and
//!   chronological backtracking; every total model is verified against the
//!   Gelfond–Lifschitz reduct unless the program is *tight* (positive
//!   dependency graph acyclic), in which case completion models are exactly
//!   the answer sets (Fages' theorem).

use crate::atom::Atom;
use crate::budget::{Deadline, Exhausted, RunBudget};
use crate::ground::{AtomId, GroundProgram, GroundRule};
use std::collections::HashSet;
use std::fmt;

/// One answer set: a set of ground atoms, sorted for deterministic display.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AnswerSet {
    atoms: Vec<Atom>,
}

impl AnswerSet {
    fn from_ids(ids: &[AtomId], program: &GroundProgram) -> AnswerSet {
        let mut atoms: Vec<Atom> = ids
            .iter()
            .map(|&id| program.atoms().resolve(id).clone())
            .collect();
        // Structural order: no per-comparison String allocation, and it
        // backs the binary search in `contains`.
        atoms.sort_by(|a, b| a.ground_cmp(b));
        AnswerSet { atoms }
    }

    /// The atoms of the answer set, sorted by [`Atom::ground_cmp`]
    /// (predicate name, arity, arguments, trace).
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// True if the answer set contains `atom` (binary search over the
    /// sorted atoms).
    pub fn contains(&self, atom: &Atom) -> bool {
        self.atoms.binary_search_by(|a| a.ground_cmp(atom)).is_ok()
    }

    /// Atoms with the given predicate name.
    pub fn with_predicate<'a>(&'a self, pred: &'a str) -> impl Iterator<Item = &'a Atom> {
        self.atoms
            .iter()
            .filter(move |a| a.pred.with_name(|n| n == pred))
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }
}

impl fmt::Display for AnswerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

/// Counters describing a solve run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Decisions made by the DPLL search.
    pub decisions: u64,
    /// Literals assigned by unit propagation.
    pub propagations: u64,
    /// Conflicts encountered (including failed stability checks).
    pub conflicts: u64,
    /// Gelfond–Lifschitz stability verifications performed.
    pub stability_checks: u64,
    /// True if the stratified fast path was used.
    pub used_stratified: bool,
    /// True if the program was detected to be tight.
    pub tight: bool,
}

/// The outcome of a solve: zero or more answer sets plus statistics.
#[derive(Clone, Debug)]
pub struct SolveResult {
    models: Vec<AnswerSet>,
    complete: bool,
    exhausted: Option<Exhausted>,
    stats: SolveStats,
}

impl SolveResult {
    /// The answer sets found.
    pub fn models(&self) -> &[AnswerSet] {
        &self.models
    }

    /// True if the search space was exhausted (so `models()` is *all* answer
    /// sets, subject to the `max_models` cap).
    pub fn complete(&self) -> bool {
        self.complete
    }

    /// Which resource budget cut the search short, if any. `None` for
    /// complete results and for searches stopped by `max_models`.
    pub fn exhausted(&self) -> Option<Exhausted> {
        self.exhausted
    }

    /// True if at least one answer set was found.
    pub fn satisfiable(&self) -> bool {
        !self.models.is_empty()
    }

    /// Search statistics.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// Consumes the result, returning the models.
    pub fn into_models(self) -> Vec<AnswerSet> {
        self.models
    }
}

/// Configurable answer-set solver.
///
/// A `Solver` is a small `Copy` configuration value with no interior state:
/// every `solve*` call takes `&self` and allocates its working set locally.
/// It is therefore `Send + Sync` and can live inside a shared, immutable
/// decision snapshot queried from many threads at once (the serving tier's
/// requirement; see `docs/SERVING.md`), or be cheaply copied per worker.
///
/// ```
/// use agenp_asp::{Program, Solver};
/// let p: Program = "p :- not q. q :- not p.".parse()?;
/// let result = Solver::new().solve_program(&p)?;
/// assert_eq!(result.models().len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Solver {
    max_models: usize,
    max_steps: u64,
    deadline: Deadline,
    force_search: bool,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver {
            max_models: 0,
            max_steps: u64::MAX,
            deadline: Deadline::none(),
            force_search: false,
        }
    }
}

impl Solver {
    /// A solver that enumerates all answer sets with no step budget.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Stop after `n` models (0 = enumerate all).
    pub fn max_models(mut self, n: usize) -> Solver {
        self.max_models = n;
        self
    }

    /// Abort the search after `n` decisions+conflicts, returning an
    /// incomplete result.
    pub fn max_steps(mut self, n: u64) -> Solver {
        self.max_steps = n;
        self
    }

    /// Abort the search once `deadline` passes, returning an incomplete
    /// result. The stratified fast path is not interrupted: it runs in
    /// (near-)linear time and finishes regardless.
    pub fn deadline(mut self, deadline: Deadline) -> Solver {
        self.deadline = deadline;
        self
    }

    /// Applies the solver-relevant bounds of a [`RunBudget`] (`max_steps`
    /// and `deadline`).
    pub fn with_budget(self, budget: &RunBudget) -> Solver {
        self.max_steps(budget.max_steps).deadline(budget.deadline)
    }

    /// Disable the stratified fast path (used by the ablation benches).
    pub fn force_search(mut self, yes: bool) -> Solver {
        self.force_search = yes;
        self
    }

    /// Grounds and solves a non-ground program.
    ///
    /// # Errors
    ///
    /// Propagates grounding failures (unsafe rules, budget).
    pub fn solve_program(
        &self,
        program: &crate::program::Program,
    ) -> Result<SolveResult, crate::ground::GroundError> {
        Ok(self.solve(&crate::ground::ground(program)?))
    }

    /// Solves a ground program.
    pub fn solve(&self, program: &GroundProgram) -> SolveResult {
        let mut span = agenp_obs::span!(
            "asp.solve",
            atoms = program.atoms().len(),
            rules = program.rules().len(),
        );
        let result = self.solve_inner(program);
        if span.is_live() {
            span.record("models", result.models.len());
            span.record("decisions", result.stats.decisions);
            span.record("conflicts", result.stats.conflicts);
            span.record("stratified", result.stats.used_stratified);
            crate::obs::SolveMetrics::publish(&result.stats);
        }
        result
    }

    fn solve_inner(&self, program: &GroundProgram) -> SolveResult {
        let mut stats = SolveStats::default();
        if program.proven_inconsistent() {
            return SolveResult {
                models: Vec::new(),
                complete: true,
                exhausted: None,
                stats,
            };
        }
        let n_atoms = program.atoms().len();
        let deps = Dependencies::build(program, n_atoms);
        stats.tight = deps.tight;
        if !self.force_search && deps.stratified {
            stats.used_stratified = true;
            let models = stratified_model(program, &deps)
                .map(|ids| vec![AnswerSet::from_ids(&ids, program)])
                .unwrap_or_default();
            return SolveResult {
                models,
                complete: true,
                exhausted: None,
                stats,
            };
        }
        self.search(program, &deps, stats)
    }

    /// Convenience: is there at least one answer set?
    pub fn has_answer_set(&self, program: &GroundProgram) -> bool {
        Solver {
            max_models: 1,
            ..*self
        }
        .solve(program)
        .satisfiable()
    }

    // --- DPLL over the Clark completion ---------------------------------

    fn search(
        &self,
        program: &GroundProgram,
        deps: &Dependencies,
        mut stats: SolveStats,
    ) -> SolveResult {
        self.search_with(program, deps, &mut stats, None)
    }

    fn search_with(
        &self,
        program: &GroundProgram,
        deps: &Dependencies,
        stats: &mut SolveStats,
        mut bnb: Option<&mut Bnb>,
    ) -> SolveResult {
        let n_atoms = program.atoms().len();
        let n_rules = program.rules().len();
        let n_vars = n_atoms + n_rules;
        let mut cnf = Cnf::new(n_vars);
        let body_var = |r: usize| n_atoms + r;

        for (ri, rule) in program.rules().iter().enumerate() {
            let beta = body_var(ri);
            // β → each body literal
            let mut defn = Vec::with_capacity(rule.pos.len() + rule.neg.len() + 1);
            defn.push(Lit::pos(beta));
            for &p in &rule.pos {
                cnf.add(vec![Lit::neg(beta), Lit::pos(p as usize)]);
                defn.push(Lit::neg(p as usize));
            }
            for &n in &rule.neg {
                cnf.add(vec![Lit::neg(beta), Lit::neg(n as usize)]);
                defn.push(Lit::pos(n as usize));
            }
            // body literals → β
            cnf.add(defn);
            match rule.head {
                Some(h) => cnf.add(vec![Lit::neg(beta), Lit::pos(h as usize)]),
                None => cnf.add(vec![Lit::neg(beta)]),
            }
        }
        // Support: an atom implies one of its rule bodies.
        let mut rules_for_atom: Vec<Vec<usize>> = vec![Vec::new(); n_atoms];
        for (ri, rule) in program.rules().iter().enumerate() {
            if let Some(h) = rule.head {
                rules_for_atom[h as usize].push(ri);
            }
        }
        for (a, rules) in rules_for_atom.iter().enumerate() {
            let mut clause = Vec::with_capacity(rules.len() + 1);
            clause.push(Lit::neg(a));
            for &ri in rules {
                clause.push(Lit::pos(body_var(ri)));
            }
            cnf.add(clause);
        }

        let mut dpll = Dpll::new(cnf, n_atoms);
        let mut models = Vec::new();
        let mut complete = true;
        let mut exhausted = None;
        loop {
            if stats.decisions + stats.conflicts > self.max_steps {
                complete = false;
                exhausted = Some(Exhausted::Steps);
                break;
            }
            if self.deadline.expired() {
                complete = false;
                exhausted = Some(Exhausted::Deadline);
                break;
            }
            let event = match bnb.as_deref_mut() {
                Some(b) => {
                    let mut pruner = |assign: &[u8]| b.prune_assignment(program, assign);
                    dpll.step(stats, self.max_steps, self.deadline, &mut pruner)
                }
                None => dpll.step(stats, self.max_steps, self.deadline, &mut |_| false),
            };
            match event {
                DpllEvent::Model => {
                    let candidate: Vec<AtomId> = (0..n_atoms)
                        .filter(|&a| dpll.value(a) == Some(true))
                        .map(|a| a as AtomId)
                        .collect();
                    let stable = if deps.tight {
                        true
                    } else {
                        stats.stability_checks += 1;
                        is_stable(program, &candidate)
                    };
                    if stable {
                        match bnb.as_deref_mut() {
                            Some(b) => {
                                b.record(program, AnswerSet::from_ids(&candidate, program));
                            }
                            None => {
                                models.push(AnswerSet::from_ids(&candidate, program));
                                if self.max_models != 0 && models.len() >= self.max_models {
                                    // The search stopped early: more models
                                    // may exist.
                                    complete = false;
                                    break;
                                }
                            }
                        }
                    }
                    if !dpll.backtrack_after_model(stats) {
                        break;
                    }
                }
                DpllEvent::Done => break,
                DpllEvent::Interrupted(why) => {
                    complete = false;
                    exhausted = Some(why);
                    break;
                }
            }
        }
        SolveResult {
            models,
            complete,
            exhausted,
            stats: *stats,
        }
    }
}

/// Gelfond–Lifschitz check: is `candidate` (a set of atom ids, assumed to
/// satisfy the completion) the least model of the reduct?
pub fn is_stable(program: &GroundProgram, candidate: &[AtomId]) -> bool {
    let in_m: HashSet<AtomId> = candidate.iter().copied().collect();
    // Least model of the reduct via counter-based forward chaining.
    let n = program.atoms().len();
    let mut derived = vec![false; n];
    let mut counts: Vec<usize> = Vec::with_capacity(program.rules().len());
    let mut watchers: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut queue: Vec<AtomId> = Vec::new();
    for (ri, rule) in program.rules().iter().enumerate() {
        let Some(h) = rule.head else {
            counts.push(usize::MAX);
            continue;
        };
        if rule.neg.iter().any(|n| in_m.contains(n)) {
            counts.push(usize::MAX); // removed by the reduct
            continue;
        }
        counts.push(rule.pos.len());
        if rule.pos.is_empty() {
            if !derived[h as usize] {
                derived[h as usize] = true;
                queue.push(h);
            }
        } else {
            for &p in &rule.pos {
                watchers[p as usize].push(ri);
            }
        }
    }
    while let Some(a) = queue.pop() {
        for &ri in &watchers[a as usize] {
            if counts[ri] == usize::MAX {
                continue;
            }
            counts[ri] -= 1;
            if counts[ri] == 0 {
                let h = program.rules()[ri]
                    .head
                    .expect("constraints have MAX count");
                if !derived[h as usize] {
                    derived[h as usize] = true;
                    queue.push(h);
                }
            }
        }
        // NOTE: an atom may watch the same rule twice if duplicated; the
        // grounder dedups positive bodies, so each watcher fires once.
    }
    let least: usize = derived.iter().filter(|&&d| d).count();
    least == in_m.len() && candidate.iter().all(|&a| derived[a as usize])
}

// --- Optimization (weak constraints) ---------------------------------------

/// A prioritized cost: per-level penalty totals, compared lexicographically
/// from the highest level down (clingo-style).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CostVector {
    /// `(level, total)` pairs, sorted by level descending; zero totals are
    /// omitted.
    entries: Vec<(i64, i64)>,
}

impl CostVector {
    /// Builds a cost vector from raw `(level, weight)` contributions.
    pub fn from_contributions(contributions: impl IntoIterator<Item = (i64, i64)>) -> CostVector {
        let mut totals: std::collections::BTreeMap<i64, i64> = std::collections::BTreeMap::new();
        for (level, w) in contributions {
            *totals.entry(level).or_insert(0) += w;
        }
        CostVector {
            entries: totals.into_iter().rev().filter(|&(_, t)| t != 0).collect(),
        }
    }

    /// The `(level, total)` entries, highest level first.
    pub fn entries(&self) -> &[(i64, i64)] {
        &self.entries
    }

    /// The total at a level (0 if absent).
    pub fn at_level(&self, level: i64) -> i64 {
        self.entries
            .iter()
            .find(|(l, _)| *l == level)
            .map_or(0, |(_, t)| *t)
    }

    /// True if no penalties were incurred.
    pub fn is_zero(&self) -> bool {
        self.entries.is_empty()
    }
}

impl PartialOrd for CostVector {
    fn partial_cmp(&self, other: &CostVector) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CostVector {
    fn cmp(&self, other: &CostVector) -> std::cmp::Ordering {
        // Compare level by level, highest first; missing level = 0.
        let mut levels: Vec<i64> = self
            .entries
            .iter()
            .chain(other.entries.iter())
            .map(|(l, _)| *l)
            .collect();
        levels.sort_unstable_by(|a, b| b.cmp(a));
        levels.dedup();
        for l in levels {
            match self.at_level(l).cmp(&other.at_level(l)) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl fmt::Display for CostVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return write!(f, "0");
        }
        for (i, (l, t)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}@{l}")?;
        }
        Ok(())
    }
}

/// The penalty a model incurs under the program's weak constraints.
pub fn model_cost(program: &GroundProgram, model: &AnswerSet) -> CostVector {
    let holds = |id: AtomId| model.contains(program.atoms().resolve(id));
    CostVector::from_contributions(
        program
            .weak_constraints()
            .iter()
            .filter(|w| w.pos.iter().all(|&p| holds(p)) && w.neg.iter().all(|&n| !holds(n)))
            .map(|w| (w.level, w.weight)),
    )
}

/// The outcome of an optimization: the optimal models and their cost.
#[derive(Clone, Debug)]
pub struct OptimizeResult {
    optima: Vec<AnswerSet>,
    cost: Option<CostVector>,
    complete: bool,
}

impl OptimizeResult {
    /// The optimal answer sets (all ties).
    pub fn optima(&self) -> &[AnswerSet] {
        &self.optima
    }

    /// The optimal cost, if any model exists.
    pub fn cost(&self) -> Option<&CostVector> {
        self.cost.as_ref()
    }

    /// True if optimality is proven (the model enumeration was exhaustive).
    pub fn proven_optimal(&self) -> bool {
        self.complete
    }
}

impl Solver {
    /// Finds the answer sets minimizing the weak-constraint penalty.
    ///
    /// ```
    /// use agenp_asp::{ground, Program, Solver};
    /// let p: Program = "
    ///     a :- not b.  b :- not a.
    ///     :~ a. [3]
    ///     :~ b. [1]
    /// ".parse()?;
    /// let result = Solver::new().optimize(&ground(&p)?);
    /// assert!(result.optima()[0].contains(&"b".parse()?));
    /// assert_eq!(result.cost().unwrap().at_level(0), 1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// Stratified programs have at most one answer set, so their optimum is
    /// immediate; otherwise a branch-and-bound DPLL enumeration prunes any
    /// branch whose *already-incurred* penalty reaches the incumbent's cost
    /// (weak-constraint bodies are monotone in the assignment, so the
    /// incurred penalty is a valid lower bound).
    pub fn optimize(&self, program: &GroundProgram) -> OptimizeResult {
        let mut stats = SolveStats::default();
        if program.proven_inconsistent() {
            return OptimizeResult {
                optima: Vec::new(),
                cost: None,
                complete: true,
            };
        }
        let n_atoms = program.atoms().len();
        let deps = Dependencies::build(program, n_atoms);
        if !self.force_search && deps.stratified {
            let result = self.solve(program);
            let best = result.models().first().map(|m| model_cost(program, m));
            return OptimizeResult {
                optima: result.models().to_vec(),
                cost: best,
                complete: result.complete(),
            };
        }
        let mut bnb = Bnb::new(program);
        let result = self.search_with(program, &deps, &mut stats, Some(&mut bnb));
        OptimizeResult {
            optima: bnb.optima,
            cost: bnb.best,
            complete: result.complete(),
        }
    }
}

/// Branch-and-bound state for [`Solver::optimize`].
struct Bnb {
    best: Option<CostVector>,
    optima: Vec<AnswerSet>,
    /// Incurred-cost pruning is only sound when all weights are
    /// non-negative.
    can_prune: bool,
}

impl Bnb {
    fn new(program: &GroundProgram) -> Bnb {
        let can_prune = program.weak_constraints().iter().all(|w| w.weight >= 0);
        Bnb {
            best: None,
            optima: Vec::new(),
            can_prune,
        }
    }

    /// Penalty already incurred by the partial assignment (0 = unassigned,
    /// 1 = true, 2 = false): weak constraints whose positive body is
    /// entirely true and negative body entirely false. Further assignments
    /// can only add penalties (bodies are monotone), so this is a valid
    /// lower bound — assuming non-negative weights; negative weights
    /// disable pruning via [`Bnb::can_prune`].
    fn incurred(program: &GroundProgram, assign: &[u8]) -> CostVector {
        CostVector::from_contributions(
            program
                .weak_constraints()
                .iter()
                .filter(|w| {
                    w.pos.iter().all(|&p| assign[p as usize] == 1)
                        && w.neg.iter().all(|&n| assign[n as usize] == 2)
                })
                .map(|w| (w.level, w.weight)),
        )
    }

    /// Should the current branch be pruned?
    fn prune_assignment(&self, program: &GroundProgram, assign: &[u8]) -> bool {
        match &self.best {
            // NOTE: pruning at `incurred > best` (not >=) keeps all ties.
            Some(best) if self.can_prune => Bnb::incurred(program, assign) > *best,
            _ => false,
        }
    }

    /// Records a total model; returns true if it is at least tied-optimal.
    fn record(&mut self, program: &GroundProgram, model: AnswerSet) {
        let cost = model_cost(program, &model);
        match &self.best {
            None => {
                self.best = Some(cost);
                self.optima = vec![model];
            }
            Some(b) => match cost.cmp(b) {
                std::cmp::Ordering::Less => {
                    self.best = Some(cost);
                    self.optima = vec![model];
                }
                std::cmp::Ordering::Equal => self.optima.push(model),
                std::cmp::Ordering::Greater => {}
            },
        }
    }
}

// --- Dependency analysis --------------------------------------------------

struct Dependencies {
    stratified: bool,
    tight: bool,
    /// SCCs in dependency order (dependencies first), for stratified eval.
    scc_order: Vec<Vec<AtomId>>,
}

impl Dependencies {
    fn build(program: &GroundProgram, n_atoms: usize) -> Dependencies {
        // Edges: head -> body atom (pos and neg separately).
        let mut pos_edges: Vec<Vec<u32>> = vec![Vec::new(); n_atoms];
        let mut all_edges: Vec<Vec<u32>> = vec![Vec::new(); n_atoms];
        let mut neg_pairs: Vec<(u32, u32)> = Vec::new();
        for rule in program.rules() {
            let Some(h) = rule.head else { continue };
            for &p in &rule.pos {
                pos_edges[h as usize].push(p);
                all_edges[h as usize].push(p);
            }
            for &n in &rule.neg {
                all_edges[h as usize].push(n);
                neg_pairs.push((h, n));
            }
        }
        let scc_all = tarjan(&all_edges, n_atoms);
        // Stratified iff no negative edge stays within one SCC of the full
        // dependency graph.
        let stratified = neg_pairs
            .iter()
            .all(|&(h, b)| scc_all.component[h as usize] != scc_all.component[b as usize]);
        // Tight iff every SCC of the positive graph is trivial and acyclic.
        let scc_pos = tarjan(&pos_edges, n_atoms);
        let mut comp_size = vec![0usize; scc_pos.count];
        for &c in &scc_pos.component {
            comp_size[c] += 1;
        }
        let self_loop = (0..n_atoms).any(|a| pos_edges[a].iter().any(|&b| b as usize == a));
        let tight = !self_loop && comp_size.iter().all(|&s| s <= 1);

        // Group atoms by SCC in emission order (Tarjan emits dependencies
        // first given head -> body edges).
        let mut scc_order: Vec<Vec<AtomId>> = vec![Vec::new(); scc_all.count];
        for a in 0..n_atoms {
            scc_order[scc_all.component[a]].push(a as AtomId);
        }
        Dependencies {
            stratified,
            tight,
            scc_order,
        }
    }
}

struct SccResult {
    component: Vec<usize>,
    count: usize,
}

/// Iterative Tarjan SCC. Components are numbered in emission order, which —
/// with edges pointing from dependent to dependency — lists dependencies
/// before dependents.
fn tarjan(edges: &[Vec<u32>], n: usize) -> SccResult {
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut component = vec![UNSEEN; n];
    let mut next_index = 0usize;
    let mut count = 0usize;
    // Explicit DFS stack: (node, edge cursor).
    let mut call: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if index[start as usize] != UNSEEN {
            continue;
        }
        call.push((start, 0));
        index[start as usize] = next_index;
        low[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;
        while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
            if *cursor < edges[v as usize].len() {
                let w = edges[v as usize][*cursor];
                *cursor += 1;
                if index[w as usize] == UNSEEN {
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        component[w as usize] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }
    SccResult { component, count }
}

/// Perfect-model evaluation for stratified programs. Returns `None` if a
/// constraint is violated.
fn stratified_model(program: &GroundProgram, deps: &Dependencies) -> Option<Vec<AtomId>> {
    let n = program.atoms().len();
    let mut truth = vec![false; n];
    let mut scc_of = vec![usize::MAX; n];
    for (ci, comp) in deps.scc_order.iter().enumerate() {
        for &a in comp {
            scc_of[a as usize] = ci;
        }
    }
    // Rules grouped by the SCC of their head.
    let mut rules_by_scc: Vec<Vec<&GroundRule>> = vec![Vec::new(); deps.scc_order.len()];
    let mut constraints: Vec<&GroundRule> = Vec::new();
    for rule in program.rules() {
        match rule.head {
            Some(h) => rules_by_scc[scc_of[h as usize]].push(rule),
            None => constraints.push(rule),
        }
    }
    for (ci, _) in deps.scc_order.iter().enumerate() {
        // Fixpoint within the stratum. Negative literals refer to strictly
        // lower SCCs (stratified), so their truth is already final.
        loop {
            let mut changed = false;
            for rule in &rules_by_scc[ci] {
                let h = rule.head.expect("constraints filtered out");
                if truth[h as usize] {
                    continue;
                }
                if rule.pos.iter().all(|&p| truth[p as usize])
                    && rule.neg.iter().all(|&n| !truth[n as usize])
                {
                    truth[h as usize] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
    for c in constraints {
        if c.pos.iter().all(|&p| truth[p as usize]) && c.neg.iter().all(|&n| !truth[n as usize]) {
            return None;
        }
    }
    Some((0..n as u32).filter(|&a| truth[a as usize]).collect())
}

// --- DPLL -----------------------------------------------------------------

/// A literal encoded as `var << 1 | sign` (sign 1 = negated).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
struct Lit(u32);

impl Lit {
    fn pos(var: usize) -> Lit {
        Lit((var as u32) << 1)
    }

    fn neg(var: usize) -> Lit {
        Lit(((var as u32) << 1) | 1)
    }

    fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }
}

struct Cnf {
    clauses: Vec<Vec<Lit>>,
    n_vars: usize,
}

impl Cnf {
    fn new(n_vars: usize) -> Cnf {
        Cnf {
            clauses: Vec::new(),
            n_vars,
        }
    }

    fn add(&mut self, mut clause: Vec<Lit>) {
        clause.sort_by_key(|l| l.0);
        clause.dedup();
        // Tautology?
        if clause.windows(2).any(|w| w[0].var() == w[1].var()) {
            return;
        }
        self.clauses.push(clause);
    }
}

enum DpllEvent {
    /// A total model of the completion was reached.
    Model,
    /// The search space is exhausted.
    Done,
    /// A resource budget fired mid-search.
    Interrupted(Exhausted),
}

/// Trail-based DPLL with counter-based propagation and chronological
/// backtracking; supports model enumeration via `backtrack_after_model`.
struct Dpll {
    /// Clause literals; positions 0 and 1 are the watched literals.
    clauses: Vec<Vec<Lit>>,
    /// Two-watched-literal scheme: for each literal code, the clauses
    /// currently watching it. Watches never need restoration on
    /// chronological backtracking.
    watches: Vec<Vec<u32>>,
    /// Assignment: 0 unassigned, 1 true, 2 false.
    assign: Vec<u8>,
    /// Trail of assigned variables in order.
    trail: Vec<u32>,
    /// (trail length before decision, decided var, tried_both) per level.
    decisions: Vec<(usize, u32, bool)>,
    /// Queue cursor into the trail for propagation.
    prop_head: usize,
    n_atoms: usize,
    exhausted: bool,
    units: Vec<Lit>,
}

impl Dpll {
    fn new(cnf: Cnf, n_atoms: usize) -> Dpll {
        let mut watches = vec![Vec::new(); cnf.n_vars * 2];
        let mut units = Vec::new();
        let mut clauses = Vec::with_capacity(cnf.clauses.len());
        for clause in cnf.clauses {
            match clause.len() {
                0 => {
                    // Empty clause: immediately unsatisfiable.
                    units.push(Lit::pos(0));
                    units.push(Lit::neg(0));
                }
                1 => units.push(clause[0]),
                _ => {
                    let ci = clauses.len() as u32;
                    watches[clause[0].0 as usize].push(ci);
                    watches[clause[1].0 as usize].push(ci);
                    clauses.push(clause);
                }
            }
        }
        Dpll {
            clauses,
            watches,
            assign: vec![0; cnf.n_vars],
            trail: Vec::new(),
            decisions: Vec::new(),
            prop_head: 0,
            n_atoms,
            exhausted: false,
            units,
        }
    }

    fn value(&self, var: usize) -> Option<bool> {
        match self.assign[var] {
            0 => None,
            1 => Some(true),
            _ => Some(false),
        }
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|v| v != l.is_neg())
    }

    fn enqueue(&mut self, l: Lit) -> bool {
        match self.lit_value(l) {
            Some(v) => v,
            None => {
                self.assign[l.var()] = if l.is_neg() { 2 } else { 1 };
                self.trail.push(l.var() as u32);
                true
            }
        }
    }

    fn propagate(&mut self, stats: &mut SolveStats) -> bool {
        // Seed units once at the root.
        if self.decisions.is_empty() && self.prop_head == 0 {
            let units = std::mem::take(&mut self.units);
            for u in &units {
                if !self.enqueue(*u) {
                    self.units = units;
                    return false;
                }
            }
            self.units = units;
        }
        while self.prop_head < self.trail.len() {
            let var = self.trail[self.prop_head] as usize;
            self.prop_head += 1;
            stats.propagations += 1;
            let assigned_true = self.assign[var] == 1;
            // Clauses watching the falsified literal need attention.
            let falsified = if assigned_true {
                Lit::neg(var)
            } else {
                Lit::pos(var)
            };
            let key = falsified.0 as usize;
            let mut i = 0;
            'watchlist: while i < self.watches[key].len() {
                let ci = self.watches[key][i] as usize;
                // Normalize: watched literals sit at positions 0 and 1;
                // put the falsified one at position 1.
                if self.clauses[ci][0] == falsified {
                    self.clauses[ci].swap(0, 1);
                }
                let other = self.clauses[ci][0];
                if self.lit_value(other) == Some(true) {
                    i += 1;
                    continue; // clause already satisfied
                }
                // Look for a replacement watch among the tail literals.
                for k in 2..self.clauses[ci].len() {
                    let l = self.clauses[ci][k];
                    if self.lit_value(l) != Some(false) {
                        self.clauses[ci].swap(1, k);
                        // Move the watch: swap-remove from this list, add to
                        // the new literal's list.
                        self.watches[key].swap_remove(i);
                        self.watches[l.0 as usize].push(ci as u32);
                        continue 'watchlist;
                    }
                }
                // No replacement: the other watch is unit or conflicting.
                if !self.enqueue(other) {
                    return false;
                }
                i += 1;
            }
        }
        true
    }

    /// Runs propagation/decision until a total model, exhaustion, or a
    /// budget interruption. After every successful propagation, `pruner`
    /// may cut the branch (used for branch-and-bound optimization); it
    /// receives the raw assignment (0 = unassigned, 1 = true, 2 = false).
    fn step(
        &mut self,
        stats: &mut SolveStats,
        max_steps: u64,
        deadline: Deadline,
        pruner: &mut dyn FnMut(&[u8]) -> bool,
    ) -> DpllEvent {
        if self.exhausted {
            return DpllEvent::Done;
        }
        loop {
            if stats.decisions + stats.conflicts > max_steps {
                return DpllEvent::Interrupted(Exhausted::Steps);
            }
            if deadline.expired() {
                return DpllEvent::Interrupted(Exhausted::Deadline);
            }
            if !self.propagate(stats) {
                stats.conflicts += 1;
                if !self.backtrack() {
                    self.exhausted = true;
                    return DpllEvent::Done;
                }
                continue;
            }
            if pruner(&self.assign) {
                stats.conflicts += 1;
                if !self.backtrack() {
                    self.exhausted = true;
                    return DpllEvent::Done;
                }
                continue;
            }
            // Pick an unassigned variable: atoms first (minimality bias:
            // try false first).
            let next = (0..self.assign.len()).find(|&v| self.assign[v] == 0);
            match next {
                None => return DpllEvent::Model,
                Some(v) => {
                    stats.decisions += 1;
                    self.decisions.push((self.trail.len(), v as u32, false));
                    let ok = self.enqueue(Lit::neg(v));
                    debug_assert!(ok, "deciding an unassigned var cannot conflict");
                    let _ = self.n_atoms;
                }
            }
        }
    }

    /// Chronological backtracking: undo to the most recent decision whose
    /// second polarity is untried, and flip it. Returns false if exhausted.
    fn backtrack(&mut self) -> bool {
        while let Some((mark, var, tried_both)) = self.decisions.pop() {
            for &v in &self.trail[mark..] {
                self.assign[v as usize] = 0;
            }
            self.trail.truncate(mark);
            self.prop_head = mark;
            if !tried_both {
                self.decisions.push((mark, var, true));
                let ok = self.enqueue(Lit::pos(var as usize));
                debug_assert!(ok, "flipping an undone decision cannot conflict");
                return true;
            }
        }
        false
    }

    /// After reporting a model, force the search onward.
    fn backtrack_after_model(&mut self, stats: &mut SolveStats) -> bool {
        stats.conflicts += 1;
        if self.backtrack() {
            true
        } else {
            self.exhausted = true;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::ground;
    use crate::program::Program;

    fn solve_text(src: &str) -> SolveResult {
        let p: Program = src.parse().expect("test program parses");
        Solver::new().solve(&ground(&p).expect("test program grounds"))
    }

    fn model_strings(r: &SolveResult) -> Vec<String> {
        let mut v: Vec<String> = r.models().iter().map(|m| m.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn solver_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Solver>();
        assert_send_sync::<SolveResult>();
        assert_send_sync::<AnswerSet>();
        // One shared solver, queried concurrently.
        let solver = Solver::new();
        let g = ground(&"p :- not q. q :- not p.".parse::<Program>().unwrap()).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| assert_eq!(solver.solve(&g).models().len(), 2));
            }
        });
    }

    #[test]
    fn definite_program_has_single_model() {
        let r = solve_text("a. b :- a. c :- b, a.");
        assert!(r.stats().used_stratified);
        assert_eq!(model_strings(&r), vec!["{a, b, c}"]);
    }

    #[test]
    fn even_loop_has_two_models() {
        let r = solve_text("p :- not q. q :- not p.");
        assert_eq!(model_strings(&r), vec!["{p}", "{q}"]);
        assert!(!r.stats().used_stratified);
    }

    #[test]
    fn odd_loop_has_no_model() {
        let r = solve_text("p :- not p.");
        assert!(!r.satisfiable());
        assert!(r.complete());
    }

    #[test]
    fn constraint_filters_models() {
        let r = solve_text("p :- not q. q :- not p. :- p.");
        assert_eq!(model_strings(&r), vec!["{q}"]);
    }

    #[test]
    fn positive_loop_is_unfounded() {
        // {a, b} satisfies the completion but is not stable.
        let r = solve_text("a :- b. b :- a.");
        assert_eq!(model_strings(&r), vec!["{}"]);
    }

    #[test]
    fn positive_loop_with_choice() {
        let r = solve_text("a :- b. b :- a. a :- not c. c :- not a.");
        assert_eq!(model_strings(&r), vec!["{a, b}", "{c}"]);
    }

    #[test]
    fn stratified_negation_single_model() {
        let r = solve_text("bird(tweety). flies(X) :- bird(X), not abnormal(X).");
        assert!(r.stats().used_stratified);
        assert_eq!(model_strings(&r), vec!["{bird(tweety), flies(tweety)}"]);
    }

    #[test]
    fn stratified_constraint_violation_gives_no_model() {
        let r = solve_text("a. :- a, not b.");
        assert!(!r.satisfiable());
        assert!(r.complete());
    }

    #[test]
    fn force_search_matches_stratified() {
        let src = "bird(tweety). bird(sam). abnormal(sam).
                   flies(X) :- bird(X), not abnormal(X).";
        let p: Program = src.parse().unwrap();
        let g = ground(&p).unwrap();
        let fast = Solver::new().solve(&g);
        let slow = Solver::new().force_search(true).solve(&g);
        assert_eq!(model_strings(&fast), model_strings(&slow));
        assert!(fast.stats().used_stratified);
        assert!(!slow.stats().used_stratified);
    }

    #[test]
    fn three_way_choice_enumerates_all() {
        let r = solve_text("a :- not b, not c. b :- not a, not c. c :- not a, not b.");
        assert_eq!(model_strings(&r), vec!["{a}", "{b}", "{c}"]);
    }

    #[test]
    fn max_models_caps_enumeration() {
        let p: Program = "p :- not q. q :- not p.".parse().unwrap();
        let g = ground(&p).unwrap();
        let r = Solver::new().max_models(1).solve(&g);
        assert_eq!(r.models().len(), 1);
    }

    #[test]
    fn tightness_detected() {
        let tight = "p :- not q. q :- not p.";
        let p: Program = tight.parse().unwrap();
        let r = Solver::new().solve(&ground(&p).unwrap());
        assert!(r.stats().tight);
        let loopy: Program = "a :- b. b :- a. a :- not c. c :- not a.".parse().unwrap();
        let r2 = Solver::new().solve(&ground(&loopy).unwrap());
        assert!(!r2.stats().tight);
    }

    #[test]
    fn empty_program_has_empty_model() {
        let r = solve_text("");
        assert_eq!(model_strings(&r), vec!["{}"]);
    }

    #[test]
    fn unsatisfiable_fact_constraint() {
        let r = solve_text("a. :- a.");
        assert!(!r.satisfiable());
    }

    #[test]
    fn step_budget_reports_incomplete() {
        // A program with many models and a tiny budget.
        let src = "
            a1 :- not b1. b1 :- not a1.
            a2 :- not b2. b2 :- not a2.
            a3 :- not b3. b3 :- not a3.
            a4 :- not b4. b4 :- not a4.
        ";
        let p: Program = src.parse().unwrap();
        let g = ground(&p).unwrap();
        let r = Solver::new().max_steps(3).solve(&g);
        assert!(!r.complete());
        assert_eq!(r.exhausted(), Some(Exhausted::Steps));
    }

    #[test]
    fn expired_deadline_reports_incomplete() {
        let p: Program = "p :- not q. q :- not p.".parse().unwrap();
        let g = ground(&p).unwrap();
        let r = Solver::new()
            .deadline(Deadline::after(std::time::Duration::ZERO))
            .solve(&g);
        assert!(!r.complete());
        assert_eq!(r.exhausted(), Some(Exhausted::Deadline));
        assert!(r.models().is_empty());
    }

    #[test]
    fn unset_deadline_leaves_search_complete() {
        let p: Program = "p :- not q. q :- not p.".parse().unwrap();
        let g = ground(&p).unwrap();
        let r = Solver::new().deadline(Deadline::none()).solve(&g);
        assert!(r.complete());
        assert_eq!(r.exhausted(), None);
        assert_eq!(r.models().len(), 2);
    }

    #[test]
    fn run_budget_configures_solver() {
        let budget = RunBudget::new()
            .with_max_steps(3)
            .with_deadline(Deadline::none());
        let p: Program = "
            a1 :- not b1. b1 :- not a1.
            a2 :- not b2. b2 :- not a2.
            a3 :- not b3. b3 :- not a3.
        "
        .parse()
        .unwrap();
        let g = ground(&p).unwrap();
        let r = Solver::new().with_budget(&budget).solve(&g);
        assert!(!r.complete());
        assert_eq!(r.exhausted(), Some(Exhausted::Steps));
    }

    #[test]
    fn grounded_variables_then_solved() {
        let r = solve_text(
            "
            node(1..3).
            colored(X, red) :- node(X), not colored(X, blue).
            colored(X, blue) :- node(X), not colored(X, red).
            :- colored(1, red).
        ",
        );
        // 2^3 colorings minus those with node 1 red = 4.
        assert_eq!(r.models().len(), 4);
    }

    #[test]
    fn answer_set_accessors() {
        let r = solve_text("p(1). p(2). q :- p(1).");
        let m = &r.models()[0];
        assert_eq!(m.len(), 3);
        assert!(m.contains(&"q".parse().unwrap()));
        assert_eq!(m.with_predicate("p").count(), 2);
        assert!(!m.is_empty());
    }
}
