//! # agenp-asp — Answer Set Programming for generative policies
//!
//! A from-scratch implementation of the ASP fragment used by the AGENP
//! generative-policy framework (Bertino et al., ICDCS 2019, §II-A): **normal
//! rules and constraints** under the stable-model semantics, with
//! negation-as-failure, builtin comparisons, grounding-time arithmetic, and
//! the `@k` parse-tree annotations required by answer set grammars. Two
//! extensions serve the framework's wider needs: **weak constraints**
//! (`:~ body. [w@l]`) with branch-and-bound optimization for utility-based
//! policies, and **derivation-proof explanations** ([`explain_atom`],
//! [`violated_constraints`]) for the paper's explainability agenda (§V-B).
//!
//! The pipeline is parse → ground → solve:
//!
//! ```
//! use agenp_asp::{Program, Solver};
//!
//! let program: Program = "
//!     route(north). route(south).
//!     chosen(R) :- route(R), not other(R).
//!     other(R)  :- route(R), not chosen(R).
//!     :- chosen(north), chosen(south).
//! ".parse()?;
//!
//! let result = Solver::new().solve_program(&program)?;
//! // exactly one route is chosen in each answer set, plus the model where
//! // both are `other`
//! assert!(result.models().iter().all(|m| m.with_predicate("chosen").count() <= 1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Annotated atoms (e.g. `size(X)@1`) are ordinary atoms distinct from their
//! unannotated counterparts; [`Program::instantiate_at`] implements the
//! `P@t` trace-prefixing operation used when mapping answer-set-grammar
//! parse trees to programs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod atom;
mod budget;
mod explain;
mod ground;
pub mod obs;
mod parallel;
mod parser;
pub mod pool;
mod program;
mod solve;
mod symbol;
mod term;

pub use atom::{Atom, CmpOp, Literal, Trace};
pub use budget::{Deadline, Exhausted, RunBudget};
pub use explain::{explain_atom, violated_constraints, Derivation};
pub use ground::{
    ground, ground_with, ground_with_stats, AtomId, AtomTable, GroundError, GroundMode,
    GroundOptions, GroundProgram, GroundRule, GroundStats, GroundWeak, IncrementalGrounder,
};
#[allow(deprecated)]
pub use ground::{ground_naive, ground_naive_with, ground_naive_with_stats};
pub use parallel::Parallelism;
pub use parser::{parse_atom, parse_program, parse_rule, ParseError};
pub use pool::{PoolError, UnitControl, WorkPool};
pub use program::{Program, Rule, WeakConstraint};
pub use solve::{
    is_stable, model_cost, AnswerSet, CostVector, OptimizeResult, SolveResult, SolveStats, Solver,
};
pub use symbol::Symbol;
pub use term::{ArithOp, Bindings, Term};
