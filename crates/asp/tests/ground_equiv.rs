//! Differential property tests for the semi-naive grounder: on random safe
//! programs with variables, recursion, negation, comparisons, and weak
//! constraints, the delta-driven engine must produce exactly the ground
//! program of the retained naive reference — with and without
//! simplification — and the incremental grounder must match monolithic
//! grounding for any base/delta split.

use agenp_asp::{
    ground_with_stats, GroundMode, GroundOptions, GroundProgram, IncrementalGrounder, Program, Rule,
};
use proptest::prelude::*;

/// One atom position in a generated rule: which predicate and which argument
/// selectors (0 = `X`, 1 = `Y`, 2.. = small integer constants).
type AtomSpec = (u8, Vec<u8>);

/// A generated rule, safe by construction: negative literals, comparisons,
/// and head arguments only use variables bound by the positive body (unbound
/// selectors are rewritten to a constant during rendering).
#[derive(Clone, Debug)]
struct RuleSpec {
    body: Vec<AtomSpec>,
    neg: Option<AtomSpec>,
    cmp: Option<u8>,
    head: Option<AtomSpec>,
}

/// Predicates: `p/1`, `q/1`, `s/1`, `r/2`.
fn pred_name(sel: u8) -> (&'static str, usize) {
    match sel % 4 {
        0 => ("p", 1),
        1 => ("q", 1),
        2 => ("s", 1),
        _ => ("r", 2),
    }
}

/// Renders an argument selector; unbound variables become the constant `1`.
fn arg_str(sel: u8, bound: &[bool; 2]) -> String {
    match sel % 6 {
        0 if bound[0] => "X".to_string(),
        1 if bound[1] => "Y".to_string(),
        other => ((other % 4) + 1).to_string(),
    }
}

/// Renders an atom; `bound` marks which variables may appear.
fn atom_str(spec: &AtomSpec, bound: &[bool; 2]) -> String {
    let (name, arity) = pred_name(spec.0);
    let args: Vec<String> = (0..arity)
        .map(|i| arg_str(*spec.1.get(i).unwrap_or(&2), bound))
        .collect();
    format!("{name}({})", args.join(", "))
}

/// Renders a rule spec as program text.
fn rule_str(spec: &RuleSpec) -> String {
    let all = [true, true];
    let mut bound = [false, false];
    let mut body: Vec<String> = Vec::new();
    for a in &spec.body {
        body.push(atom_str(a, &all));
        let (_, arity) = pred_name(a.0);
        for i in 0..arity {
            match a.1.get(i).unwrap_or(&2) % 6 {
                0 => bound[0] = true,
                1 => bound[1] = true,
                _ => {}
            }
        }
    }
    if let Some(n) = &spec.neg {
        body.push(format!("not {}", atom_str(n, &bound)));
    }
    if let Some(c) = spec.cmp {
        if bound[0] {
            body.push(format!("X < {}", (c % 4) + 1));
        }
    }
    match &spec.head {
        Some(h) => format!("{} :- {}.", atom_str(h, &bound), body.join(", ")),
        None => format!(":- {}.", body.join(", ")),
    }
}

fn arb_atom_spec() -> impl Strategy<Value = AtomSpec> {
    (any::<u8>(), proptest::collection::vec(any::<u8>(), 2))
}

fn arb_rule_spec() -> impl Strategy<Value = RuleSpec> {
    (
        proptest::collection::vec(arb_atom_spec(), 1..4),
        proptest::option::of(arb_atom_spec()),
        proptest::option::of(any::<u8>()),
        proptest::option::weighted(0.8, arb_atom_spec()),
    )
        .prop_map(|(body, neg, cmp, head)| RuleSpec {
            body,
            neg,
            cmp,
            head,
        })
}

/// A random safe program: ground facts, generated rules, and sometimes a
/// weak constraint.
fn arb_program_text() -> impl Strategy<Value = String> {
    let fact = (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(p, a, b)| {
        let (name, arity) = pred_name(p);
        if arity == 1 {
            format!("{name}({}).", (a % 4) + 1)
        } else {
            format!("{name}({}, {}).", (a % 4) + 1, (b % 4) + 1)
        }
    });
    let weak = (any::<u8>(), any::<u8>()).prop_map(|(p, w)| {
        let (name, arity) = pred_name(p);
        let args = if arity == 1 { "X" } else { "X, X" };
        format!(":~ {name}({args}). [{}@0]", (w % 3) + 1)
    });
    (
        proptest::collection::vec(fact, 1..6),
        proptest::collection::vec(arb_rule_spec(), 1..6),
        proptest::option::weighted(0.3, weak),
    )
        .prop_map(|(facts, rules, weak)| {
            let mut lines = facts;
            lines.extend(rules.iter().map(rule_str));
            lines.extend(weak);
            lines.join("\n")
        })
}

/// Order-insensitive rendering of a ground program.
fn rendered_lines(g: &GroundProgram) -> Vec<String> {
    let mut lines: Vec<String> = g.to_string().lines().map(str::to_string).collect();
    lines.sort();
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn seminaive_equals_naive_on_random_programs(text in arb_program_text()) {
        let program: Program = text.parse().expect("generated programs parse");
        let (semi, _) = ground_with_stats(&program, GroundOptions::default())
            .expect("generated programs ground");
        let (naive, _) = ground_with_stats(
            &program,
            GroundOptions::default().with_mode(GroundMode::Naive),
        )
        .expect("generated programs ground");
        prop_assert_eq!(rendered_lines(&semi), rendered_lines(&naive));
    }

    #[test]
    fn seminaive_equals_naive_without_simplification(text in arb_program_text()) {
        let program: Program = text.parse().expect("generated programs parse");
        let opts = GroundOptions::default().with_simplify(false);
        let (semi, _) = ground_with_stats(&program, opts).expect("grounds");
        let (naive, _) =
            ground_with_stats(&program, opts.with_mode(GroundMode::Naive)).expect("grounds");
        prop_assert_eq!(rendered_lines(&semi), rendered_lines(&naive));
    }

    #[test]
    fn parallel_equals_serial_across_thread_counts(text in arb_program_text()) {
        let program: Program = text.parse().expect("generated programs parse");
        // grain 1 forces chunking so multi-thread runs genuinely take the
        // pool path even on tiny generated programs.
        let (reference, _) = ground_with_stats(
            &program,
            GroundOptions::default().with_parallelism(1).with_parallel_grain(1),
        )
        .expect("grounds");
        for threads in [2usize, 4] {
            let opts = GroundOptions::default()
                .with_parallelism(threads)
                .with_parallel_grain(1);
            let (parallel, _) = ground_with_stats(&program, opts).expect("grounds");
            // Byte-identical, not merely set-equal: same rule order and the
            // same atom-id assignment regardless of thread count.
            prop_assert_eq!(parallel.to_string(), reference.to_string());
            let ids: Vec<(u32, String)> = parallel
                .atoms()
                .iter()
                .map(|(id, a)| (id, a.to_string()))
                .collect();
            let ref_ids: Vec<(u32, String)> = reference
                .atoms()
                .iter()
                .map(|(id, a)| (id, a.to_string()))
                .collect();
            prop_assert_eq!(ids, ref_ids);
            // And the parallel output still matches the naive reference.
            let (naive, _) = ground_with_stats(
                &program,
                opts.with_mode(GroundMode::Naive),
            )
            .expect("grounds");
            prop_assert_eq!(rendered_lines(&parallel), rendered_lines(&naive));
        }
    }

    #[test]
    fn incremental_delta_equals_monolithic_on_random_splits(
        base_text in arb_program_text(),
        delta_specs in proptest::collection::vec(arb_rule_spec(), 0..4),
    ) {
        let base: Program = base_text.parse().expect("parses");
        let delta: Vec<Rule> = delta_specs
            .iter()
            .map(|s| rule_str(s).parse().expect("generated rules parse"))
            .collect();
        let mut combined = base.clone();
        for r in &delta {
            combined.push(r.clone());
        }
        let (monolithic, _) =
            ground_with_stats(&combined, GroundOptions::default()).expect("grounds");
        let grounder =
            IncrementalGrounder::new(&base, GroundOptions::default()).expect("base grounds");
        let incremental = grounder.ground_delta(&delta).expect("delta grounds");
        prop_assert_eq!(rendered_lines(&incremental), rendered_lines(&monolithic));
    }
}
