//! Tests for weak constraints and optimization (utility-based policies,
//! paper §I's third policy type).

use agenp_asp::{ground, CostVector, Program, Solver};

#[test]
fn parses_and_displays_weak_constraints() {
    let p: Program = "
        item(a). item(b).
        pick(X) :- item(X), not drop(X).
        drop(X) :- item(X), not pick(X).
        :~ pick(X). [1@2]
        :~ drop(a). [3]
    "
    .parse()
    .unwrap();
    assert_eq!(p.weak_constraints().len(), 2);
    assert_eq!(p.weak_constraints()[0].level, 2);
    assert_eq!(p.weak_constraints()[1].level, 0);
    let printed = p.to_string();
    assert!(printed.contains(":~ pick(X). [1@2]"), "{printed}");
    let again: Program = printed.parse().unwrap();
    assert_eq!(again.weak_constraints().len(), 2);
}

#[test]
fn optimize_prefers_cheapest_model() {
    // Choose exactly one of a/b/c; costs 3/1/2.
    let p: Program = "
        a :- not b, not c.
        b :- not a, not c.
        c :- not a, not b.
        :~ a. [3]
        :~ b. [1]
        :~ c. [2]
    "
    .parse()
    .unwrap();
    let g = ground(&p).unwrap();
    let r = Solver::new().optimize(&g);
    assert!(r.proven_optimal());
    assert_eq!(r.optima().len(), 1);
    assert!(r.optima()[0].contains(&"b".parse().unwrap()));
    assert_eq!(r.cost().unwrap().at_level(0), 1);
}

#[test]
fn levels_dominate_weights() {
    // a has huge low-level cost, b has tiny high-level cost: a wins because
    // higher levels are minimized first.
    let p: Program = "
        a :- not b.
        b :- not a.
        :~ a. [100@0]
        :~ b. [1@1]
    "
    .parse()
    .unwrap();
    let g = ground(&p).unwrap();
    let r = Solver::new().optimize(&g);
    assert_eq!(r.optima().len(), 1);
    assert!(r.optima()[0].contains(&"a".parse().unwrap()));
}

#[test]
fn variable_weights_are_summed() {
    // Picking both items costs 2+5; dropping one saves its value.
    let p: Program = "
        value(a, 2). value(b, 5).
        pick(X) :- value(X, _), not drop(X).
        drop(X) :- value(X, _), not pick(X).
        :~ pick(X), value(X, V). [V]
        % picking nothing is heavily penalized per dropped item
        :~ drop(X). [10]
    "
    .parse()
    .unwrap();
    let g = ground(&p).unwrap();
    let r = Solver::new().optimize(&g);
    // Best: pick both (2 + 5 = 7) since dropping costs 10 each.
    assert_eq!(r.cost().unwrap().at_level(0), 7);
    let m = &r.optima()[0];
    assert!(m.contains(&"pick(a)".parse().unwrap()));
    assert!(m.contains(&"pick(b)".parse().unwrap()));
}

#[test]
fn ties_return_all_optima() {
    let p: Program = "
        a :- not b.
        b :- not a.
        :~ a. [2]
        :~ b. [2]
    "
    .parse()
    .unwrap();
    let g = ground(&p).unwrap();
    let r = Solver::new().optimize(&g);
    assert_eq!(r.optima().len(), 2);
}

#[test]
fn unsatisfiable_programs_have_no_optimum() {
    let p: Program = "a. :- a. :~ a. [1]".parse().unwrap();
    let g = ground(&p).unwrap();
    let r = Solver::new().optimize(&g);
    assert!(r.optima().is_empty());
    assert!(r.cost().is_none());
}

#[test]
fn zero_cost_models_beat_penalized_ones() {
    let p: Program = "
        a :- not b.
        b :- not a.
        :~ a. [4]
    "
    .parse()
    .unwrap();
    let g = ground(&p).unwrap();
    let r = Solver::new().optimize(&g);
    assert!(r.cost().unwrap().is_zero());
    assert!(r.optima()[0].contains(&"b".parse().unwrap()));
}

#[test]
fn cost_vector_ordering() {
    let a = CostVector::from_contributions([(1, 2), (0, 100)]);
    let b = CostVector::from_contributions([(1, 3)]);
    assert!(a < b, "level 1 dominates: 2 < 3");
    let c = CostVector::from_contributions([(1, 2), (0, 1)]);
    assert!(c < a, "tie at level 1 broken at level 0");
    let zero = CostVector::default();
    assert!(zero < c);
    assert_eq!(zero, CostVector::from_contributions([(0, 0)]));
    assert_eq!(format!("{a}"), "2@1 100@0");
    assert_eq!(format!("{zero}"), "0");
}

#[test]
fn unsafe_weight_variables_are_rejected() {
    let p: Program = "item(a). :~ item(X). [W]".parse().unwrap();
    assert!(ground(&p).is_err());
}

#[test]
fn weak_constraints_survive_simplification() {
    // The body atom is a definite fact: the weak constraint becomes an
    // unconditional penalty and must still be counted.
    let p: Program = "
        a.
        b :- not c.
        c :- not b.
        :~ a, b. [5]
    "
    .parse()
    .unwrap();
    let g = ground(&p).unwrap();
    let r = Solver::new().optimize(&g);
    // Optimal model avoids b.
    assert!(r.cost().unwrap().is_zero());
    assert!(r.optima()[0].contains(&"c".parse().unwrap()));
}

mod props {
    use agenp_asp::{
        ground, model_cost, Atom, Literal, Program, Rule, Solver, Term, WeakConstraint,
    };
    use proptest::prelude::*;

    fn arb_program_with_weaks() -> impl Strategy<Value = Program> {
        let atom = (0u8..5).prop_map(|i| Atom::prop(&format!("w{i}")));
        let literal = (atom.clone(), any::<bool>()).prop_map(|(a, neg)| {
            if neg {
                Literal::Neg(a)
            } else {
                Literal::Pos(a)
            }
        });
        let rule = (
            proptest::option::of(atom),
            proptest::collection::vec(literal.clone(), 0..3),
        )
            .prop_map(|(head, body)| Rule { head, body });
        let weak = (proptest::collection::vec(literal, 1..3), 1i64..5, 0i64..2).prop_map(
            |(body, w, l)| WeakConstraint {
                body,
                weight: Term::Int(w),
                level: l,
            },
        );
        (
            proptest::collection::vec(rule, 0..6),
            proptest::collection::vec(weak, 0..4),
        )
            .prop_map(|(rules, weaks)| {
                let mut p: Program = rules
                    .into_iter()
                    .filter(|r| !(r.head.is_none() && r.body.is_empty()))
                    .collect();
                for w in weaks {
                    p.push_weak(w);
                }
                p
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The optimum is a lower bound on every model's cost, and every
        /// reported optimum actually achieves it.
        #[test]
        fn optimum_is_a_lower_bound(program in arb_program_with_weaks()) {
            let g = ground(&program).expect("propositional programs ground");
            let all = Solver::new().solve(&g);
            let opt = Solver::new().optimize(&g);
            match opt.cost() {
                None => prop_assert!(all.models().is_empty()),
                Some(best) => {
                    for m in all.models() {
                        prop_assert!(model_cost(&g, m) >= *best);
                    }
                    for o in opt.optima() {
                        prop_assert_eq!(&model_cost(&g, o), best);
                    }
                    prop_assert!(!opt.optima().is_empty());
                }
            }
        }

        /// Weak constraints never change the set of answer sets.
        #[test]
        fn weaks_do_not_affect_satisfiability(program in arb_program_with_weaks()) {
            let g = ground(&program).expect("grounds");
            let stripped: Program = program.rules().iter().cloned().collect();
            let g2 = ground(&stripped).expect("grounds");
            let a = Solver::new().solve(&g);
            let b = Solver::new().solve(&g2);
            let mut ma: Vec<String> = a.models().iter().map(|m| m.to_string()).collect();
            let mut mb: Vec<String> = b.models().iter().map(|m| m.to_string()).collect();
            ma.sort();
            mb.sort();
            prop_assert_eq!(ma, mb);
        }
    }
}

#[test]
fn ground_display_includes_weak_constraints() {
    let p: Program = "
        n(1..2).
        pick(X) :- n(X), not skip(X).
        skip(X) :- n(X), not pick(X).
        :~ pick(X). [1@2]
    "
    .parse()
    .unwrap();
    let g = ground(&p).unwrap();
    let text = g.to_string();
    assert!(text.contains(":~ pick(1). [1@2]"), "{text}");
    assert!(text.contains(":~ pick(2). [1@2]"), "{text}");
    // And the printed ground program reparses.
    let again: Program = text.parse().unwrap();
    assert_eq!(again.weak_constraints().len(), 2);
}
