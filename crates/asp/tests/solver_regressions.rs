//! Regression suite for the solver on classic ASP benchmark programs with
//! known answer-set counts and structure.

use agenp_asp::{ground, Program, Solver};

fn count_models(src: &str) -> usize {
    let p: Program = src.parse().expect("program parses");
    let g = ground(&p).expect("program grounds");
    let r = Solver::new().solve(&g);
    assert!(r.complete(), "enumeration must finish");
    r.models().len()
}

#[test]
fn independent_sets_of_a_path() {
    // Independent sets of the path 1-2-3-4: F(6) = 8 (Fibonacci).
    let src = "
        node(1..4).
        edge(1, 2). edge(2, 3). edge(3, 4).
        in(X)  :- node(X), not out(X).
        out(X) :- node(X), not in(X).
        :- edge(X, Y), in(X), in(Y).
    ";
    assert_eq!(count_models(src), 8);
}

#[test]
fn three_coloring_of_a_triangle() {
    // 3! = 6 proper 3-colorings of K3.
    let src = "
        node(1..3).
        edge(1, 2). edge(2, 3). edge(1, 3).
        col(X, r) :- node(X), not col(X, g), not col(X, b).
        col(X, g) :- node(X), not col(X, r), not col(X, b).
        col(X, b) :- node(X), not col(X, r), not col(X, g).
        :- edge(X, Y), col(X, C), col(Y, C).
    ";
    assert_eq!(count_models(src), 6);
}

#[test]
fn two_coloring_of_k4_is_impossible() {
    let src = "
        node(1..4).
        edge(X, Y) :- node(X), node(Y), X < Y.
        col(X, r) :- node(X), not col(X, b).
        col(X, b) :- node(X), not col(X, r).
        :- edge(X, Y), col(X, C), col(Y, C).
    ";
    assert_eq!(count_models(src), 0);
}

#[test]
fn hamiltonian_cycles_of_k3() {
    // Directed Hamiltonian cycles of K3: 2 (two orientations).
    let src = "
        node(1..3).
        arc(X, Y) :- node(X), node(Y), X != Y.
        in(X, Y)  :- arc(X, Y), not out(X, Y).
        out(X, Y) :- arc(X, Y), not in(X, Y).
        % each node has exactly one outgoing and one incoming chosen arc
        has_out(X) :- in(X, Y).
        has_in(Y)  :- in(X, Y).
        :- node(X), not has_out(X).
        :- node(X), not has_in(X).
        :- in(X, Y), in(X, Z), Y < Z.
        :- in(X, Y), in(Z, Y), X < Z.
        % connectivity: everything reachable from node 1
        reach(1).
        reach(Y) :- reach(X), in(X, Y).
        :- node(X), not reach(X).
    ";
    assert_eq!(count_models(src), 2);
}

#[test]
fn stable_marriage_tiny() {
    // One man, one woman: exactly one matching.
    let src = "
        man(m1). woman(w1).
        match(M, W) :- man(M), woman(W), not unmatched(M, W).
        unmatched(M, W) :- man(M), woman(W), not match(M, W).
        :- man(M), match(M, W1), match(M, W2), W1 < W2.
        has_match(M) :- match(M, W).
        :- man(M), not has_match(M).
    ";
    assert_eq!(count_models(src), 1);
}

#[test]
fn default_reasoning_with_exceptions() {
    let src = "
        bird(tweety). bird(polly). penguin(polly).
        abnormal(X) :- penguin(X).
        flies(X) :- bird(X), not abnormal(X).
    ";
    let p: Program = src.parse().unwrap();
    let g = ground(&p).unwrap();
    let r = Solver::new().solve(&g);
    assert_eq!(r.models().len(), 1);
    let m = &r.models()[0];
    assert!(m.contains(&"flies(tweety)".parse().unwrap()));
    assert!(!m.contains(&"flies(polly)".parse().unwrap()));
}

#[test]
fn deep_stratification_chain() {
    // p0 … p19 alternate through negation; a single model results.
    let mut src = String::from("p0.\n");
    for i in 1..20 {
        src.push_str(&format!("p{i} :- not p{}.\n", i - 1));
    }
    let p: Program = src.parse().unwrap();
    let g = ground(&p).unwrap();
    let r = Solver::new().solve(&g);
    assert!(r.stats().used_stratified);
    assert_eq!(r.models().len(), 1);
    let m = &r.models()[0];
    // p0 true blocks p1; p2 then fires (not p1), etc.: even indices true.
    assert!(m.contains(&"p0".parse().unwrap()));
    assert!(!m.contains(&"p1".parse().unwrap()));
    assert!(m.contains(&"p2".parse().unwrap()));
    assert!(m.contains(&"p18".parse().unwrap()));
    assert!(!m.contains(&"p19".parse().unwrap()));
}

#[test]
fn large_choice_space_counts() {
    // 2^8 subsets.
    let mut src = String::new();
    for i in 0..8 {
        src.push_str(&format!("a{i} :- not b{i}. b{i} :- not a{i}.\n"));
    }
    assert_eq!(count_models(&src), 256);
}

#[test]
fn constraints_prune_exactly() {
    // 2^6 subsets, minus those containing both a0 and a1.
    let mut src = String::new();
    for i in 0..6 {
        src.push_str(&format!("a{i} :- not b{i}. b{i} :- not a{i}.\n"));
    }
    src.push_str(":- a0, a1.\n");
    assert_eq!(count_models(&src), 48); // 64 - 16
}

#[test]
fn recursive_even_definition() {
    let src = "
        num(0..6).
        even(0).
        even(Y) :- num(Y), Y = X + 2, even(X), num(X).
    ";
    let p: Program = src.parse().unwrap();
    let g = ground(&p).unwrap();
    let r = Solver::new().solve(&g);
    let m = &r.models()[0];
    assert_eq!(m.with_predicate("even").count(), 4); // 0, 2, 4, 6
}

#[test]
fn long_clauses_propagate_correctly() {
    // Support clauses get long when an atom has many rules; exercise the
    // watched-literal scheme with a 10-way definition.
    let mut src = String::new();
    for i in 0..10 {
        src.push_str(&format!("t{i} :- not f{i}. f{i} :- not t{i}.\n"));
        src.push_str(&format!("goal :- t{i}.\n"));
    }
    src.push_str(":- not goal.\n");
    let p: Program = src.parse().unwrap();
    let g = ground(&p).unwrap();
    let r = Solver::new().solve(&g);
    assert!(r.complete());
    // 2^10 total choices minus the single all-false one.
    assert_eq!(r.models().len(), (1 << 10) - 1);
}
