//! Property tests for the explanation machinery: derivation proofs must be
//! sound (every node's rule fires under the model, every assumption is
//! absent, every true atom is explainable) and rejection reports must be
//! exact.

use agenp_asp::{
    explain_atom, ground_with, violated_constraints, Atom, Derivation, GroundOptions, Literal,
    Program, Rule, Solver,
};
use proptest::prelude::*;

fn arb_program() -> impl Strategy<Value = Program> {
    let atom = (0u8..5).prop_map(|i| Atom::prop(&format!("e{i}")));
    let literal = (atom.clone(), any::<bool>()).prop_map(|(a, neg)| {
        if neg {
            Literal::Neg(a)
        } else {
            Literal::Pos(a)
        }
    });
    let rule = (
        proptest::option::of(atom),
        proptest::collection::vec(literal, 0..3),
    )
        .prop_map(|(head, body)| Rule { head, body });
    proptest::collection::vec(rule, 0..8).prop_map(|rules| {
        rules
            .into_iter()
            .filter(|r| !(r.head.is_none() && r.body.is_empty()))
            .collect()
    })
}

/// Checks the structural soundness of a proof against a model.
fn proof_sound(d: &Derivation, model: &agenp_asp::AnswerSet) -> bool {
    model.contains(&d.atom)
        && d.assumptions.iter().all(|a| !model.contains(a))
        && d.premises.iter().all(|p| proof_sound(p, model))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every atom of every answer set has a sound, finite proof.
    #[test]
    fn every_true_atom_is_explainable(program in arb_program()) {
        let g = ground_with(
            &program,
            GroundOptions { simplify: false, ..GroundOptions::default() },
        )
        .expect("propositional programs ground");
        let result = Solver::new().solve(&g);
        for model in result.models() {
            for atom in model.atoms() {
                let proof = explain_atom(&g, model, atom);
                prop_assert!(proof.is_some(), "no proof for {atom} in {model}");
                let proof = proof.expect("checked");
                prop_assert!(proof_sound(&proof, model), "unsound proof for {atom}");
                prop_assert_eq!(&proof.atom, atom);
            }
        }
    }

    /// `violated_constraints` names exactly the constraints whose bodies a
    /// candidate set satisfies — cross-checked by brute force.
    #[test]
    fn violation_reports_are_exact(program in arb_program(), truth_bits in 0u32..32) {
        let g = ground_with(
            &program,
            GroundOptions { simplify: false, ..GroundOptions::default() },
        )
        .expect("grounds");
        // An arbitrary candidate set of atoms (not necessarily a model).
        let atoms: Vec<Atom> = (0u8..5)
            .filter(|i| truth_bits & (1 << i) != 0)
            .map(|i| Atom::prop(&format!("e{i}")))
            .collect();
        let reported = violated_constraints(&g, &atoms);
        let truth = |a: &Atom| atoms.contains(a);
        // The grounder only instantiates a constraint when its positive
        // body atoms are derivable (over-approximating: heads reachable
        // ignoring negation); mirror that and dedup identical constraints.
        let mut possible: Vec<Atom> = Vec::new();
        loop {
            let mut changed = false;
            for r in program.rules() {
                let Some(h) = &r.head else { continue };
                if possible.contains(h) {
                    continue;
                }
                let ok = r.body.iter().all(|l| match l {
                    Literal::Pos(a) => possible.contains(a),
                    _ => true,
                });
                if ok {
                    possible.push(h.clone());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Canonicalize bodies the way the grounder does (sorted, deduped
        // literal sets) so duplicate literals and duplicate constraints
        // collapse identically.
        let canon = |r: &Rule| {
            let mut pos: Vec<String> = Vec::new();
            let mut neg: Vec<String> = Vec::new();
            for l in &r.body {
                match l {
                    Literal::Pos(a) => pos.push(a.to_string()),
                    Literal::Neg(a) => neg.push(a.to_string()),
                    Literal::Cmp(..) => {}
                }
            }
            pos.sort();
            pos.dedup();
            neg.sort();
            neg.dedup();
            (pos, neg)
        };
        let mut expected: Vec<(Vec<String>, Vec<String>)> = program
            .rules()
            .iter()
            .filter(|r| r.is_constraint())
            .filter(|r| {
                r.body.iter().all(|l| match l {
                    Literal::Pos(a) => possible.contains(a),
                    _ => true,
                })
            })
            .filter(|r| {
                r.body.iter().all(|l| match l {
                    Literal::Pos(a) => truth(a),
                    Literal::Neg(a) => !truth(a),
                    Literal::Cmp(op, x, y) => op.eval(x, y),
                })
            })
            .map(canon)
            .collect();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(reported.len(), expected.len(), "atoms: {:?}", atoms);
    }

    /// Proofs never cite a rule whose body is not satisfied by the model.
    #[test]
    fn cited_rules_fire(program in arb_program()) {
        let g = ground_with(
            &program,
            GroundOptions { simplify: false, ..GroundOptions::default() },
        )
        .expect("grounds");
        let result = Solver::new().solve(&g);
        for model in result.models() {
            for atom in model.atoms() {
                if let Some(proof) = explain_atom(&g, model, atom) {
                    // The cited rule text reparses and its body holds.
                    let cited: Rule = proof.rule.parse().expect("cited rule reparses");
                    let holds = cited.body.iter().all(|l| match l {
                        Literal::Pos(a) => model.contains(a),
                        Literal::Neg(a) => !model.contains(a),
                        Literal::Cmp(op, x, y) => op.eval(x, y),
                    });
                    prop_assert!(holds, "cited rule `{}` does not fire", proof.rule);
                }
            }
        }
    }
}
