//! Property-based tests for the ASP engine: every enumerated model must be a
//! classical model of the program and stable under the Gelfond–Lifschitz
//! reduct, the stratified fast path must agree with the generic search, and
//! printing must round-trip through the parser.

use agenp_asp::{ground, Atom, Literal, Program, Rule, Solver, Term};
use proptest::prelude::*;

/// A small random propositional program over atoms `a0..a5`.
fn arb_program() -> impl Strategy<Value = Program> {
    let atom = (0u8..6).prop_map(|i| Atom::prop(&format!("a{i}")));
    let literal = (atom.clone(), any::<bool>()).prop_map(|(a, neg)| {
        if neg {
            Literal::Neg(a)
        } else {
            Literal::Pos(a)
        }
    });
    let body = proptest::collection::vec(literal, 0..3);
    let rule = (proptest::option::of(atom), body).prop_map(|(head, body)| Rule { head, body });
    proptest::collection::vec(rule, 0..8).prop_map(|rules| {
        rules
            .into_iter()
            .filter(|r| !(r.head.is_none() && r.body.is_empty()))
            .collect()
    })
}

/// Classical satisfaction of a rule by a set of true atom names.
fn rule_satisfied(rule: &Rule, truth: &dyn Fn(&Atom) -> bool) -> bool {
    let body_sat = rule.body.iter().all(|l| match l {
        Literal::Pos(a) => truth(a),
        Literal::Neg(a) => !truth(a),
        Literal::Cmp(op, x, y) => op.eval(x, y),
    });
    if !body_sat {
        return true;
    }
    match &rule.head {
        Some(h) => truth(h),
        None => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn models_are_classical_models(program in arb_program()) {
        let g = ground(&program).expect("propositional programs ground");
        let result = Solver::new().solve(&g);
        prop_assert!(result.complete());
        for m in result.models() {
            let truth = |a: &Atom| m.contains(a);
            for rule in program.rules() {
                prop_assert!(
                    rule_satisfied(rule, &truth),
                    "model {m} violates rule {rule}"
                );
            }
        }
    }

    #[test]
    fn models_are_stable(program in arb_program()) {
        let g = ground(&program).expect("propositional programs ground");
        let result = Solver::new().solve(&g);
        for m in result.models() {
            let ids: Vec<_> = g
                .atoms()
                .iter()
                .filter(|(_, a)| m.contains(a))
                .map(|(id, _)| id)
                .collect();
            prop_assert!(agenp_asp::is_stable(&g, &ids), "model {m} is not stable");
        }
    }

    #[test]
    fn stratified_path_agrees_with_search(program in arb_program()) {
        let g = ground(&program).expect("propositional programs ground");
        let fast = Solver::new().solve(&g);
        if !fast.stats().used_stratified {
            return Ok(()); // non-stratified: only one path exists
        }
        let slow = Solver::new().force_search(true).solve(&g);
        let mut a: Vec<String> = fast.models().iter().map(|m| m.to_string()).collect();
        let mut b: Vec<String> = slow.models().iter().map(|m| m.to_string()).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn models_are_minimal_among_themselves(program in arb_program()) {
        // No answer set is a strict subset of another (stable models form an
        // antichain).
        let g = ground(&program).expect("propositional programs ground");
        let result = Solver::new().solve(&g);
        let models = result.models();
        for (i, m1) in models.iter().enumerate() {
            for (j, m2) in models.iter().enumerate() {
                if i == j {
                    continue;
                }
                let subset = m1.atoms().iter().all(|a| m2.contains(a));
                prop_assert!(
                    !(subset && m1.len() < m2.len()),
                    "answer set {m1} is a strict subset of {m2}"
                );
            }
        }
    }

    #[test]
    fn display_parse_round_trip(program in arb_program()) {
        let text = program.to_string();
        let reparsed: Program = text.parse().expect("printed program reparses");
        prop_assert_eq!(program, reparsed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Grounding a rule over a domain of integers enumerates exactly the
    /// instances satisfying its comparison filters.
    #[test]
    fn grounding_respects_filters(lo in 0i64..5, width in 0i64..6, cut in 0i64..10) {
        let hi = lo + width;
        let src = format!(
            "num({lo}..{hi}). keep(X) :- num(X), X < {cut}."
        );
        let program: Program = src.parse().unwrap();
        let g = ground(&program).unwrap();
        let result = Solver::new().solve(&g);
        let m = &result.models()[0];
        let kept = m.with_predicate("keep").count();
        let expected = (lo..=hi).filter(|&x| x < cut).count();
        prop_assert_eq!(kept, expected);
    }

    /// Arithmetic binders compute the expected function.
    #[test]
    fn grounding_evaluates_arithmetic(xs in proptest::collection::btree_set(0i64..20, 1..6)) {
        let mut src = String::new();
        for x in &xs {
            src.push_str(&format!("n({x}). "));
        }
        src.push_str("d(Y) :- n(X), Y = X * 2 + 1.");
        let program: Program = src.parse().unwrap();
        let result = Solver::new().solve(&ground(&program).unwrap());
        let m = &result.models()[0];
        for x in &xs {
            let want = Atom::new("d", vec![Term::Int(x * 2 + 1)]);
            prop_assert!(m.contains(&want), "missing {want}");
        }
        prop_assert_eq!(m.with_predicate("d").count(), xs.len());
    }
}
