//! Fuzz-style robustness tests: the parsers must never panic — any input
//! yields `Ok` or a positioned `Err`.

use agenp_asp::{parse_atom, parse_program, parse_rule};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary ASCII input never panics the program parser.
    #[test]
    fn program_parser_never_panics(src in "[ -~\\n]{0,120}") {
        let _ = parse_program(&src);
    }

    /// Arbitrary token soup from the ASP alphabet never panics.
    #[test]
    fn token_soup_never_panics(
        parts in proptest::collection::vec(
            prop_oneof![
                Just(":-"), Just(":~"), Just("not"), Just("."), Just(","),
                Just("("), Just(")"), Just("["), Just("]"), Just("@"),
                Just("p"), Just("X"), Just("42"), Just("\"s\""), Just("+"),
                Just("<"), Just("="), Just(".."), Just("%c\n"),
            ],
            0..30,
        )
    ) {
        let src = parts.join(" ");
        let _ = parse_program(&src);
        let _ = parse_rule(&src);
        let _ = parse_atom(&src);
    }

    /// Valid programs survive a print/parse/print fixpoint.
    #[test]
    fn print_parse_print_fixpoint(src in "[ -~\\n]{0,80}") {
        if let Ok(p) = parse_program(&src) {
            let printed = p.to_string();
            let reparsed = parse_program(&printed)
                .expect("printed programs must reparse");
            prop_assert_eq!(printed, reparsed.to_string());
        }
    }
}
