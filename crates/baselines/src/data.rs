//! Tabular datasets with mixed categorical/numeric features, the input
//! format shared by all baseline learners.

use std::fmt;

/// One feature value.
#[derive(Clone, PartialEq, Debug)]
pub enum Feature {
    /// A numeric feature.
    Num(f64),
    /// A categorical feature.
    Cat(String),
}

impl Feature {
    /// Categorical constructor.
    pub fn cat(s: &str) -> Feature {
        Feature::Cat(s.to_owned())
    }

    /// Numeric constructor.
    pub fn num(v: impl Into<f64>) -> Feature {
        Feature::Num(v.into())
    }

    /// The numeric value, if numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Feature::Num(v) => Some(*v),
            Feature::Cat(_) => None,
        }
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Feature::Num(v) => write!(f, "{v}"),
            Feature::Cat(s) => f.write_str(s),
        }
    }
}

/// A labelled dataset.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    /// Feature names (column headers).
    pub feature_names: Vec<String>,
    /// Rows of feature values (all rows must have `feature_names.len()`
    /// entries).
    pub rows: Vec<Vec<Feature>>,
    /// Class label per row.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

impl Dataset {
    /// An empty dataset with the given schema.
    pub fn new(feature_names: Vec<String>, n_classes: usize) -> Dataset {
        Dataset {
            feature_names,
            rows: Vec::new(),
            labels: Vec::new(),
            n_classes,
        }
    }

    /// Adds one labelled row.
    ///
    /// # Panics
    ///
    /// Panics if the row width doesn't match the schema or the label is out
    /// of range.
    pub fn push(&mut self, row: Vec<Feature>, label: usize) {
        assert_eq!(row.len(), self.feature_names.len(), "row width mismatch");
        assert!(label < self.n_classes, "label out of range");
        self.rows.push(row);
        self.labels.push(label);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// The subset with the given row indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            feature_names: self.feature_names.clone(),
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        }
    }

    /// The first `n` rows (for learning curves).
    pub fn take(&self, n: usize) -> Dataset {
        let idx: Vec<usize> = (0..n.min(self.len())).collect();
        self.subset(&idx)
    }

    /// The majority class (ties broken toward the lower label), or 0 for an
    /// empty dataset.
    pub fn majority_label(&self) -> usize {
        let mut counts = vec![0usize; self.n_classes.max(1)];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, c)| (c, std::cmp::Reverse(i)))
            .map_or(0, |(i, _)| i)
    }
}

/// A trained classifier.
pub trait Classifier: fmt::Debug {
    /// Predicts the class of one row.
    fn predict(&self, row: &[Feature]) -> usize;

    /// Accuracy on a labelled dataset.
    fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 1.0;
        }
        let correct = data
            .rows
            .iter()
            .zip(&data.labels)
            .filter(|(row, &label)| self.predict(row) == label)
            .count();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn xor_dataset() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            let label = usize::from((a != 0.0) ^ (b != 0.0));
            d.push(vec![Feature::Num(a), Feature::Num(b)], label);
        }
        d
    }

    #[test]
    fn construction_and_subset() {
        let d = xor_dataset();
        assert_eq!(d.len(), 4);
        assert_eq!(d.n_features(), 2);
        let s = d.subset(&[0, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels, vec![0, 0]);
        assert_eq!(d.take(2).len(), 2);
    }

    #[test]
    fn majority_label_breaks_ties_low() {
        let d = xor_dataset();
        assert_eq!(d.majority_label(), 0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_validated() {
        let mut d = Dataset::new(vec!["a".into()], 2);
        d.push(vec![Feature::Num(1.0), Feature::Num(2.0)], 0);
    }
}
