//! A CART-style decision tree (Gini impurity, numeric threshold and
//! categorical equality splits) — the paper's representative "shallow ML"
//! comparator (§IV-A).

use crate::data::{Classifier, Dataset, Feature};

/// Decision-tree hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TreeParams {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
}

impl Default for TreeParams {
    fn default() -> TreeParams {
        TreeParams {
            max_depth: 12,
            min_samples_split: 2,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        label: usize,
    },
    NumSplit {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
    CatSplit {
        feature: usize,
        value: String,
        matches: Box<Node>,
        rest: Box<Node>,
    },
}

/// A trained decision tree.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    root: Node,
    n_nodes: usize,
}

impl DecisionTree {
    /// Fits a tree on `data`.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset) -> DecisionTree {
        DecisionTree::fit_with(data, TreeParams::default())
    }

    /// Fits with explicit hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit_with(data: &Dataset, params: TreeParams) -> DecisionTree {
        assert!(
            !data.is_empty(),
            "cannot fit a decision tree on an empty dataset"
        );
        let idx: Vec<usize> = (0..data.len()).collect();
        let mut n_nodes = 0;
        let root = build(data, &idx, params.max_depth, &params, &mut n_nodes);
        DecisionTree { root, n_nodes }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Depth of the tree.
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::NumSplit { left, right, .. } => 1 + d(left).max(d(right)),
                Node::CatSplit { matches, rest, .. } => 1 + d(matches).max(d(rest)),
            }
        }
        d(&self.root)
    }
}

impl Classifier for DecisionTree {
    fn predict(&self, row: &[Feature]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label } => return *label,
                Node::NumSplit {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = row[*feature].as_num().unwrap_or(f64::NAN);
                    node = if v <= *threshold { left } else { right };
                }
                Node::CatSplit {
                    feature,
                    value,
                    matches,
                    rest,
                } => {
                    let m = matches_cat(&row[*feature], value);
                    node = if m { matches } else { rest };
                }
            }
        }
    }
}

fn matches_cat(f: &Feature, value: &str) -> bool {
    matches!(f, Feature::Cat(s) if s == value)
}

fn gini(data: &Dataset, idx: &[usize]) -> f64 {
    if idx.is_empty() {
        return 0.0;
    }
    let mut counts = vec![0usize; data.n_classes.max(1)];
    for &i in idx {
        counts[data.labels[i]] += 1;
    }
    let n = idx.len() as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / n).powi(2)).sum::<f64>()
}

fn majority(data: &Dataset, idx: &[usize]) -> usize {
    let mut counts = vec![0usize; data.n_classes.max(1)];
    for &i in idx {
        counts[data.labels[i]] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, c)| (c, std::cmp::Reverse(i)))
        .map_or(0, |(i, _)| i)
}

enum Split {
    Num { feature: usize, threshold: f64 },
    Cat { feature: usize, value: String },
}

fn build(
    data: &Dataset,
    idx: &[usize],
    depth_left: usize,
    params: &TreeParams,
    n_nodes: &mut usize,
) -> Node {
    *n_nodes += 1;
    let label = majority(data, idx);
    let impurity = gini(data, idx);
    if impurity == 0.0 || depth_left == 0 || idx.len() < params.min_samples_split {
        return Node::Leaf { label };
    }
    // Find the best split across features.
    let mut best: Option<(f64, Split, Vec<usize>, Vec<usize>)> = None;
    for f in 0..data.n_features() {
        // Candidate numeric thresholds: midpoints between sorted distinct
        // values; categorical candidates: each distinct value.
        let mut nums: Vec<f64> = idx
            .iter()
            .filter_map(|&i| data.rows[i][f].as_num())
            .collect();
        nums.sort_by(|a, b| a.partial_cmp(b).expect("no NaN features"));
        nums.dedup();
        for w in nums.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let (l, r): (Vec<usize>, Vec<usize>) = idx
                .iter()
                .partition(|&&i| data.rows[i][f].as_num().is_some_and(|v| v <= threshold));
            consider(
                data,
                f64::NAN,
                Split::Num {
                    feature: f,
                    threshold,
                },
                l,
                r,
                &mut best,
            );
        }
        let mut cats: Vec<&str> = idx
            .iter()
            .filter_map(|&i| match &data.rows[i][f] {
                Feature::Cat(s) => Some(s.as_str()),
                Feature::Num(_) => None,
            })
            .collect();
        cats.sort_unstable();
        cats.dedup();
        for value in cats {
            let (l, r): (Vec<usize>, Vec<usize>) = idx
                .iter()
                .partition(|&&i| matches_cat(&data.rows[i][f], value));
            consider(
                data,
                f64::NAN,
                Split::Cat {
                    feature: f,
                    value: value.to_owned(),
                },
                l,
                r,
                &mut best,
            );
        }
    }
    // Gini is concave, so every split's weighted child impurity is ≤ the
    // parent's; zero-gain splits (e.g. the first level of XOR) are still
    // taken — termination is guaranteed because both children are strictly
    // smaller, and the depth bound caps pathological growth.
    let Some((_, split, left_idx, right_idx)) = best else {
        return Node::Leaf { label };
    };
    let left = build(data, &left_idx, depth_left - 1, params, n_nodes);
    let right = build(data, &right_idx, depth_left - 1, params, n_nodes);
    match split {
        Split::Num { feature, threshold } => Node::NumSplit {
            feature,
            threshold,
            left: Box::new(left),
            right: Box::new(right),
        },
        Split::Cat { feature, value } => Node::CatSplit {
            feature,
            value,
            matches: Box::new(left),
            rest: Box::new(right),
        },
    }
}

fn consider(
    data: &Dataset,
    _unused: f64,
    split: Split,
    left: Vec<usize>,
    right: Vec<usize>,
    best: &mut Option<(f64, Split, Vec<usize>, Vec<usize>)>,
) {
    if left.is_empty() || right.is_empty() {
        return;
    }
    let n = (left.len() + right.len()) as f64;
    let weighted =
        gini(data, &left) * left.len() as f64 / n + gini(data, &right) * right.len() as f64 / n;
    if best.as_ref().is_none_or(|(b, ..)| weighted < *b) {
        *best = Some((weighted, split, left, right));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            d.push(
                vec![Feature::Num(a), Feature::Num(b)],
                usize::from((a != 0.0) ^ (b != 0.0)),
            );
        }
        d
    }

    #[test]
    fn learns_xor_exactly() {
        let d = xor();
        let t = DecisionTree::fit(&d);
        assert_eq!(t.accuracy(&d), 1.0);
        assert!(t.depth() >= 3);
    }

    #[test]
    fn categorical_splits_work() {
        let mut d = Dataset::new(vec!["weather".into()], 2);
        for _ in 0..5 {
            d.push(vec![Feature::cat("rain")], 0);
            d.push(vec![Feature::cat("clear")], 1);
        }
        let t = DecisionTree::fit(&d);
        assert_eq!(t.accuracy(&d), 1.0);
        assert_eq!(t.predict(&[Feature::cat("rain")]), 0);
        assert_eq!(t.predict(&[Feature::cat("clear")]), 1);
    }

    #[test]
    fn depth_limit_is_respected() {
        let d = xor();
        let t = DecisionTree::fit_with(
            &d,
            TreeParams {
                max_depth: 1,
                min_samples_split: 2,
            },
        );
        assert!(t.depth() <= 2);
        assert!(t.accuracy(&d) < 1.0); // xor is not depth-1 separable
    }

    #[test]
    fn pure_nodes_stop_early() {
        let mut d = Dataset::new(vec!["x".into()], 2);
        for i in 0..10 {
            d.push(vec![Feature::Num(i as f64)], 0);
        }
        let t = DecisionTree::fit(&d);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn mixed_feature_types() {
        let mut d = Dataset::new(vec!["loa".into(), "weather".into()], 2);
        for loa in 0..6 {
            for w in ["rain", "clear"] {
                let label = usize::from(loa >= 3 && w == "clear");
                d.push(vec![Feature::Num(loa as f64), Feature::cat(w)], label);
            }
        }
        let t = DecisionTree::fit(&d);
        assert_eq!(t.accuracy(&d), 1.0);
        assert_eq!(t.predict(&[Feature::Num(5.0), Feature::cat("clear")]), 1);
        assert_eq!(t.predict(&[Feature::Num(5.0), Feature::cat("rain")]), 0);
    }
}
