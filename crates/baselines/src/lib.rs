//! # agenp-baselines — from-scratch shallow-ML baselines
//!
//! The statistical learners the AGENP paper's §IV-A claim compares against
//! ("the ASG based GPM outperforms shallow Machine Learning techniques …
//! as fewer examples are required to achieve a greater accuracy"): a CART
//! decision tree, naive Bayes, and k-nearest-neighbours, all over mixed
//! categorical/numeric tabular data, plus split/learning-curve evaluation
//! helpers.
//!
//! ```
//! use agenp_baselines::{Classifier, Dataset, DecisionTree, Feature};
//!
//! let mut d = Dataset::new(vec!["loa".into()], 2);
//! for loa in 0..6 {
//!     d.push(vec![Feature::Num(loa as f64)], usize::from(loa >= 3));
//! }
//! let tree = DecisionTree::fit(&d);
//! assert_eq!(tree.predict(&[Feature::Num(5.0)]), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod data;
mod eval;
mod knn;
mod nb;
mod tree;

pub use data::{Classifier, Dataset, Feature};
pub use eval::{learning_curve, train_test_split, CurvePoint};
pub use knn::Knn;
pub use nb::NaiveBayes;
pub use tree::{DecisionTree, TreeParams};
