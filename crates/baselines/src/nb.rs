//! Naive Bayes: categorical features with Laplace smoothing, numeric
//! features as Gaussians.

use crate::data::{Classifier, Dataset, Feature};
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum FeatureModel {
    /// value → count per class.
    Cat(HashMap<String, Vec<usize>>),
    /// Per-class (mean, variance).
    Num(Vec<(f64, f64)>),
}

/// A trained naive-Bayes classifier.
#[derive(Clone, Debug)]
pub struct NaiveBayes {
    class_counts: Vec<usize>,
    total: usize,
    features: Vec<FeatureModel>,
    n_classes: usize,
}

impl NaiveBayes {
    /// Fits the model.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset) -> NaiveBayes {
        assert!(
            !data.is_empty(),
            "cannot fit naive Bayes on an empty dataset"
        );
        let n_classes = data.n_classes.max(1);
        let mut class_counts = vec![0usize; n_classes];
        for &l in &data.labels {
            class_counts[l] += 1;
        }
        let mut features = Vec::with_capacity(data.n_features());
        for f in 0..data.n_features() {
            let numeric = data.rows.iter().all(|r| matches!(r[f], Feature::Num(_)));
            if numeric {
                let mut stats = vec![(0.0f64, 0.0f64, 0usize); n_classes]; // (sum, sumsq, n)
                for (row, &label) in data.rows.iter().zip(&data.labels) {
                    let v = row[f].as_num().expect("checked numeric");
                    stats[label].0 += v;
                    stats[label].1 += v * v;
                    stats[label].2 += 1;
                }
                let params: Vec<(f64, f64)> = stats
                    .iter()
                    .map(|&(sum, sumsq, n)| {
                        if n == 0 {
                            (0.0, 1.0)
                        } else {
                            let mean = sum / n as f64;
                            let var = (sumsq / n as f64 - mean * mean).max(1e-6);
                            (mean, var)
                        }
                    })
                    .collect();
                features.push(FeatureModel::Num(params));
            } else {
                let mut counts: HashMap<String, Vec<usize>> = HashMap::new();
                for (row, &label) in data.rows.iter().zip(&data.labels) {
                    let key = row[f].to_string();
                    counts.entry(key).or_insert_with(|| vec![0; n_classes])[label] += 1;
                }
                features.push(FeatureModel::Cat(counts));
            }
        }
        NaiveBayes {
            class_counts,
            total: data.len(),
            features,
            n_classes,
        }
    }
}

impl Classifier for NaiveBayes {
    fn predict(&self, row: &[Feature]) -> usize {
        let mut best = (0usize, f64::NEG_INFINITY);
        for c in 0..self.n_classes {
            let prior =
                (self.class_counts[c] as f64 + 1.0) / (self.total as f64 + self.n_classes as f64);
            let mut log_p = prior.ln();
            for (f, model) in self.features.iter().enumerate() {
                match model {
                    FeatureModel::Cat(counts) => {
                        let key = row[f].to_string();
                        let vocab = counts.len().max(1) as f64;
                        let count = counts.get(&key).map_or(0, |v| v[c]);
                        let p = (count as f64 + 1.0) / (self.class_counts[c] as f64 + vocab);
                        log_p += p.ln();
                    }
                    FeatureModel::Num(params) => {
                        if let Some(v) = row[f].as_num() {
                            let (mean, var) = params[c];
                            let diff = v - mean;
                            log_p += -0.5 * (2.0 * std::f64::consts::PI * var).ln()
                                - diff * diff / (2.0 * var);
                        }
                    }
                }
            }
            if log_p > best.1 {
                best = (c, log_p);
            }
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_categorical() {
        let mut d = Dataset::new(vec!["weather".into()], 2);
        for _ in 0..10 {
            d.push(vec![Feature::cat("rain")], 0);
            d.push(vec![Feature::cat("clear")], 1);
        }
        let nb = NaiveBayes::fit(&d);
        assert_eq!(nb.accuracy(&d), 1.0);
    }

    #[test]
    fn gaussian_numeric() {
        let mut d = Dataset::new(vec!["x".into()], 2);
        for i in 0..20 {
            d.push(vec![Feature::Num(i as f64 / 10.0)], 0);
            d.push(vec![Feature::Num(5.0 + i as f64 / 10.0)], 1);
        }
        let nb = NaiveBayes::fit(&d);
        assert!(nb.accuracy(&d) > 0.95);
        assert_eq!(nb.predict(&[Feature::Num(0.5)]), 0);
        assert_eq!(nb.predict(&[Feature::Num(6.0)]), 1);
    }

    #[test]
    fn unseen_category_is_smoothed() {
        let mut d = Dataset::new(vec!["w".into()], 2);
        d.push(vec![Feature::cat("a")], 0);
        d.push(vec![Feature::cat("b")], 1);
        let nb = NaiveBayes::fit(&d);
        // No panic, some deterministic class.
        let _ = nb.predict(&[Feature::cat("zzz")]);
    }

    #[test]
    fn skewed_priors_matter() {
        let mut d = Dataset::new(vec!["w".into()], 2);
        for _ in 0..9 {
            d.push(vec![Feature::cat("x")], 0);
        }
        d.push(vec![Feature::cat("x")], 1);
        let nb = NaiveBayes::fit(&d);
        assert_eq!(nb.predict(&[Feature::cat("x")]), 0);
    }
}
