//! Evaluation utilities: shuffled splits and learning curves, used by the
//! E6 comparison (ASG-based GPM vs shallow ML, paper §IV-A).

use crate::data::{Classifier, Dataset};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministically shuffles and splits a dataset into (train, test).
pub fn train_test_split(data: &Dataset, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.shuffle(&mut rng);
    let cut = ((data.len() as f64) * train_fraction).round() as usize;
    let cut = cut.min(data.len());
    (data.subset(&idx[..cut]), data.subset(&idx[cut..]))
}

/// One learning-curve point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CurvePoint {
    /// Training-set size used.
    pub n_train: usize,
    /// Accuracy on the held-out test set.
    pub accuracy: f64,
}

/// Computes a learning curve: for each size in `sizes`, fit on the first `n`
/// training rows and test on `test`.
pub fn learning_curve<C: Classifier>(
    train: &Dataset,
    test: &Dataset,
    sizes: &[usize],
    fit: impl Fn(&Dataset) -> C,
) -> Vec<CurvePoint> {
    sizes
        .iter()
        .map(|&n| {
            let sub = train.take(n);
            let model = fit(&sub);
            CurvePoint {
                n_train: sub.len(),
                accuracy: model.accuracy(test),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Feature;
    use crate::tree::DecisionTree;

    fn separable(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["x".into()], 2);
        for i in 0..n {
            d.push(vec![Feature::Num(i as f64)], usize::from(i >= n / 2));
        }
        d
    }

    #[test]
    fn split_is_deterministic_and_partitioning() {
        let d = separable(20);
        let (tr1, te1) = train_test_split(&d, 0.7, 42);
        let (tr2, te2) = train_test_split(&d, 0.7, 42);
        assert_eq!(tr1.len(), 14);
        assert_eq!(te1.len(), 6);
        assert_eq!(tr1.rows, tr2.rows);
        assert_eq!(te1.rows, te2.rows);
        let (tr3, _) = train_test_split(&d, 0.7, 43);
        assert_ne!(tr1.rows, tr3.rows, "different seeds shuffle differently");
    }

    #[test]
    fn curve_improves_with_data() {
        let d = separable(200);
        let (train, test) = train_test_split(&d, 0.5, 7);
        let curve = learning_curve(&train, &test, &[2, 10, 100], DecisionTree::fit);
        assert_eq!(curve.len(), 3);
        assert!(curve[2].accuracy >= curve[0].accuracy);
        assert!(curve[2].accuracy > 0.9);
    }
}
