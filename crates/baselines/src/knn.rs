//! k-nearest-neighbours with a mixed-type distance: normalized absolute
//! difference for numeric features, 0/1 mismatch for categorical.

use crate::data::{Classifier, Dataset, Feature};

/// A (lazy) k-NN classifier: stores the training data and feature ranges.
#[derive(Clone, Debug)]
pub struct Knn {
    data: Dataset,
    k: usize,
    /// Per-feature (min, max) over numeric features, for normalization.
    ranges: Vec<Option<(f64, f64)>>,
}

impl Knn {
    /// "Fits" (stores) the training set.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or `k == 0`.
    pub fn fit(data: &Dataset, k: usize) -> Knn {
        assert!(!data.is_empty(), "cannot fit k-NN on an empty dataset");
        assert!(k > 0, "k must be positive");
        let mut ranges = vec![None; data.n_features()];
        for (f, range) in ranges.iter_mut().enumerate() {
            let nums: Vec<f64> = data.rows.iter().filter_map(|r| r[f].as_num()).collect();
            if !nums.is_empty() {
                let min = nums.iter().copied().fold(f64::INFINITY, f64::min);
                let max = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                *range = Some((min, max));
            }
        }
        Knn {
            data: data.clone(),
            k,
            ranges,
        }
    }

    fn distance(&self, a: &[Feature], b: &[Feature]) -> f64 {
        let mut d = 0.0;
        for (f, (x, y)) in a.iter().zip(b).enumerate() {
            d += match (x, y) {
                (Feature::Num(vx), Feature::Num(vy)) => {
                    let scale = self.ranges[f].map_or(1.0, |(lo, hi)| (hi - lo).max(1e-9));
                    ((vx - vy) / scale).abs()
                }
                (Feature::Cat(cx), Feature::Cat(cy)) if cx == cy => 0.0,
                _ => 1.0,
            };
        }
        d
    }
}

impl Classifier for Knn {
    fn predict(&self, row: &[Feature]) -> usize {
        let mut dists: Vec<(f64, usize)> = self
            .data
            .rows
            .iter()
            .zip(&self.data.labels)
            .map(|(r, &l)| (self.distance(row, r), l))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are finite"));
        let mut counts = vec![0usize; self.data.n_classes.max(1)];
        for &(_, l) in dists.iter().take(self.k) {
            counts[l] += 1;
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, c)| (c, std::cmp::Reverse(i)))
            .map_or(0, |(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_neighbour_memorizes() {
        let mut d = Dataset::new(vec!["x".into()], 2);
        d.push(vec![Feature::Num(0.0)], 0);
        d.push(vec![Feature::Num(10.0)], 1);
        let knn = Knn::fit(&d, 1);
        assert_eq!(knn.predict(&[Feature::Num(1.0)]), 0);
        assert_eq!(knn.predict(&[Feature::Num(9.0)]), 1);
        assert_eq!(knn.accuracy(&d), 1.0);
    }

    #[test]
    fn k_majority_smooths_noise() {
        let mut d = Dataset::new(vec!["x".into()], 2);
        for i in 0..10 {
            d.push(vec![Feature::Num(i as f64)], usize::from(i >= 5));
        }
        // One mislabelled point.
        d.push(vec![Feature::Num(0.5)], 1);
        let knn = Knn::fit(&d, 3);
        assert_eq!(knn.predict(&[Feature::Num(0.4)]), 0);
    }

    #[test]
    fn mixed_distance() {
        let mut d = Dataset::new(vec!["loa".into(), "w".into()], 2);
        d.push(vec![Feature::Num(0.0), Feature::cat("rain")], 0);
        d.push(vec![Feature::Num(5.0), Feature::cat("clear")], 1);
        let knn = Knn::fit(&d, 1);
        assert_eq!(knn.predict(&[Feature::Num(0.5), Feature::cat("rain")]), 0);
        assert_eq!(knn.predict(&[Feature::Num(4.5), Feature::cat("clear")]), 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let mut d = Dataset::new(vec!["x".into()], 1);
        d.push(vec![Feature::Num(0.0)], 0);
        let _ = Knn::fit(&d, 0);
    }
}
