//! The decision log: a bounded ring buffer of served decisions, written
//! by PEP-side callers and drained by the miner.
//!
//! The log sits *beside* the serving tier, not inside it: recording is an
//! explicit call the enforcement point makes after a decision, so parties
//! that do not adapt pay nothing. The buffer is bounded — under sustained
//! load the oldest records fall off first (mining prefers recent
//! evidence), and the drop count is surfaced so a sizing problem is
//! visible rather than silent.

use agenp_core::arch::DecisionOutcome;
use agenp_policy::{Decision, Request};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One served decision, as remembered for mining.
#[derive(Clone, Debug)]
pub struct DecisionRecord {
    /// The request that was decided.
    pub request: Request,
    /// The decision rendered.
    pub decision: Decision,
    /// The penalty annotation carried by the decision (0 = none).
    pub penalty: u32,
    /// The snapshot epoch that served it.
    pub epoch: u64,
    /// Whether the serving snapshot was degraded (fail-safe deny).
    pub degraded: bool,
}

/// A bounded, thread-safe ring buffer of [`DecisionRecord`]s.
///
/// Serving threads [`record`](DecisionLog::record) concurrently; the
/// relearner [`drain`](DecisionLog::drain)s. The lock is held only for a
/// push or a buffer swap, never across mining or learning.
#[derive(Debug)]
pub struct DecisionLog {
    buf: Mutex<VecDeque<DecisionRecord>>,
    capacity: usize,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl DecisionLog {
    /// A log retaining at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> DecisionLog {
        DecisionLog {
            buf: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records a served outcome for `request`. Oldest records are evicted
    /// once the buffer is full.
    pub fn record(&self, request: &Request, outcome: &DecisionOutcome) {
        self.push(DecisionRecord {
            request: request.clone(),
            decision: outcome.decision,
            penalty: outcome.penalty,
            epoch: outcome.epoch,
            degraded: outcome.error.is_some(),
        });
    }

    /// Records a pre-built record (for replay and tests).
    pub fn push(&self, record: DecisionRecord) {
        let mut buf = self.buf.lock().expect("decision log poisoned");
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            agenp_obs::registry().counter("adapt.log.dropped").incr();
        }
        buf.push_back(record);
        drop(buf);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        agenp_obs::registry().counter("adapt.log.recorded").incr();
    }

    /// Takes every buffered record, oldest first, leaving the log empty.
    pub fn drain(&self) -> Vec<DecisionRecord> {
        let mut buf = self.buf.lock().expect("decision log poisoned");
        std::mem::take(&mut *buf).into()
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("decision log poisoned").len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records ever accepted (including since-evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Records evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(role: &str, decision: Decision, epoch: u64) -> DecisionRecord {
        DecisionRecord {
            request: Request::new().subject("role", role),
            decision,
            penalty: 0,
            epoch,
            degraded: false,
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let log = DecisionLog::new(2);
        log.push(rec("a", Decision::Permit, 1));
        log.push(rec("b", Decision::Permit, 1));
        log.push(rec("c", Decision::Deny, 2));
        assert_eq!(log.len(), 2);
        assert_eq!(log.recorded(), 3);
        assert_eq!(log.dropped(), 1);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        // Oldest-first order, with "a" evicted.
        assert_eq!(drained[0].request, Request::new().subject("role", "b"));
        assert_eq!(drained[1].decision, Decision::Deny);
        assert!(log.is_empty());
        assert_eq!(log.recorded(), 3, "drain does not reset totals");
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let log = std::sync::Arc::new(DecisionLog::new(1024));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = log.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        log.push(rec(&format!("r{t}-{i}"), Decision::Permit, 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.recorded(), 400);
        assert_eq!(log.len(), 400);
        assert_eq!(log.dropped(), 0);
    }
}
