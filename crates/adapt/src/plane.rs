//! The adaptation plane proper: owns the decision log, the miner, and
//! the learning inputs, and turns one `run_round` call into
//! drain → mine → relearn → regenerate → publish.
//!
//! `run_round` is synchronous and deterministic — the background
//! [`Relearner`](crate::Relearner) is a thin worker thread around it, so
//! everything interesting is testable without threads.
//!
//! Failure semantics are serve-last-good by construction: the serving
//! snapshot is only touched by the final `publish`, which runs only
//! after learning *and* regeneration both succeeded. A failed round
//! (unsatisfiable feedback, exhausted budget) leaves the serving tier
//! exactly as it was — relearning never interrupts serving.

use crate::log::DecisionLog;
use crate::miner::{MineStats, Miner};
use agenp_asp::{Program, RunBudget};
use agenp_core::arch::{
    AmsError, CanonicalTranslator, DecisionSnapshot, Feedback, Padap, PdpHandle, PolicyTranslator,
    Prep,
};
use agenp_grammar::Asg;
use agenp_learn::{HypothesisSpace, LearnOptions, Learner};
use agenp_policy::{CombiningAlg, Policy, PolicyRule};
use std::sync::Arc;

/// The outcome of one adaptation round.
#[derive(Debug)]
pub enum RoundOutcome {
    /// Not enough evidence to learn from; nothing changed.
    Skipped {
        /// Examples buffered so far (all rounds).
        buffered: usize,
        /// The configured threshold that was not met.
        needed: usize,
        /// This round's mining accounting.
        stats: MineStats,
    },
    /// A refined policy set was published.
    Published(RoundReport),
    /// Learning or regeneration failed; the serving snapshot was left
    /// untouched (serve-last-good).
    Failed(AmsError),
}

impl RoundOutcome {
    /// The published report, if this round published.
    pub fn published(&self) -> Option<&RoundReport> {
        match self {
            RoundOutcome::Published(r) => Some(r),
            _ => None,
        }
    }
}

/// What a successful round did.
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// The epoch the refined snapshot was published at.
    pub epoch: u64,
    /// Examples the learner saw (accumulated across rounds).
    pub examples_used: usize,
    /// Constraints in the winning hypothesis.
    pub constraints_learned: usize,
    /// Enforceable rules in the regenerated policy.
    pub rules_generated: usize,
    /// This round's mining accounting.
    pub stats: MineStats,
}

/// The adaptation plane for one party.
///
/// Construct with the same PBMS characterization an
/// [`Ams`](agenp_core::arch::Ams) gets (initial GPM + hypothesis space),
/// attach the serving handle decisions should republish through, and
/// feed the [`DecisionLog`] from the enforcement point.
#[derive(Debug)]
pub struct AdaptPlane {
    name: String,
    initial_gpm: Asg,
    space: HypothesisSpace,
    context: Program,
    combining: CombiningAlg,
    min_examples: usize,
    budget: RunBudget,
    miner: Miner,
    log: Arc<DecisionLog>,
    serving: PdpHandle,
    padap: Padap,
    prep: Prep,
    translator: Box<dyn PolicyTranslator>,
    feedback: Vec<Feedback>,
    rounds: u64,
}

impl AdaptPlane {
    /// A plane for `name`, learning within `space` from `initial_gpm`,
    /// publishing through a fresh [`PdpHandle`] (replace with
    /// [`AdaptPlane::attach`]). Defaults: incremental learner, log
    /// capacity 4096, `min_examples` 1, deny-overrides.
    pub fn new(name: &str, initial_gpm: Asg, space: HypothesisSpace) -> AdaptPlane {
        let mut padap = Padap::new();
        padap.incremental = true;
        AdaptPlane {
            name: name.to_owned(),
            initial_gpm,
            space,
            context: Program::new(),
            combining: CombiningAlg::DenyOverrides,
            min_examples: 1,
            budget: RunBudget::default(),
            miner: Miner::new(),
            log: Arc::new(DecisionLog::new(4096)),
            serving: PdpHandle::new(),
            padap,
            prep: Prep::new(),
            translator: Box::new(CanonicalTranslator),
            feedback: Vec::new(),
            rounds: 0,
        }
    }

    /// Publishes refined snapshots through `serving` (normally
    /// [`Ams::serving_handle`](agenp_core::arch::Ams::serving_handle) or
    /// a clone shared with the decision workload).
    pub fn attach(mut self, serving: PdpHandle) -> AdaptPlane {
        self.serving = serving;
        self
    }

    /// Applies a [`RunBudget`] to the learner and the regeneration step.
    pub fn with_budget(mut self, budget: RunBudget) -> AdaptPlane {
        self.budget = budget;
        self.prep.budget = budget;
        self.padap.set_learner(Learner::with_options(
            LearnOptions::default()
                .with_deadline(budget.deadline)
                .with_max_nodes(budget.max_nodes),
        ));
        self
    }

    /// Sets the context mined examples (and regeneration) run under.
    pub fn with_context(mut self, context: Program) -> AdaptPlane {
        self.context = context;
        self
    }

    /// Requires at least `n` buffered examples before a round learns.
    pub fn with_min_examples(mut self, n: usize) -> AdaptPlane {
        self.min_examples = n.max(1);
        self
    }

    /// Replaces the miner (support thresholds etc.).
    pub fn with_miner(mut self, miner: Miner) -> AdaptPlane {
        self.miner = miner;
        self
    }

    /// Bounds the decision log at `capacity` records.
    pub fn with_log_capacity(mut self, capacity: usize) -> AdaptPlane {
        self.log = Arc::new(DecisionLog::new(capacity));
        self
    }

    /// The decision log enforcement points should record into.
    pub fn log(&self) -> Arc<DecisionLog> {
        self.log.clone()
    }

    /// The serving handle refined snapshots publish through.
    pub fn handle(&self) -> PdpHandle {
        self.serving.clone()
    }

    /// Examples accumulated so far.
    pub fn buffered_examples(&self) -> usize {
        self.feedback.len()
    }

    /// Rounds run (skipped, failed, or published).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Generates the initial policy set from the *unrefined* GPM and
    /// publishes it, so the attached handle starts serving live policies
    /// before any adaptation has happened.
    ///
    /// # Errors
    ///
    /// [`AmsError::Generation`] on grounding/budget failures.
    pub fn publish_initial(&mut self) -> Result<u64, AmsError> {
        let gpm = self.initial_gpm.clone();
        self.regenerate_and_publish(&gpm)
    }

    /// One adaptation round: drain the log, mine it, and — once enough
    /// evidence has accumulated — relearn the GPM from the initial
    /// grammar plus *all* mined feedback, regenerate policies, and
    /// publish them. Never blocks or perturbs serving; see the module
    /// docs for the failure contract.
    pub fn run_round(&mut self) -> RoundOutcome {
        self.rounds += 1;
        let records = self.log.drain();
        let batch = self.miner.mine(&records, &self.context);
        let stats = batch.stats;
        self.feedback.extend(batch.feedback);
        if self.feedback.len() < self.min_examples {
            agenp_obs::registry().counter("adapt.rounds.skipped").incr();
            return RoundOutcome::Skipped {
                buffered: self.feedback.len(),
                needed: self.min_examples,
                stats,
            };
        }
        let adaptation = {
            let mut span = agenp_obs::span!("adapt.relearn", examples = self.feedback.len());
            match self
                .padap
                .adapt(&self.initial_gpm, &self.space, &self.feedback)
            {
                Ok(a) => {
                    span.record("constraints", a.hypothesis.rules.len());
                    a
                }
                Err(e) => {
                    span.record("error", true);
                    agenp_obs::registry().counter("adapt.rounds.failed").incr();
                    return RoundOutcome::Failed(AmsError::Learning(e));
                }
            }
        };
        match self.regenerate_and_publish(&adaptation.gpm) {
            Ok(epoch) => {
                agenp_obs::registry()
                    .counter("adapt.rounds.published")
                    .incr();
                RoundOutcome::Published(RoundReport {
                    epoch,
                    examples_used: adaptation.examples_used,
                    constraints_learned: adaptation.hypothesis.rules.len(),
                    rules_generated: self
                        .serving
                        .snapshot()
                        .policies()
                        .iter()
                        .map(|p| p.rules.len())
                        .sum(),
                    stats,
                })
            }
            Err(e) => {
                agenp_obs::registry().counter("adapt.rounds.failed").incr();
                RoundOutcome::Failed(e)
            }
        }
    }

    /// PReP step over `gpm`, then an atomic snapshot publish.
    fn regenerate_and_publish(&mut self, gpm: &Asg) -> Result<u64, AmsError> {
        let strings = self.prep.generate(gpm, &self.context)?;
        let rules: Vec<PolicyRule> = strings
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                self.translator
                    .translate(s, &format!("{}-a{}", self.name, i))
            })
            .collect();
        let policy = Policy {
            id: format!("{}-adapted", self.name),
            rules,
            combining: self.combining,
            obligations: Vec::new(),
        };
        let mut span = agenp_obs::span!("adapt.publish", rules = policy.rules.len());
        let epoch = self.serving.publish(
            DecisionSnapshot::new(vec![policy], self.combining)
                .with_gpm(gpm.clone())
                .with_context(self.context.clone()),
        );
        span.record("epoch", epoch as usize);
        Ok(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agenp_grammar::ProdId;
    use agenp_policy::{Decision, Request};

    /// The AMS test fixture's gate grammar: permit/deny on clearance,
    /// with hypothesis-space constraints keying on a `lockdown` context.
    fn gate() -> (Asg, HypothesisSpace) {
        let g: Asg = r#"
            policy -> effect "if" "subject" "clearance" "=" level
            effect -> "permit" { e(permit). }
            effect -> "deny"   { e(deny). }
            level -> "low"  { lvl(low). }
            level -> "high" { lvl(high). }
        "#
        .parse()
        .unwrap();
        let space = HypothesisSpace::from_texts(&[
            (ProdId::from_index(1), ":- lockdown."),
            (ProdId::from_index(2), ":- not lockdown."),
        ]);
        (g, space)
    }

    #[test]
    fn initial_publish_serves_the_unrefined_language() {
        let (g, space) = gate();
        let mut plane = AdaptPlane::new("p", g, space);
        let epoch = plane.publish_initial().unwrap();
        let handle = plane.handle();
        let req = Request::new().subject("clearance", "high");
        let outcome = handle.decide(&req);
        assert_eq!(outcome.epoch, epoch);
        // permit + deny rules both generated → deny-overrides → Deny.
        assert_eq!(outcome.decision, Decision::Deny);
    }

    #[test]
    fn round_without_evidence_skips_and_serving_is_untouched() {
        let (g, space) = gate();
        let mut plane = AdaptPlane::new("p", g, space).with_min_examples(2);
        let before = plane.publish_initial().unwrap();
        let outcome = plane.run_round();
        assert!(matches!(
            outcome,
            RoundOutcome::Skipped {
                buffered: 0,
                needed: 2,
                ..
            }
        ));
        assert_eq!(plane.handle().snapshot().epoch(), before);
    }

    #[test]
    fn mined_denials_relearn_the_gpm_and_republish() {
        let (g, space) = gate();
        let lockdown: Program = "lockdown.".parse().unwrap();
        let mut plane = AdaptPlane::new("p", g, space).with_context(lockdown);
        let first = plane.publish_initial().unwrap();
        let handle = plane.handle();
        let log = plane.log();

        // The enforcement point observed denials of both permitting
        // strings (an operator overrode them under lockdown).
        for clearance in ["high", "low"] {
            let req = Request::new().subject("clearance", clearance);
            let mut outcome = handle.decide(&req);
            outcome.decision = Decision::Deny; // operator override
            log.record(&req, &outcome);
        }
        let outcome = plane.run_round();
        let report = outcome.published().expect("round should publish");
        assert_eq!(report.epoch, first + 1, "publish bumps the epoch");
        assert_eq!(report.examples_used, 2);
        assert!(report.constraints_learned > 0);
        // Under lockdown the refined GPM generates only deny strings.
        let refined = handle.snapshot();
        assert_eq!(refined.epoch(), report.epoch);
        assert!(refined
            .policies()
            .iter()
            .flat_map(|p| p.rules.iter())
            .all(|r| r.effect == agenp_policy::Effect::Deny));
        let req = Request::new().subject("clearance", "high");
        assert_eq!(handle.decide(&req).decision, Decision::Deny);
    }

    #[test]
    fn failed_rounds_leave_the_snapshot_alone() {
        let (g, space) = gate();
        let lockdown: Program = "lockdown.".parse().unwrap();
        let mut plane = AdaptPlane::new("p", g, space).with_context(lockdown.clone());
        let epoch = plane.publish_initial().unwrap();
        let handle = plane.handle();
        // Contradictory evidence: the same string both valid and invalid
        // in the same context — no hypothesis satisfies it. (Mining
        // dedups per-request, so inject straight into the buffer.)
        let req = Request::new().subject("clearance", "high");
        plane.feedback.push(Feedback::valid(
            "permit if subject clearance = low",
            lockdown.clone(),
        ));
        plane.feedback.push(Feedback::invalid(
            "permit if subject clearance = low",
            lockdown,
        ));
        let outcome = plane.run_round();
        assert!(matches!(
            outcome,
            RoundOutcome::Failed(AmsError::Learning(_))
        ));
        // Serving still answers from the last good snapshot.
        let served = handle.decide(&req);
        assert!(served.epoch >= epoch);
        assert!(served.error.is_none());
    }
}
