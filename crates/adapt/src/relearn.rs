//! The background relearner: an [`AdaptPlane`] on a worker thread.
//!
//! Serving threads keep deciding through their (cloned) [`PdpHandle`]
//! the whole time — the only synchronization between relearning and
//! serving is the snapshot swap inside `publish`, which is the same
//! wait-free-for-readers path every control-plane mutation already uses.
//! Triggers are non-blocking; outcomes come back on a channel.

use crate::plane::{AdaptPlane, RoundOutcome};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

enum Cmd {
    RunRound,
    Shutdown,
}

/// Handle to a relearner worker thread.
///
/// Dropping the handle shuts the worker down (finishing any in-flight
/// round first); [`Relearner::shutdown`] does the same but hands the
/// plane back for inspection.
#[derive(Debug)]
pub struct Relearner {
    cmd: Sender<Cmd>,
    outcomes: Receiver<RoundOutcome>,
    worker: Option<JoinHandle<AdaptPlane>>,
}

impl Relearner {
    /// Moves `plane` onto a worker thread and returns the handle.
    pub fn spawn(mut plane: AdaptPlane) -> Relearner {
        let (cmd_tx, cmd_rx) = channel::<Cmd>();
        let (out_tx, out_rx) = channel::<RoundOutcome>();
        let worker = std::thread::Builder::new()
            .name("agenp-relearner".into())
            .spawn(move || {
                while let Ok(Cmd::RunRound) = cmd_rx.recv() {
                    let outcome = plane.run_round();
                    // The handle may have stopped listening; the round's
                    // effect (if any) is already published either way.
                    let _ = out_tx.send(outcome);
                }
                plane
            })
            .expect("spawning the relearner thread failed");
        Relearner {
            cmd: cmd_tx,
            outcomes: out_rx,
            worker: Some(worker),
        }
    }

    /// Requests one adaptation round; returns immediately. Rounds queue
    /// and run in order.
    pub fn trigger(&self) {
        let _ = self.cmd.send(Cmd::RunRound);
    }

    /// The next round outcome, if one is ready.
    pub fn try_outcome(&self) -> Option<RoundOutcome> {
        self.outcomes.try_recv().ok()
    }

    /// Waits up to `timeout` for the next round outcome.
    pub fn wait_outcome(&self, timeout: Duration) -> Option<RoundOutcome> {
        self.outcomes.recv_timeout(timeout).ok()
    }

    /// Stops the worker (after any queued rounds) and returns the plane.
    pub fn shutdown(mut self) -> AdaptPlane {
        let _ = self.cmd.send(Cmd::Shutdown);
        self.worker
            .take()
            .expect("relearner already shut down")
            .join()
            .expect("relearner thread panicked")
    }
}

impl Drop for Relearner {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            let _ = self.cmd.send(Cmd::Shutdown);
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agenp_asp::Program;
    use agenp_grammar::{Asg, ProdId};
    use agenp_learn::HypothesisSpace;
    use agenp_policy::{Decision, Request};

    fn gate() -> (Asg, HypothesisSpace) {
        let g: Asg = r#"
            policy -> effect "if" "subject" "clearance" "=" level
            effect -> "permit" { e(permit). }
            effect -> "deny"   { e(deny). }
            level -> "low"  { lvl(low). }
            level -> "high" { lvl(high). }
        "#
        .parse()
        .unwrap();
        let space = HypothesisSpace::from_texts(&[
            (ProdId::from_index(1), ":- lockdown."),
            (ProdId::from_index(2), ":- not lockdown."),
        ]);
        (g, space)
    }

    #[test]
    fn relearns_in_the_background_while_serving_continues() {
        let (g, space) = gate();
        let lockdown: Program = "lockdown.".parse().unwrap();
        let mut plane = AdaptPlane::new("bg", g, space).with_context(lockdown);
        let first = plane.publish_initial().unwrap();
        let handle = plane.handle();
        let log = plane.log();
        for clearance in ["high", "low"] {
            let req = Request::new().subject("clearance", clearance);
            let mut outcome = handle.decide(&req);
            outcome.decision = Decision::Deny;
            log.record(&req, &outcome);
        }

        let relearner = Relearner::spawn(plane);
        relearner.trigger();
        // Serving never blocks while the worker learns: decide in a loop
        // until the refined epoch becomes visible.
        let req = Request::new().subject("clearance", "high");
        let report = loop {
            let outcome = handle.decide(&req);
            assert!(outcome.error.is_none(), "serving degraded during relearn");
            assert!(outcome.epoch >= first, "epoch went backwards");
            if let Some(o) = relearner.try_outcome() {
                break o;
            }
            std::thread::yield_now();
        };
        let report = report.published().expect("round should publish").clone();
        assert_eq!(report.epoch, first + 1);
        // The refined snapshot is visible through the same handle.
        assert_eq!(handle.snapshot().epoch(), report.epoch);
        assert_eq!(handle.decide(&req).decision, Decision::Deny);

        let plane = relearner.shutdown();
        assert_eq!(plane.rounds(), 1);
    }

    #[test]
    fn drop_shuts_the_worker_down() {
        let (g, space) = gate();
        let plane = AdaptPlane::new("drop", g, space);
        let relearner = Relearner::spawn(plane);
        relearner.trigger(); // skipped round (no evidence)
        drop(relearner); // must not hang or panic
    }
}
