//! The decision-history miner: turns a drained slice of the decision log
//! into candidate learning examples ([`Feedback`]) for the relearner.
//!
//! Mining is deliberately conservative and fully deterministic:
//!
//! - A **Permit** on a request is evidence that the permitting policy
//!   string for that request is *valid* in the current context (a
//!   positive example).
//! - A **Deny** is evidence that the same permitting string is *invalid*
//!   (a negative example). A deny carrying a penalty annotation becomes a
//!   *noisy* negative example violable at that penalty — a lightly
//!   sanctioned deny is weak evidence, and the noise-tolerant learner may
//!   pay to ignore it.
//! - Gaps (**NotApplicable** / **Indeterminate**) carry no label and are
//!   skipped (counted, so an operator sees coverage holes).
//! - Decisions served by a **degraded** snapshot are fail-safe denials,
//!   not policy evidence; skipped.
//!
//! Records are grouped by [`Request::canonical_key`]; each distinct
//! request yields at most one example (the highest-epoch record wins when
//! epochs disagree — later policy knowledge supersedes earlier), with a
//! support count gating emission. Requests that cannot be expressed in
//! the canonical `permit if …` textual form (multi-token values, say) are
//! skipped and counted.

use crate::log::DecisionRecord;
use agenp_asp::Program;
use agenp_core::arch::Feedback;
use agenp_policy::{rule_from_text, AttrValue, Decision, Request};
use std::collections::BTreeMap;

/// What happened during one mining pass (all counts are records or
/// groups, as named).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MineStats {
    /// Records examined.
    pub drained: usize,
    /// Records skipped because the serving snapshot was degraded.
    pub degraded: usize,
    /// Records skipped as unlabeled gaps (NotApplicable/Indeterminate).
    pub gaps: usize,
    /// Records whose request does not fit the canonical textual policy
    /// form.
    pub unexpressible: usize,
    /// Distinct requests below the support threshold.
    pub below_support: usize,
    /// Examples emitted.
    pub emitted: usize,
}

/// One mining pass's output.
#[derive(Clone, Debug)]
pub struct MinedBatch {
    /// Candidate examples, in canonical-key order (deterministic).
    pub feedback: Vec<Feedback>,
    /// Pass accounting.
    pub stats: MineStats,
}

/// The decision-history miner.
#[derive(Clone, Copy, Debug)]
pub struct Miner {
    /// Minimum times a distinct request must have been decided before it
    /// yields an example (default 1).
    pub min_support: usize,
}

impl Default for Miner {
    fn default() -> Miner {
        Miner { min_support: 1 }
    }
}

struct Group {
    text: String,
    decision: Decision,
    penalty: u32,
    epoch: u64,
    support: usize,
}

impl Miner {
    /// A miner emitting every expressible labeled request at least once.
    pub fn new() -> Miner {
        Miner::default()
    }

    /// Requires `min_support` sightings per distinct request.
    pub fn with_min_support(mut self, min_support: usize) -> Miner {
        self.min_support = min_support.max(1);
        self
    }

    /// Mines `records` into candidate examples under `context` (the
    /// context the examples will be judged in — normally the PIP's
    /// current program).
    pub fn mine(&self, records: &[DecisionRecord], context: &Program) -> MinedBatch {
        let mut span = agenp_obs::span!("adapt.mine", records = records.len());
        let mut stats = MineStats {
            drained: records.len(),
            ..MineStats::default()
        };
        let mut groups: BTreeMap<String, Group> = BTreeMap::new();
        for r in records {
            if r.degraded {
                stats.degraded += 1;
                continue;
            }
            if matches!(
                r.decision,
                Decision::NotApplicable | Decision::Indeterminate
            ) {
                stats.gaps += 1;
                continue;
            }
            let key = r.request.canonical_key();
            if let Some(g) = groups.get_mut(&key) {
                g.support += 1;
                if r.epoch >= g.epoch {
                    g.decision = r.decision;
                    g.penalty = r.penalty;
                    g.epoch = r.epoch;
                }
                continue;
            }
            let Some(text) = permit_text(&r.request) else {
                stats.unexpressible += 1;
                continue;
            };
            groups.insert(
                key,
                Group {
                    text,
                    decision: r.decision,
                    penalty: r.penalty,
                    epoch: r.epoch,
                    support: 1,
                },
            );
        }
        let mut feedback = Vec::new();
        for g in groups.values() {
            if g.support < self.min_support {
                stats.below_support += 1;
                continue;
            }
            let f = match g.decision {
                Decision::Permit => Feedback::valid(&g.text, context.clone()),
                Decision::Deny => {
                    let f = Feedback::invalid(&g.text, context.clone());
                    if g.penalty > 0 {
                        f.with_penalty(g.penalty)
                    } else {
                        f
                    }
                }
                _ => unreachable!("gaps filtered above"),
            };
            feedback.push(f);
        }
        stats.emitted = feedback.len();
        span.record("emitted", stats.emitted);
        agenp_obs::registry()
            .counter("adapt.mine.emitted")
            .add(stats.emitted as u64);
        MinedBatch { feedback, stats }
    }
}

/// The canonical permitting policy string for `request`, or `None` when
/// an attribute value does not survive the textual form's tokenizer
/// (verified by round-tripping through [`rule_from_text`]).
pub fn permit_text(request: &Request) -> Option<String> {
    let mut conds = Vec::new();
    for (category, name, value) in request.iter() {
        let token = match value {
            AttrValue::Str(s) => s.clone(),
            AttrValue::Int(i) => i.to_string(),
            AttrValue::Bool(b) => b.to_string(),
        };
        conds.push(format!("{} {} = {}", category.name(), name, token));
    }
    if conds.is_empty() {
        return None;
    }
    let text = format!("permit if {}", conds.join(" and "));
    // The textual form must round-trip: a value with embedded whitespace
    // (or a name colliding with a keyword) would re-parse differently.
    rule_from_text("mined", &text).ok()?;
    Some(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(request: Request, decision: Decision, penalty: u32, epoch: u64) -> DecisionRecord {
        DecisionRecord {
            request,
            decision,
            penalty,
            epoch,
            degraded: false,
        }
    }

    #[test]
    fn permits_and_denies_become_labeled_examples() {
        let ctx: Program = "lockdown.".parse().unwrap();
        let records = vec![
            rec(
                Request::new().subject("role", "dba"),
                Decision::Permit,
                0,
                1,
            ),
            rec(
                Request::new().subject("role", "guest"),
                Decision::Deny,
                0,
                1,
            ),
        ];
        let batch = Miner::new().mine(&records, &ctx);
        assert_eq!(batch.stats.emitted, 2);
        let pos = &batch.feedback[0];
        assert!(pos.valid);
        assert_eq!(pos.policy, "permit if subject role = dba");
        let neg = &batch.feedback[1];
        assert!(!neg.valid);
        assert_eq!(neg.policy, "permit if subject role = guest");
        assert_eq!(neg.penalty, None);
        assert_eq!(format!("{}", neg.context), format!("{ctx}"));
    }

    #[test]
    fn penalty_denies_become_noisy_negatives() {
        let ctx = Program::new();
        let records = vec![rec(
            Request::new().subject("role", "guest"),
            Decision::Deny,
            3,
            1,
        )];
        let batch = Miner::new().mine(&records, &ctx);
        assert_eq!(batch.feedback[0].penalty, Some(3));
    }

    #[test]
    fn gaps_and_degraded_records_are_skipped() {
        let ctx = Program::new();
        let req = Request::new().subject("role", "x");
        let mut degraded = rec(req.clone(), Decision::Deny, 0, 1);
        degraded.degraded = true;
        let records = vec![
            rec(req.clone(), Decision::NotApplicable, 0, 1),
            rec(req.clone(), Decision::Indeterminate, 0, 1),
            degraded,
        ];
        let batch = Miner::new().mine(&records, &ctx);
        assert_eq!(batch.stats.gaps, 2);
        assert_eq!(batch.stats.degraded, 1);
        assert!(batch.feedback.is_empty());
    }

    #[test]
    fn duplicate_requests_dedupe_and_latest_epoch_wins() {
        let ctx = Program::new();
        let req = Request::new().subject("role", "op");
        let records = vec![
            rec(req.clone(), Decision::Permit, 0, 1),
            rec(req.clone(), Decision::Permit, 0, 1),
            // A later epoch flipped the decision: the flip wins.
            rec(req.clone(), Decision::Deny, 0, 2),
        ];
        let batch = Miner::new().mine(&records, &ctx);
        assert_eq!(batch.stats.emitted, 1);
        assert!(!batch.feedback[0].valid);
    }

    #[test]
    fn support_threshold_gates_emission() {
        let ctx = Program::new();
        let seen_once = Request::new().subject("role", "a");
        let seen_twice = Request::new().subject("role", "b");
        let records = vec![
            rec(seen_once, Decision::Permit, 0, 1),
            rec(seen_twice.clone(), Decision::Permit, 0, 1),
            rec(seen_twice, Decision::Permit, 0, 1),
        ];
        let batch = Miner::new().with_min_support(2).mine(&records, &ctx);
        assert_eq!(batch.stats.emitted, 1);
        assert_eq!(batch.stats.below_support, 1);
        assert_eq!(batch.feedback[0].policy, "permit if subject role = b");
    }

    #[test]
    fn unexpressible_requests_are_counted_not_emitted() {
        let ctx = Program::new();
        let records = vec![
            // Empty request: no conditions to write.
            rec(Request::new(), Decision::Permit, 0, 1),
            // A value with embedded whitespace cannot re-tokenize.
            rec(
                Request::new().subject("role", "two words"),
                Decision::Permit,
                0,
                1,
            ),
        ];
        let batch = Miner::new().mine(&records, &ctx);
        assert_eq!(batch.stats.unexpressible, 2);
        assert!(batch.feedback.is_empty());
    }

    #[test]
    fn int_and_bool_attributes_textualize() {
        let req = Request::new()
            .subject("age", 30i64)
            .environment("emergency", true);
        let text = permit_text(&req).unwrap();
        assert!(text.contains("age = 30"), "{text}");
        assert!(text.contains("emergency = true"), "{text}");
    }
}
