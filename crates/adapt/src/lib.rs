//! # agenp-adapt — the adaptation plane
//!
//! Closes the paper's learn–serve loop (Fig. 2) *online*: decisions the
//! PEP serves are logged, mined into labeled examples, fed to the
//! ILASP2i-style incremental learner, and the refined policy set is
//! published back through the serving tier's snapshot swap — all while
//! decision traffic keeps flowing (`docs/ADAPTATION.md`).
//!
//! The pieces, in data-flow order:
//!
//! - [`DecisionLog`] — a bounded ring buffer the enforcement point
//!   records served decisions into.
//! - [`Miner`] — drains the log into candidate positive/negative
//!   examples ([`Feedback`](agenp_core::arch::Feedback)), deduplicated
//!   per request, penalty-aware.
//! - [`AdaptPlane`] — one synchronous `run_round`: mine, relearn from
//!   the initial GPM plus all accumulated evidence under a
//!   [`RunBudget`](agenp_asp::RunBudget), regenerate policies, publish.
//!   Serve-last-good on failure; serving is never interrupted.
//! - [`Relearner`] — the plane on a worker thread, triggered and
//!   observed over channels.
//!
//! Observability: spans `adapt.mine`, `adapt.relearn`, `adapt.publish`;
//! counters `adapt.log.recorded`, `adapt.log.dropped`,
//! `adapt.mine.emitted`, `adapt.rounds.{published,skipped,failed}`.

mod log;
mod miner;
mod plane;
mod relearn;

pub use crate::log::{DecisionLog, DecisionRecord};
pub use crate::miner::{permit_text, MineStats, MinedBatch, Miner};
pub use crate::plane::{AdaptPlane, RoundOutcome, RoundReport};
pub use crate::relearn::Relearner;
