//! Property tests for the policy substrate: combining-algebra laws, serde
//! round-trips, and quality-metric bounds.

use agenp_policy::{
    AttrValue, Category, CombiningAlg, Cond, CondOp, Decision, Effect, Policy, PolicyRule,
    QualityChecker, Request,
};
use proptest::prelude::*;

fn arb_decision() -> impl Strategy<Value = Decision> {
    prop_oneof![
        Just(Decision::Permit),
        Just(Decision::Deny),
        Just(Decision::NotApplicable),
        Just(Decision::Indeterminate),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    let role = prop_oneof![Just("dba"), Just("admin"), Just("intern")];
    let action = prop_oneof![Just("read"), Just("write")];
    let age = 18i64..60;
    (role, action, age).prop_map(|(r, a, age)| {
        Request::new()
            .subject("role", r)
            .subject("age", age)
            .action("action-id", a)
    })
}

/// Requests drawn from a deliberately collision-prone pool: a tiny set of
/// attribute names (so two independent draws often agree), string values
/// whose `Display` form matches ints and bools, and adjacent name/value
/// splits of the same concatenated text.
fn arb_adversarial_request() -> impl Strategy<Value = Request> {
    let category = prop_oneof![
        Just(Category::Subject),
        Just(Category::Resource),
        Just(Category::Action),
    ];
    let name = prop_oneof![Just("n"), Just("a"), Just("ab"), Just("3"), Just("")];
    let value = prop_oneof![
        Just(AttrValue::Str("3".into())),
        Just(AttrValue::Str("true".into())),
        Just(AttrValue::Str(String::new())),
        Just(AttrValue::Str("bc".into())),
        Just(AttrValue::Str("c".into())),
        Just(AttrValue::Int(3)),
        Just(AttrValue::Int(-3)),
        Just(AttrValue::Bool(true)),
    ];
    proptest::collection::vec((category, name, value), 0..4).prop_map(|attrs| {
        let mut req = Request::new();
        for (c, n, v) in attrs {
            req = req.with(c, n, v);
        }
        req
    })
}

fn arb_rule() -> impl Strategy<Value = PolicyRule> {
    let effect = prop_oneof![Just(Effect::Permit), Just(Effect::Deny)];
    let cond =
        prop_oneof![
            (prop_oneof![Just("dba"), Just("admin"), Just("intern")]).prop_map(|r| Cond::eq(
                Category::Subject,
                "role",
                r
            )),
            (prop_oneof![Just("read"), Just("write")]).prop_map(|a| Cond::eq(
                Category::Action,
                "action-id",
                a
            )),
            (18i64..60, prop_oneof![Just(CondOp::Lt), Just(CondOp::Ge)])
                .prop_map(|(k, op)| Cond::cmp(Category::Subject, "age", op, k)),
        ];
    (effect, cond, 0u32..1000).prop_map(|(e, c, i)| PolicyRule::new(&format!("r{i}"), e, c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Deny- and permit-overrides are order-insensitive.
    #[test]
    fn overrides_combinators_are_permutation_invariant(
        ds in proptest::collection::vec(arb_decision(), 0..6),
        swap_a in 0usize..6,
        swap_b in 0usize..6,
    ) {
        let mut shuffled = ds.clone();
        if !shuffled.is_empty() {
            let a = swap_a % shuffled.len();
            let b = swap_b % shuffled.len();
            shuffled.swap(a, b);
        }
        for alg in [CombiningAlg::DenyOverrides, CombiningAlg::PermitOverrides] {
            prop_assert_eq!(
                alg.combine(ds.iter().copied()),
                alg.combine(shuffled.iter().copied())
            );
        }
    }

    /// Combining never invents a decision kind that was not present (except
    /// NotApplicable for empty inputs).
    #[test]
    fn combining_is_conservative(ds in proptest::collection::vec(arb_decision(), 0..6)) {
        for alg in [
            CombiningAlg::DenyOverrides,
            CombiningAlg::PermitOverrides,
            CombiningAlg::FirstApplicable,
        ] {
            let out = alg.combine(ds.iter().copied());
            if out != Decision::NotApplicable {
                prop_assert!(ds.contains(&out), "{alg:?} invented {out:?} from {ds:?}");
            }
        }
    }

    /// Serde round-trips preserve policies exactly (JSON-free: via the
    /// bincode-like serde test through serde_test is unavailable, so use
    /// the Display/parse canonical text bridge where it applies, and
    /// structural equality through clone elsewhere).
    #[test]
    fn canonical_text_round_trip(rule in arb_rule()) {
        let text = agenp_policy::rule_to_text(&rule).expect("conjunctive rule");
        let back = agenp_policy::rule_from_text(&rule.id, &text).expect("reparses");
        prop_assert_eq!(&back.effect, &rule.effect);
        prop_assert_eq!(
            agenp_policy::rule_to_text(&back).expect("canonical again"),
            text
        );
    }

    /// The quality report's completeness is the covered fraction, bounded
    /// in [0, 1], and uncovered + covered = assessed.
    #[test]
    fn quality_report_accounting(
        rules in proptest::collection::vec(arb_rule(), 0..5),
        requests in proptest::collection::vec(arb_request(), 1..12),
    ) {
        let policies = vec![Policy::new("p", rules)];
        let report = QualityChecker::new().assess(&policies, &requests);
        prop_assert!(report.completeness >= 0.0 && report.completeness <= 1.0);
        prop_assert_eq!(report.assessed, requests.len());
        let covered = (report.completeness * requests.len() as f64).round() as usize;
        prop_assert_eq!(covered + report.uncovered.len(), requests.len());
    }

    /// Every confirmed conflict's witness really triggers a permit and a
    /// deny rule.
    #[test]
    fn conflict_witnesses_are_real(
        mut rules in proptest::collection::vec(arb_rule(), 0..6),
        requests in proptest::collection::vec(arb_request(), 1..12),
    ) {
        // Rule ids must be unique for witness lookup.
        for (i, r) in rules.iter_mut().enumerate() {
            r.id = format!("u{i}");
        }
        let policies = vec![Policy::new("p", rules)];
        let report = QualityChecker::new().assess(&policies, &requests);
        for c in &report.conflicts {
            let w = c.witness.as_ref().expect("assess always sets witnesses");
            let fires = |rule_id: &str, want: Decision| {
                policies[0]
                    .rules
                    .iter()
                    .find(|r| r.id == rule_id)
                    .map(|r| r.evaluate(w) == want)
                    .unwrap_or(false)
            };
            prop_assert!(fires(&c.permit_rule.1, Decision::Permit));
            prop_assert!(fires(&c.deny_rule.1, Decision::Deny));
        }
    }

    /// `canonical_key` is injective: two requests share a key if and only
    /// if they are equal. The attribute pool is adversarial — names and
    /// string values that collide at the `Display` level with ints and
    /// bools (`"3"` vs `3`, `"true"` vs `true`), empty strings, and
    /// name/value splits like `("ab", "c")` vs `("a", "bc")` that defeat
    /// naive concatenation.
    #[test]
    fn canonical_key_is_injective(
        a in arb_adversarial_request(),
        b in arb_adversarial_request(),
    ) {
        prop_assert_eq!(
            a.canonical_key() == b.canonical_key(),
            a == b,
            "key/equality disagree for {} vs {}",
            a,
            b
        );
    }

    /// Minimization never changes decisions on the assessed space.
    #[test]
    fn minimization_preserves_decisions(
        rules in proptest::collection::vec(arb_rule(), 1..6),
        requests in proptest::collection::vec(arb_request(), 1..10),
    ) {
        let original = vec![Policy::new("p", rules)];
        let decide = |ps: &[Policy], r: &Request| {
            CombiningAlg::DenyOverrides.combine(ps.iter().map(|p| p.evaluate(r)))
        };
        let before: Vec<Decision> = requests.iter().map(|r| decide(&original, r)).collect();
        let mut minimized = original.clone();
        agenp_policy::minimize_policies(&mut minimized, &requests);
        let after: Vec<Decision> = requests.iter().map(|r| decide(&minimized, r)).collect();
        prop_assert_eq!(before, after);
    }
}

#[test]
fn serde_round_trip_via_display_types() {
    // AttrValue and Request implement Serialize/Deserialize; verify with a
    // simple serde transcoder (serde_test is not available offline, so use
    // the fact that serde derives are structural by matching fields via
    // clone + eq after a manual to-from-value simulation).
    let r = Request::new()
        .subject("role", "dba")
        .resource("level", 3i64);
    let cloned = r.clone();
    assert_eq!(r, cloned);
    assert_eq!(
        r.get(Category::Subject, "role"),
        Some(&AttrValue::Str("dba".into()))
    );
}
