//! Policy Decision Point, Policy Enforcement Point, and the policy
//! repository — the conventional-PBMS components of the AGENP architecture
//! (paper §III-A: "The PEP, PDP, and Policy Repository operate in a manner
//! similar to conventional PBMS", with decision monitoring feeding the
//! adaptation loop).

use crate::attr::Request;
use crate::model::{CombiningAlg, Decision, Policy};
use std::fmt;

/// A versioned store of [`Policy`] objects.
#[derive(Clone, Debug, Default)]
pub struct PolicyRepository {
    policies: Vec<Policy>,
    version: u64,
}

impl PolicyRepository {
    /// An empty repository.
    pub fn new() -> PolicyRepository {
        PolicyRepository::default()
    }

    /// Replaces the entire policy set, bumping the version.
    pub fn replace_all(&mut self, policies: Vec<Policy>) {
        self.policies = policies;
        self.version += 1;
    }

    /// Adds one policy, bumping the version.
    pub fn add(&mut self, policy: Policy) {
        self.policies.push(policy);
        self.version += 1;
    }

    /// Removes the policy with the given id; true if something was removed.
    pub fn remove(&mut self, id: &str) -> bool {
        let before = self.policies.len();
        self.policies.retain(|p| p.id != id);
        let removed = self.policies.len() != before;
        if removed {
            self.version += 1;
        }
        removed
    }

    /// The stored policies.
    pub fn policies(&self) -> &[Policy] {
        &self.policies
    }

    /// Monotone version counter (bumped on every mutation).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// True if the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }
}

/// Evaluates a request against a policy slice under a combining algorithm —
/// the pure decision kernel shared by the stateful [`Pdp`] and the
/// shared-snapshot serving tier (`agenp-core`'s `DecisionSnapshot`), which
/// must render decisions from an immutable policy set without a repository
/// or history.
pub fn evaluate_policies(
    policies: &[Policy],
    combining: CombiningAlg,
    request: &Request,
) -> Decision {
    combining.combine(policies.iter().map(|p| p.evaluate(request)))
}

/// One monitored decision, kept for the PAdaP's adaptation loop.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecisionRecord {
    /// The evaluated request.
    pub request: Request,
    /// The decision rendered.
    pub decision: Decision,
    /// Repository version at decision time.
    pub policy_version: u64,
}

/// The Policy Decision Point: evaluates requests against the repository and
/// records a decision history.
#[derive(Clone, Debug)]
pub struct Pdp {
    combining: CombiningAlg,
    history: Vec<DecisionRecord>,
}

impl Default for Pdp {
    fn default() -> Pdp {
        Pdp::new(CombiningAlg::DenyOverrides)
    }
}

impl Pdp {
    /// A PDP combining policy decisions with `combining`.
    pub fn new(combining: CombiningAlg) -> Pdp {
        Pdp {
            combining,
            history: Vec::new(),
        }
    }

    /// The combining algorithm this PDP applies across policies.
    pub fn combining(&self) -> CombiningAlg {
        self.combining
    }

    /// Evaluates a request against a repository and records the outcome.
    pub fn decide(&mut self, repo: &PolicyRepository, request: &Request) -> Decision {
        let decision = evaluate_policies(repo.policies(), self.combining, request);
        self.history.push(DecisionRecord {
            request: request.clone(),
            decision,
            policy_version: repo.version(),
        });
        record_decision(decision);
        decision
    }

    /// Degraded-mode decision: renders an unconditional [`Decision::Deny`]
    /// and records it against the current repository version. Used when the
    /// policy pipeline upstream of the PDP failed (budget exhaustion, a
    /// deadline overrun) and a fail-safe answer is needed without
    /// evaluating possibly-stale policies as if they were fresh.
    pub fn decide_degraded(&mut self, repo: &PolicyRepository, request: &Request) -> Decision {
        let decision = Decision::Deny;
        self.history.push(DecisionRecord {
            request: request.clone(),
            decision,
            policy_version: repo.version(),
        });
        if agenp_obs::enabled() {
            agenp_obs::registry()
                .counter("policy.pdp.degraded_decisions")
                .incr();
        }
        record_decision(decision);
        decision
    }

    /// Evaluates without recording (pure query).
    pub fn peek(&self, repo: &PolicyRepository, request: &Request) -> Decision {
        evaluate_policies(repo.policies(), self.combining, request)
    }

    /// The decision history (oldest first).
    pub fn history(&self) -> &[DecisionRecord] {
        &self.history
    }

    /// Drains the history, handing it to the adaptation layer.
    pub fn take_history(&mut self) -> Vec<DecisionRecord> {
        std::mem::take(&mut self.history)
    }
}

/// Bumps the global `policy.pdp.*` outcome counters (no-op when telemetry
/// is disabled).
fn record_decision(decision: Decision) {
    if !agenp_obs::enabled() {
        return;
    }
    let r = agenp_obs::registry();
    r.counter("policy.pdp.decisions").incr();
    r.counter(match decision {
        Decision::Permit => "policy.pdp.permit",
        Decision::Deny => "policy.pdp.deny",
        Decision::NotApplicable => "policy.pdp.not_applicable",
        Decision::Indeterminate => "policy.pdp.indeterminate",
    })
    .incr();
}

/// The action the PEP performs after a decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Enforcement {
    /// The request proceeds.
    Granted,
    /// The request is blocked.
    Blocked,
    /// The request is blocked and flagged for operator review (the paper's
    /// completeness concern: no policy covered the action).
    Escalated,
}

impl fmt::Display for Enforcement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Enforcement::Granted => "granted",
            Enforcement::Blocked => "blocked",
            Enforcement::Escalated => "escalated",
        })
    }
}

/// The Policy Enforcement Point: maps decisions to enforcement actions with
/// a configurable default for gaps.
#[derive(Clone, Copy, Debug)]
pub struct Pep {
    /// Whether `NotApplicable`/`Indeterminate` escalate (true) or block
    /// silently (false).
    pub escalate_gaps: bool,
}

impl Default for Pep {
    fn default() -> Pep {
        Pep {
            escalate_gaps: true,
        }
    }
}

impl Pep {
    /// Maps a decision to an enforcement action (deny-biased: anything other
    /// than an explicit Permit is not granted).
    pub fn enforce(&self, decision: Decision) -> Enforcement {
        match decision {
            Decision::Permit => Enforcement::Granted,
            Decision::Deny => Enforcement::Blocked,
            Decision::NotApplicable | Decision::Indeterminate => {
                if self.escalate_gaps {
                    Enforcement::Escalated
                } else {
                    Enforcement::Blocked
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Category;
    use crate::model::{Cond, Effect, PolicyRule};

    fn repo() -> PolicyRepository {
        let mut r = PolicyRepository::new();
        r.add(Policy::new(
            "p1",
            vec![PolicyRule::new(
                "allow-dba",
                Effect::Permit,
                Cond::eq(Category::Subject, "role", "dba"),
            )],
        ));
        r
    }

    #[test]
    fn pdp_decides_and_records() {
        let repo = repo();
        let mut pdp = Pdp::default();
        let req = Request::new().subject("role", "dba");
        assert_eq!(pdp.decide(&repo, &req), Decision::Permit);
        let req2 = Request::new().subject("role", "guest");
        assert_eq!(pdp.decide(&repo, &req2), Decision::NotApplicable);
        assert_eq!(pdp.history().len(), 2);
        assert_eq!(pdp.history()[0].decision, Decision::Permit);
        let drained = pdp.take_history();
        assert_eq!(drained.len(), 2);
        assert!(pdp.history().is_empty());
    }

    #[test]
    fn degraded_decisions_deny_and_record() {
        let repo = repo();
        let mut pdp = Pdp::default();
        // Even a request a Permit rule matches is denied in degraded mode.
        let req = Request::new().subject("role", "dba");
        assert_eq!(pdp.decide_degraded(&repo, &req), Decision::Deny);
        assert_eq!(pdp.history().len(), 1);
        assert_eq!(pdp.history()[0].decision, Decision::Deny);
        assert_eq!(pdp.history()[0].policy_version, repo.version());
    }

    #[test]
    fn peek_does_not_record() {
        let repo = repo();
        let pdp = Pdp::default();
        assert_eq!(
            pdp.peek(&repo, &Request::new().subject("role", "dba")),
            Decision::Permit
        );
        assert!(pdp.history().is_empty());
    }

    #[test]
    fn repository_versions_mutations() {
        let mut r = repo();
        let v = r.version();
        r.add(Policy::new("p2", vec![]));
        assert_eq!(r.version(), v + 1);
        assert!(r.remove("p2"));
        assert!(!r.remove("p2"));
        assert_eq!(r.version(), v + 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn pep_enforcement_mapping() {
        let pep = Pep::default();
        assert_eq!(pep.enforce(Decision::Permit), Enforcement::Granted);
        assert_eq!(pep.enforce(Decision::Deny), Enforcement::Blocked);
        assert_eq!(pep.enforce(Decision::NotApplicable), Enforcement::Escalated);
        let silent = Pep {
            escalate_gaps: false,
        };
        assert_eq!(
            silent.enforce(Decision::Indeterminate),
            Enforcement::Blocked
        );
    }
}
