//! Bridging the attribute world and the symbolic world: requests become ASP
//! context programs (the `C` of context-dependent examples), and policies
//! written in a canonical textual policy language convert to and from
//! [`PolicyRule`] structures.
//!
//! The canonical textual form (whitespace-tokenized so it can be described
//! by a [`agenp_grammar::Cfg`]) is:
//!
//! ```text
//! permit if subject role = dba and action action-id = read
//! deny if resource sensitivity >= 3
//! permit always
//! ```

use crate::attr::{AttrValue, Category, Request};
use crate::model::{Cond, CondOp, Effect, PolicyRule};
use agenp_asp::{Atom, Program, Rule as AspRule, Symbol, Term};
use std::fmt;

/// Encodes a request as ASP context facts: one
/// `attr(category, name, value)` fact per attribute.
pub fn request_to_context(request: &Request) -> Program {
    let mut p = Program::new();
    for (c, n, v) in request.iter() {
        p.push(AspRule::fact(Atom::new(
            Symbol::new("attr"),
            vec![
                Term::Sym(Symbol::new(c.name())),
                Term::Sym(Symbol::new(n)),
                attr_value_to_term(v),
            ],
        )));
    }
    p
}

/// Maps an [`AttrValue`] to an ASP term.
pub fn attr_value_to_term(v: &AttrValue) -> Term {
    match v {
        AttrValue::Int(i) => Term::Int(*i),
        AttrValue::Str(s) => Term::Sym(Symbol::new(s)),
        AttrValue::Bool(b) => Term::Sym(Symbol::new(if *b { "true" } else { "false" })),
    }
}

/// Errors from parsing the canonical textual policy form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PolicyTextError {
    msg: String,
}

impl PolicyTextError {
    fn new(msg: impl Into<String>) -> PolicyTextError {
        PolicyTextError { msg: msg.into() }
    }
}

impl fmt::Display for PolicyTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy text error: {}", self.msg)
    }
}

impl std::error::Error for PolicyTextError {}

/// Renders a rule in the canonical textual form (only conditions expressible
/// as conjunctions of attribute comparisons are supported).
///
/// # Errors
///
/// Fails on `Or`/`Not`/`In` conditions, which have no canonical-form syntax.
pub fn rule_to_text(rule: &PolicyRule) -> Result<String, PolicyTextError> {
    let mut out = rule.effect.to_string();
    match &rule.condition {
        None => out.push_str(" always"),
        Some(c) => {
            out.push_str(" if ");
            let mut parts = Vec::new();
            flatten_conjunction(c, &mut parts)?;
            out.push_str(&parts.join(" and "));
        }
    }
    Ok(out)
}

fn flatten_conjunction(c: &Cond, out: &mut Vec<String>) -> Result<(), PolicyTextError> {
    match c {
        Cond::Cmp {
            category,
            attr,
            op,
            value,
        } => {
            out.push(format!(
                "{} {} {} {}",
                category.name(),
                attr,
                op.token(),
                value
            ));
            Ok(())
        }
        Cond::And(cs) => {
            for c in cs {
                flatten_conjunction(c, out)?;
            }
            Ok(())
        }
        other => Err(PolicyTextError::new(format!(
            "condition `{other}` has no canonical textual form"
        ))),
    }
}

/// Parses the canonical textual form back into a [`PolicyRule`].
///
/// # Errors
///
/// Fails on malformed text.
pub fn rule_from_text(id: &str, text: &str) -> Result<PolicyRule, PolicyTextError> {
    let tokens: Vec<&str> = text.split_ascii_whitespace().collect();
    let mut it = tokens.iter().peekable();
    let effect = match it.next() {
        Some(&"permit") => Effect::Permit,
        Some(&"deny") => Effect::Deny,
        other => {
            return Err(PolicyTextError::new(format!(
                "expected effect, got {other:?}"
            )))
        }
    };
    match it.next() {
        Some(&"always") => {
            if it.next().is_some() {
                return Err(PolicyTextError::new("trailing tokens after `always`"));
            }
            return Ok(PolicyRule {
                id: id.to_owned(),
                effect,
                condition: None,
            });
        }
        Some(&"if") => {}
        other => {
            return Err(PolicyTextError::new(format!(
                "expected `if`/`always`, got {other:?}"
            )))
        }
    }
    let mut conds = Vec::new();
    loop {
        let category = match it.next() {
            Some(&"subject") => Category::Subject,
            Some(&"resource") => Category::Resource,
            Some(&"action") => Category::Action,
            Some(&"environment") => Category::Environment,
            other => {
                return Err(PolicyTextError::new(format!(
                    "expected category, got {other:?}"
                )))
            }
        };
        let attr = it
            .next()
            .ok_or_else(|| PolicyTextError::new("expected attribute name"))?
            .to_string();
        let op = match it.next() {
            Some(&"=") => CondOp::Eq,
            Some(&"!=") => CondOp::Ne,
            Some(&"<") => CondOp::Lt,
            Some(&"<=") => CondOp::Le,
            Some(&">") => CondOp::Gt,
            Some(&">=") => CondOp::Ge,
            other => {
                return Err(PolicyTextError::new(format!(
                    "expected operator, got {other:?}"
                )))
            }
        };
        let raw = it
            .next()
            .ok_or_else(|| PolicyTextError::new("expected value"))?;
        let value = parse_value(raw);
        conds.push(Cond::Cmp {
            category,
            attr,
            op,
            value,
        });
        match it.next() {
            None => break,
            Some(&"and") => continue,
            other => {
                return Err(PolicyTextError::new(format!(
                    "expected `and`, got {other:?}"
                )))
            }
        }
    }
    let condition = if conds.len() == 1 {
        conds.pop().unwrap()
    } else {
        Cond::And(conds)
    };
    Ok(PolicyRule {
        id: id.to_owned(),
        effect,
        condition: Some(condition),
    })
}

/// Parses a token into an [`AttrValue`] (integer, boolean, or string).
pub fn parse_value(raw: &str) -> AttrValue {
    if let Ok(i) = raw.parse::<i64>() {
        AttrValue::Int(i)
    } else if raw == "true" {
        AttrValue::Bool(true)
    } else if raw == "false" {
        AttrValue::Bool(false)
    } else {
        AttrValue::Str(raw.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_encoding() {
        let r = Request::new()
            .subject("role", "dba")
            .resource("level", 3i64);
        let ctx = request_to_context(&r);
        let text = ctx.to_string();
        assert!(text.contains("attr(resource, level, 3)."));
        assert!(text.contains("attr(subject, role, dba)."));
        assert_eq!(ctx.len(), 2);
    }

    #[test]
    fn text_round_trip() {
        let texts = [
            "permit if subject role = dba and action action-id = read",
            "deny if resource sensitivity >= 3",
            "permit always",
        ];
        // `action-id` contains a hyphen, which survives as a plain token.
        for t in texts {
            let rule = rule_from_text("r", t).unwrap();
            let back = rule_to_text(&rule).unwrap();
            assert_eq!(back, t);
        }
    }

    #[test]
    fn structured_round_trip() {
        let rule = PolicyRule::new(
            "r1",
            Effect::Deny,
            Cond::And(vec![
                Cond::eq(Category::Subject, "age", 17i64),
                Cond::cmp(Category::Resource, "rating", CondOp::Ge, 18i64),
            ]),
        );
        let text = rule_to_text(&rule).unwrap();
        let back = rule_from_text("r1", &text).unwrap();
        assert_eq!(back.effect, rule.effect);
        assert_eq!(rule_to_text(&back).unwrap(), text);
    }

    #[test]
    fn rejects_disjunctions() {
        let rule = PolicyRule::new(
            "r",
            Effect::Permit,
            Cond::Or(vec![Cond::eq(Category::Subject, "a", 1i64)]),
        );
        assert!(rule_to_text(&rule).is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(rule_from_text("r", "maybe if subject a = 1").is_err());
        assert!(rule_from_text("r", "permit if nowhere a = 1").is_err());
        assert!(rule_from_text("r", "permit if subject a ~ 1").is_err());
        assert!(rule_from_text("r", "permit always extra").is_err());
        assert!(rule_from_text("r", "permit if subject a = 1 or").is_err());
    }

    #[test]
    fn value_typing() {
        assert_eq!(parse_value("42"), AttrValue::Int(42));
        assert_eq!(parse_value("-7"), AttrValue::Int(-7));
        assert_eq!(parse_value("true"), AttrValue::Bool(true));
        assert_eq!(parse_value("dba"), AttrValue::Str("dba".into()));
    }
}
