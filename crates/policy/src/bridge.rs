//! Bridging the attribute world and the symbolic world: requests become ASP
//! context programs (the `C` of context-dependent examples), and policies
//! written in a canonical textual policy language convert to and from
//! [`PolicyRule`] structures.
//!
//! The canonical textual form (whitespace-tokenized so it can be described
//! by a [`agenp_grammar::Cfg`]) is:
//!
//! ```text
//! permit if subject role = dba and action action-id = read
//! deny if resource sensitivity >= 3
//! permit always
//! ```
//!
//! A rule may carry annotation trailers after its condition: zero or more
//! `obligation ID within TICKS penalty N` clauses (issued on the rule's own
//! effect; the id doubles as the PEP action), then at most one rule-level
//! `penalty N` sanction:
//!
//! ```text
//! permit if subject role = dba obligation audit-log within 10 penalty 2
//! deny if resource sensitivity >= 3 penalty 7
//! ```

use crate::attr::{AttrValue, Category, Request};
use crate::model::{Cond, CondOp, Effect, PolicyRule};
use crate::obligation::Obligation;
use agenp_asp::{Atom, Program, Rule as AspRule, Symbol, Term};
use std::fmt;

/// Encodes a request as ASP context facts: one
/// `attr(category, name, value)` fact per attribute.
pub fn request_to_context(request: &Request) -> Program {
    let mut p = Program::new();
    for (c, n, v) in request.iter() {
        p.push(AspRule::fact(Atom::new(
            Symbol::new("attr"),
            vec![
                Term::Sym(Symbol::new(c.name())),
                Term::Sym(Symbol::new(n)),
                attr_value_to_term(v),
            ],
        )));
    }
    p
}

/// Maps an [`AttrValue`] to an ASP term.
pub fn attr_value_to_term(v: &AttrValue) -> Term {
    match v {
        AttrValue::Int(i) => Term::Int(*i),
        AttrValue::Str(s) => Term::Sym(Symbol::new(s)),
        AttrValue::Bool(b) => Term::Sym(Symbol::new(if *b { "true" } else { "false" })),
    }
}

/// Encodes an obligation as an ASP fact:
/// `obligation(id, action, deadline, penalty)`.
pub fn obligation_to_atom(ob: &Obligation) -> Atom {
    Atom::new(
        Symbol::new("obligation"),
        vec![
            Term::Sym(Symbol::new(&ob.id)),
            Term::Sym(Symbol::new(&ob.action)),
            Term::Int(ob.deadline as i64),
            Term::Int(i64::from(ob.penalty)),
        ],
    )
}

/// Encodes a decision's obligations as an ASP context program — the symbolic
/// form the adaptation loop's examples and the refinement literature
/// (`obligation/4` facts) work over.
pub fn obligations_to_program(obligations: &[Obligation]) -> Program {
    let mut p = Program::new();
    for ob in obligations {
        p.push(AspRule::fact(obligation_to_atom(ob)));
    }
    p
}

/// Errors from parsing the canonical textual policy form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PolicyTextError {
    msg: String,
}

impl PolicyTextError {
    fn new(msg: impl Into<String>) -> PolicyTextError {
        PolicyTextError { msg: msg.into() }
    }
}

impl fmt::Display for PolicyTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy text error: {}", self.msg)
    }
}

impl std::error::Error for PolicyTextError {}

/// Renders a rule in the canonical textual form (only conditions expressible
/// as conjunctions of attribute comparisons are supported).
///
/// # Errors
///
/// Fails on `Or`/`Not`/`In` conditions, which have no canonical-form syntax,
/// and on obligation specs the textual trailer cannot express (an `on`
/// effect differing from the rule's own, or an action differing from the
/// id — the trailer's single identifier is both).
pub fn rule_to_text(rule: &PolicyRule) -> Result<String, PolicyTextError> {
    let mut out = rule.effect.to_string();
    match &rule.condition {
        None => out.push_str(" always"),
        Some(c) => {
            out.push_str(" if ");
            let mut parts = Vec::new();
            flatten_conjunction(c, &mut parts)?;
            out.push_str(&parts.join(" and "));
        }
    }
    for spec in &rule.obligations {
        if spec.on != rule.effect {
            return Err(PolicyTextError::new(format!(
                "obligation `{}` fires on {}, not the rule's own effect; no textual form",
                spec.obligation.id, spec.on
            )));
        }
        if spec.obligation.action != spec.obligation.id {
            return Err(PolicyTextError::new(format!(
                "obligation `{}` has a distinct action `{}`; no textual form",
                spec.obligation.id, spec.obligation.action
            )));
        }
        out.push_str(&format!(
            " obligation {} within {} penalty {}",
            spec.obligation.id, spec.obligation.deadline, spec.obligation.penalty
        ));
    }
    if let Some(p) = rule.penalty {
        out.push_str(&format!(" penalty {p}"));
    }
    Ok(out)
}

fn flatten_conjunction(c: &Cond, out: &mut Vec<String>) -> Result<(), PolicyTextError> {
    match c {
        Cond::Cmp {
            category,
            attr,
            op,
            value,
        } => {
            out.push(format!(
                "{} {} {} {}",
                category.name(),
                attr,
                op.token(),
                value
            ));
            Ok(())
        }
        Cond::And(cs) => {
            for c in cs {
                flatten_conjunction(c, out)?;
            }
            Ok(())
        }
        other => Err(PolicyTextError::new(format!(
            "condition `{other}` has no canonical textual form"
        ))),
    }
}

/// Parses the canonical textual form back into a [`PolicyRule`].
///
/// # Errors
///
/// Fails on malformed text.
pub fn rule_from_text(id: &str, text: &str) -> Result<PolicyRule, PolicyTextError> {
    let tokens: Vec<&str> = text.split_ascii_whitespace().collect();
    let mut it = tokens.iter().peekable();
    let effect = match it.next() {
        Some(&"permit") => Effect::Permit,
        Some(&"deny") => Effect::Deny,
        other => {
            return Err(PolicyTextError::new(format!(
                "expected effect, got {other:?}"
            )))
        }
    };
    let condition = match it.next() {
        Some(&"always") => None,
        Some(&"if") => {
            let mut conds = Vec::new();
            loop {
                let category = match it.next() {
                    Some(&"subject") => Category::Subject,
                    Some(&"resource") => Category::Resource,
                    Some(&"action") => Category::Action,
                    Some(&"environment") => Category::Environment,
                    other => {
                        return Err(PolicyTextError::new(format!(
                            "expected category, got {other:?}"
                        )))
                    }
                };
                let attr = it
                    .next()
                    .ok_or_else(|| PolicyTextError::new("expected attribute name"))?
                    .to_string();
                let op = match it.next() {
                    Some(&"=") => CondOp::Eq,
                    Some(&"!=") => CondOp::Ne,
                    Some(&"<") => CondOp::Lt,
                    Some(&"<=") => CondOp::Le,
                    Some(&">") => CondOp::Gt,
                    Some(&">=") => CondOp::Ge,
                    other => {
                        return Err(PolicyTextError::new(format!(
                            "expected operator, got {other:?}"
                        )))
                    }
                };
                let raw = it
                    .next()
                    .ok_or_else(|| PolicyTextError::new("expected value"))?;
                let value = parse_value(raw);
                conds.push(Cond::Cmp {
                    category,
                    attr,
                    op,
                    value,
                });
                match it.peek() {
                    Some(&&"and") => {
                        it.next();
                        continue;
                    }
                    _ => break,
                }
            }
            Some(if conds.len() == 1 {
                conds.pop().unwrap()
            } else {
                Cond::And(conds)
            })
        }
        other => {
            return Err(PolicyTextError::new(format!(
                "expected `if`/`always`, got {other:?}"
            )))
        }
    };
    let mut rule = PolicyRule {
        id: id.to_owned(),
        effect,
        condition,
        obligations: Vec::new(),
        penalty: None,
    };
    // Annotation trailers: `obligation ID within N penalty N`*, then at
    // most one rule-level `penalty N` (must come last).
    loop {
        match it.next() {
            None => break,
            Some(&"obligation") => {
                let ob_id = it
                    .next()
                    .ok_or_else(|| PolicyTextError::new("expected obligation id"))?
                    .to_string();
                expect_keyword(it.next(), "within")?;
                let deadline = parse_u64(it.next(), "obligation deadline")?;
                expect_keyword(it.next(), "penalty")?;
                let penalty = parse_u32(it.next(), "obligation penalty")?;
                rule = rule.with_obligation(
                    effect,
                    Obligation::new(&ob_id, &ob_id, deadline).with_penalty(penalty),
                );
            }
            Some(&"penalty") => {
                rule.penalty = Some(parse_u32(it.next(), "rule penalty")?);
                if let Some(extra) = it.next() {
                    return Err(PolicyTextError::new(format!(
                        "trailing token {extra:?} after rule penalty"
                    )));
                }
                break;
            }
            Some(other) => {
                return Err(PolicyTextError::new(format!(
                    "expected `obligation`/`penalty`, got {other:?}"
                )))
            }
        }
    }
    Ok(rule)
}

fn expect_keyword(tok: Option<&&str>, want: &str) -> Result<(), PolicyTextError> {
    match tok {
        Some(t) if *t == want => Ok(()),
        other => Err(PolicyTextError::new(format!(
            "expected `{want}`, got {other:?}"
        ))),
    }
}

fn parse_u64(tok: Option<&&str>, what: &str) -> Result<u64, PolicyTextError> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| PolicyTextError::new(format!("expected {what} (unsigned), got {tok:?}")))
}

fn parse_u32(tok: Option<&&str>, what: &str) -> Result<u32, PolicyTextError> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| PolicyTextError::new(format!("expected {what} (unsigned), got {tok:?}")))
}

/// Parses a token into an [`AttrValue`] (integer, boolean, or string).
pub fn parse_value(raw: &str) -> AttrValue {
    if let Ok(i) = raw.parse::<i64>() {
        AttrValue::Int(i)
    } else if raw == "true" {
        AttrValue::Bool(true)
    } else if raw == "false" {
        AttrValue::Bool(false)
    } else {
        AttrValue::Str(raw.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_encoding() {
        let r = Request::new()
            .subject("role", "dba")
            .resource("level", 3i64);
        let ctx = request_to_context(&r);
        let text = ctx.to_string();
        assert!(text.contains("attr(resource, level, 3)."));
        assert!(text.contains("attr(subject, role, dba)."));
        assert_eq!(ctx.len(), 2);
    }

    #[test]
    fn text_round_trip() {
        let texts = [
            "permit if subject role = dba and action action-id = read",
            "deny if resource sensitivity >= 3",
            "permit always",
        ];
        // `action-id` contains a hyphen, which survives as a plain token.
        for t in texts {
            let rule = rule_from_text("r", t).unwrap();
            let back = rule_to_text(&rule).unwrap();
            assert_eq!(back, t);
        }
    }

    #[test]
    fn structured_round_trip() {
        let rule = PolicyRule::new(
            "r1",
            Effect::Deny,
            Cond::And(vec![
                Cond::eq(Category::Subject, "age", 17i64),
                Cond::cmp(Category::Resource, "rating", CondOp::Ge, 18i64),
            ]),
        );
        let text = rule_to_text(&rule).unwrap();
        let back = rule_from_text("r1", &text).unwrap();
        assert_eq!(back.effect, rule.effect);
        assert_eq!(rule_to_text(&back).unwrap(), text);
    }

    #[test]
    fn annotation_trailers_round_trip() {
        let texts = [
            "permit if subject role = dba obligation audit-log within 10 penalty 2",
            "deny if resource sensitivity >= 3 penalty 7",
            "permit always obligation notify within 5 penalty 0",
            "deny always obligation a within 1 penalty 2 obligation b within 3 penalty 4 penalty 9",
        ];
        for t in texts {
            let rule = rule_from_text("r", t).unwrap();
            assert_eq!(rule_to_text(&rule).unwrap(), t);
        }
        let rule = rule_from_text(
            "r",
            "permit if subject role = dba obligation audit within 10 penalty 2",
        )
        .unwrap();
        assert_eq!(rule.obligations.len(), 1);
        assert_eq!(rule.obligations[0].on, Effect::Permit);
        assert_eq!(rule.obligations[0].obligation.id, "audit");
        assert_eq!(rule.obligations[0].obligation.action, "audit");
        assert_eq!(rule.obligations[0].obligation.deadline, 10);
        assert_eq!(rule.obligations[0].obligation.penalty, 2);
        assert_eq!(rule.penalty, None);
        let sanction = rule_from_text("r", "deny always penalty 7").unwrap();
        assert_eq!(sanction.penalty, Some(7));
    }

    #[test]
    fn annotation_trailer_errors() {
        // Rule penalty must come last.
        assert!(
            rule_from_text("r", "deny always penalty 7 obligation a within 1 penalty 2").is_err()
        );
        assert!(rule_from_text("r", "permit always obligation a within penalty 2").is_err());
        assert!(rule_from_text("r", "permit always obligation a within 3").is_err());
        assert!(rule_from_text("r", "permit always penalty many").is_err());
        // Specs the trailer cannot express fail to render.
        let cross = PolicyRule::unconditional("r", Effect::Permit)
            .with_obligation(Effect::Deny, Obligation::new("a", "a", 1));
        assert!(rule_to_text(&cross).is_err());
        let renamed = PolicyRule::unconditional("r", Effect::Permit)
            .with_obligation(Effect::Permit, Obligation::new("a", "other-action", 1));
        assert!(rule_to_text(&renamed).is_err());
    }

    #[test]
    fn obligation_asp_encoding() {
        let obs = [
            Obligation::new("audit", "audit-log", 10).with_penalty(2),
            Obligation::new("notify", "notify-owner", 5),
        ];
        let p = obligations_to_program(&obs);
        let text = p.to_string();
        // Hyphenated actions are not bare ASP constants, so they quote.
        assert!(text.contains(r#"obligation(audit, "audit-log", 10, 2)."#));
        assert!(text.contains(r#"obligation(notify, "notify-owner", 5, 0)."#));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn rejects_disjunctions() {
        let rule = PolicyRule::new(
            "r",
            Effect::Permit,
            Cond::Or(vec![Cond::eq(Category::Subject, "a", 1i64)]),
        );
        assert!(rule_to_text(&rule).is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(rule_from_text("r", "maybe if subject a = 1").is_err());
        assert!(rule_from_text("r", "permit if nowhere a = 1").is_err());
        assert!(rule_from_text("r", "permit if subject a ~ 1").is_err());
        assert!(rule_from_text("r", "permit always extra").is_err());
        assert!(rule_from_text("r", "permit if subject a = 1 or").is_err());
    }

    #[test]
    fn value_typing() {
        assert_eq!(parse_value("42"), AttrValue::Int(42));
        assert_eq!(parse_value("-7"), AttrValue::Int(-7));
        assert_eq!(parse_value("true"), AttrValue::Bool(true));
        assert_eq!(parse_value("dba"), AttrValue::Str("dba".into()));
    }
}
