//! Attribute-based requests: the subject / resource / action / environment
//! attribute categories of XACML-style access control (paper §IV-C).

use std::collections::BTreeMap;
use std::fmt;

/// An attribute category.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Category {
    /// The requesting subject.
    Subject,
    /// The requested resource.
    Resource,
    /// The requested action.
    Action,
    /// Environmental / contextual attributes.
    Environment,
}

impl Category {
    /// All categories, in canonical order.
    pub const ALL: [Category; 4] = [
        Category::Subject,
        Category::Resource,
        Category::Action,
        Category::Environment,
    ];

    /// Lower-case name used in textual policies and ASP facts.
    pub fn name(self) -> &'static str {
        match self {
            Category::Subject => "subject",
            Category::Resource => "resource",
            Category::Action => "action",
            Category::Environment => "environment",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An attribute value.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum AttrValue {
    /// A string value.
    Str(String),
    /// An integer value.
    Int(i64),
    /// A boolean value.
    Bool(bool),
}

impl AttrValue {
    /// The integer inside, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string inside, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => f.write_str(s),
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> AttrValue {
        AttrValue::Str(s.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> AttrValue {
        AttrValue::Str(s)
    }
}

impl From<i64> for AttrValue {
    fn from(i: i64) -> AttrValue {
        AttrValue::Int(i)
    }
}

impl From<bool> for AttrValue {
    fn from(b: bool) -> AttrValue {
        AttrValue::Bool(b)
    }
}

/// An access request: attributes per category.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Request {
    attrs: BTreeMap<Category, BTreeMap<String, AttrValue>>,
}

impl Request {
    /// An empty request.
    pub fn new() -> Request {
        Request::default()
    }

    /// Sets an attribute (builder style).
    pub fn with(mut self, category: Category, name: &str, value: impl Into<AttrValue>) -> Request {
        self.set(category, name, value);
        self
    }

    /// Shorthand for a subject attribute.
    pub fn subject(self, name: &str, value: impl Into<AttrValue>) -> Request {
        self.with(Category::Subject, name, value)
    }

    /// Shorthand for a resource attribute.
    pub fn resource(self, name: &str, value: impl Into<AttrValue>) -> Request {
        self.with(Category::Resource, name, value)
    }

    /// Shorthand for an action attribute.
    pub fn action(self, name: &str, value: impl Into<AttrValue>) -> Request {
        self.with(Category::Action, name, value)
    }

    /// Shorthand for an environment attribute.
    pub fn environment(self, name: &str, value: impl Into<AttrValue>) -> Request {
        self.with(Category::Environment, name, value)
    }

    /// Sets an attribute in place.
    pub fn set(&mut self, category: Category, name: &str, value: impl Into<AttrValue>) {
        self.attrs
            .entry(category)
            .or_default()
            .insert(name.to_owned(), value.into());
    }

    /// Looks up an attribute.
    pub fn get(&self, category: Category, name: &str) -> Option<&AttrValue> {
        self.attrs.get(&category).and_then(|m| m.get(name))
    }

    /// Iterates over all `(category, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (Category, &str, &AttrValue)> {
        self.attrs
            .iter()
            .flat_map(|(c, m)| m.iter().map(move |(n, v)| (*c, n.as_str(), v)))
    }

    /// An injective, deterministic encoding of the request, suitable as a
    /// cache key: `BTreeMap` iteration fixes the order, names are
    /// length-prefixed, and values carry a type tag plus length prefix so
    /// no two distinct requests share a key (unlike the `Display` form,
    /// where `Str("true")` and `Bool(true)` collide).
    pub fn canonical_key(&self) -> String {
        use std::fmt::Write as _;
        // Pre-size so the serving hot path does one allocation per key:
        // worst-case fixed overhead per attribute is ~26 bytes of tags,
        // prefixes, and digits on top of the name/value payload.
        let payload: usize = self
            .iter()
            .map(|(c, n, v)| {
                c.name().len()
                    + n.len()
                    + match v {
                        AttrValue::Str(s) => s.len(),
                        AttrValue::Int(_) | AttrValue::Bool(_) => 0,
                    }
            })
            .sum();
        let mut key = String::with_capacity(payload + 26 * self.len());
        for (c, n, v) in self.iter() {
            // `write!` formats digits straight into `key`; the previous
            // `to_string()` forms allocated a temporary per field.
            let _ = write!(key, "{}.{}:{n}=", c.name(), n.len());
            match v {
                AttrValue::Str(s) => {
                    let _ = write!(key, "s:{}:{s}", s.len());
                }
                AttrValue::Int(i) => {
                    let _ = write!(key, "i:{i}");
                }
                AttrValue::Bool(b) => {
                    key.push_str(if *b { "b:1" } else { "b:0" });
                }
            }
            key.push(';');
        }
        key
    }

    /// Number of attributes across all categories.
    pub fn len(&self) -> usize {
        self.attrs.values().map(BTreeMap::len).sum()
    }

    /// True if the request carries no attributes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (c, n, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}.{n}={v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let r = Request::new()
            .subject("role", "dba")
            .action("action-id", "read")
            .resource("sensitivity", 3i64)
            .environment("emergency", true);
        assert_eq!(
            r.get(Category::Subject, "role"),
            Some(&AttrValue::from("dba"))
        );
        assert_eq!(
            r.get(Category::Resource, "sensitivity")
                .and_then(AttrValue::as_int),
            Some(3)
        );
        assert_eq!(
            r.get(Category::Environment, "emergency"),
            Some(&AttrValue::Bool(true))
        );
        assert_eq!(r.get(Category::Subject, "missing"), None);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
    }

    #[test]
    fn display_is_deterministic() {
        let a = Request::new().subject("role", "dba").subject("age", 30i64);
        assert_eq!(a.to_string(), "{subject.age=30, subject.role=dba}");
    }

    #[test]
    fn canonical_key_is_injective_where_display_is_not() {
        let s = Request::new().subject("flag", "true");
        let b = Request::new().subject("flag", true);
        assert_eq!(s.to_string(), b.to_string()); // Display collides…
        assert_ne!(s.canonical_key(), b.canonical_key()); // …the key must not
        let i = Request::new().subject("n", "3");
        let j = Request::new().subject("n", 3i64);
        assert_ne!(i.canonical_key(), j.canonical_key());
        // Same request built in a different order keys identically.
        let a = Request::new().subject("role", "dba").subject("age", 30i64);
        let b = Request::new().subject("age", 30i64).subject("role", "dba");
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn iteration_covers_all_categories() {
        let r = Request::new()
            .subject("a", 1i64)
            .resource("b", 2i64)
            .action("c", 3i64);
        assert_eq!(r.iter().count(), 3);
    }
}
