//! Policy quality assessment — the Policy Checking Point's Quality Checker
//! and Violation Detector (paper §III-A-2 and §V-A).
//!
//! Implements the four quality requirements of Bertino et al. [14]:
//!
//! * **Consistency** — no two applicable rules render contradictory effects
//!   on the same request;
//! * **Relevance** — every rule applies to at least one request of interest;
//! * **Minimality** — no rule is redundant (removing it never changes a
//!   decision);
//! * **Completeness** — every request of interest receives an explicit
//!   decision.
//!
//! Conflicts are assessed both *statically* (syntactic overlap of conditions
//! — potential conflicts) and *contextually* against a concrete request
//! space, reflecting the paper's observation that "whether two policies
//! conflict may depend on the context" (the Crypto-project/postdoc example).

use crate::attr::Request;
use crate::model::{CombiningAlg, Cond, Decision, Effect, Policy, PolicyRule};
use std::fmt;

/// A pair of rules that rendered contradictory effects on a witness request.
#[derive(Clone, Debug)]
pub struct Conflict {
    /// Policy id and rule id of the permitting rule.
    pub permit_rule: (String, String),
    /// Policy id and rule id of the denying rule.
    pub deny_rule: (String, String),
    /// A request witnessing the conflict (absent for potential conflicts).
    pub witness: Option<Request>,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} (permit) vs {}/{} (deny)",
            self.permit_rule.0, self.permit_rule.1, self.deny_rule.0, self.deny_rule.1
        )?;
        if let Some(w) = &self.witness {
            write!(f, " on {w}")?;
        }
        Ok(())
    }
}

/// The quality report produced by [`QualityChecker::assess`].
#[derive(Clone, Debug)]
pub struct QualityReport {
    /// Confirmed conflicts on the request space.
    pub conflicts: Vec<Conflict>,
    /// Rules `(policy, rule)` that applied to no request in the space.
    pub irrelevant: Vec<(String, String)>,
    /// Rules `(policy, rule)` whose removal changes no decision (redundant).
    pub redundant: Vec<(String, String)>,
    /// Fraction of requests with an explicit Permit/Deny decision.
    pub completeness: f64,
    /// Requests that received no explicit decision.
    pub uncovered: Vec<Request>,
    /// Number of requests assessed.
    pub assessed: usize,
}

impl QualityReport {
    /// True if all four requirements hold on the assessed space.
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty()
            && self.irrelevant.is_empty()
            && self.redundant.is_empty()
            && self.completeness >= 1.0
    }
}

impl fmt::Display for QualityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "quality: {} conflicts, {} irrelevant, {} redundant, completeness {:.1}% over {} requests",
            self.conflicts.len(),
            self.irrelevant.len(),
            self.redundant.len(),
            self.completeness * 100.0,
            self.assessed
        )
    }
}

/// The PCP Quality Checker: assesses a policy set against a request space.
#[derive(Clone, Copy, Debug, Default)]
pub struct QualityChecker;

impl QualityChecker {
    /// A new checker.
    pub fn new() -> QualityChecker {
        QualityChecker
    }

    /// Assesses `policies` over the given request space (a finite sample of
    /// the requests of interest).
    pub fn assess(&self, policies: &[Policy], space: &[Request]) -> QualityReport {
        let mut conflicts = Vec::new();
        // Flat index over (policy, rule) pairs.
        let mut index: Vec<(usize, usize)> = Vec::new();
        for (pi, p) in policies.iter().enumerate() {
            for (ri, _) in p.rules.iter().enumerate() {
                index.push((pi, ri));
            }
        }
        let mut applied_flags = vec![false; index.len()];
        let mut covered = 0usize;
        let mut uncovered = Vec::new();
        for req in space {
            // Which rules fire, with which effects?
            let mut permits: Vec<(usize, usize)> = Vec::new();
            let mut denies: Vec<(usize, usize)> = Vec::new();
            for (flat, &(pi, ri)) in index.iter().enumerate() {
                let rule = &policies[pi].rules[ri];
                match rule.evaluate(req) {
                    Decision::Permit => {
                        applied_flags[flat] = true;
                        permits.push((pi, ri));
                    }
                    Decision::Deny => {
                        applied_flags[flat] = true;
                        denies.push((pi, ri));
                    }
                    _ => {}
                }
            }
            for &(ppi, pri) in &permits {
                for &(dpi, dri) in &denies {
                    let c = Conflict {
                        permit_rule: (
                            policies[ppi].id.clone(),
                            policies[ppi].rules[pri].id.clone(),
                        ),
                        deny_rule: (
                            policies[dpi].id.clone(),
                            policies[dpi].rules[dri].id.clone(),
                        ),
                        witness: Some(req.clone()),
                    };
                    // Record each conflicting pair once.
                    if !conflicts.iter().any(|x: &Conflict| {
                        x.permit_rule == c.permit_rule && x.deny_rule == c.deny_rule
                    }) {
                        conflicts.push(c);
                    }
                }
            }
            if permits.is_empty() && denies.is_empty() {
                uncovered.push(req.clone());
            } else {
                covered += 1;
            }
        }

        let irrelevant: Vec<(String, String)> = index
            .iter()
            .enumerate()
            .filter(|(flat, _)| !applied_flags[*flat])
            .map(|(_, &(pi, ri))| (policies[pi].id.clone(), policies[pi].rules[ri].id.clone()))
            .collect();

        // Minimality: a rule is redundant if removing it leaves every
        // decision on the space unchanged.
        let baseline: Vec<Decision> = space.iter().map(|r| combine_all(policies, r)).collect();
        let mut redundant = Vec::new();
        for &(pi, ri) in &index {
            let mut reduced: Vec<Policy> = policies.to_vec();
            reduced[pi].rules.remove(ri);
            let same = space
                .iter()
                .zip(&baseline)
                .all(|(req, base)| combine_all(&reduced, req) == *base);
            if same {
                redundant.push((policies[pi].id.clone(), policies[pi].rules[ri].id.clone()));
            }
        }

        let completeness = if space.is_empty() {
            1.0
        } else {
            covered as f64 / space.len() as f64
        };
        QualityReport {
            conflicts,
            irrelevant,
            redundant,
            completeness,
            uncovered,
            assessed: space.len(),
        }
    }

    /// Static (context-independent) potential-conflict detection: rule pairs
    /// with opposite effects whose equality conditions do not contradict
    /// syntactically. A potential conflict may or may not be realizable —
    /// confirm against a request space via [`QualityChecker::assess`].
    pub fn potential_conflicts(&self, policies: &[Policy]) -> Vec<Conflict> {
        let mut out = Vec::new();
        let all: Vec<(usize, usize)> = policies
            .iter()
            .enumerate()
            .flat_map(|(pi, p)| (0..p.rules.len()).map(move |ri| (pi, ri)))
            .collect();
        for (i, &(ppi, pri)) in all.iter().enumerate() {
            for &(dpi, dri) in &all[i + 1..] {
                let a = &policies[ppi].rules[pri];
                let b = &policies[dpi].rules[dri];
                if a.effect == b.effect {
                    continue;
                }
                if !syntactically_disjoint(a, b) {
                    let (permit, deny) = if a.effect == Effect::Permit {
                        ((ppi, pri), (dpi, dri))
                    } else {
                        ((dpi, dri), (ppi, pri))
                    };
                    out.push(Conflict {
                        permit_rule: (
                            policies[permit.0].id.clone(),
                            policies[permit.0].rules[permit.1].id.clone(),
                        ),
                        deny_rule: (
                            policies[deny.0].id.clone(),
                            policies[deny.0].rules[deny.1].id.clone(),
                        ),
                        witness: None,
                    });
                }
            }
        }
        out
    }
}

fn combine_all(policies: &[Policy], request: &Request) -> Decision {
    CombiningAlg::DenyOverrides.combine(policies.iter().map(|p| p.evaluate(request)))
}

/// Conservative syntactic disjointness: true only if the two rules contain
/// top-level equality conditions on the same attribute with different
/// constants (so no request can satisfy both).
fn syntactically_disjoint(a: &PolicyRule, b: &PolicyRule) -> bool {
    let eqs = |r: &PolicyRule| -> Vec<(crate::attr::Category, String, crate::attr::AttrValue)> {
        let mut out = Vec::new();
        if let Some(c) = &r.condition {
            collect_eqs(c, &mut out);
        }
        out
    };
    let ea = eqs(a);
    let eb = eqs(b);
    for (ca, na, va) in &ea {
        for (cb, nb, vb) in &eb {
            if ca == cb && na == nb && va != vb {
                return true;
            }
        }
    }
    false
}

fn collect_eqs(c: &Cond, out: &mut Vec<(crate::attr::Category, String, crate::attr::AttrValue)>) {
    match c {
        Cond::Cmp {
            category,
            attr,
            op: crate::model::CondOp::Eq,
            value,
        } => {
            out.push((*category, attr.clone(), value.clone()));
        }
        Cond::And(cs) => {
            for c in cs {
                collect_eqs(c, out);
            }
        }
        _ => {}
    }
}

/// A strategy for resolving confirmed conflicts at decision time (paper
/// §V-A: "one may need to decide which strategy to adopt depending on the
/// context").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResolutionStrategy {
    /// Deny wins.
    DenyOverrides,
    /// Permit wins.
    PermitOverrides,
    /// The rule from the policy listed first wins.
    FirstPolicyWins,
}

impl ResolutionStrategy {
    /// Resolves a conflicting pair of effects.
    pub fn resolve(self, first_effect: Effect, second_effect: Effect) -> Effect {
        match self {
            ResolutionStrategy::DenyOverrides => {
                if first_effect == Effect::Deny || second_effect == Effect::Deny {
                    Effect::Deny
                } else {
                    Effect::Permit
                }
            }
            ResolutionStrategy::PermitOverrides => {
                if first_effect == Effect::Permit || second_effect == Effect::Permit {
                    Effect::Permit
                } else {
                    Effect::Deny
                }
            }
            ResolutionStrategy::FirstPolicyWins => first_effect,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Category;

    fn crypto_policies() -> Vec<Policy> {
        // The paper's §V-A example: members of the Crypto project may modify
        // the crypto libraries; postdocs may not.
        vec![
            Policy::new(
                "proj",
                vec![PolicyRule::new(
                    "crypto-members",
                    Effect::Permit,
                    Cond::And(vec![
                        Cond::eq(Category::Subject, "project", "crypto"),
                        Cond::eq(Category::Action, "action-id", "modify"),
                        Cond::eq(Category::Resource, "lib", "crypto-libs"),
                    ]),
                )],
            ),
            Policy::new(
                "role",
                vec![PolicyRule::new(
                    "no-postdocs",
                    Effect::Deny,
                    Cond::And(vec![
                        Cond::eq(Category::Subject, "position", "postdoc"),
                        Cond::eq(Category::Action, "action-id", "modify"),
                        Cond::eq(Category::Resource, "lib", "crypto-libs"),
                    ]),
                )],
            ),
        ]
    }

    fn modify_request(project: &str, position: &str) -> Request {
        Request::new()
            .subject("project", project)
            .subject("position", position)
            .action("action-id", "modify")
            .resource("lib", "crypto-libs")
    }

    #[test]
    fn conflict_is_context_dependent() {
        let policies = crypto_policies();
        let checker = QualityChecker::new();
        // Potential conflict exists statically.
        assert_eq!(checker.potential_conflicts(&policies).len(), 1);
        // Context without postdoc crypto members: no confirmed conflict.
        let space_a = vec![
            modify_request("crypto", "faculty"),
            modify_request("ml", "postdoc"),
        ];
        let report_a = checker.assess(&policies, &space_a);
        assert!(report_a.conflicts.is_empty());
        // Context with a postdoc who is a crypto member: confirmed conflict.
        let space_b = vec![modify_request("crypto", "postdoc")];
        let report_b = checker.assess(&policies, &space_b);
        assert_eq!(report_b.conflicts.len(), 1);
        assert!(report_b.conflicts[0].witness.is_some());
    }

    #[test]
    fn irrelevant_rules_are_found() {
        let mut policies = crypto_policies();
        policies[0].rules.push(PolicyRule::new(
            "never-fires",
            Effect::Permit,
            Cond::eq(Category::Subject, "project", "nonexistent"),
        ));
        let space = vec![modify_request("crypto", "faculty")];
        let report = QualityChecker::new().assess(&policies, &space);
        assert!(report.irrelevant.iter().any(|(_, r)| r == "never-fires"));
    }

    #[test]
    fn redundant_rules_are_found() {
        let mut policies = crypto_policies();
        // Exact duplicate of the permit rule.
        let dup = policies[0].rules[0].clone();
        policies[0].rules.push(PolicyRule {
            id: "dup".into(),
            ..dup
        });
        let space = vec![
            modify_request("crypto", "faculty"),
            modify_request("ml", "faculty"),
        ];
        let report = QualityChecker::new().assess(&policies, &space);
        assert!(report.redundant.iter().any(|(_, r)| r == "dup"));
        // The deny rule is also redundant on this space (never fires), but
        // the *original* permit rule is redundant too since its duplicate
        // covers it. What matters: `dup` is flagged.
    }

    #[test]
    fn completeness_counts_uncovered() {
        let policies = crypto_policies();
        let space = vec![
            modify_request("crypto", "faculty"), // permit → covered
            Request::new()
                .subject("project", "ml")
                .action("action-id", "read"),
        ];
        let report = QualityChecker::new().assess(&policies, &space);
        assert!((report.completeness - 0.5).abs() < 1e-9);
        assert_eq!(report.uncovered.len(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn clean_report() {
        let policies = vec![Policy::new(
            "p",
            vec![
                PolicyRule::new(
                    "allow-read",
                    Effect::Permit,
                    Cond::eq(Category::Action, "action-id", "read"),
                ),
                PolicyRule::new(
                    "deny-write",
                    Effect::Deny,
                    Cond::eq(Category::Action, "action-id", "write"),
                ),
            ],
        )];
        let space = vec![
            Request::new().action("action-id", "read"),
            Request::new().action("action-id", "write"),
        ];
        let report = QualityChecker::new().assess(&policies, &space);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn resolution_strategies() {
        assert_eq!(
            ResolutionStrategy::DenyOverrides.resolve(Effect::Permit, Effect::Deny),
            Effect::Deny
        );
        assert_eq!(
            ResolutionStrategy::PermitOverrides.resolve(Effect::Deny, Effect::Permit),
            Effect::Permit
        );
        assert_eq!(
            ResolutionStrategy::FirstPolicyWins.resolve(Effect::Deny, Effect::Permit),
            Effect::Deny
        );
    }

    #[test]
    fn syntactic_disjointness_suppresses_impossible_conflicts() {
        let policies = vec![
            Policy::new(
                "a",
                vec![PolicyRule::new(
                    "p",
                    Effect::Permit,
                    Cond::eq(Category::Subject, "role", "dba"),
                )],
            ),
            Policy::new(
                "b",
                vec![PolicyRule::new(
                    "d",
                    Effect::Deny,
                    Cond::eq(Category::Subject, "role", "guest"),
                )],
            ),
        ];
        assert!(QualityChecker::new()
            .potential_conflicts(&policies)
            .is_empty());
    }
}
