//! Obligations and penalties: the decision model beyond permit/deny.
//!
//! A [`PolicyRule`] or [`Policy`] can attach [`ObligationSpec`]s — required
//! follow-up actions with logical-time deadlines — and rules can carry a
//! **penalty** annotation, the sanction an agent incurs by acting against a
//! Deny (the compliance model of "Autonomous Agents and Policy Compliance:
//! A Framework for Reasoning About Penalties"; obligations follow "An ASP
//! Framework for the Refinement of Authorization and Obligation Policies").
//!
//! Collection semantics are deterministic and order-insensitive to
//! combining-algorithm short-circuits, so the serving tier and the naive
//! reference PDP (`agenp-refsem`) can mirror them exactly:
//!
//! 1. The final [`Decision`] is computed exactly as [`evaluate_policies`]
//!    does today; obligations never change a decision.
//! 2. Obligations attach only to definite decisions (Permit / Deny).
//!    `NotApplicable` and `Indeterminate` outcomes carry none.
//! 3. A policy *contributes* iff its own combined decision equals the final
//!    decision; within a contributing policy, a rule contributes iff its
//!    evaluation equals the final decision.
//! 4. From each contributing policy, in policy order: first the policy's
//!    own specs, then each contributing rule's specs in rule order — keeping
//!    every spec whose `on` effect matches the final decision, deduplicated
//!    by obligation id (first occurrence wins).
//! 5. The decision's penalty is the **maximum** penalty annotation over
//!    contributing Deny rules (the worst applicable sanction), and zero for
//!    any non-Deny outcome.

use crate::attr::Request;
use crate::model::{CombiningAlg, Decision, Effect, Policy, PolicyRule};
use crate::pdp::evaluate_policies;
use std::fmt;

/// A required follow-up action attached to a decision: the PEP must perform
/// `action` within `deadline` logical ticks of the decision or accrue
/// `penalty`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Obligation {
    /// Stable identifier — the deduplication and discharge key.
    pub id: String,
    /// The action the PEP must perform (e.g. `audit-log`, `notify-owner`).
    pub action: String,
    /// Logical ticks after issue by which the action must be discharged.
    pub deadline: u64,
    /// Penalty accrued if the obligation expires undischarged.
    pub penalty: u32,
}

impl Obligation {
    /// An obligation with zero breach penalty.
    pub fn new(id: &str, action: &str, deadline: u64) -> Obligation {
        Obligation {
            id: id.to_owned(),
            action: action.to_owned(),
            deadline,
            penalty: 0,
        }
    }

    /// Sets the breach penalty (builder style).
    pub fn with_penalty(mut self, penalty: u32) -> Obligation {
        self.penalty = penalty;
        self
    }
}

impl fmt::Display for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "obligation {} within {} penalty {}",
            self.id, self.deadline, self.penalty
        )
    }
}

/// An obligation attached to a rule or policy, fulfilled only when the final
/// decision matches the `on` effect (XACML's FulfillOn).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ObligationSpec {
    /// The final decision effect this spec fires on.
    pub on: Effect,
    /// The obligation issued when the spec fires.
    pub obligation: Obligation,
}

impl ObligationSpec {
    /// A spec firing on `on`.
    pub fn new(on: Effect, obligation: Obligation) -> ObligationSpec {
        ObligationSpec { on, obligation }
    }
}

/// The full result of evaluating a request: the decision plus the
/// obligations and penalty annotation it carries. Produced by
/// [`evaluate_policies_effects`]; the permit/deny-only
/// [`evaluate_policies`] remains for callers that need no annotations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecisionEffects {
    /// The access decision (identical to [`evaluate_policies`]).
    pub decision: Decision,
    /// Obligations the PEP must track, in contribution order, id-deduped.
    pub obligations: Vec<Obligation>,
    /// Worst sanction for acting against this decision (Deny only; 0
    /// otherwise).
    pub penalty: u32,
}

impl DecisionEffects {
    /// An annotation-free effects value for `decision`.
    pub fn bare(decision: Decision) -> DecisionEffects {
        DecisionEffects {
            decision,
            obligations: Vec::new(),
            penalty: 0,
        }
    }

    /// True if the decision carries no obligations and no penalty.
    pub fn is_bare(&self) -> bool {
        self.obligations.is_empty() && self.penalty == 0
    }
}

impl Decision {
    /// The effect behind a definite decision (`None` for
    /// NotApplicable/Indeterminate).
    pub fn effect(self) -> Option<Effect> {
        match self {
            Decision::Permit => Some(Effect::Permit),
            Decision::Deny => Some(Effect::Deny),
            Decision::NotApplicable | Decision::Indeterminate => None,
        }
    }
}

impl PolicyRule {
    /// True if the rule carries obligation specs or a penalty annotation.
    pub fn has_annotations(&self) -> bool {
        !self.obligations.is_empty() || self.penalty.is_some()
    }
}

impl Policy {
    /// True if the policy or any of its rules carries annotations.
    pub fn has_annotations(&self) -> bool {
        !self.obligations.is_empty() || self.rules.iter().any(PolicyRule::has_annotations)
    }
}

/// Evaluates a request to a [`DecisionEffects`]: the same decision as
/// [`evaluate_policies`], plus collected obligations and the penalty
/// annotation, per the module-level collection semantics.
pub fn evaluate_policies_effects(
    policies: &[Policy],
    combining: CombiningAlg,
    request: &Request,
) -> DecisionEffects {
    let decision = evaluate_policies(policies, combining, request);
    let mut effects = DecisionEffects::bare(decision);
    let Some(final_effect) = decision.effect() else {
        return effects;
    };
    for policy in policies {
        // The annotation-free common case costs one scan, no evaluation.
        if !policy.has_annotations() {
            continue;
        }
        if policy.evaluate(request) != decision {
            continue;
        }
        for spec in &policy.obligations {
            if spec.on == final_effect {
                push_deduped(&mut effects.obligations, &spec.obligation);
            }
        }
        for rule in &policy.rules {
            if !rule.has_annotations() || rule.evaluate(request) != decision {
                continue;
            }
            for spec in &rule.obligations {
                if spec.on == final_effect {
                    push_deduped(&mut effects.obligations, &spec.obligation);
                }
            }
            if decision == Decision::Deny {
                if let Some(p) = rule.penalty {
                    effects.penalty = effects.penalty.max(p);
                }
            }
        }
    }
    effects
}

fn push_deduped(out: &mut Vec<Obligation>, ob: &Obligation) {
    if !out.iter().any(|o| o.id == ob.id) {
        out.push(ob.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Category;
    use crate::model::Cond;

    fn audit(deadline: u64) -> Obligation {
        Obligation::new("audit", "audit-log", deadline).with_penalty(2)
    }

    fn dba() -> Request {
        Request::new().subject("role", "dba")
    }

    #[test]
    fn permit_collects_matching_obligations() {
        let p = Policy::new(
            "p",
            vec![PolicyRule::new(
                "allow-dba",
                Effect::Permit,
                Cond::eq(Category::Subject, "role", "dba"),
            )
            .with_obligation(Effect::Permit, audit(10))],
        );
        let fx = evaluate_policies_effects(&[p], CombiningAlg::DenyOverrides, &dba());
        assert_eq!(fx.decision, Decision::Permit);
        assert_eq!(fx.obligations, vec![audit(10)]);
        assert_eq!(fx.penalty, 0);
    }

    #[test]
    fn non_matching_on_effect_does_not_fire() {
        let p = Policy::new(
            "p",
            vec![PolicyRule::new(
                "allow-dba",
                Effect::Permit,
                Cond::eq(Category::Subject, "role", "dba"),
            )
            .with_obligation(Effect::Deny, audit(10))],
        );
        let fx = evaluate_policies_effects(&[p], CombiningAlg::DenyOverrides, &dba());
        assert_eq!(fx.decision, Decision::Permit);
        assert!(fx.is_bare());
    }

    #[test]
    fn policy_level_obligations_fire_on_policy_contribution() {
        let p = Policy::new(
            "p",
            vec![PolicyRule::new(
                "deny-guest",
                Effect::Deny,
                Cond::eq(Category::Subject, "role", "guest"),
            )],
        )
        .with_obligation(Effect::Deny, Obligation::new("notify", "notify-owner", 5));
        let guest = Request::new().subject("role", "guest");
        let fx = evaluate_policies_effects(
            std::slice::from_ref(&p),
            CombiningAlg::DenyOverrides,
            &guest,
        );
        assert_eq!(fx.decision, Decision::Deny);
        assert_eq!(fx.obligations.len(), 1);
        assert_eq!(fx.obligations[0].id, "notify");
        // The same policy contributes nothing on a non-matching request.
        let fx2 = evaluate_policies_effects(&[p], CombiningAlg::DenyOverrides, &dba());
        assert_eq!(fx2.decision, Decision::NotApplicable);
        assert!(fx2.is_bare());
    }

    #[test]
    fn non_contributing_policy_is_skipped() {
        // Policy a permits, policy b denies; under DenyOverrides the final
        // decision is Deny, so a's permit-side obligations must not fire.
        let a = Policy::new(
            "a",
            vec![PolicyRule::unconditional("always", Effect::Permit)
                .with_obligation(Effect::Permit, audit(10))],
        );
        let b = Policy::new(
            "b",
            vec![PolicyRule::new(
                "deny-dba",
                Effect::Deny,
                Cond::eq(Category::Subject, "role", "dba"),
            )
            .with_obligation(Effect::Deny, Obligation::new("alarm", "raise-alarm", 1))],
        );
        let fx = evaluate_policies_effects(&[a, b], CombiningAlg::DenyOverrides, &dba());
        assert_eq!(fx.decision, Decision::Deny);
        assert_eq!(fx.obligations.len(), 1);
        assert_eq!(fx.obligations[0].id, "alarm");
    }

    #[test]
    fn obligations_dedupe_by_id_first_wins() {
        let p = Policy::new(
            "p",
            vec![
                PolicyRule::unconditional("r1", Effect::Permit)
                    .with_obligation(Effect::Permit, audit(10)),
                PolicyRule::unconditional("r2", Effect::Permit)
                    .with_obligation(Effect::Permit, audit(99)),
            ],
        );
        let fx = evaluate_policies_effects(&[p], CombiningAlg::PermitOverrides, &dba());
        assert_eq!(fx.obligations.len(), 1);
        assert_eq!(fx.obligations[0].deadline, 10); // first occurrence wins
    }

    #[test]
    fn penalty_is_max_over_contributing_deny_rules() {
        let p = Policy::new(
            "p",
            vec![
                PolicyRule::unconditional("d1", Effect::Deny).with_penalty(3),
                PolicyRule::unconditional("d2", Effect::Deny).with_penalty(7),
                // A permit rule's penalty never contributes to a Deny.
                PolicyRule::unconditional("perm", Effect::Permit).with_penalty(100),
            ],
        );
        let fx = evaluate_policies_effects(&[p], CombiningAlg::DenyOverrides, &dba());
        assert_eq!(fx.decision, Decision::Deny);
        assert_eq!(fx.penalty, 7);
    }

    #[test]
    fn indefinite_decisions_are_bare() {
        let p = Policy::new(
            "p",
            vec![PolicyRule::new(
                "needs-attr",
                Effect::Permit,
                Cond::eq(Category::Subject, "missing", 1i64),
            )
            .with_obligation(Effect::Permit, audit(1))
            .with_penalty(9)],
        );
        let fx = evaluate_policies_effects(&[p], CombiningAlg::DenyOverrides, &Request::new());
        assert_eq!(fx.decision, Decision::Indeterminate);
        assert!(fx.is_bare());
    }

    #[test]
    fn decision_matches_plain_kernel() {
        let p = Policy::new(
            "p",
            vec![PolicyRule::unconditional("d", Effect::Deny).with_penalty(4)],
        );
        let req = dba();
        let fx =
            evaluate_policies_effects(std::slice::from_ref(&p), CombiningAlg::DenyOverrides, &req);
        assert_eq!(
            fx.decision,
            evaluate_policies(std::slice::from_ref(&p), CombiningAlg::DenyOverrides, &req)
        );
        assert_eq!(fx.penalty, 4);
    }
}
