//! The policy model: targets, conditions, rules, policies, and policy sets
//! with XACML-style combining algorithms.

use crate::attr::{AttrValue, Category, Request};
use crate::obligation::{Obligation, ObligationSpec};
use std::fmt;

/// The effect of a rule.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Effect {
    /// Grant the request.
    Permit,
    /// Refuse the request.
    Deny,
}

impl Effect {
    /// The opposite effect.
    pub fn negate(self) -> Effect {
        match self {
            Effect::Permit => Effect::Deny,
            Effect::Deny => Effect::Permit,
        }
    }
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Effect::Permit => "permit",
            Effect::Deny => "deny",
        })
    }
}

/// An access decision.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Decision {
    /// The request is granted.
    Permit,
    /// The request is refused.
    Deny,
    /// No rule applies.
    NotApplicable,
    /// Evaluation failed (e.g. a referenced attribute is missing).
    Indeterminate,
}

impl From<Effect> for Decision {
    fn from(e: Effect) -> Decision {
        match e {
            Effect::Permit => Decision::Permit,
            Effect::Deny => Decision::Deny,
        }
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Decision::Permit => "Permit",
            Decision::Deny => "Deny",
            Decision::NotApplicable => "NotApplicable",
            Decision::Indeterminate => "Indeterminate",
        })
    }
}

/// Comparison operators in conditions.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CondOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than (integers).
    Lt,
    /// At-most (integers).
    Le,
    /// Greater-than (integers).
    Gt,
    /// At-least (integers).
    Ge,
}

impl CondOp {
    /// Concrete syntax.
    pub fn token(self) -> &'static str {
        match self {
            CondOp::Eq => "=",
            CondOp::Ne => "!=",
            CondOp::Lt => "<",
            CondOp::Le => "<=",
            CondOp::Gt => ">",
            CondOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CondOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// A condition expression over request attributes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Cond {
    /// Compares the attribute `category.name` with a constant.
    Cmp {
        /// Attribute category.
        category: Category,
        /// Attribute name.
        attr: String,
        /// Operator.
        op: CondOp,
        /// Right-hand constant.
        value: AttrValue,
    },
    /// The attribute is one of the listed values.
    In {
        /// Attribute category.
        category: Category,
        /// Attribute name.
        attr: String,
        /// Accepted values.
        values: Vec<AttrValue>,
    },
    /// Conjunction.
    And(Vec<Cond>),
    /// Disjunction.
    Or(Vec<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

impl Cond {
    /// Equality shorthand.
    pub fn eq(category: Category, attr: &str, value: impl Into<AttrValue>) -> Cond {
        Cond::Cmp {
            category,
            attr: attr.to_owned(),
            op: CondOp::Eq,
            value: value.into(),
        }
    }

    /// Comparison shorthand.
    pub fn cmp(category: Category, attr: &str, op: CondOp, value: impl Into<AttrValue>) -> Cond {
        Cond::Cmp {
            category,
            attr: attr.to_owned(),
            op,
            value: value.into(),
        }
    }

    /// Evaluates against a request. `None` means the condition references a
    /// missing attribute or compares incomparable values (Indeterminate).
    pub fn eval(&self, request: &Request) -> Option<bool> {
        match self {
            Cond::Cmp {
                category,
                attr,
                op,
                value,
            } => {
                let actual = request.get(*category, attr)?;
                compare(actual, *op, value)
            }
            Cond::In {
                category,
                attr,
                values,
            } => {
                let actual = request.get(*category, attr)?;
                Some(values.contains(actual))
            }
            Cond::And(cs) => {
                let mut all = true;
                for c in cs {
                    match c.eval(request) {
                        Some(true) => {}
                        Some(false) => return Some(false),
                        None => all = false, // keep scanning for a definite false
                    }
                }
                if all {
                    Some(true)
                } else {
                    None
                }
            }
            Cond::Or(cs) => {
                let mut any_unknown = false;
                for c in cs {
                    match c.eval(request) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => any_unknown = true,
                    }
                }
                if any_unknown {
                    None
                } else {
                    Some(false)
                }
            }
            Cond::Not(c) => c.eval(request).map(|b| !b),
        }
    }

    /// The attributes referenced by the condition.
    pub fn referenced(&self) -> Vec<(Category, String)> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs(&self, out: &mut Vec<(Category, String)>) {
        match self {
            Cond::Cmp { category, attr, .. } | Cond::In { category, attr, .. } => {
                let key = (*category, attr.clone());
                if !out.contains(&key) {
                    out.push(key);
                }
            }
            Cond::And(cs) | Cond::Or(cs) => {
                for c in cs {
                    c.collect_refs(out);
                }
            }
            Cond::Not(c) => c.collect_refs(out),
        }
    }
}

fn compare(actual: &AttrValue, op: CondOp, value: &AttrValue) -> Option<bool> {
    use std::cmp::Ordering;
    let ord = match (actual, value) {
        (AttrValue::Int(a), AttrValue::Int(b)) => a.cmp(b),
        (AttrValue::Str(a), AttrValue::Str(b)) => a.cmp(b),
        (AttrValue::Bool(a), AttrValue::Bool(b)) => a.cmp(b),
        _ => return None,
    };
    Some(match op {
        CondOp::Eq => ord == Ordering::Equal,
        CondOp::Ne => ord != Ordering::Equal,
        CondOp::Lt => ord == Ordering::Less,
        CondOp::Le => ord != Ordering::Greater,
        CondOp::Gt => ord == Ordering::Greater,
        CondOp::Ge => ord != Ordering::Less,
    })
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Cmp {
                category,
                attr,
                op,
                value,
            } => {
                write!(f, "{category}.{attr} {op} {value}")
            }
            Cond::In {
                category,
                attr,
                values,
            } => {
                write!(f, "{category}.{attr} in [")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Cond::And(cs) => join(f, cs, " and "),
            Cond::Or(cs) => join(f, cs, " or "),
            Cond::Not(c) => write!(f, "not ({c})"),
        }
    }
}

fn join(f: &mut fmt::Formatter<'_>, cs: &[Cond], sep: &str) -> fmt::Result {
    write!(f, "(")?;
    for (i, c) in cs.iter().enumerate() {
        if i > 0 {
            f.write_str(sep)?;
        }
        write!(f, "{c}")?;
    }
    write!(f, ")")
}

/// A policy rule: an effect guarded by a condition, optionally annotated
/// with obligations and a penalty (see [`crate::evaluate_policies_effects`]
/// for how annotations attach to decisions).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PolicyRule {
    /// Identifier (unique within its policy).
    pub id: String,
    /// Effect when the rule applies.
    pub effect: Effect,
    /// Applicability condition; `None` means the rule always applies.
    pub condition: Option<Cond>,
    /// Obligations issued when this rule contributes to the decision.
    pub obligations: Vec<ObligationSpec>,
    /// Sanction for acting against this rule's Deny, if quantified.
    pub penalty: Option<u32>,
}

impl PolicyRule {
    /// A rule with a condition.
    pub fn new(id: &str, effect: Effect, condition: Cond) -> PolicyRule {
        PolicyRule {
            id: id.to_owned(),
            effect,
            condition: Some(condition),
            obligations: Vec::new(),
            penalty: None,
        }
    }

    /// An unconditional rule.
    pub fn unconditional(id: &str, effect: Effect) -> PolicyRule {
        PolicyRule {
            id: id.to_owned(),
            effect,
            condition: None,
            obligations: Vec::new(),
            penalty: None,
        }
    }

    /// Attaches an obligation fulfilled when the final decision matches
    /// `on` (builder style).
    pub fn with_obligation(mut self, on: Effect, obligation: Obligation) -> PolicyRule {
        self.obligations.push(ObligationSpec::new(on, obligation));
        self
    }

    /// Sets the penalty annotation (builder style).
    pub fn with_penalty(mut self, penalty: u32) -> PolicyRule {
        self.penalty = Some(penalty);
        self
    }

    /// Evaluates the rule: its effect if the condition holds,
    /// `NotApplicable` if it does not, `Indeterminate` on evaluation error.
    pub fn evaluate(&self, request: &Request) -> Decision {
        match &self.condition {
            None => self.effect.into(),
            Some(c) => match c.eval(request) {
                Some(true) => self.effect.into(),
                Some(false) => Decision::NotApplicable,
                None => Decision::Indeterminate,
            },
        }
    }
}

impl fmt::Display for PolicyRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.condition {
            Some(c) => write!(f, "[{}] {} if {}", self.id, self.effect, c)?,
            None => write!(f, "[{}] {}", self.id, self.effect)?,
        }
        for spec in &self.obligations {
            write!(f, " (on {}: {})", spec.on, spec.obligation)?;
        }
        if let Some(p) = self.penalty {
            write!(f, " penalty {p}")?;
        }
        Ok(())
    }
}

/// XACML-style combining algorithms.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CombiningAlg {
    /// Any Deny wins over any Permit.
    DenyOverrides,
    /// Any Permit wins over any Deny.
    PermitOverrides,
    /// The first applicable rule decides.
    FirstApplicable,
}

impl CombiningAlg {
    /// Combines a sequence of decisions.
    pub fn combine(self, decisions: impl IntoIterator<Item = Decision>) -> Decision {
        let mut saw_permit = false;
        let mut saw_deny = false;
        let mut saw_indeterminate = false;
        for d in decisions {
            match d {
                Decision::Permit => {
                    if self == CombiningAlg::FirstApplicable {
                        return Decision::Permit;
                    }
                    saw_permit = true;
                }
                Decision::Deny => {
                    if self == CombiningAlg::FirstApplicable {
                        return Decision::Deny;
                    }
                    saw_deny = true;
                }
                Decision::Indeterminate => saw_indeterminate = true,
                Decision::NotApplicable => {}
            }
        }
        match self {
            CombiningAlg::DenyOverrides => {
                if saw_deny {
                    Decision::Deny
                } else if saw_indeterminate {
                    Decision::Indeterminate
                } else if saw_permit {
                    Decision::Permit
                } else {
                    Decision::NotApplicable
                }
            }
            CombiningAlg::PermitOverrides => {
                if saw_permit {
                    Decision::Permit
                } else if saw_indeterminate {
                    Decision::Indeterminate
                } else if saw_deny {
                    Decision::Deny
                } else {
                    Decision::NotApplicable
                }
            }
            CombiningAlg::FirstApplicable => {
                if saw_indeterminate {
                    Decision::Indeterminate
                } else {
                    Decision::NotApplicable
                }
            }
        }
    }
}

/// A policy: rules plus a combining algorithm, optionally annotated with
/// policy-level obligations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Policy {
    /// Identifier.
    pub id: String,
    /// Rules, in order.
    pub rules: Vec<PolicyRule>,
    /// How rule decisions are combined.
    pub combining: CombiningAlg,
    /// Obligations issued when this policy contributes to the decision.
    pub obligations: Vec<ObligationSpec>,
}

impl Policy {
    /// A policy with deny-overrides combining.
    pub fn new(id: &str, rules: Vec<PolicyRule>) -> Policy {
        Policy {
            id: id.to_owned(),
            rules,
            combining: CombiningAlg::DenyOverrides,
            obligations: Vec::new(),
        }
    }

    /// Sets the combining algorithm.
    pub fn with_combining(mut self, alg: CombiningAlg) -> Policy {
        self.combining = alg;
        self
    }

    /// Attaches a policy-level obligation fulfilled when the final decision
    /// matches `on` (builder style).
    pub fn with_obligation(mut self, on: Effect, obligation: Obligation) -> Policy {
        self.obligations.push(ObligationSpec::new(on, obligation));
        self
    }

    /// Evaluates the policy against a request.
    pub fn evaluate(&self, request: &Request) -> Decision {
        self.combining
            .combine(self.rules.iter().map(|r| r.evaluate(request)))
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "policy {} ({:?}):", self.id, self.combining)?;
        for r in &self.rules {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dba_read() -> Request {
        Request::new()
            .subject("role", "dba")
            .action("action-id", "read")
    }

    #[test]
    fn rule_evaluation() {
        let r = PolicyRule::new(
            "r1",
            Effect::Permit,
            Cond::And(vec![
                Cond::eq(Category::Subject, "role", "dba"),
                Cond::eq(Category::Action, "action-id", "read"),
            ]),
        );
        assert_eq!(r.evaluate(&dba_read()), Decision::Permit);
        let other = Request::new()
            .subject("role", "intern")
            .action("action-id", "read");
        assert_eq!(r.evaluate(&other), Decision::NotApplicable);
        // Missing attribute → Indeterminate.
        let empty = Request::new();
        assert_eq!(r.evaluate(&empty), Decision::Indeterminate);
    }

    #[test]
    fn numeric_comparisons() {
        let r = PolicyRule::new(
            "age",
            Effect::Deny,
            Cond::cmp(Category::Subject, "age", CondOp::Lt, 18i64),
        );
        assert_eq!(
            r.evaluate(&Request::new().subject("age", 15i64)),
            Decision::Deny
        );
        assert_eq!(
            r.evaluate(&Request::new().subject("age", 30i64)),
            Decision::NotApplicable
        );
        // Type mismatch → Indeterminate.
        assert_eq!(
            r.evaluate(&Request::new().subject("age", "old")),
            Decision::Indeterminate
        );
    }

    #[test]
    fn in_and_boolean_connectives() {
        let c = Cond::Or(vec![
            Cond::In {
                category: Category::Subject,
                attr: "role".into(),
                values: vec!["dba".into(), "admin".into()],
            },
            Cond::Not(Box::new(Cond::eq(Category::Environment, "lockdown", true))),
        ]);
        let r1 = Request::new()
            .subject("role", "admin")
            .environment("lockdown", true);
        assert_eq!(c.eval(&r1), Some(true));
        let r2 = Request::new()
            .subject("role", "guest")
            .environment("lockdown", true);
        assert_eq!(c.eval(&r2), Some(false));
    }

    #[test]
    fn and_short_circuits_definite_false_over_unknown() {
        let c = Cond::And(vec![
            Cond::eq(Category::Subject, "missing", 1i64),
            Cond::eq(Category::Subject, "role", "nobody"),
        ]);
        // role present and false → definite false despite missing attr.
        let r = Request::new().subject("role", "dba");
        assert_eq!(c.eval(&r), Some(false));
    }

    #[test]
    fn combining_algorithms() {
        use Decision::*;
        let ds = [NotApplicable, Permit, Deny];
        assert_eq!(CombiningAlg::DenyOverrides.combine(ds), Deny);
        assert_eq!(CombiningAlg::PermitOverrides.combine(ds), Permit);
        assert_eq!(CombiningAlg::FirstApplicable.combine(ds), Permit);
        assert_eq!(
            CombiningAlg::DenyOverrides.combine([NotApplicable]),
            NotApplicable
        );
        assert_eq!(
            CombiningAlg::DenyOverrides.combine([Permit, Indeterminate]),
            Indeterminate
        );
        assert_eq!(
            CombiningAlg::PermitOverrides.combine([Deny, Indeterminate]),
            Indeterminate
        );
        assert_eq!(
            CombiningAlg::FirstApplicable.combine([Indeterminate, Permit]),
            Permit
        );
    }

    #[test]
    fn policy_combines_rules() {
        let p = Policy::new(
            "p",
            vec![
                PolicyRule::new(
                    "allow-dba",
                    Effect::Permit,
                    Cond::eq(Category::Subject, "role", "dba"),
                ),
                PolicyRule::new(
                    "deny-write",
                    Effect::Deny,
                    Cond::eq(Category::Action, "action-id", "write"),
                ),
            ],
        );
        assert_eq!(p.evaluate(&dba_read()), Decision::Permit);
        let w = Request::new()
            .subject("role", "dba")
            .action("action-id", "write");
        assert_eq!(p.evaluate(&w), Decision::Deny);
    }

    #[test]
    fn referenced_attributes_are_collected() {
        let c = Cond::And(vec![
            Cond::eq(Category::Subject, "role", "dba"),
            Cond::eq(Category::Subject, "role", "admin"),
            Cond::eq(Category::Action, "action-id", "read"),
        ]);
        assert_eq!(c.referenced().len(), 2);
    }

    #[test]
    fn display_forms() {
        let r = PolicyRule::new(
            "r",
            Effect::Permit,
            Cond::eq(Category::Subject, "role", "dba"),
        );
        assert_eq!(r.to_string(), "[r] permit if subject.role = dba");
        let u = PolicyRule::unconditional("d", Effect::Deny);
        assert_eq!(u.to_string(), "[d] deny");
    }
}
