//! # agenp-policy — attribute-based policies for AGENP
//!
//! The conventional policy-based-management substrate the AGENP architecture
//! builds on (paper §III): an XACML-style attribute/request model, policy
//! rules with effects and conditions, combining algorithms, a Policy
//! Decision Point with decision monitoring, a Policy Enforcement Point, a
//! versioned policy repository, the Policy Checking Point's quality metrics
//! (consistency, relevance, minimality, completeness \[14\]), and bridges to
//! the symbolic layer (requests as ASP context programs, policies as
//! strings of a canonical policy language).
//!
//! ```
//! use agenp_policy::{Category, Cond, Decision, Effect, Pdp, Policy, PolicyRepository,
//!                    PolicyRule, Request};
//!
//! let mut repo = PolicyRepository::new();
//! repo.add(Policy::new("p", vec![PolicyRule::new(
//!     "allow-dba", Effect::Permit, Cond::eq(Category::Subject, "role", "dba"),
//! )]));
//! let mut pdp = Pdp::default();
//! let d = pdp.decide(&repo, &Request::new().subject("role", "dba"));
//! assert_eq!(d, Decision::Permit);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attr;
mod bridge;
mod ledger;
mod minimize;
mod model;
mod obligation;
mod pdp;
mod quality;

pub use attr::{AttrValue, Category, Request};
pub use bridge::{
    attr_value_to_term, obligation_to_atom, obligations_to_program, parse_value,
    request_to_context, rule_from_text, rule_to_text, PolicyTextError,
};
pub use ledger::{
    ComplianceAdvice, ComplianceEvaluator, LedgerEntry, ObligationLedger, ObligationStatus,
};
pub use minimize::minimize_policies;
pub use model::{CombiningAlg, Cond, CondOp, Decision, Effect, Policy, PolicyRule};
pub use obligation::{evaluate_policies_effects, DecisionEffects, Obligation, ObligationSpec};
pub use pdp::{evaluate_policies, DecisionRecord, Enforcement, Pdp, Pep, PolicyRepository};
pub use quality::{Conflict, QualityChecker, QualityReport, ResolutionStrategy};
