//! PEP-side obligation tracking and penalty-aware compliance.
//!
//! [`ObligationLedger`] records every obligation a decision issued, tracks
//! discharge against logical-time deadlines, and accrues breach penalties
//! on expiry. [`ComplianceEvaluator`] is the agent-facing half: before
//! acting, an agent weighs the utility of the action against the sanction
//! for defying a Deny and the breach exposure of the obligations a Permit
//! carries, per "Autonomous Agents and Policy Compliance: A Framework for
//! Reasoning About Penalties".
//!
//! The ledger runs on a caller-advanced logical clock (no wall-clock
//! reads), so it is deterministic inside the chaos simulation and the
//! relearn-while-serving bench.

use crate::model::Decision;
use crate::obligation::{DecisionEffects, Obligation};
use std::fmt;

/// Lifecycle of one ledger entry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ObligationStatus {
    /// Issued, not yet discharged, deadline not passed.
    Pending,
    /// Performed before the deadline.
    Discharged,
    /// Deadline passed undischarged; penalty accrued.
    Expired,
}

impl fmt::Display for ObligationStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ObligationStatus::Pending => "pending",
            ObligationStatus::Discharged => "discharged",
            ObligationStatus::Expired => "expired",
        })
    }
}

/// One tracked obligation instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LedgerEntry {
    /// The obligation as issued.
    pub obligation: Obligation,
    /// Logical tick the decision issued it.
    pub issued_at: u64,
    /// Tick by which it must be discharged (`issued_at + deadline`,
    /// saturating).
    pub due_at: u64,
    /// Current status.
    pub status: ObligationStatus,
}

/// The PEP's obligation book: issue, discharge, expire, and the running
/// penalty total.
#[derive(Clone, Debug, Default)]
pub struct ObligationLedger {
    entries: Vec<LedgerEntry>,
    now: u64,
    penalties_accrued: u64,
    discharged: u64,
    expired: u64,
}

impl ObligationLedger {
    /// An empty ledger at tick 0.
    pub fn new() -> ObligationLedger {
        ObligationLedger::default()
    }

    /// The ledger's current logical tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Records every obligation of a decision at the current tick.
    /// Duplicate ids are tracked as separate instances: each decision that
    /// issues an obligation creates a fresh duty.
    pub fn record(&mut self, effects: &DecisionEffects) {
        for ob in &effects.obligations {
            self.entries.push(LedgerEntry {
                obligation: ob.clone(),
                issued_at: self.now,
                due_at: self.now.saturating_add(ob.deadline),
                status: ObligationStatus::Pending,
            });
        }
        if agenp_obs::enabled() && !effects.obligations.is_empty() {
            agenp_obs::registry()
                .counter("policy.ledger.issued")
                .add(effects.obligations.len() as u64);
        }
    }

    /// Discharges the oldest pending instance of `id`; true if one existed.
    pub fn discharge(&mut self, id: &str) -> bool {
        let entry = self
            .entries
            .iter_mut()
            .find(|e| e.status == ObligationStatus::Pending && e.obligation.id == id);
        match entry {
            Some(e) => {
                e.status = ObligationStatus::Discharged;
                self.discharged += 1;
                if agenp_obs::enabled() {
                    agenp_obs::registry()
                        .counter("policy.ledger.discharged")
                        .incr();
                }
                true
            }
            None => false,
        }
    }

    /// Advances the logical clock, expiring every pending entry whose
    /// deadline has passed and accruing its penalty. Returns the number of
    /// entries that expired. The clock never moves backwards.
    pub fn advance(&mut self, to: u64) -> usize {
        self.now = self.now.max(to);
        let mut newly_expired = 0;
        for e in &mut self.entries {
            if e.status == ObligationStatus::Pending && e.due_at < self.now {
                e.status = ObligationStatus::Expired;
                self.penalties_accrued += u64::from(e.obligation.penalty);
                newly_expired += 1;
            }
        }
        self.expired += newly_expired as u64;
        if agenp_obs::enabled() && newly_expired > 0 {
            agenp_obs::registry()
                .counter("policy.ledger.expired")
                .add(newly_expired as u64);
        }
        newly_expired
    }

    /// Entries still pending, oldest first.
    pub fn pending(&self) -> impl Iterator<Item = &LedgerEntry> {
        self.entries
            .iter()
            .filter(|e| e.status == ObligationStatus::Pending)
    }

    /// All entries, issue order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Total penalty accrued from expired obligations.
    pub fn penalties_accrued(&self) -> u64 {
        self.penalties_accrued
    }

    /// Count of discharged entries.
    pub fn discharged_count(&self) -> u64 {
        self.discharged
    }

    /// Count of expired entries.
    pub fn expired_count(&self) -> u64 {
        self.expired
    }

    /// Drops discharged and expired entries, keeping the ledger bounded
    /// under sustained traffic (counters are unaffected).
    pub fn compact(&mut self) {
        self.entries
            .retain(|e| e.status == ObligationStatus::Pending);
    }
}

/// What the compliance evaluator advises an agent to do.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ComplianceAdvice {
    /// Act: the decision permits it. Carries the obligations the agent
    /// must then discharge.
    Proceed(Vec<Obligation>),
    /// Do not act: the decision denies it and the sanction outweighs the
    /// utility (or the evaluator is strict).
    Refrain {
        /// The sanction that deterred the action.
        penalty: u32,
    },
    /// Act despite a Deny: the utility exceeds the scaled sanction. The
    /// agent knowingly accepts `penalty`.
    Defy {
        /// The sanction the agent accepts by acting.
        penalty: u32,
    },
    /// No definite decision: deny-biased refusal pending escalation.
    Escalate,
}

/// Penalty-aware compliance: weighs action utility against sanctions.
///
/// `risk_aversion` scales every sanction before comparison: an agent with
/// risk aversion 2 treats a penalty of 5 as a cost of 10. `strict` agents
/// never defy — a Deny always refrains regardless of utility.
#[derive(Clone, Copy, Debug)]
pub struct ComplianceEvaluator {
    /// Multiplier applied to sanctions before weighing them (≥ 1 is
    /// cautious; 0 ignores penalties entirely).
    pub risk_aversion: u32,
    /// If true, a Deny is always complied with.
    pub strict: bool,
}

impl Default for ComplianceEvaluator {
    fn default() -> ComplianceEvaluator {
        ComplianceEvaluator {
            risk_aversion: 1,
            strict: false,
        }
    }
}

impl ComplianceEvaluator {
    /// A strict evaluator (never defies).
    pub fn strict() -> ComplianceEvaluator {
        ComplianceEvaluator {
            risk_aversion: 1,
            strict: true,
        }
    }

    /// Advises on acting given the decision's effects and the agent's
    /// utility for performing the action.
    pub fn advise(&self, effects: &DecisionEffects, utility: u64) -> ComplianceAdvice {
        match effects.decision {
            Decision::Permit => ComplianceAdvice::Proceed(effects.obligations.clone()),
            Decision::Deny => {
                let cost = u64::from(effects.penalty) * u64::from(self.risk_aversion);
                if !self.strict && utility > cost && effects.penalty > 0 {
                    ComplianceAdvice::Defy {
                        penalty: effects.penalty,
                    }
                } else {
                    ComplianceAdvice::Refrain {
                        penalty: effects.penalty,
                    }
                }
            }
            Decision::NotApplicable | Decision::Indeterminate => ComplianceAdvice::Escalate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Decision;

    fn ob(id: &str, deadline: u64, penalty: u32) -> Obligation {
        Obligation::new(id, "act", deadline).with_penalty(penalty)
    }

    fn permit_with(obs: Vec<Obligation>) -> DecisionEffects {
        DecisionEffects {
            decision: Decision::Permit,
            obligations: obs,
            penalty: 0,
        }
    }

    #[test]
    fn ledger_discharge_before_deadline() {
        let mut l = ObligationLedger::new();
        l.record(&permit_with(vec![ob("audit", 5, 3)]));
        assert_eq!(l.pending().count(), 1);
        assert!(l.discharge("audit"));
        assert!(!l.discharge("audit")); // nothing pending any more
        assert_eq!(l.advance(100), 0);
        assert_eq!(l.penalties_accrued(), 0);
        assert_eq!(l.discharged_count(), 1);
    }

    #[test]
    fn ledger_expiry_accrues_penalty() {
        let mut l = ObligationLedger::new();
        l.record(&permit_with(vec![ob("audit", 5, 3), ob("notify", 50, 7)]));
        // Deadline is inclusive: due_at == now is still dischargeable.
        assert_eq!(l.advance(5), 0);
        assert_eq!(l.advance(6), 1);
        assert_eq!(l.penalties_accrued(), 3);
        assert_eq!(l.expired_count(), 1);
        assert_eq!(l.pending().count(), 1);
        assert!(l.discharge("notify"));
        assert_eq!(l.advance(1_000), 0);
        assert_eq!(l.penalties_accrued(), 3);
    }

    #[test]
    fn ledger_tracks_duplicate_ids_as_instances() {
        let mut l = ObligationLedger::new();
        l.record(&permit_with(vec![ob("audit", 5, 1)]));
        l.advance(2);
        l.record(&permit_with(vec![ob("audit", 5, 1)]));
        assert_eq!(l.pending().count(), 2);
        assert!(l.discharge("audit")); // oldest instance first
        assert_eq!(l.entries()[0].status, ObligationStatus::Discharged);
        assert_eq!(l.entries()[1].status, ObligationStatus::Pending);
        assert_eq!(l.entries()[1].issued_at, 2);
    }

    #[test]
    fn ledger_clock_is_monotone_and_compacts() {
        let mut l = ObligationLedger::new();
        l.record(&permit_with(vec![ob("a", 1, 2)]));
        l.advance(10);
        l.advance(3); // ignored: never backwards
        assert_eq!(l.now(), 10);
        l.record(&permit_with(vec![ob("b", 100, 1)]));
        l.compact();
        assert_eq!(l.entries().len(), 1);
        assert_eq!(l.entries()[0].obligation.id, "b");
        assert_eq!(l.expired_count(), 1); // counters survive compaction
    }

    #[test]
    fn compliance_permit_proceeds_with_obligations() {
        let ev = ComplianceEvaluator::default();
        let fx = permit_with(vec![ob("audit", 5, 3)]);
        assert_eq!(
            ev.advise(&fx, 10),
            ComplianceAdvice::Proceed(vec![ob("audit", 5, 3)])
        );
    }

    #[test]
    fn compliance_weighs_penalty_against_utility() {
        let deny = DecisionEffects {
            decision: Decision::Deny,
            obligations: vec![],
            penalty: 5,
        };
        let ev = ComplianceEvaluator::default();
        assert_eq!(
            ev.advise(&deny, 4),
            ComplianceAdvice::Refrain { penalty: 5 }
        );
        assert_eq!(ev.advise(&deny, 6), ComplianceAdvice::Defy { penalty: 5 });
        // Risk aversion scales the sanction.
        let cautious = ComplianceEvaluator {
            risk_aversion: 3,
            strict: false,
        };
        assert_eq!(
            cautious.advise(&deny, 14),
            ComplianceAdvice::Refrain { penalty: 5 }
        );
        // Strict agents never defy.
        assert_eq!(
            ComplianceEvaluator::strict().advise(&deny, 1_000),
            ComplianceAdvice::Refrain { penalty: 5 }
        );
        // A zero-penalty Deny is still complied with: defiance is only
        // rational against a quantified sanction.
        let free = DecisionEffects::bare(Decision::Deny);
        assert_eq!(
            ev.advise(&free, 1_000),
            ComplianceAdvice::Refrain { penalty: 0 }
        );
    }

    #[test]
    fn compliance_escalates_indefinite_decisions() {
        let ev = ComplianceEvaluator::default();
        for d in [Decision::NotApplicable, Decision::Indeterminate] {
            assert_eq!(
                ev.advise(&DecisionEffects::bare(d), 10),
                ComplianceAdvice::Escalate
            );
        }
    }
}
