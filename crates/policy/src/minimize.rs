//! Policy-set minimization — enforcing the §V-A *minimality* requirement
//! ("the policy set does not include redundant policies") rather than just
//! measuring it: greedily remove rules whose removal changes no decision on
//! the request space of interest.

use crate::attr::Request;
use crate::model::{CombiningAlg, Decision, Policy};

/// Removes redundant rules from `policies` in place: a rule is redundant if
/// dropping it leaves every decision on `space` unchanged (under
/// deny-overrides combination across the set). Rules are considered in
/// reverse order so earlier (higher-priority) rules are preferred keepers.
/// Returns the removed `(policy_id, rule_id)` pairs.
pub fn minimize_policies(policies: &mut Vec<Policy>, space: &[Request]) -> Vec<(String, String)> {
    let baseline: Vec<Decision> = space.iter().map(|r| decide(policies, r)).collect();
    let mut removed = Vec::new();
    loop {
        let mut changed = false;
        // Candidate positions, last rule first.
        let positions: Vec<(usize, usize)> = policies
            .iter()
            .enumerate()
            .flat_map(|(pi, p)| (0..p.rules.len()).map(move |ri| (pi, ri)))
            .rev()
            .collect();
        for (pi, ri) in positions {
            let rule = policies[pi].rules[ri].clone();
            policies[pi].rules.remove(ri);
            let same = space
                .iter()
                .zip(&baseline)
                .all(|(r, base)| decide(policies, r) == *base);
            if same {
                removed.push((policies[pi].id.clone(), rule.id));
                changed = true;
                break; // restart scanning: indices shifted
            }
            policies[pi].rules.insert(ri, rule);
        }
        if !changed {
            break;
        }
    }
    // Drop now-empty policies.
    policies.retain(|p| !p.rules.is_empty());
    removed
}

fn decide(policies: &[Policy], request: &Request) -> Decision {
    CombiningAlg::DenyOverrides.combine(policies.iter().map(|p| p.evaluate(request)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Category;
    use crate::model::{Cond, Effect, PolicyRule};
    use crate::quality::QualityChecker;

    fn space() -> Vec<Request> {
        let mut out = Vec::new();
        for role in ["dba", "intern"] {
            for action in ["read", "write"] {
                out.push(
                    Request::new()
                        .subject("role", role)
                        .action("action-id", action),
                );
            }
        }
        out
    }

    #[test]
    fn duplicate_rules_are_removed() {
        let rule = PolicyRule::new(
            "allow-dba",
            Effect::Permit,
            Cond::eq(Category::Subject, "role", "dba"),
        );
        let dup = PolicyRule {
            id: "dup".into(),
            ..rule.clone()
        };
        let mut policies = vec![Policy::new("p", vec![rule, dup])];
        let removed = minimize_policies(&mut policies, &space());
        assert_eq!(removed.len(), 1);
        assert_eq!(policies[0].rules.len(), 1);
        // The earlier rule is the keeper.
        assert_eq!(policies[0].rules[0].id, "allow-dba");
    }

    #[test]
    fn subsumed_rules_are_removed() {
        // The specific rule is subsumed by the general one.
        let general = PolicyRule::new(
            "deny-writes",
            Effect::Deny,
            Cond::eq(Category::Action, "action-id", "write"),
        );
        let specific = PolicyRule::new(
            "deny-intern-writes",
            Effect::Deny,
            Cond::And(vec![
                Cond::eq(Category::Subject, "role", "intern"),
                Cond::eq(Category::Action, "action-id", "write"),
            ]),
        );
        let mut policies = vec![Policy::new("p", vec![general, specific])];
        let removed = minimize_policies(&mut policies, &space());
        assert_eq!(
            removed,
            vec![("p".to_string(), "deny-intern-writes".to_string())]
        );
    }

    #[test]
    fn necessary_rules_survive() {
        let mut policies = vec![Policy::new(
            "p",
            vec![
                PolicyRule::new(
                    "allow-dba",
                    Effect::Permit,
                    Cond::eq(Category::Subject, "role", "dba"),
                ),
                PolicyRule::new(
                    "deny-writes",
                    Effect::Deny,
                    Cond::eq(Category::Action, "action-id", "write"),
                ),
            ],
        )];
        let removed = minimize_policies(&mut policies, &space());
        assert!(removed.is_empty());
        assert_eq!(policies[0].rules.len(), 2);
    }

    #[test]
    fn minimized_sets_pass_the_quality_check() {
        let rule = PolicyRule::new(
            "allow-dba",
            Effect::Permit,
            Cond::eq(Category::Subject, "role", "dba"),
        );
        let dup = PolicyRule {
            id: "dup".into(),
            ..rule.clone()
        };
        let never = PolicyRule::new(
            "never",
            Effect::Deny,
            Cond::eq(Category::Subject, "role", "ghost"),
        );
        let mut policies = vec![Policy::new("p", vec![rule, dup, never])];
        minimize_policies(&mut policies, &space());
        let report = QualityChecker::new().assess(&policies, &space());
        assert!(report.redundant.is_empty(), "{report}");
        assert!(report.irrelevant.is_empty(), "{report}");
    }

    #[test]
    fn empty_policies_are_dropped() {
        let mut policies = vec![
            Policy::new(
                "only-dup",
                vec![PolicyRule::unconditional("a", Effect::Deny)],
            ),
            Policy::new("other", vec![PolicyRule::unconditional("b", Effect::Deny)]),
        ];
        let removed = minimize_policies(&mut policies, &space());
        assert_eq!(removed.len(), 1);
        assert_eq!(policies.len(), 1);
    }
}
