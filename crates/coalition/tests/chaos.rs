//! Determinism and invariant regression tests for the chaos fabric.
//!
//! The fabric's headline contract is reproducibility: a run is a pure
//! function of `(seed, scenario)`. These tests pin that down at a fleet
//! size small enough for CI (the 1,000-party runs live in the
//! `coalition` bench bin's `--smoke` mode) and assert the continuously
//! checked invariants hold across the whole scenario suite.

use agenp_coalition::sim::{run_scenario, run_scenario_with, RunConfig, Scenario};

const SEED: u64 = 42;
const FLEET: usize = 96;

/// Identical `(seed, scenario)` runs must be byte-identical: same trace
/// hash, same recorded trace lines, same counters, same served corpus.
#[test]
fn identical_seed_and_scenario_reproduce_byte_identical_traces() {
    for scenario in Scenario::all(FLEET) {
        let record = RunConfig { record_trace: true };
        let a = run_scenario_with(SEED, &scenario, record, None);
        let b = run_scenario_with(SEED, &scenario, record, None);
        assert_eq!(
            a.trace_hash, b.trace_hash,
            "{}: trace hash diverged across identical runs",
            scenario.name
        );
        let (ta, tb) = (a.trace.as_ref().unwrap(), b.trace.as_ref().unwrap());
        assert_eq!(
            ta.len(),
            tb.len(),
            "{}: trace length diverged",
            scenario.name
        );
        for (i, (la, lb)) in ta.iter().zip(tb).enumerate() {
            assert_eq!(la, lb, "{}: trace line {i} diverged", scenario.name);
        }
        assert_eq!(a.stats, b.stats, "{}: counters diverged", scenario.name);
        assert_eq!(a.head, b.head, "{}: final head diverged", scenario.name);
        assert_eq!(
            a.served, b.served,
            "{}: served corpus diverged",
            scenario.name
        );
    }
}

/// A different seed must actually change the run — otherwise the hash
/// proves nothing.
#[test]
fn different_seeds_produce_different_traces() {
    let scenario = Scenario::partition_storm(FLEET);
    let a = run_scenario(SEED, &scenario);
    let b = run_scenario(SEED + 1, &scenario);
    assert_ne!(
        a.trace_hash, b.trace_hash,
        "seed is not reaching the fabric"
    );
    assert_ne!(a.stats, b.stats, "chaos counters insensitive to the seed");
}

/// Recording the trace must not perturb the run: hashing is always on,
/// and the hash with recording enabled equals the hash without.
#[test]
fn trace_recording_does_not_perturb_the_run() {
    let scenario = Scenario::data_sharing(FLEET);
    let bare = run_scenario(SEED, &scenario);
    let recorded = run_scenario_with(SEED, &scenario, RunConfig { record_trace: true }, None);
    assert_eq!(bare.trace_hash, recorded.trace_hash);
    assert_eq!(bare.stats, recorded.stats);
    assert!(bare.trace.is_none());
    assert!(
        recorded.trace.as_ref().map(Vec::len).unwrap_or(0) > 0,
        "recording requested but no lines captured"
    );
}

/// Every scenario in the suite must complete with zero invariant
/// violations: no stale-epoch serves, deny-by-default while degraded,
/// bounded reconvergence after heals, monotone version adoption.
#[test]
fn all_scenarios_hold_every_invariant() {
    for scenario in Scenario::all(FLEET) {
        let report = run_scenario(SEED, &scenario);
        assert_eq!(
            report.invariant_violations, 0,
            "{}: violations {:?}",
            scenario.name, report.violations
        );
        assert!(report.ticks > 0, "{}: run never advanced", scenario.name);
        assert!(
            report.stats.decisions > 0,
            "{}: no decision traffic flowed",
            scenario.name
        );
    }
}

/// Chaos runs must agree with a never-faulted reference run on every
/// healthily-served decision (decision parity): faults may delay or deny,
/// but they must never flip a healthy answer.
#[test]
fn chaos_decisions_match_the_never_faulted_reference() {
    for scenario in Scenario::all(FLEET) {
        let reference = run_scenario(SEED, &scenario.reference());
        assert_eq!(
            reference.invariant_violations, 0,
            "{}: reference run is supposed to be fault-free",
            scenario.name
        );
        let chaos = run_scenario_with(
            SEED,
            &scenario,
            RunConfig::default(),
            Some(&reference.served),
        );
        assert_eq!(
            chaos.reference_mismatches, 0,
            "{}: healthy decisions diverged from the reference corpus",
            scenario.name
        );
        assert_eq!(chaos.invariant_violations, 0, "{}", scenario.name);
    }
}

/// The sampled refsem differential spot-check really runs inside chaos
/// runs (it is not vacuously skipped) and never fires a `refsem-parity`
/// violation — and folding it in leaves the trace hash byte-identical,
/// so replayability survives the differential loop.
#[test]
fn refsem_spot_checks_run_and_agree_without_perturbing_replay() {
    for scenario in Scenario::all(FLEET) {
        let a = run_scenario(SEED, &scenario);
        assert!(
            a.stats.refsem_spot_checks > 0,
            "{}: refsem spot-check never engaged",
            scenario.name
        );
        assert!(
            !a.violations.iter().any(|v| v.kind == "refsem-parity"),
            "{}: refsem reference disagreed: {:?}",
            scenario.name,
            a.violations
        );
        let b = run_scenario(SEED, &scenario);
        assert_eq!(a.trace_hash, b.trace_hash, "{}", scenario.name);
        assert_eq!(
            a.stats.refsem_spot_checks, b.stats.refsem_spot_checks,
            "{}",
            scenario.name
        );
    }
}

/// The crash-restart scenario must actually exercise the crash path —
/// parties go down, come back with state loss, and re-adopt the head —
/// and the partition storm must heal every partition it opens.
#[test]
fn scenarios_exercise_their_advertised_faults() {
    let crash = run_scenario(SEED, &Scenario::crash_restart(FLEET));
    assert!(crash.stats.crashes > 0, "no crashes injected");
    assert_eq!(
        crash.stats.crashes, crash.stats.restarts,
        "every crashed party must restart"
    );
    assert!(
        crash.stats.dropped_down > 0,
        "crashed parties never dropped mail"
    );

    let storm = run_scenario(SEED, &Scenario::partition_storm(FLEET));
    assert!(storm.stats.partitions > 0, "no partitions opened");
    assert_eq!(
        storm.stats.partitions, storm.stats.heals,
        "every partition must heal"
    );
    assert!(
        storm.stats.dropped_partition > 0,
        "partitions never cut a message"
    );

    let reground = run_scenario(SEED, &Scenario::mass_reground(FLEET));
    assert!(reground.stats.mass_refreshes > 0, "no mass-refresh fired");
    assert!(
        reground.stats.refresh_failures > 0,
        "degraded wave never failed a refresh"
    );
    assert!(
        reground.stats.degraded_publishes > 0,
        "deny-by-default parties never published a degraded snapshot"
    );
}
