//! Fault-injection suite for the supervised coalition fabric: deterministic
//! degradation under injected crashes, lost reports, slow parties,
//! corrupted contributions, and expired deadlines. Run directly with
//! `cargo test -p agenp-coalition --test faults`.

use agenp_asp::Deadline;
use agenp_coalition::federated::{self, ModelOffer};
use agenp_coalition::resilience::{Fault, FaultInjector, FaultPlan};
use agenp_coalition::{
    supervised_cav_learning, CasWiki, CoalitionConfig, CoalitionError, CoalitionOutcome,
    NodeOutcome,
};
use agenp_core::scenarios::cav;
use std::time::Duration;

const N_NODES: usize = 5;
const SAMPLES: usize = 40;

/// The acceptance fault plan: party 1 crashes permanently, party 2 loses
/// its first report (recovers on retry), party 3 is slow.
fn acceptance_plan() -> FaultPlan {
    FaultPlan::new()
        .with(Fault::Panic {
            node: 1,
            times: u32::MAX,
        })
        .with(Fault::DropReport { node: 2, times: 1 })
        .with(Fault::Slow {
            node: 3,
            delay: Duration::from_millis(20),
        })
}

/// An exactly-comparable summary of an outcome: per node, the name,
/// whether it succeeded, retries used, and the report numbers (accuracy
/// captured as raw bits so equality is bit-exact).
#[allow(clippy::type_complexity)]
fn summarize(outcome: &CoalitionOutcome) -> Vec<(String, bool, u32, Option<(usize, usize, u64)>)> {
    outcome
        .nodes
        .iter()
        .map(|o| {
            (
                o.name().to_owned(),
                o.is_ok(),
                o.retries(),
                o.report()
                    .map(|r| (r.local_examples, r.learned_rules, r.accuracy.to_bits())),
            )
        })
        .collect()
}

fn run(seed: u64) -> (CoalitionOutcome, CasWiki) {
    let wiki = CasWiki::new();
    let cfg = CoalitionConfig::new(N_NODES, SAMPLES, seed).quorum(4);
    let injector = FaultInjector::new(seed, acceptance_plan());
    let outcome = supervised_cav_learning(&cfg, &wiki, &injector)
        .expect("4 of 5 parties succeed, meeting the quorum");
    (outcome, wiki)
}

#[test]
fn faulty_coalition_degrades_gracefully_and_deterministically() {
    for seed in [7u64, 11, 13] {
        let (outcome, wiki) = run(seed);

        // Degraded but successful: the crashed party is reported, everyone
        // else delivered.
        assert!(outcome.degraded, "seed {seed}: one party is down");
        assert_eq!(outcome.successes(), 4, "seed {seed}");
        assert_eq!(outcome.reports().len(), 4, "seed {seed}");
        assert_eq!(outcome.quorum, 4);

        // Party 1 failed with the injected crash recorded.
        match &outcome.nodes[1] {
            NodeOutcome::Failed { name, reason } => {
                assert_eq!(name, "party-1");
                assert!(reason.contains("attempt"), "seed {seed}: reason {reason:?}");
            }
            other => panic!("seed {seed}: party-1 should fail, got {other:?}"),
        }

        // Party 2's dropped report cost exactly one retry, and the retry is
        // recorded in the outcome.
        assert_eq!(outcome.nodes[2].retries(), 1, "seed {seed}");
        assert_eq!(outcome.total_retries(), 1, "seed {seed}");

        // The slow party still delivers a real model.
        for r in outcome.reports() {
            assert!(r.learned_rules > 0, "seed {seed}: {}", r.name);
            assert!(r.accuracy > 0.8, "seed {seed}: {} {}", r.name, r.accuracy);
        }

        // Each successful party contributed exactly one batch — the
        // retried party did not double-contribute.
        assert_eq!(wiki.len(), 4 * SAMPLES, "seed {seed}");

        // A second identical run reproduces the outcome bit-for-bit.
        let (again, wiki_again) = run(seed);
        assert_eq!(summarize(&outcome), summarize(&again), "seed {seed}");
        assert_eq!(wiki.len(), wiki_again.len(), "seed {seed}");
    }
}

#[test]
fn quorum_not_met_is_a_typed_error_with_diagnostics() {
    let wiki = CasWiki::new();
    // Quorum of 5 cannot be met with party 1 permanently down.
    let cfg = CoalitionConfig::new(N_NODES, SAMPLES, 7).quorum(5);
    let injector = FaultInjector::new(7, acceptance_plan());
    let err = supervised_cav_learning(&cfg, &wiki, &injector)
        .expect_err("a permanently crashed party cannot meet a full quorum");
    let CoalitionError::QuorumNotMet {
        successes,
        quorum,
        nodes,
    } = err;
    assert_eq!(successes, 4);
    assert_eq!(quorum, 5);
    assert_eq!(nodes.len(), 5);
    assert!(!nodes[1].is_ok());
}

#[test]
fn corrupted_contributions_flip_validity_labels() {
    let wiki = CasWiki::new();
    let cfg = CoalitionConfig::new(2, 25, 3);
    let injector = FaultInjector::new(
        3,
        FaultPlan::new().with(Fault::CorruptContribution { node: 0 }),
    );
    let outcome =
        supervised_cav_learning(&cfg, &wiki, &injector).expect("corruption is silent, both run");
    assert!(!outcome.degraded);

    // Party 0's stored labels are the inverse of its true sample labels;
    // party 1's are untouched.
    let truth0 = cav::samples(25, 3);
    let stored0 = wiki.retrieve(|c| c == "party-0");
    assert_eq!(stored0.len(), truth0.len());
    for (c, s) in stored0.iter().zip(&truth0) {
        assert_eq!(c.valid, !s.accept, "party-0 labels must be flipped");
    }
    let truth1 = cav::samples(25, 3u64.wrapping_add(101));
    let stored1 = wiki.retrieve(|c| c == "party-1");
    assert_eq!(stored1.len(), truth1.len());
    for (c, s) in stored1.iter().zip(&truth1) {
        assert_eq!(c.valid, s.accept, "party-1 labels must be intact");
    }
}

#[test]
fn expired_deadline_fails_fast_without_panicking() {
    let wiki = CasWiki::new();
    let expired = Deadline::after(Duration::ZERO);

    // Quorum 0: the run "succeeds" with zero successes — fully degraded.
    let cfg = CoalitionConfig::new(3, 30, 5).quorum(0).deadline(expired);
    let outcome = supervised_cav_learning(&cfg, &wiki, &FaultInjector::none())
        .expect("quorum 0 is always met");
    assert!(outcome.degraded);
    assert_eq!(outcome.successes(), 0);
    for node in &outcome.nodes {
        match node {
            NodeOutcome::Failed { reason, .. } => {
                assert!(reason.contains("deadline"), "reason {reason:?}");
            }
            other => panic!("expected deadline failure, got {other:?}"),
        }
    }
    assert!(wiki.is_empty(), "no party got far enough to contribute");

    // Any positive quorum turns it into a typed error.
    let cfg = CoalitionConfig::new(3, 30, 5).quorum(1).deadline(expired);
    let err = supervised_cav_learning(&cfg, &wiki, &FaultInjector::none())
        .expect_err("nobody can beat an already-expired deadline");
    let CoalitionError::QuorumNotMet { successes, .. } = err;
    assert_eq!(successes, 0);
}

#[test]
fn unknown_governance_action_is_an_error_not_a_panic() {
    let offer = ModelOffer {
        src_trust: 3,
        remote_acc: 90,
        local_acc: 70,
        staleness: 0,
    };
    assert_eq!(
        federated::try_valid(offer, "teleport"),
        Err(federated::GovernanceError::UnknownAction(
            "teleport".to_owned()
        ))
    );
    // The infallible wrapper denies by default.
    assert!(!federated::valid(offer, "teleport"));
    assert!(federated::valid(offer, "adopt"));
}

#[test]
fn faulty_federation_is_deterministic_and_faultless_matches_baseline() {
    let gpm = federated::grammar(); // unconstrained GPM: adopt-everything
    let baseline = federated::simulate_federation(&gpm, 40, 9);
    let clean = federated::simulate_federation_with_faults(&gpm, 40, 9, &FaultInjector::none());
    assert_eq!(baseline.governed_final_acc, clean.governed_final_acc);
    assert_eq!(baseline.ungoverned_final_acc, clean.ungoverned_final_acc);
    assert_eq!(baseline.governed_adoptions, clean.governed_adoptions);

    // Corrupting a few rounds' accuracy claims yields a different but
    // still deterministic trajectory.
    let plan = FaultPlan::new()
        .with(Fault::CorruptContribution { node: 2 })
        .with(Fault::CorruptContribution { node: 5 });
    let injector = FaultInjector::new(9, plan);
    let faulty = federated::simulate_federation_with_faults(&gpm, 40, 9, &injector);
    let again = federated::simulate_federation_with_faults(&gpm, 40, 9, &injector);
    assert_eq!(faulty.governed_final_acc, again.governed_final_acc);
    assert_eq!(faulty.ungoverned_final_acc, again.ungoverned_final_acc);
    assert_eq!(faulty.governed_adoptions, again.governed_adoptions);
}
