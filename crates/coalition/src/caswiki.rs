//! CASWiki — the community-based shared policy knowledge base of Bertino et
//! al. [16] (paper §III-A-3): agents contribute policy experiences (policy
//! strings with the contexts they were valid or invalid under), and other
//! agents retrieve them — filtered by trust — to warm-start their own
//! learning. "Policies shared by different agents implicitly contain
//! knowledge learned from the application of policies in different
//! contexts."

use crate::resilience::{panic_message, FaultInjector};
use agenp_asp::Program;
use agenp_learn::Example;
use std::fmt;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread;

/// One contributed experience: a policy string, the context, and whether
/// the policy proved valid there.
#[derive(Clone, Debug)]
pub struct Contribution {
    /// Contributing party.
    pub contributor: String,
    /// The policy string.
    pub policy: String,
    /// The context it was observed under.
    pub context: Program,
    /// Whether the policy was valid in that context.
    pub valid: bool,
}

impl Contribution {
    /// Converts the contribution into a learning example, optionally soft
    /// (a penalty reflecting imperfect trust in the contributor).
    pub fn example(&self, penalty: Option<u32>) -> Example {
        let mut e = Example::in_context(self.policy.clone(), self.context.clone());
        if let Some(p) = penalty {
            e = e.with_penalty(p);
        }
        e
    }
}

/// A contributor failed to deliver its batch — its thread panicked midway.
/// The wiki stays consistent (writes are all-or-nothing per batch handed to
/// [`CasWiki::contribute_all`]); the failed batch is simply absent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContributionError {
    /// The contributor whose batch failed.
    pub contributor: String,
    /// Why it failed (the panic message).
    pub reason: String,
}

impl fmt::Display for ContributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "contribution from {} failed: {}",
            self.contributor, self.reason
        )
    }
}

impl std::error::Error for ContributionError {}

/// A deferred producer of one contributor's batch, run on its own thread by
/// [`CasWiki::contribute_concurrently`].
pub type ContributionProducer = Box<dyn FnOnce() -> Vec<Contribution> + Send>;

/// The shared, thread-safe knowledge base.
#[derive(Clone, Debug, Default)]
pub struct CasWiki {
    inner: Arc<RwLock<Vec<Contribution>>>,
}

impl CasWiki {
    /// An empty wiki.
    pub fn new() -> CasWiki {
        CasWiki::default()
    }

    // Contributions are independent rows, so a lock poisoned by a panicking
    // writer still holds consistent data; recover the guard instead of
    // propagating the poison (parking_lot semantics, which this used before).
    fn read(&self) -> RwLockReadGuard<'_, Vec<Contribution>> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, Vec<Contribution>> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Contributes one experience.
    pub fn contribute(&self, contribution: Contribution) {
        self.write().push(contribution);
    }

    /// Contributes a batch.
    pub fn contribute_all(&self, contributions: impl IntoIterator<Item = Contribution>) {
        self.write().extend(contributions);
    }

    /// Contributes a batch through a fault injector acting as the "link"
    /// from `node` to the wiki: when the injector corrupts that node, every
    /// contribution's validity flag is flipped in transit (the corrupted
    /// write the trust layer is meant to catch).
    pub fn contribute_all_via(
        &self,
        injector: &FaultInjector,
        node: usize,
        contributions: impl IntoIterator<Item = Contribution>,
    ) {
        let corrupt = injector.corrupts(node);
        self.contribute_all(contributions.into_iter().map(|mut c| {
            if corrupt {
                c.valid = !c.valid;
            }
            c
        }));
    }

    /// Runs each contributor's producer closure on its own thread and
    /// contributes the resulting batch, collecting one result per
    /// contributor in input order. A producer that panics yields a
    /// [`ContributionError`] (with the panic message as the reason) instead
    /// of poisoning the wiki or tearing down the caller; successful entries
    /// report how many contributions they stored.
    pub fn contribute_concurrently(
        &self,
        contributors: Vec<(String, ContributionProducer)>,
    ) -> Vec<Result<usize, ContributionError>> {
        thread::scope(|s| {
            let handles: Vec<_> = contributors
                .into_iter()
                .map(|(name, produce)| {
                    let wiki = self.clone();
                    let handle = s.spawn(move || {
                        let batch = produce();
                        let n = batch.len();
                        wiki.contribute_all(batch);
                        n
                    });
                    (name, handle)
                })
                .collect();
            handles
                .into_iter()
                .map(|(name, handle)| {
                    handle.join().map_err(|payload| ContributionError {
                        contributor: name,
                        reason: panic_message(payload.as_ref()),
                    })
                })
                .collect()
        })
    }

    /// Number of stored contributions.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// True if the wiki is empty.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// Retrieves contributions whose contributor passes `filter`.
    pub fn retrieve(&self, filter: impl Fn(&str) -> bool) -> Vec<Contribution> {
        self.read()
            .iter()
            .filter(|c| filter(&c.contributor))
            .cloned()
            .collect()
    }

    /// Retrieves everything.
    pub fn retrieve_all(&self) -> Vec<Contribution> {
        self.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contribution(who: &str, valid: bool) -> Contribution {
        Contribution {
            contributor: who.to_owned(),
            policy: "accept navigate".to_owned(),
            context: "loa(3).".parse().unwrap(),
            valid,
        }
    }

    #[test]
    fn contribute_and_filter() {
        let wiki = CasWiki::new();
        wiki.contribute(contribution("uk", true));
        wiki.contribute(contribution("us", false));
        wiki.contribute(contribution("untrusted", true));
        assert_eq!(wiki.len(), 3);
        let trusted = wiki.retrieve(|c| c != "untrusted");
        assert_eq!(trusted.len(), 2);
        assert_eq!(wiki.retrieve_all().len(), 3);
    }

    #[test]
    fn contributions_become_examples() {
        let c = contribution("uk", true);
        let hard = c.example(None);
        assert!(!hard.is_soft());
        let soft = c.example(Some(2));
        assert_eq!(soft.penalty, Some(2));
        assert_eq!(soft.text, "accept navigate");
    }

    #[test]
    fn wiki_is_shared_across_clones_and_threads() {
        let wiki = CasWiki::new();
        let results = wiki.contribute_concurrently(vec![
            (
                "bg".to_owned(),
                Box::new(|| (0..10).map(|_| contribution("bg", true)).collect()),
            ),
            (
                "fg".to_owned(),
                Box::new(|| (0..10).map(|_| contribution("fg", true)).collect()),
            ),
        ]);
        assert_eq!(results, vec![Ok(10), Ok(10)]);
        assert_eq!(wiki.len(), 20);
    }

    #[test]
    fn panicked_contributor_surfaces_as_error_not_panic() {
        let wiki = CasWiki::new();
        let results = wiki.contribute_concurrently(vec![
            (
                "steady".to_owned(),
                Box::new(|| vec![contribution("steady", true)]),
            ),
            (
                "flaky".to_owned(),
                Box::new(|| panic!("contributor process died")),
            ),
        ]);
        assert_eq!(results[0], Ok(1));
        assert_eq!(
            results[1],
            Err(ContributionError {
                contributor: "flaky".to_owned(),
                reason: "contributor process died".to_owned(),
            })
        );
        // Only the surviving contributor's batch landed.
        assert_eq!(wiki.len(), 1);
        assert_eq!(wiki.retrieve(|c| c == "flaky").len(), 0);
    }

    #[test]
    fn corrupting_link_flips_validity_in_transit() {
        use crate::resilience::{Fault, FaultPlan};
        let wiki = CasWiki::new();
        let injector = FaultInjector::new(
            1,
            FaultPlan::new().with(Fault::CorruptContribution { node: 0 }),
        );
        wiki.contribute_all_via(&injector, 0, vec![contribution("bad-link", true)]);
        wiki.contribute_all_via(&injector, 1, vec![contribution("good-link", true)]);
        let all = wiki.retrieve_all();
        assert!(!all[0].valid, "node 0's contribution must be corrupted");
        assert!(all[1].valid, "node 1's contribution must pass untouched");
    }
}
