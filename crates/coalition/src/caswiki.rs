//! CASWiki — the community-based shared policy knowledge base of Bertino et
//! al. [16] (paper §III-A-3): agents contribute policy experiences (policy
//! strings with the contexts they were valid or invalid under), and other
//! agents retrieve them — filtered by trust — to warm-start their own
//! learning. "Policies shared by different agents implicitly contain
//! knowledge learned from the application of policies in different
//! contexts."

use agenp_asp::Program;
use agenp_learn::Example;
use parking_lot::RwLock;
use std::sync::Arc;

/// One contributed experience: a policy string, the context, and whether
/// the policy proved valid there.
#[derive(Clone, Debug)]
pub struct Contribution {
    /// Contributing party.
    pub contributor: String,
    /// The policy string.
    pub policy: String,
    /// The context it was observed under.
    pub context: Program,
    /// Whether the policy was valid in that context.
    pub valid: bool,
}

impl Contribution {
    /// Converts the contribution into a learning example, optionally soft
    /// (a penalty reflecting imperfect trust in the contributor).
    pub fn example(&self, penalty: Option<u32>) -> Example {
        let mut e = Example::in_context(self.policy.clone(), self.context.clone());
        if let Some(p) = penalty {
            e = e.with_penalty(p);
        }
        e
    }
}

/// The shared, thread-safe knowledge base.
#[derive(Clone, Debug, Default)]
pub struct CasWiki {
    inner: Arc<RwLock<Vec<Contribution>>>,
}

impl CasWiki {
    /// An empty wiki.
    pub fn new() -> CasWiki {
        CasWiki::default()
    }

    /// Contributes one experience.
    pub fn contribute(&self, contribution: Contribution) {
        self.inner.write().push(contribution);
    }

    /// Contributes a batch.
    pub fn contribute_all(&self, contributions: impl IntoIterator<Item = Contribution>) {
        self.inner.write().extend(contributions);
    }

    /// Number of stored contributions.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True if the wiki is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Retrieves contributions whose contributor passes `filter`.
    pub fn retrieve(&self, filter: impl Fn(&str) -> bool) -> Vec<Contribution> {
        self.inner
            .read()
            .iter()
            .filter(|c| filter(&c.contributor))
            .cloned()
            .collect()
    }

    /// Retrieves everything.
    pub fn retrieve_all(&self) -> Vec<Contribution> {
        self.inner.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contribution(who: &str, valid: bool) -> Contribution {
        Contribution {
            contributor: who.to_owned(),
            policy: "accept navigate".to_owned(),
            context: "loa(3).".parse().unwrap(),
            valid,
        }
    }

    #[test]
    fn contribute_and_filter() {
        let wiki = CasWiki::new();
        wiki.contribute(contribution("uk", true));
        wiki.contribute(contribution("us", false));
        wiki.contribute(contribution("untrusted", true));
        assert_eq!(wiki.len(), 3);
        let trusted = wiki.retrieve(|c| c != "untrusted");
        assert_eq!(trusted.len(), 2);
        assert_eq!(wiki.retrieve_all().len(), 3);
    }

    #[test]
    fn contributions_become_examples() {
        let c = contribution("uk", true);
        let hard = c.example(None);
        assert!(!hard.is_soft());
        let soft = c.example(Some(2));
        assert_eq!(soft.penalty, Some(2));
        assert_eq!(soft.text, "accept navigate");
    }

    #[test]
    fn wiki_is_shared_across_clones_and_threads() {
        let wiki = CasWiki::new();
        let w2 = wiki.clone();
        let handle = std::thread::spawn(move || {
            for _ in 0..10 {
                w2.contribute(contribution("bg", true));
            }
        });
        for _ in 0..10 {
            wiki.contribute(contribution("fg", true));
        }
        handle.join().unwrap();
        assert_eq!(wiki.len(), 20);
    }
}
