//! The coalition fabric: multiple AMS parties learning concurrently,
//! contributing experiences to the shared [`CasWiki`](crate::CasWiki), and
//! warm-starting newcomers from trusted contributions (paper §III-A-3 and
//! §IV-A's "collaborative policy management" direction).
//!
//! The coalition "network" is an in-process simulation: each party runs on
//! its own thread, which preserves the architectural shape (asynchronous
//! parties, shared repository, trust-filtered exchange) without a real
//! transport. The fabric *supervises* its parties: a panicking, slow, or
//! lossy party is caught, retried with seeded exponential backoff, and —
//! if it keeps failing — reported as a per-node failure inside a degraded
//! [`CoalitionOutcome`] rather than tearing the whole coalition down.
//! Failure modes are injected deterministically through a
//! [`FaultInjector`](crate::resilience::FaultInjector).

use crate::caswiki::{CasWiki, Contribution};
use crate::resilience::{panic_message, FaultInjector, RetryPolicy};
use crate::trust::TrustModel;
use agenp_asp::Deadline;
use agenp_core::arch::{Ams, AmsError, DecisionOutcome, DegradedMode, PdpHandle};
use agenp_core::scenarios::cav;
use agenp_learn::{LearnOptions, Learner, LearningTask};
use agenp_policy::Request;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// One coalition party's decision plane: an [`Ams`] pinned to
/// [`DegradedMode::ServeLastGood`] so that while the coalition is degraded
/// — a partner down, a budget exhausted, a deadline overrun mid-refresh —
/// decision serving continues from the last successfully published
/// snapshot instead of flipping to deny-everything or stopping. Worker
/// threads decide through [`DecisionPlane::handle`] clones; the control
/// loop refreshes through [`DecisionPlane::refresh`], which reports (but
/// survives) failures and tracks staleness.
#[derive(Debug)]
pub struct DecisionPlane {
    ams: Ams,
    good_epoch: u64,
    stale: bool,
}

impl DecisionPlane {
    /// Wraps `ams`, forcing serve-last-good degradation. The snapshot the
    /// AMS is currently serving becomes the initial "last good" one.
    pub fn new(mut ams: Ams) -> DecisionPlane {
        ams.set_degraded_mode(DegradedMode::ServeLastGood);
        let good_epoch = ams.current_snapshot().epoch();
        DecisionPlane {
            ams,
            good_epoch,
            stale: false,
        }
    }

    /// The wrapped AMS.
    pub fn ams(&self) -> &Ams {
        &self.ams
    }

    /// Mutable access to the wrapped AMS (budgets, context, feedback).
    pub fn ams_mut(&mut self) -> &mut Ams {
        &mut self.ams
    }

    /// A `Send + Sync` serving handle; clones stay wired to this plane.
    pub fn handle(&self) -> PdpHandle {
        self.ams.serving_handle()
    }

    /// Decides against whatever snapshot is currently served.
    pub fn decide(&self, request: &Request) -> DecisionOutcome {
        self.ams.decide(request)
    }

    /// Decides a whole wave of requests against one snapshot — a degraded
    /// or mid-refresh plane still answers the entire batch from a single
    /// consistent epoch (see [`Ams::decide_batch`]).
    pub fn decide_batch(&self, requests: &[Request]) -> Vec<DecisionOutcome> {
        self.ams.decide_batch(requests)
    }

    /// Refreshes the policy set and publishes a new snapshot. On failure
    /// the previous snapshot keeps serving, the plane is marked stale, and
    /// the error is returned for logging/alerting. Returns the number of
    /// screened candidates on success.
    ///
    /// # Errors
    ///
    /// Propagates the refresh failure; serving is unaffected.
    pub fn refresh(&mut self) -> Result<usize, AmsError> {
        let mut span = agenp_obs::span!("coalition.refresh", good_epoch = self.good_epoch);
        match self.ams.refresh_policies() {
            Ok(screened) => {
                self.good_epoch = self.ams.current_snapshot().epoch();
                self.stale = false;
                span.record("epoch", self.good_epoch);
                Ok(screened.len())
            }
            Err(e) => {
                self.stale = true;
                if span.is_live() {
                    span.record("stale", true);
                    agenp_obs::registry()
                        .counter("coalition.refresh_failures")
                        .incr();
                }
                Err(e)
            }
        }
    }

    /// True when the last refresh failed and the served snapshot predates
    /// it.
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// Epoch of the snapshot currently serving as "last good".
    pub fn good_epoch(&self) -> u64 {
        self.good_epoch
    }
}

/// The report one coalition party produces after a local learning round.
#[derive(Clone, Debug)]
pub struct NodeReport {
    /// Party name.
    pub name: String,
    /// Local training examples used.
    pub local_examples: usize,
    /// Learned hypothesis size (rules).
    pub learned_rules: usize,
    /// Accuracy on a common held-out test set.
    pub accuracy: f64,
}

/// How one supervised party fared, including the retries it took.
#[derive(Clone, Debug)]
pub enum NodeOutcome {
    /// Succeeded on the first attempt.
    Ok(NodeReport),
    /// Succeeded after the given number of retries.
    Retried(NodeReport, u32),
    /// Exhausted its retries (or the run deadline) without a report.
    Failed {
        /// Party name.
        name: String,
        /// The last failure reason observed.
        reason: String,
    },
}

impl NodeOutcome {
    /// The learning report, if the party eventually succeeded.
    pub fn report(&self) -> Option<&NodeReport> {
        match self {
            NodeOutcome::Ok(r) | NodeOutcome::Retried(r, _) => Some(r),
            NodeOutcome::Failed { .. } => None,
        }
    }

    /// The party name, regardless of outcome.
    pub fn name(&self) -> &str {
        match self {
            NodeOutcome::Ok(r) | NodeOutcome::Retried(r, _) => &r.name,
            NodeOutcome::Failed { name, .. } => name,
        }
    }

    /// Retries consumed before the outcome was reached.
    pub fn retries(&self) -> u32 {
        match self {
            NodeOutcome::Retried(_, n) => *n,
            NodeOutcome::Ok(_) | NodeOutcome::Failed { .. } => 0,
        }
    }

    /// True if the party produced a report.
    pub fn is_ok(&self) -> bool {
        self.report().is_some()
    }
}

/// The supervised coalition's aggregate result: one outcome per party (in
/// spawn order) plus the quorum that was required of them.
#[derive(Clone, Debug)]
pub struct CoalitionOutcome {
    /// Per-party outcomes, indexed by spawn order.
    pub nodes: Vec<NodeOutcome>,
    /// Minimum number of successful parties that was required.
    pub quorum: usize,
    /// True if at least one party failed — the result is partial.
    pub degraded: bool,
}

impl CoalitionOutcome {
    /// The reports of the parties that succeeded.
    pub fn reports(&self) -> Vec<&NodeReport> {
        self.nodes.iter().filter_map(NodeOutcome::report).collect()
    }

    /// Number of parties that produced a report.
    pub fn successes(&self) -> usize {
        self.nodes.iter().filter(|o| o.is_ok()).count()
    }

    /// Total retries consumed across all parties.
    pub fn total_retries(&self) -> u32 {
        self.nodes.iter().map(NodeOutcome::retries).sum()
    }
}

/// Why a supervised coalition run failed outright.
#[derive(Clone, Debug)]
pub enum CoalitionError {
    /// Fewer parties succeeded than the configured quorum requires. The
    /// per-node outcomes are preserved for diagnosis.
    QuorumNotMet {
        /// Parties that produced a report.
        successes: usize,
        /// Minimum successes required.
        quorum: usize,
        /// Per-party outcomes, indexed by spawn order.
        nodes: Vec<NodeOutcome>,
    },
}

impl fmt::Display for CoalitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoalitionError::QuorumNotMet {
                successes, quorum, ..
            } => write!(
                f,
                "coalition quorum not met: {successes} of the required {quorum} parties succeeded"
            ),
        }
    }
}

impl std::error::Error for CoalitionError {}

/// Configuration for a supervised coalition learning round.
#[derive(Clone, Copy, Debug)]
pub struct CoalitionConfig {
    /// Number of parties to run.
    pub n_nodes: usize,
    /// Local training samples per party.
    pub samples_per_node: usize,
    /// Base seed; party `i` samples with `seed + i * 101`.
    pub seed: u64,
    /// Retry/backoff policy applied to each failing party.
    pub retry: RetryPolicy,
    /// Minimum successful parties for the run to count at all.
    pub quorum: usize,
    /// Wall-clock deadline for the whole run; threaded into each party's
    /// learner and checked before every attempt.
    pub deadline: Deadline,
}

impl CoalitionConfig {
    /// A config with default retry policy, no deadline, and a full quorum
    /// (every party must succeed for a non-degraded outcome; the quorum can
    /// be lowered with [`CoalitionConfig::quorum`]).
    pub fn new(n_nodes: usize, samples_per_node: usize, seed: u64) -> CoalitionConfig {
        CoalitionConfig {
            n_nodes,
            samples_per_node,
            seed,
            retry: RetryPolicy::default(),
            quorum: n_nodes,
            deadline: Deadline::none(),
        }
    }

    /// Sets the minimum number of successful parties.
    pub fn quorum(mut self, quorum: usize) -> CoalitionConfig {
        self.quorum = quorum;
        self
    }

    /// Sets the retry/backoff policy.
    pub fn retry(mut self, retry: RetryPolicy) -> CoalitionConfig {
        self.retry = retry;
        self
    }

    /// Sets the run deadline.
    pub fn deadline(mut self, deadline: Deadline) -> CoalitionConfig {
        self.deadline = deadline;
        self
    }
}

/// Runs a supervised CAV coalition: each party samples local experience,
/// learns a GPM, evaluates it on a shared test distribution, and
/// contributes its labelled experiences to the wiki. Parties that panic,
/// lose their report, or overrun the deadline are retried per
/// `cfg.retry` and reported as [`NodeOutcome::Failed`] when they stay
/// down. The run succeeds — possibly `degraded` — whenever at least
/// `cfg.quorum` parties succeed, and fails with
/// [`CoalitionError::QuorumNotMet`] otherwise.
///
/// With a fixed `cfg` and `injector` the outcome is deterministic: faults
/// fire purely on `(node, attempt)`, outcomes are joined in spawn order,
/// and backoff jitter derives from the injector's seed.
pub fn supervised_cav_learning(
    cfg: &CoalitionConfig,
    wiki: &CasWiki,
    injector: &FaultInjector,
) -> Result<CoalitionOutcome, CoalitionError> {
    let nodes: Vec<NodeOutcome> = thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.n_nodes)
            .map(|i| s.spawn(move || run_party(cfg, wiki, injector, i)))
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(i, h)| match h.join() {
                Ok(outcome) => outcome,
                // run_party catches panics itself; this is a belt-and-braces
                // path for panics outside catch_unwind (e.g. in the retry
                // loop machinery).
                Err(payload) => NodeOutcome::Failed {
                    name: format!("party-{i}"),
                    reason: panic_message(payload.as_ref()),
                },
            })
            .collect()
    });
    let successes = nodes.iter().filter(|o| o.is_ok()).count();
    if successes < cfg.quorum {
        return Err(CoalitionError::QuorumNotMet {
            successes,
            quorum: cfg.quorum,
            nodes,
        });
    }
    Ok(CoalitionOutcome {
        degraded: successes < cfg.n_nodes,
        quorum: cfg.quorum,
        nodes,
    })
}

/// One supervised party: attempt the learning round up to
/// `1 + max_retries` times, sleeping the backoff delay between attempts.
fn run_party(
    cfg: &CoalitionConfig,
    wiki: &CasWiki,
    injector: &FaultInjector,
    i: usize,
) -> NodeOutcome {
    let mut span = agenp_obs::span!("coalition.party", party = i);
    let outcome = run_party_inner(cfg, wiki, injector, i);
    if span.is_live() {
        let r = agenp_obs::registry();
        match &outcome {
            NodeOutcome::Ok(_) => span.record("outcome", "ok"),
            NodeOutcome::Retried(_, attempts) => {
                span.record("outcome", "retried");
                span.record("retries", *attempts as u64);
                r.counter("coalition.party_retries").add(*attempts as u64);
            }
            NodeOutcome::Failed { reason, .. } => {
                span.record("outcome", "failed");
                span.record("reason", reason.as_str());
                r.counter("coalition.party_failures").incr();
            }
        }
    }
    outcome
}

fn run_party_inner(
    cfg: &CoalitionConfig,
    wiki: &CasWiki,
    injector: &FaultInjector,
    i: usize,
) -> NodeOutcome {
    let name = format!("party-{i}");
    let mut last_reason = String::from("no attempt made");
    for attempt in 0..=cfg.retry.max_retries {
        if attempt > 0 {
            thread::sleep(
                cfg.retry
                    .backoff
                    .delay(attempt - 1, injector.seed() ^ i as u64),
            );
        }
        if cfg.deadline.expired() {
            return NodeOutcome::Failed {
                name,
                reason: format!("deadline expired before attempt {attempt}"),
            };
        }
        match catch_unwind(AssertUnwindSafe(|| {
            party_round(cfg, wiki, injector, i, attempt, &name)
        })) {
            Ok(Ok(report)) => {
                return if attempt == 0 {
                    NodeOutcome::Ok(report)
                } else {
                    NodeOutcome::Retried(report, attempt)
                };
            }
            Ok(Err(reason)) => last_reason = reason,
            Err(payload) => {
                last_reason = format!("panicked: {}", panic_message(payload.as_ref()));
            }
        }
    }
    NodeOutcome::Failed {
        name,
        reason: last_reason,
    }
}

/// One attempt of a party's learning round. Contributions reach the wiki
/// only on a successful attempt (after the drop-report check), so a
/// retried party never double-contributes.
fn party_round(
    cfg: &CoalitionConfig,
    wiki: &CasWiki,
    injector: &FaultInjector,
    i: usize,
    attempt: u32,
    name: &str,
) -> Result<NodeReport, String> {
    if injector.panics(i, attempt) {
        panic!("injected fault: {name} crashed on attempt {attempt}");
    }
    if let Some(delay) = injector.slow_down(i) {
        thread::sleep(delay);
    }
    let local = cav::samples(cfg.samples_per_node, cfg.seed.wrapping_add(i as u64 * 101));
    let task = cav::learning_task(&local, None);
    let learner = Learner::with_options(LearnOptions::default().with_deadline(cfg.deadline));
    let h = learner
        .learn(&task)
        .map_err(|e| format!("learning failed: {e}"))?;
    let gpm = h.apply(&task.grammar);
    let test = cav::samples(150, 999_999);
    let accuracy = cav::gpm_accuracy(&gpm, &test);
    if let Some(delay) = injector.report_delay(i) {
        thread::sleep(delay);
    }
    if injector.drops_report(i, attempt) {
        return Err(format!("report dropped in transit on attempt {attempt}"));
    }
    wiki.contribute_all_via(
        injector,
        i,
        local.iter().map(|s| Contribution {
            contributor: name.to_owned(),
            policy: cav::policy_text(s.task),
            context: s.context.to_program(),
            valid: s.accept,
        }),
    );
    Ok(NodeReport {
        name: name.to_owned(),
        local_examples: local.len(),
        learned_rules: h.rules.len(),
        accuracy,
    })
}

/// Runs `n_nodes` CAV parties concurrently and returns one report per
/// party, sorted by name. Convenience wrapper over
/// [`supervised_cav_learning`] with no faults, default retries, and a
/// quorum of zero: it never fails, and a party that stays down after its
/// retries yields a zeroed report (no learned rules, accuracy 0.0)
/// instead of panicking the caller.
pub fn distributed_cav_learning(
    n_nodes: usize,
    samples_per_node: usize,
    seed: u64,
    wiki: &CasWiki,
) -> Vec<NodeReport> {
    let cfg = CoalitionConfig::new(n_nodes, samples_per_node, seed).quorum(0);
    let nodes = match supervised_cav_learning(&cfg, wiki, &FaultInjector::none()) {
        Ok(outcome) => outcome.nodes,
        Err(CoalitionError::QuorumNotMet { nodes, .. }) => nodes,
    };
    let mut reports: Vec<NodeReport> = nodes
        .iter()
        .map(|o| match o.report() {
            Some(r) => r.clone(),
            None => NodeReport {
                name: o.name().to_owned(),
                local_examples: samples_per_node,
                learned_rules: 0,
                accuracy: 0.0,
            },
        })
        .collect();
    reports.sort_by(|a, b| a.name.cmp(&b.name));
    reports
}

/// Outcome of the newcomer warm-start comparison.
#[derive(Clone, Copy, Debug)]
pub struct WarmStartOutcome {
    /// Accuracy learning from local data only.
    pub cold_accuracy: f64,
    /// Accuracy learning from local data plus trusted wiki contributions.
    pub warm_accuracy: f64,
    /// Wiki contributions used for the warm start.
    pub shared_used: usize,
}

/// A newcomer with only `local_n` local samples learns (a) cold — local data
/// only — and (b) warm — local data plus wiki contributions from partners
/// whose trust passes `min_trust`, taken as soft examples (penalty 2) to
/// guard against residual bad data.
pub fn warm_start_comparison(
    local_n: usize,
    wiki: &CasWiki,
    trust: &TrustModel,
    min_trust: f64,
    seed: u64,
) -> WarmStartOutcome {
    let local = cav::samples(local_n, seed);
    let test = cav::samples(200, seed.wrapping_add(31337));

    let cold_task = cav::learning_task(&local, None);
    let cold_accuracy = accuracy_of(&cold_task, &test);

    let shared = wiki.retrieve(|c| trust.trust(c) >= min_trust);
    let mut warm_task = cav::learning_task(&local, None);
    for c in &shared {
        let e = c.example(Some(2));
        if c.valid {
            warm_task = warm_task.pos(e);
        } else {
            warm_task = warm_task.neg(e);
        }
    }
    let warm_accuracy = accuracy_of(&warm_task, &test);
    WarmStartOutcome {
        cold_accuracy,
        warm_accuracy,
        shared_used: shared.len(),
    }
}

fn accuracy_of(task: &LearningTask, test: &[cav::Sample]) -> f64 {
    match Learner::new().learn(task) {
        Ok(h) => cav::gpm_accuracy(&h.apply(&task.grammar), test),
        Err(_) => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agenp_asp::RunBudget;
    use agenp_grammar::Asg;
    use agenp_learn::HypothesisSpace;
    use agenp_policy::Decision;

    fn clearance_ams(name: &str) -> Ams {
        let g: Asg = r#"
            policy -> effect "if" "subject" "clearance" "=" level
            effect -> "permit" { e(permit). }
            effect -> "deny"   { e(deny). }
            level -> "low"  { lvl(low). }
            level -> "high" { lvl(high). }
        "#
        .parse()
        .unwrap();
        Ams::new(name, g, HypothesisSpace::new())
    }

    #[test]
    fn degraded_plane_serves_from_last_good_snapshot() {
        let mut plane = DecisionPlane::new(clearance_ams("party-0"));
        plane.refresh().unwrap();
        assert!(!plane.is_stale());
        let good_epoch = plane.good_epoch();
        let req = Request::new().subject("clearance", "high");
        // permit + deny rules under deny-overrides → Deny.
        assert_eq!(plane.decide(&req).decision(), Decision::Deny);

        // A refresh that blows its budget must not disturb serving.
        plane
            .ams_mut()
            .set_run_budget(RunBudget::default().with_max_atoms(1));
        assert!(plane.refresh().is_err());
        assert!(plane.is_stale());
        let outcome = plane.decide(&req);
        assert_eq!(outcome.epoch, good_epoch, "snapshot must not have moved");
        assert_eq!(outcome.decision, Decision::Deny);
        assert!(outcome.error.is_none(), "last-good serving is not degraded");

        // Recovery: a sane budget republishes and clears staleness.
        plane.ams_mut().set_run_budget(RunBudget::default());
        plane.refresh().unwrap();
        assert!(!plane.is_stale());
        assert!(plane.good_epoch() > good_epoch);
    }

    #[test]
    fn workers_keep_deciding_through_a_failed_refresh() {
        let mut plane = DecisionPlane::new(clearance_ams("party-1"));
        plane.refresh().unwrap();
        let handle = plane.handle();
        let req = Request::new().subject("clearance", "low");
        let served: Vec<DecisionOutcome> = thread::scope(|s| {
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let h = handle.clone();
                    let r = req.clone();
                    s.spawn(move || (0..50).map(|_| h.decide(&r)).collect::<Vec<_>>())
                })
                .collect();
            // Sabotage a refresh while the workers hammer the handle.
            plane
                .ams_mut()
                .set_run_budget(RunBudget::default().with_max_atoms(1));
            let _ = plane.refresh();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("worker panicked"))
                .collect()
        });
        assert_eq!(served.len(), 200);
        // Every decision came from a good (non-degraded) snapshot: the
        // failed refresh never published, so no outcome carries an error
        // and every one rendered the consistent deny-overrides answer.
        for outcome in &served {
            assert_eq!(outcome.decision, Decision::Deny);
            assert!(outcome.error.is_none());
        }
    }

    #[test]
    fn parties_learn_concurrently_and_contribute() {
        let wiki = CasWiki::new();
        let reports = distributed_cav_learning(3, 40, 5, &wiki);
        assert_eq!(reports.len(), 3);
        assert_eq!(wiki.len(), 3 * 40);
        for r in &reports {
            assert!(r.accuracy > 0.8, "{} accuracy {}", r.name, r.accuracy);
            assert!(r.learned_rules > 0);
        }
    }

    #[test]
    fn supervised_run_without_faults_is_clean() {
        let wiki = CasWiki::new();
        let cfg = CoalitionConfig::new(3, 30, 5);
        let outcome = supervised_cav_learning(&cfg, &wiki, &FaultInjector::none())
            .expect("full quorum reachable without faults");
        assert!(!outcome.degraded);
        assert_eq!(outcome.successes(), 3);
        assert_eq!(outcome.total_retries(), 0);
        assert_eq!(outcome.reports().len(), 3);
        assert!(outcome.nodes.iter().all(NodeOutcome::is_ok));
    }

    #[test]
    fn warm_start_beats_cold_start_on_scarce_data() {
        let wiki = CasWiki::new();
        let _ = distributed_cav_learning(3, 60, 77, &wiki);
        let mut trust = TrustModel::new();
        for i in 0..3 {
            trust.set(&format!("party-{i}"), 0.9);
        }
        // A newcomer with very little local data.
        let outcome = warm_start_comparison(4, &wiki, &trust, 0.5, 4242);
        assert!(outcome.shared_used == 180);
        assert!(
            outcome.warm_accuracy >= outcome.cold_accuracy,
            "warm {} < cold {}",
            outcome.warm_accuracy,
            outcome.cold_accuracy
        );
        assert!(outcome.warm_accuracy > 0.9);
    }

    #[test]
    fn trust_filter_excludes_poisoned_contributions() {
        let wiki = CasWiki::new();
        let _ = distributed_cav_learning(2, 50, 11, &wiki);
        // A poisoner contributes inverted labels.
        let poisoned: Vec<Contribution> = cav::samples(50, 500)
            .iter()
            .map(|s| Contribution {
                contributor: "poisoner".into(),
                policy: cav::policy_text(s.task),
                context: s.context.to_program(),
                valid: !s.accept,
            })
            .collect();
        wiki.contribute_all(poisoned);
        let mut trust = TrustModel::new();
        trust.set("party-0", 0.9);
        trust.set("party-1", 0.9);
        trust.set("poisoner", 0.1);
        let filtered = warm_start_comparison(4, &wiki, &trust, 0.5, 321);
        assert_eq!(filtered.shared_used, 100);
        assert!(
            filtered.warm_accuracy > 0.85,
            "accuracy {}",
            filtered.warm_accuracy
        );
    }
}
