//! The coalition fabric: multiple AMS parties learning concurrently,
//! contributing experiences to the shared [`CasWiki`](crate::CasWiki), and
//! warm-starting newcomers from trusted contributions (paper §III-A-3 and
//! §IV-A's "collaborative policy management" direction).
//!
//! The coalition "network" is an in-process simulation: each party runs on
//! its own thread and communicates over crossbeam channels, which preserves
//! the architectural shape (asynchronous parties, shared repository,
//! trust-filtered exchange) without a real transport.

use crate::caswiki::{CasWiki, Contribution};
use crate::trust::TrustModel;
use agenp_core::scenarios::cav;
use agenp_learn::{Learner, LearningTask};
use crossbeam::channel;
use std::thread;

/// The report one coalition party produces after a local learning round.
#[derive(Clone, Debug)]
pub struct NodeReport {
    /// Party name.
    pub name: String,
    /// Local training examples used.
    pub local_examples: usize,
    /// Learned hypothesis size (rules).
    pub learned_rules: usize,
    /// Accuracy on a common held-out test set.
    pub accuracy: f64,
}

/// Runs `n_nodes` CAV parties concurrently: each samples local experience,
/// learns a GPM, evaluates it on a shared test distribution, and
/// contributes its labelled experiences to the wiki.
///
/// # Panics
///
/// Panics if a node thread panics.
pub fn distributed_cav_learning(
    n_nodes: usize,
    samples_per_node: usize,
    seed: u64,
    wiki: &CasWiki,
) -> Vec<NodeReport> {
    let (tx, rx) = channel::unbounded::<NodeReport>();
    let mut handles = Vec::new();
    for i in 0..n_nodes {
        let tx = tx.clone();
        let wiki = wiki.clone();
        handles.push(thread::spawn(move || {
            let name = format!("party-{i}");
            let local = cav::samples(samples_per_node, seed.wrapping_add(i as u64 * 101));
            let task = cav::learning_task(&local, None);
            let report = match Learner::new().learn(&task) {
                Ok(h) => {
                    let gpm = h.apply(&task.grammar);
                    let test = cav::samples(150, 999_999);
                    let accuracy = cav::gpm_accuracy(&gpm, &test);
                    wiki.contribute_all(local.iter().map(|s| Contribution {
                        contributor: name.clone(),
                        policy: cav::policy_text(s.task),
                        context: s.context.to_program(),
                        valid: s.accept,
                    }));
                    NodeReport {
                        name: name.clone(),
                        local_examples: local.len(),
                        learned_rules: h.rules.len(),
                        accuracy,
                    }
                }
                Err(_) => NodeReport {
                    name: name.clone(),
                    local_examples: local.len(),
                    learned_rules: 0,
                    accuracy: 0.0,
                },
            };
            tx.send(report).expect("collector alive");
        }));
    }
    drop(tx);
    let mut reports: Vec<NodeReport> = rx.iter().collect();
    for h in handles {
        h.join().expect("node thread panicked");
    }
    reports.sort_by(|a, b| a.name.cmp(&b.name));
    reports
}

/// Outcome of the newcomer warm-start comparison.
#[derive(Clone, Copy, Debug)]
pub struct WarmStartOutcome {
    /// Accuracy learning from local data only.
    pub cold_accuracy: f64,
    /// Accuracy learning from local data plus trusted wiki contributions.
    pub warm_accuracy: f64,
    /// Wiki contributions used for the warm start.
    pub shared_used: usize,
}

/// A newcomer with only `local_n` local samples learns (a) cold — local data
/// only — and (b) warm — local data plus wiki contributions from partners
/// whose trust passes `min_trust`, taken as soft examples (penalty 2) to
/// guard against residual bad data.
pub fn warm_start_comparison(
    local_n: usize,
    wiki: &CasWiki,
    trust: &TrustModel,
    min_trust: f64,
    seed: u64,
) -> WarmStartOutcome {
    let local = cav::samples(local_n, seed);
    let test = cav::samples(200, seed.wrapping_add(31337));

    let cold_task = cav::learning_task(&local, None);
    let cold_accuracy = accuracy_of(&cold_task, &test);

    let shared = wiki.retrieve(|c| trust.trust(c) >= min_trust);
    let mut warm_task = cav::learning_task(&local, None);
    for c in &shared {
        let e = c.example(Some(2));
        if c.valid {
            warm_task = warm_task.pos(e);
        } else {
            warm_task = warm_task.neg(e);
        }
    }
    let warm_accuracy = accuracy_of(&warm_task, &test);
    WarmStartOutcome {
        cold_accuracy,
        warm_accuracy,
        shared_used: shared.len(),
    }
}

fn accuracy_of(task: &LearningTask, test: &[cav::Sample]) -> f64 {
    match Learner::new().learn(task) {
        Ok(h) => cav::gpm_accuracy(&h.apply(&task.grammar), test),
        Err(_) => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parties_learn_concurrently_and_contribute() {
        let wiki = CasWiki::new();
        let reports = distributed_cav_learning(3, 40, 5, &wiki);
        assert_eq!(reports.len(), 3);
        assert_eq!(wiki.len(), 3 * 40);
        for r in &reports {
            assert!(r.accuracy > 0.8, "{} accuracy {}", r.name, r.accuracy);
            assert!(r.learned_rules > 0);
        }
    }

    #[test]
    fn warm_start_beats_cold_start_on_scarce_data() {
        let wiki = CasWiki::new();
        let _ = distributed_cav_learning(3, 60, 77, &wiki);
        let mut trust = TrustModel::new();
        for i in 0..3 {
            trust.set(&format!("party-{i}"), 0.9);
        }
        // A newcomer with very little local data.
        let outcome = warm_start_comparison(4, &wiki, &trust, 0.5, 4242);
        assert!(outcome.shared_used == 180);
        assert!(
            outcome.warm_accuracy >= outcome.cold_accuracy,
            "warm {} < cold {}",
            outcome.warm_accuracy,
            outcome.cold_accuracy
        );
        assert!(outcome.warm_accuracy > 0.9);
    }

    #[test]
    fn trust_filter_excludes_poisoned_contributions() {
        let wiki = CasWiki::new();
        let _ = distributed_cav_learning(2, 50, 11, &wiki);
        // A poisoner contributes inverted labels.
        let poisoned: Vec<Contribution> = cav::samples(50, 500)
            .iter()
            .map(|s| Contribution {
                contributor: "poisoner".into(),
                policy: cav::policy_text(s.task),
                context: s.context.to_program(),
                valid: !s.accept,
            })
            .collect();
        wiki.contribute_all(poisoned);
        let mut trust = TrustModel::new();
        trust.set("party-0", 0.9);
        trust.set("party-1", 0.9);
        trust.set("poisoner", 0.1);
        let filtered = warm_start_comparison(4, &wiki, &trust, 0.5, 321);
        assert_eq!(filtered.shared_used, 100);
        assert!(
            filtered.warm_accuracy > 0.85,
            "accuracy {}",
            filtered.warm_accuracy
        );
    }
}
