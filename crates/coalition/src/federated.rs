//! Federated-learning governance (paper §IV-E): when a coalition party
//! receives a model from a partially trusted partner, generative policies
//! decide whether to *adopt* it, *combine* it with the local model, or
//! *reject* it — based on the source's trust, the model's estimated
//! accuracy gain, and its staleness.

use crate::resilience::FaultInjector;
use agenp_asp::{CmpOp, Program, Term};
use agenp_grammar::{Asg, ProdId};
#[cfg(test)]
use agenp_learn::Learner;
use agenp_learn::{
    Example, HypothesisSpace, LearningTask, ModeArg, ModeAtom, ModeBias, ModeCmp, ModeLiteral,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A malformed governance query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GovernanceError {
    /// The queried action is not one of [`ACTIONS`].
    UnknownAction(String),
}

impl fmt::Display for GovernanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GovernanceError::UnknownAction(a) => write!(f, "unknown governance action {a:?}"),
        }
    }
}

impl std::error::Error for GovernanceError {}

/// A model offer from a partner.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ModelOffer {
    /// Source trust level (0–3).
    pub src_trust: i64,
    /// Estimated accuracy of the offered model (0–100).
    pub remote_acc: i64,
    /// Local model accuracy (0–100).
    pub local_acc: i64,
    /// Rounds since the offered model was trained (0–5).
    pub staleness: i64,
}

impl ModelOffer {
    /// Samples a random offer.
    pub fn random(rng: &mut StdRng) -> ModelOffer {
        ModelOffer {
            src_trust: rng.gen_range(0..=3),
            remote_acc: rng.gen_range(40..=95),
            local_acc: rng.gen_range(40..=95),
            staleness: rng.gen_range(0..=5),
        }
    }

    /// The offer's context facts; the accuracy *gain* is a derived value
    /// computed here (a helper-microservice-style derivation).
    pub fn context(self) -> Program {
        format!(
            "src_trust({}). gain({}). staleness({}).",
            self.src_trust,
            self.remote_acc - self.local_acc,
            self.staleness
        )
        .parse()
        .expect("offer facts always parse")
    }
}

/// The governance actions, strongest first.
pub const ACTIONS: [&str; 3] = ["adopt", "combine", "reject"];

/// Ground truth: which actions are valid for an offer. `adopt` requires a
/// clear gain from a trusted, fresh source; `combine` tolerates anything
/// not clearly harmful from a minimally trusted source; `reject` is always
/// safe. Unknown actions are a caller error, reported as
/// [`GovernanceError::UnknownAction`].
pub fn try_valid(offer: ModelOffer, action: &str) -> Result<bool, GovernanceError> {
    let gain = offer.remote_acc - offer.local_acc;
    match action {
        "adopt" => Ok(gain >= 5 && offer.src_trust >= 2 && offer.staleness <= 2),
        "combine" => Ok(gain >= -10 && offer.src_trust >= 1),
        "reject" => Ok(true),
        other => Err(GovernanceError::UnknownAction(other.to_owned())),
    }
}

/// Infallible wrapper over [`try_valid`]: an unknown action is simply not
/// valid (deny by default) rather than a panic.
pub fn valid(offer: ModelOffer, action: &str) -> bool {
    try_valid(offer, action).unwrap_or(false)
}

/// The strongest ground-truth-valid action.
pub fn oracle_action(offer: ModelOffer) -> &'static str {
    ACTIONS
        .iter()
        .copied()
        .find(|a| valid(offer, a))
        .expect("reject is always valid")
}

/// The governance grammar: one production per action.
pub fn grammar() -> Asg {
    let mut src = String::new();
    for a in ACTIONS {
        src.push_str(&format!("policy -> \"{a}\" {{ act({a}). }}\n"));
    }
    src.parse().expect("governance grammar is well-formed")
}

/// Production ids of (adopt, combine).
pub fn productions() -> (ProdId, ProdId) {
    (ProdId::from_index(0), ProdId::from_index(1))
}

/// The hypothesis space: threshold constraints per action production.
pub fn hypothesis_space() -> HypothesisSpace {
    let (adopt, combine) = productions();
    let body = vec![
        ModeLiteral::positive(ModeAtom::local("src_trust", vec![ModeArg::Var])),
        ModeLiteral::positive(ModeAtom::local("gain", vec![ModeArg::Var])),
        ModeLiteral::positive(ModeAtom::local("staleness", vec![ModeArg::Var])),
    ];
    ModeBias::constraints(vec![adopt, combine], body)
        .max_body(1)
        .max_vars(1)
        .with_comparisons(vec![ModeCmp {
            ops: vec![CmpOp::Lt, CmpOp::Ge],
            constants: vec![
                Term::Int(-10),
                Term::Int(0),
                Term::Int(1),
                Term::Int(2),
                Term::Int(3),
                Term::Int(5),
            ],
        }])
        .generate()
}

/// Builds the learning task from labelled offers: each action string is a
/// positive or negative example per offer according to the validity oracle.
pub fn learning_task(offers: &[ModelOffer]) -> LearningTask {
    let mut task = LearningTask::new(grammar(), hypothesis_space());
    for &offer in offers {
        for action in ["adopt", "combine"] {
            let e = Example::in_context(action, offer.context());
            if valid(offer, action) {
                task = task.pos(e);
            } else {
                task = task.neg(e);
            }
        }
    }
    task
}

/// The governed action a GPM chooses for an offer: the strongest admitted
/// action.
pub fn governed_action(gpm: &Asg, offer: ModelOffer) -> &'static str {
    let g = gpm.with_context(&offer.context());
    for a in ACTIONS {
        if g.accepts(a).unwrap_or(false) {
            return a;
        }
    }
    "reject"
}

/// Fraction of offers where the governed action equals the oracle action.
pub fn governance_accuracy(gpm: &Asg, n: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let correct = (0..n)
        .filter(|_| {
            let offer = ModelOffer::random(&mut rng);
            governed_action(gpm, offer) == oracle_action(offer)
        })
        .count();
    correct as f64 / n.max(1) as f64
}

/// Outcome of a federated simulation round sequence.
#[derive(Clone, Copy, Debug)]
pub struct FederationOutcome {
    /// Final local accuracy with learned governance.
    pub governed_final_acc: f64,
    /// Final local accuracy adopting every offer.
    pub ungoverned_final_acc: f64,
    /// Offers adopted by the governed node.
    pub governed_adoptions: usize,
}

/// Simulates federated rounds: a node starts at 70% accuracy and receives
/// offers — some genuinely better, some stale or from untrusted sources
/// whose *reported* accuracy overstates reality. The governed node applies
/// the learned GPM; the ungoverned node adopts anything that reports an
/// improvement.
pub fn simulate_federation(gpm: &Asg, rounds: usize, seed: u64) -> FederationOutcome {
    simulate_federation_with_faults(gpm, rounds, seed, &FaultInjector::none())
}

/// [`simulate_federation`] with deterministic fault injection: a
/// `CorruptContribution` fault on round `r` makes that round's offer
/// overreport its accuracy by 25 points regardless of the source's trust —
/// a corrupted (or adversarial) accuracy claim the governance policy must
/// absorb. The RNG call sequence is identical to the fault-free
/// simulation, so an empty injector reproduces it exactly.
pub fn simulate_federation_with_faults(
    gpm: &Asg,
    rounds: usize,
    seed: u64,
    injector: &FaultInjector,
) -> FederationOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut governed = 70.0f64;
    let mut ungoverned = 70.0f64;
    let mut adoptions = 0;
    for round in 0..rounds {
        let src_trust = rng.gen_range(0..=3);
        // Untrusted sources have worse models *and* overreport their
        // accuracy; stale models decay.
        let true_acc = if src_trust >= 2 {
            rng.gen_range(55..=95) as f64
        } else {
            rng.gen_range(30..=70) as f64
        };
        let staleness = rng.gen_range(0..=5);
        let mut reported = if src_trust <= 1 {
            true_acc + 25.0
        } else {
            true_acc
        };
        if injector.corrupts(round) {
            reported = true_acc + 25.0;
        }
        let effective = true_acc - 3.0 * staleness as f64;

        let offer_for = |local: f64| ModelOffer {
            src_trust,
            remote_acc: reported.round() as i64,
            local_acc: local.round() as i64,
            staleness,
        };
        // Governed node: adopt replaces the model; combine averages toward
        // the incoming model, never below a floor of the local model's
        // value (model averaging retains local knowledge).
        match governed_action(gpm, offer_for(governed)) {
            "adopt" => {
                governed = effective;
                adoptions += 1;
            }
            "combine" => governed = governed.max((governed + effective) / 2.0),
            _ => {}
        }
        // Ungoverned node adopts on any reported improvement and inherits
        // the model's *effective* accuracy.
        if reported > ungoverned {
            ungoverned = effective;
        }
        // Both nodes improve slowly through local training.
        governed = (governed + 0.2).min(97.0);
        ungoverned = (ungoverned + 0.2).min(97.0);
    }
    FederationOutcome {
        governed_final_acc: governed,
        ungoverned_final_acc: ungoverned,
        governed_adoptions: adoptions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_oracle_spec() {
        let good = ModelOffer {
            src_trust: 3,
            remote_acc: 90,
            local_acc: 70,
            staleness: 0,
        };
        assert!(valid(good, "adopt"));
        assert_eq!(oracle_action(good), "adopt");
        let stale = ModelOffer {
            staleness: 4,
            ..good
        };
        assert!(!valid(stale, "adopt"));
        assert_eq!(oracle_action(stale), "combine");
        let untrusted = ModelOffer {
            src_trust: 0,
            ..good
        };
        assert_eq!(oracle_action(untrusted), "reject");
        let worse = ModelOffer {
            remote_acc: 50,
            ..good
        };
        assert_eq!(oracle_action(worse), "reject");
    }

    #[test]
    fn learns_governance_policy() {
        let mut rng = StdRng::seed_from_u64(12);
        let offers: Vec<ModelOffer> = (0..60).map(|_| ModelOffer::random(&mut rng)).collect();
        let task = learning_task(&offers);
        let h = Learner::new()
            .learn(&task)
            .expect("governance is learnable");
        let gpm = h.apply(&task.grammar);
        let acc = governance_accuracy(&gpm, 300, 777);
        assert!(acc > 0.93, "governance accuracy {acc}; hypothesis:\n{h}");
    }

    #[test]
    fn governed_federation_beats_ungoverned() {
        let mut rng = StdRng::seed_from_u64(4);
        let offers: Vec<ModelOffer> = (0..80).map(|_| ModelOffer::random(&mut rng)).collect();
        let task = learning_task(&offers);
        let h = Learner::new().learn(&task).expect("learnable");
        let gpm = h.apply(&task.grammar);
        // Averaged over several seeds: governance must strictly help.
        let mut governed = 0.0;
        let mut ungoverned = 0.0;
        let mut adoptions = 0;
        for seed in 0..6 {
            let outcome = simulate_federation(&gpm, 50, 100 + seed);
            governed += outcome.governed_final_acc;
            ungoverned += outcome.ungoverned_final_acc;
            adoptions += outcome.governed_adoptions;
        }
        assert!(
            governed > ungoverned + 1.0,
            "governed {governed} vs ungoverned {ungoverned}"
        );
        assert!(adoptions > 0);
    }

    #[test]
    fn governed_action_defaults_to_reject() {
        let gpm = grammar(); // unconstrained: everything admitted
        let offer = ModelOffer {
            src_trust: 0,
            remote_acc: 10,
            local_acc: 90,
            staleness: 5,
        };
        // Unconstrained grammar admits adopt, so the strongest is chosen.
        assert_eq!(governed_action(&gpm, offer), "adopt");
    }
}
