//! # agenp-coalition — multi-party coalition fabric for AGENP
//!
//! The coalition layer of the paper: multiple Autonomous Managed Systems
//! learning concurrently, sharing policy experiences through a CASWiki-style
//! community knowledge base \[16\] filtered by an evidence-based trust model,
//! plus the two coalition application studies that need more than one
//! party — data sharing with helper microservices (§IV-D, \[33\]) and
//! federated-learning governance (§IV-E).
//!
//! The coalition "network" is an in-process simulation (threads and
//! channels); the paper's coalition is an architectural abstraction, not a
//! measured testbed, so this preserves the relevant behaviour.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod caswiki;
pub mod cav_services;
pub mod datashare;
mod fabric;
pub mod federated;
mod trust;

pub use caswiki::{CasWiki, Contribution};
pub use fabric::{distributed_cav_learning, warm_start_comparison, NodeReport, WarmStartOutcome};
pub use trust::TrustModel;
