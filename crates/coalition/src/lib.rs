//! # agenp-coalition — multi-party coalition fabric for AGENP
//!
//! The coalition layer of the paper: multiple Autonomous Managed Systems
//! learning concurrently, sharing policy experiences through a CASWiki-style
//! community knowledge base \[16\] filtered by an evidence-based trust model,
//! plus the two coalition application studies that need more than one
//! party — data sharing with helper microservices (§IV-D, \[33\]) and
//! federated-learning governance (§IV-E).
//!
//! The coalition "network" is an in-process simulation (threads and a
//! shared wiki); the paper's coalition is an architectural abstraction, not
//! a measured testbed, so this preserves the relevant behaviour. The fabric
//! is *supervised*: party failures — crashes, lost or delayed reports,
//! corrupted contributions, deadline overruns — are injected
//! deterministically via [`resilience::FaultInjector`], retried with seeded
//! backoff, and surfaced as degraded [`CoalitionOutcome`]s instead of
//! panics (see `docs/RESILIENCE.md`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod caswiki;
pub mod cav_services;
pub mod datashare;
mod fabric;
pub mod federated;
pub mod resilience;
pub mod sim;
mod trust;

pub use caswiki::{CasWiki, Contribution, ContributionError, ContributionProducer};
pub use fabric::{
    distributed_cav_learning, supervised_cav_learning, warm_start_comparison, CoalitionConfig,
    CoalitionError, CoalitionOutcome, DecisionPlane, NodeOutcome, NodeReport, WarmStartOutcome,
};
pub use trust::TrustModel;
