//! Data sharing in coalitions (paper §IV-D, after Verma et al. \[33\]):
//! generative policies deciding what data to share with which partner,
//! with "helper" microservices computing the values the policy conditions
//! test, and trust that varies per partner and over time.
//!
//! Also exercises the paper's §V-C argument: a purely statistical policy
//! trained while a partner behaved one way becomes "useless without
//! warning" when the coalition changes, whereas the symbolic policy
//! conditions on trust facts and transfers unchanged.

use crate::trust::TrustModel;
use agenp_asp::{CmpOp, Program, Term};
use agenp_baselines::{Classifier, Dataset, DecisionTree, Feature};
use agenp_grammar::{Asg, ProdId};
use agenp_learn::{
    Example, HypothesisSpace, Learner, LearningTask, ModeArg, ModeAtom, ModeBias, ModeCmp,
    ModeLiteral,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Data types with their sensitivity levels (0 = open … 3 = most
/// sensitive).
pub const DATA_TYPES: [(&str, i64); 4] = [
    ("weather", 0),
    ("logistics", 1),
    ("imagery", 2),
    ("sigint", 3),
];

/// A raw collected data item; quality is *not* stored — it is computed by
/// the quality helper microservice.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DataItem {
    /// Index into [`DATA_TYPES`].
    pub dtype: usize,
    /// Sensor resolution, 1–10.
    pub resolution: i64,
    /// Noise floor, 0–5.
    pub noise: i64,
}

impl DataItem {
    /// Samples a random item.
    pub fn random(rng: &mut StdRng) -> DataItem {
        DataItem {
            dtype: rng.gen_range(0..DATA_TYPES.len()),
            resolution: rng.gen_range(1..=10),
            noise: rng.gen_range(0..=5),
        }
    }
}

/// A helper microservice: computes derived facts about a data item that
/// policy conditions can test (paper §IV-D: "helper microservices for
/// generating values used to evaluate the policy conditions").
pub trait HelperService: std::fmt::Debug {
    /// The facts this helper contributes for an item.
    fn evaluate(&self, item: &DataItem) -> Program;
}

/// The quality-estimation helper: quality = resolution − noise, clamped to
/// 0–10.
#[derive(Clone, Copy, Debug, Default)]
pub struct QualityEstimator;

impl HelperService for QualityEstimator {
    fn evaluate(&self, item: &DataItem) -> Program {
        let q = (item.resolution - item.noise).clamp(0, 10);
        format!("quality({q}).")
            .parse()
            .expect("quality fact parses")
    }
}

/// The sensitivity helper: looks up the data type's sensitivity.
#[derive(Clone, Copy, Debug, Default)]
pub struct SensitivityLookup;

impl HelperService for SensitivityLookup {
    fn evaluate(&self, item: &DataItem) -> Program {
        let (name, sens) = DATA_TYPES[item.dtype];
        format!("dtype({name}). sens({sens}).")
            .parse()
            .expect("sensitivity facts parse")
    }
}

/// The derived quality of an item (what [`QualityEstimator`] computes).
pub fn quality(item: &DataItem) -> i64 {
    (item.resolution - item.noise).clamp(0, 10)
}

/// Builds the full sharing context for an item offered to a partner at a
/// given (discrete 0–3) trust level, running all helper services.
pub fn sharing_context(item: &DataItem, trust_level: i64) -> Program {
    let mut ctx: Program = format!("trust({trust_level}).")
        .parse()
        .expect("trust fact parses");
    let helpers: [&dyn HelperService; 2] = [&QualityEstimator, &SensitivityLookup];
    for h in helpers {
        ctx.extend_from(&h.evaluate(item));
    }
    ctx
}

/// The ground-truth sharing oracle: share iff the partner's trust level
/// covers the data sensitivity and the item quality is at least 4.
pub fn oracle(item: &DataItem, trust_level: i64) -> bool {
    trust_level >= DATA_TYPES[item.dtype].1 && quality(item) >= 4
}

/// The sharing-policy grammar: the single policy string `share`, valid in a
/// context iff sharing is appropriate there.
pub fn grammar() -> Asg {
    "policy -> \"share\" { d(share). }"
        .parse()
        .expect("sharing grammar is well-formed")
}

/// The production id of the share rule.
pub fn share_production() -> ProdId {
    ProdId::from_index(0)
}

/// The hypothesis space over trust, sensitivity, and helper-computed
/// quality.
pub fn hypothesis_space() -> HypothesisSpace {
    ModeBias::constraints(
        vec![share_production()],
        vec![
            ModeLiteral::positive(ModeAtom::local("trust", vec![ModeArg::Var])),
            ModeLiteral::positive(ModeAtom::local("sens", vec![ModeArg::Var])),
            ModeLiteral::positive(ModeAtom::local("quality", vec![ModeArg::Var])),
            ModeLiteral::positive(ModeAtom::local(
                "dtype",
                vec![ModeArg::Choice(
                    DATA_TYPES.iter().map(|(n, _)| Term::sym(n)).collect(),
                )],
            )),
        ],
    )
    .max_body(2)
    .max_vars(2)
    .with_comparisons(vec![ModeCmp {
        ops: vec![CmpOp::Lt],
        constants: vec![Term::Int(2), Term::Int(3), Term::Int(4), Term::Int(5)],
    }])
    .with_var_comparisons(vec![CmpOp::Lt])
    .generate()
}

/// One sharing experience.
#[derive(Clone, Debug)]
pub struct SharingSample {
    /// The item.
    pub item: DataItem,
    /// The partner it was offered to.
    pub partner: String,
    /// The partner's trust level at the time.
    pub trust_level: i64,
    /// Whether sharing was appropriate.
    pub share: bool,
}

/// Samples sharing experiences across the coalition's partners using the
/// current trust model.
pub fn samples(n: usize, partners: &[&str], trust: &TrustModel, seed: u64) -> Vec<SharingSample> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let item = DataItem::random(&mut rng);
            let partner = partners[rng.gen_range(0..partners.len())].to_owned();
            let trust_level = trust.level(&partner);
            SharingSample {
                item,
                partner,
                trust_level,
                share: oracle(&item, trust_level),
            }
        })
        .collect()
}

/// Builds the learning task from experiences.
pub fn learning_task(samples: &[SharingSample]) -> LearningTask {
    let mut task = LearningTask::new(grammar(), hypothesis_space());
    for s in samples {
        let e = Example::in_context("share", sharing_context(&s.item, s.trust_level));
        if s.share {
            task = task.pos(e);
        } else {
            task = task.neg(e);
        }
    }
    task
}

/// Accuracy of a learned GPM under a (possibly changed) trust model.
pub fn gpm_accuracy(gpm: &Asg, partners: &[&str], trust: &TrustModel, n: usize, seed: u64) -> f64 {
    let test = samples(n, partners, trust, seed);
    let correct = test
        .iter()
        .filter(|s| {
            let predicted = gpm
                .with_context(&sharing_context(&s.item, s.trust_level))
                .accepts("share")
                .unwrap_or(false);
            predicted == s.share
        })
        .count();
    correct as f64 / n.max(1) as f64
}

/// The §V-C comparison: symbolic vs statistical robustness to coalition
/// change. Both models train under `train_trust`; accuracy is measured
/// under `shifted_trust`. The statistical model sees partner identity (not
/// trust) — the realistic failure: it memorizes partner behaviour.
#[derive(Clone, Copy, Debug)]
pub struct ShiftOutcome {
    /// Symbolic GPM accuracy after the shift.
    pub symbolic_after: f64,
    /// Decision-tree accuracy after the shift.
    pub statistical_after: f64,
    /// Symbolic GPM accuracy before the shift (sanity).
    pub symbolic_before: f64,
    /// Decision-tree accuracy before the shift (sanity).
    pub statistical_before: f64,
}

/// Runs the coalition-shift experiment.
///
/// # Panics
///
/// Panics if the training task is unlearnable (it is by construction).
pub fn coalition_shift_experiment(
    partners: &[&str],
    train_trust: &TrustModel,
    shifted_trust: &TrustModel,
    n_train: usize,
    seed: u64,
) -> ShiftOutcome {
    let train = samples(n_train, partners, train_trust, seed);
    // Symbolic: learn the GPM once.
    let task = learning_task(&train);
    let h = Learner::new()
        .learn(&task)
        .expect("sharing task is learnable");
    let gpm = h.apply(&task.grammar);
    // Statistical: decision tree over (partner, dtype, quality).
    let mut d = Dataset::new(vec!["partner".into(), "dtype".into(), "quality".into()], 2);
    for s in &train {
        d.push(
            vec![
                Feature::cat(&s.partner),
                Feature::cat(DATA_TYPES[s.item.dtype].0),
                Feature::Num(quality(&s.item) as f64),
            ],
            usize::from(s.share),
        );
    }
    let tree = DecisionTree::fit(&d);

    let eval_tree = |trust: &TrustModel, seed: u64| {
        let test = samples(400, partners, trust, seed);
        let correct = test
            .iter()
            .filter(|s| {
                let row = vec![
                    Feature::cat(&s.partner),
                    Feature::cat(DATA_TYPES[s.item.dtype].0),
                    Feature::Num(quality(&s.item) as f64),
                ];
                (tree.predict(&row) == 1) == s.share
            })
            .count();
        correct as f64 / test.len() as f64
    };

    ShiftOutcome {
        symbolic_before: gpm_accuracy(&gpm, partners, train_trust, 400, seed + 1),
        statistical_before: eval_tree(train_trust, seed + 1),
        symbolic_after: gpm_accuracy(&gpm, partners, shifted_trust, 400, seed + 2),
        statistical_after: eval_tree(shifted_trust, seed + 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_compute_context() {
        let item = DataItem {
            dtype: 2,
            resolution: 9,
            noise: 2,
        };
        let ctx = sharing_context(&item, 2);
        let text = ctx.to_string();
        assert!(text.contains("quality(7)."));
        assert!(text.contains("sens(2)."));
        assert!(text.contains("dtype(imagery)."));
        assert!(text.contains("trust(2)."));
    }

    #[test]
    fn oracle_spec() {
        let good = DataItem {
            dtype: 2,
            resolution: 9,
            noise: 2,
        }; // imagery q7
        assert!(oracle(&good, 2));
        assert!(!oracle(&good, 1)); // insufficient trust
        let junk = DataItem {
            dtype: 0,
            resolution: 3,
            noise: 3,
        }; // weather q0
        assert!(!oracle(&junk, 3)); // too low quality
    }

    #[test]
    fn learns_sharing_policy() {
        let mut trust = TrustModel::new();
        trust.set("amber", 0.9);
        trust.set("bravo", 0.5);
        trust.set("delta", 0.1);
        let partners = ["amber", "bravo", "delta"];
        let train = samples(80, &partners, &trust, 3);
        let task = learning_task(&train);
        let h = Learner::new().learn(&task).expect("learnable");
        let gpm = h.apply(&task.grammar);
        let acc = gpm_accuracy(&gpm, &partners, &trust, 300, 71);
        assert!(acc > 0.92, "accuracy {acc}; hypothesis:\n{h}");
    }

    #[test]
    fn symbolic_policy_survives_coalition_change() {
        let partners = ["amber", "bravo", "delta"];
        let mut before = TrustModel::new();
        before.set("amber", 0.95);
        before.set("bravo", 0.6);
        before.set("delta", 0.6);
        // delta's verifier (amber) leaves; delta's trust collapses.
        let mut after = before.clone();
        after.set("delta", 0.05);
        let outcome = coalition_shift_experiment(&partners, &before, &after, 120, 17);
        assert!(outcome.symbolic_before > 0.9, "{outcome:?}");
        assert!(outcome.symbolic_after > 0.9, "{outcome:?}");
        assert!(
            outcome.symbolic_after > outcome.statistical_after + 0.03,
            "symbolic should survive the shift better: {outcome:?}"
        );
    }
}
