//! The chaos-fabric scenario suite: named, parameterized-by-party-count
//! configurations pairing a fabric protocol schedule (publishes, mass
//! refreshes, gossip/refresh cadence) with a [`ChaosPlan`].
//!
//! Every scenario ends with a *quiet tail*: probabilistic chaos stops at
//! `chaos_until` and the run continues long enough past the last
//! scheduled fault for every party to reconverge through its periodic
//! refresh, so the end-of-run convergence invariant is deterministic
//! rather than probabilistic.

use crate::resilience::{ChaosPlan, CrashWave, DegradedWave, PartitionSpec};
use agenp_policy::{Category, CombiningAlg, Cond, Effect, Obligation, Policy, PolicyRule, Request};

/// Slack ticks added on top of the analytic reconvergence bound.
const BOUND_SLACK: u64 = 16;

/// The policy set of coalition policy version `version`. Pure: gossip
/// and refresh messages carry only the version number, and any party can
/// materialize the policies from it. The set is *version-observable* —
/// `operator` is permitted only on odd versions and `analyst` only on
/// versions not divisible by three — so a stale snapshot renders visibly
/// different decisions, which is what the stale-epoch and parity
/// invariants key on. Decisions are obligation-bearing: guest denials
/// carry a version-observable audit obligation and penalty annotation,
/// auditor permits carry an access-log obligation, so the parity checks
/// cover the full decision effects rather than bare permit/deny.
pub fn coalition_policies(version: u64) -> Vec<Policy> {
    let mut rules = vec![
        PolicyRule::new(
            "deny-guest",
            Effect::Deny,
            Cond::eq(Category::Subject, "role", "guest"),
        )
        .with_obligation(
            Effect::Deny,
            Obligation::new("audit-denial", "notify-security", 16 + version),
        )
        .with_penalty(1 + (version % 4) as u32),
        PolicyRule::new(
            "permit-auditor",
            Effect::Permit,
            Cond::eq(Category::Subject, "role", "auditor"),
        )
        .with_obligation(
            Effect::Permit,
            Obligation::new("log-access", "audit-log", 10),
        ),
    ];
    if version % 2 == 1 {
        rules.push(PolicyRule::new(
            "permit-operator",
            Effect::Permit,
            Cond::eq(Category::Subject, "role", "operator"),
        ));
    }
    if !version.is_multiple_of(3) {
        rules.push(PolicyRule::new(
            "permit-analyst",
            Effect::Permit,
            Cond::eq(Category::Subject, "role", "analyst"),
        ));
    }
    vec![Policy {
        id: format!("coalition-v{version}"),
        rules,
        combining: CombiningAlg::DenyOverrides,
        obligations: Vec::new(),
    }]
}

/// The fixed decision workload every party serves slices of: each role
/// crossed with two actions. Small enough to memoize expected decisions
/// per `(version, index)`, version-discriminating through
/// [`coalition_policies`].
pub fn decision_workload() -> Vec<Request> {
    ["guest", "auditor", "operator", "analyst"]
        .iter()
        .flat_map(|role| {
            ["read", "write"].iter().map(move |action| {
                Request::new()
                    .subject("role", *role)
                    .action("kind", *action)
            })
        })
        .collect()
}

/// One named chaos-fabric configuration. Construct via the scenario
/// functions ([`Scenario::data_sharing`] &c.) or [`Scenario::by_name`];
/// the same `(seed, scenario)` pair always replays the same run.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Scenario name (stable; used by `--scenario` and in bench output).
    pub name: &'static str,
    /// Number of AMS parties.
    pub parties: usize,
    /// Logical ticks the run lasts (the final convergence sweep fires
    /// here).
    pub ticks: u64,
    /// Ticks between a party's periodic gossip rounds.
    pub gossip_interval: u64,
    /// Ticks between a party's periodic repository refreshes.
    pub refresh_interval: u64,
    /// Peers each gossip round advertises to.
    pub fanout: usize,
    /// Parties the repository pushes each new version to directly.
    pub push_fanout: usize,
    /// Ticks between decision waves.
    pub decide_every: u64,
    /// Parties sampled per decision wave.
    pub decide_parties: usize,
    /// Decisions each sampled party renders per wave.
    pub decide_batch: usize,
    /// Ticks at which the repository publishes the next version.
    pub publish_at: Vec<u64>,
    /// Ticks at which every party refreshes at once (context shift).
    pub mass_refresh_at: Vec<u64>,
    /// The chaos schedule.
    pub plan: ChaosPlan,
}

impl Scenario {
    fn base(
        name: &'static str,
        parties: usize,
        plan: ChaosPlan,
        publish_at: Vec<u64>,
        mass_refresh_at: Vec<u64>,
    ) -> Scenario {
        let parties = parties.max(2);
        let mut s = Scenario {
            name,
            parties,
            ticks: 0,
            gossip_interval: 10,
            refresh_interval: 40,
            fanout: 2,
            push_fanout: 8.min(parties),
            decide_every: 5,
            decide_parties: (parties / 16).max(1),
            decide_batch: 4,
            publish_at,
            mass_refresh_at,
            plan,
        };
        let busy = s
            .plan
            .last_fault_tick()
            .max(s.publish_at.iter().copied().max().unwrap_or(0))
            .max(s.mass_refresh_at.iter().copied().max().unwrap_or(0));
        // Quiet tail: the reconvergence bound plus two full refresh
        // periods, so even a party whose refresh fired just before the
        // last fault ended gets two clean round-trips before FinalCheck.
        s.ticks = busy + s.reconvergence_bound() + 2 * s.refresh_interval;
        s
    }

    /// How long after a heal (or the last fault) every eligible party
    /// must have reconverged: enough for several periodic refreshes or
    /// gossip rounds, plus the worst-case message delay, plus slack.
    pub fn reconvergence_bound(&self) -> u64 {
        (3 * self.refresh_interval).max(8 * self.gossip_interval)
            + self.plan.max_message_delay()
            + BOUND_SLACK
    }

    /// The never-faulted twin of this scenario: identical protocol
    /// schedule, empty chaos plan, same ticks. Chaos runs compare their
    /// served decisions against this run's.
    pub fn reference(&self) -> Scenario {
        let mut s = self.clone();
        s.plan = ChaosPlan::none();
        s
    }

    /// The paper's data-sharing coalition under light background chaos:
    /// three policy versions roll out over a mildly lossy, jittery
    /// fabric.
    pub fn data_sharing(parties: usize) -> Scenario {
        Scenario::base(
            "data-sharing",
            parties,
            ChaosPlan {
                loss: 0.01,
                duplicate: 0.01,
                reorder: 0.02,
                base_delay: 1,
                jitter: 2,
                chaos_until: 300,
                ..ChaosPlan::none()
            },
            vec![20, 120, 220],
            vec![],
        )
    }

    /// A partition storm: three successive partitions (two-way, then
    /// three-way, then two-way) with publishes landing while the fabric
    /// is split, under moderate loss. Each heal schedules a bounded
    /// reconvergence check.
    pub fn partition_storm(parties: usize) -> Scenario {
        Scenario::base(
            "partition-storm",
            parties,
            ChaosPlan {
                loss: 0.02,
                duplicate: 0.01,
                reorder: 0.02,
                base_delay: 1,
                jitter: 3,
                chaos_until: 460,
                partitions: vec![
                    PartitionSpec {
                        at: 40,
                        heal_at: 90,
                        groups: 2,
                    },
                    PartitionSpec {
                        at: 290,
                        heal_at: 340,
                        groups: 3,
                    },
                    PartitionSpec {
                        at: 540,
                        heal_at: 590,
                        groups: 2,
                    },
                ],
                crash_waves: vec![],
                degraded_waves: vec![],
            },
            vec![10, 60, 310, 560],
            vec![],
        )
    }

    /// A context shift forcing a mass re-ground: a new version publishes
    /// and every party refreshes at once, while a degraded wave has a
    /// quarter of the fleet failing refreshes.
    pub fn mass_reground(parties: usize) -> Scenario {
        Scenario::base(
            "mass-reground",
            parties,
            ChaosPlan {
                loss: 0.01,
                duplicate: 0.01,
                reorder: 0.01,
                base_delay: 1,
                jitter: 2,
                chaos_until: 200,
                partitions: vec![],
                crash_waves: vec![],
                degraded_waves: vec![DegradedWave {
                    from: 90,
                    until: 140,
                    modulo: 4,
                    phase: 1,
                }],
            },
            vec![30, 100],
            vec![102],
        )
    }

    /// Crash-restart under load: two crash waves take out overlapping
    /// slices of the fleet (full state loss) while versions keep
    /// publishing and decision traffic keeps flowing.
    pub fn crash_restart(parties: usize) -> Scenario {
        Scenario::base(
            "crash-restart",
            parties,
            ChaosPlan {
                loss: 0.01,
                duplicate: 0.01,
                reorder: 0.02,
                base_delay: 1,
                jitter: 2,
                chaos_until: 260,
                partitions: vec![],
                crash_waves: vec![
                    CrashWave {
                        at: 60,
                        restart_after: 25,
                        modulo: 5,
                        phase: 2,
                    },
                    CrashWave {
                        at: 170,
                        restart_after: 30,
                        modulo: 6,
                        phase: 3,
                    },
                ],
                degraded_waves: vec![],
            },
            vec![20, 80, 150, 220],
            vec![],
        )
    }

    /// The whole suite at `parties` parties.
    pub fn all(parties: usize) -> Vec<Scenario> {
        vec![
            Scenario::data_sharing(parties),
            Scenario::partition_storm(parties),
            Scenario::mass_reground(parties),
            Scenario::crash_restart(parties),
        ]
    }

    /// Looks a scenario up by its stable name.
    pub fn by_name(name: &str, parties: usize) -> Option<Scenario> {
        Scenario::all(parties).into_iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agenp_policy::{evaluate_policies, Decision};

    #[test]
    fn policies_are_version_observable() {
        let operator = Request::new()
            .subject("role", "operator")
            .action("kind", "read");
        let analyst = Request::new()
            .subject("role", "analyst")
            .action("kind", "read");
        let guest = Request::new()
            .subject("role", "guest")
            .action("kind", "write");
        for v in 0..12u64 {
            let p = coalition_policies(v);
            assert_eq!(
                evaluate_policies(&p, CombiningAlg::DenyOverrides, &operator),
                if v % 2 == 1 {
                    Decision::Permit
                } else {
                    Decision::NotApplicable
                },
                "operator at v{v}"
            );
            assert_eq!(
                evaluate_policies(&p, CombiningAlg::DenyOverrides, &analyst),
                if v % 3 != 0 {
                    Decision::Permit
                } else {
                    Decision::NotApplicable
                },
                "analyst at v{v}"
            );
            assert_eq!(
                evaluate_policies(&p, CombiningAlg::DenyOverrides, &guest),
                Decision::Deny,
                "guest at v{v}"
            );
        }
    }

    #[test]
    fn policy_effects_are_version_observable() {
        use agenp_policy::evaluate_policies_effects;
        let guest = Request::new()
            .subject("role", "guest")
            .action("kind", "write");
        let auditor = Request::new()
            .subject("role", "auditor")
            .action("kind", "read");
        for v in 0..8u64 {
            let p = coalition_policies(v);
            let fx = evaluate_policies_effects(&p, CombiningAlg::DenyOverrides, &guest);
            assert_eq!(fx.decision, Decision::Deny, "guest at v{v}");
            assert_eq!(fx.penalty, 1 + (v % 4) as u32, "guest penalty at v{v}");
            assert_eq!(fx.obligations.len(), 1, "guest obligations at v{v}");
            assert_eq!(fx.obligations[0].id, "audit-denial");
            assert_eq!(
                fx.obligations[0].deadline,
                16 + v,
                "deadline tracks version"
            );
            let fx = evaluate_policies_effects(&p, CombiningAlg::DenyOverrides, &auditor);
            assert_eq!(fx.decision, Decision::Permit, "auditor at v{v}");
            assert_eq!(fx.obligations.len(), 1);
            assert_eq!(fx.obligations[0].id, "log-access");
            assert_eq!(fx.penalty, 0);
        }
    }

    #[test]
    fn suite_is_complete_and_quiet_tailed() {
        let suite = Scenario::all(100);
        assert_eq!(suite.len(), 4);
        for s in &suite {
            assert_eq!(Scenario::by_name(s.name, 100).as_ref(), Some(s));
            assert!(
                s.ticks >= s.plan.last_fault_tick() + s.reconvergence_bound(),
                "{}: no quiet tail",
                s.name
            );
            assert!(!s.publish_at.is_empty());
            let r = s.reference();
            assert_eq!(r.plan, ChaosPlan::none());
            assert_eq!(r.publish_at, s.publish_at);
        }
        assert!(Scenario::by_name("nope", 100).is_none());
    }

    #[test]
    fn partition_checks_land_in_gaps() {
        // Each ConvergenceCheck is scheduled at heal + bound; it must not
        // land inside the next partition window (checks inside an active
        // partition are skipped, which would leave heals unverified).
        let s = Scenario::partition_storm(100);
        let bound = s.reconvergence_bound();
        for w in s.plan.partitions.windows(2) {
            assert!(
                w[0].heal_at + bound < w[1].at,
                "check for partition healing at {} lands inside the next window",
                w[0].heal_at
            );
        }
    }
}
