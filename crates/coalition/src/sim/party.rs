//! One simulated AMS party: a [`PdpHandle`] serving decision traffic, a
//! degraded-mode setting, and the minimal control-plane state the fabric
//! protocol needs (adopted policy version, up/recovering flags).
//!
//! The party's serving lifecycle mirrors the real
//! [`Ams`](agenp_core::arch::Ams): it boots *recovering* with a denying
//! snapshot (deny-by-default until the first refresh lands), publishes a
//! healthy snapshot whenever it adopts a coalition policy version, and on
//! a failed refresh either publishes a degraded denying snapshot
//! ([`DegradedMode::DenyByDefault`]) or keeps serving the last good one
//! ([`DegradedMode::ServeLastGood`]).

use agenp_core::arch::{AmsError, DecisionSnapshot, DegradedMode, PdpHandle};
use agenp_policy::{CombiningAlg, Policy};

/// What a party's current snapshot can legitimately answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Serving {
    /// Serving the policy set of coalition version `version`.
    Healthy {
        /// The adopted coalition policy version.
        version: u64,
    },
    /// Serving a denying snapshot (bootstrap, crash-restart, or a
    /// deny-by-default degradation): every decision must be `Deny` and
    /// must carry the degradation error.
    Denying,
}

/// One simulated coalition party.
#[derive(Debug)]
pub struct SimParty {
    /// The party's node id (also its index).
    pub id: usize,
    /// What this party does when a refresh fails.
    pub mode: DegradedMode,
    /// False while crashed: no messages, no decisions.
    pub up: bool,
    /// True from boot/restart until the first successful adoption.
    pub recovering: bool,
    /// The coalition policy version this party has adopted (0 = none).
    pub version: u64,
    /// What the current snapshot legitimately serves.
    pub serving: Serving,
    /// The epoch assigned by the party's most recent publish. Every
    /// decision outcome must carry exactly this epoch — anything else is
    /// a stale-epoch serve.
    pub last_publish_epoch: u64,
    handle: PdpHandle,
}

impl SimParty {
    /// A freshly booted party: deny-by-default until the first refresh.
    pub fn new(id: usize, mode: DegradedMode) -> SimParty {
        let mut party = SimParty {
            id,
            mode,
            up: true,
            recovering: true,
            version: 0,
            serving: Serving::Denying,
            last_publish_epoch: 0,
            handle: PdpHandle::new(),
        };
        party.publish_denying(AmsError::Unavailable(
            "awaiting first policy snapshot".to_owned(),
        ));
        party
    }

    /// The party's serving handle (pin per decision batch).
    pub fn handle(&self) -> &PdpHandle {
        &self.handle
    }

    /// Adopts coalition policy version `version` with its policy set:
    /// publishes a healthy snapshot and leaves recovery.
    pub fn publish_healthy(&mut self, version: u64, policies: Vec<Policy>) {
        self.last_publish_epoch = self
            .handle
            .publish(DecisionSnapshot::new(policies, CombiningAlg::DenyOverrides));
        self.version = version;
        self.serving = Serving::Healthy { version };
        self.recovering = false;
    }

    /// Publishes a degraded denying snapshot carrying `error`.
    pub fn publish_denying(&mut self, error: AmsError) {
        self.last_publish_epoch = self.handle.publish(
            DecisionSnapshot::new(Vec::new(), CombiningAlg::DenyOverrides).degraded(error),
        );
        self.serving = Serving::Denying;
    }

    /// Crashes the party: it stops serving and receiving until restarted.
    pub fn crash(&mut self) {
        self.up = false;
    }

    /// Restarts the party after a crash with **full state loss**: a fresh
    /// serving tier (the old snapshot, cache, and epochs are gone), no
    /// adopted version, recovering and denying until a refresh lands.
    pub fn restart(&mut self) {
        self.handle = PdpHandle::new();
        self.up = true;
        self.recovering = true;
        self.version = 0;
        self.serving = Serving::Denying;
        self.last_publish_epoch = 0;
        self.publish_denying(AmsError::Unavailable(
            "state lost in crash-restart".to_owned(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agenp_policy::{Decision, Request};

    #[test]
    fn boots_denying_then_adopts_then_restarts_denying() {
        let mut p = SimParty::new(3, DegradedMode::DenyByDefault);
        let req = Request::new().subject("role", "auditor");
        assert!(p.recovering);
        let boot = p.handle().pin().decide(&req);
        assert_eq!(boot.decision, Decision::Deny);
        assert!(boot.error.is_some());
        assert_eq!(boot.epoch, p.last_publish_epoch);

        p.publish_healthy(2, crate::sim::scenario::coalition_policies(2));
        assert!(!p.recovering);
        assert_eq!(p.serving, Serving::Healthy { version: 2 });
        let healthy = p.handle().pin().decide(&req);
        assert_eq!(healthy.decision, Decision::Permit);
        assert!(healthy.error.is_none());
        assert_eq!(healthy.epoch, p.last_publish_epoch);

        p.crash();
        assert!(!p.up);
        p.restart();
        assert!(p.up && p.recovering);
        assert_eq!(p.version, 0);
        let lost = p.handle().pin().decide(&req);
        assert_eq!(lost.decision, Decision::Deny, "state loss must deny");
        assert_eq!(lost.epoch, p.last_publish_epoch);
    }
}
