//! The deterministic chaos fabric: a seeded discrete-event simulation of
//! a large coalition (1,000–10,000 AMS parties) exchanging policy gossip
//! and refresh messages through a shared repository while each party
//! serves decision traffic through its own `PdpHandle` — with the
//! [`resilience::ChaosInjector`](crate::resilience::ChaosInjector)
//! driving message loss/duplication/reordering, named partitions,
//! crash-restart waves, and degraded-mode waves from the same seed.
//!
//! # Model
//!
//! Nodes `0..n` are parties; node `n` is the shared policy repository.
//! The repository holds the coalition's policy *head version* and bumps
//! it on scheduled `PublishVersion` events (a context shift), pushing the
//! new version to a few seed parties. Parties learn versions through two
//! channels: periodic anti-entropy refresh against the repository
//! (request/ack) and rumor gossip among peers. Messages carry only the
//! version number — the policy set is a pure function of the version
//! ([`coalition_policies`]) — so adopting a version means publishing its
//! policies as a fresh snapshot through the party's serving tier.
//!
//! Everything runs on a logical clock ([`EventQueue`]): no wall time, no
//! threads, no entropy outside `(seed, scenario)`. Two runs with the same
//! pair produce byte-identical event traces (see [`SimReport::trace_hash`])
//! and identical counters. Wall time is measured *around* the run purely
//! for throughput reporting; it never feeds back into the simulation.
//!
//! Invariants are asserted continuously during the run (see
//! [`InvariantChecker`]) and the flight recorder is dumped at fault boundaries
//! when observability is enabled. `docs/RESILIENCE.md` documents the
//! fault taxonomy and how to replay a failing seed.

pub mod rng;

mod invariants;
mod party;
mod scenario;
mod scheduler;

pub use invariants::{InvariantChecker, Violation, MAX_RECORDED};
pub use party::{Serving, SimParty};
pub use scenario::{coalition_policies, decision_workload, Scenario};
pub use scheduler::{Event, EventQueue, Message, NodeId, Payload};

use crate::resilience::{ChaosInjector, FaultInjector, FaultPlan};
use agenp_core::arch::{AmsError, DegradedMode};
use agenp_policy::{CombiningAlg, Decision, DecisionEffects, Request};
use rng::SimRng;
use std::collections::HashMap;
use std::time::{Duration, Instant};

// Hash streams for the engine's own seeded draws (disjoint from the
// chaos layer's 0xA* streams).
const STREAM_PEERS: u64 = 0xB1;
const STREAM_PUSH: u64 = 0xB2;
const STREAM_WORKLOAD: u64 = 0xB3;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

// Sampled spot-checking of served decisions against the independent
// `agenp_refsem` reference evaluator: every Nth healthy decision, up to a
// per-run budget. Both knobs are counter-driven — no RNG draws and no
// extra events — so folding the differential check into a run leaves the
// `(tick, event)` trace, and therefore `trace_hash`, byte-identical.
const REFSEM_SPOT_EVERY: u64 = 7;
const REFSEM_SPOT_BUDGET: u64 = 256;

/// Monotone counters for one simulation run. Two runs of the same
/// `(seed, scenario)` produce equal stats — the determinism regression
/// test asserts exactly that.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages handed to the fabric.
    pub messages_sent: u64,
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Messages lost to probabilistic chaos.
    pub dropped_loss: u64,
    /// Messages cut in flight by an active partition.
    pub dropped_partition: u64,
    /// Messages that arrived at a crashed party.
    pub dropped_down: u64,
    /// Messages duplicated by chaos (the copy is counted as sent too).
    pub duplicated: u64,
    /// Messages given a straggler delay spike (reordering).
    pub stragglers: u64,
    /// Repository head publishes (context shifts).
    pub publishes: u64,
    /// Coordinated mass-refresh events.
    pub mass_refreshes: u64,
    /// Version adoptions across all parties.
    pub adoptions: u64,
    /// Parties crashed by crash waves.
    pub crashes: u64,
    /// Parties restarted after a crash (with state loss).
    pub restarts: u64,
    /// Refresh attempts that failed under a degraded wave.
    pub refresh_failures: u64,
    /// Degraded (denying) snapshots published by deny-by-default parties.
    pub degraded_publishes: u64,
    /// Partitions started.
    pub partitions: u64,
    /// Partitions healed.
    pub heals: u64,
    /// Decisions rendered across all parties.
    pub decisions: u64,
    /// Permit decisions.
    pub permits: u64,
    /// Deny decisions.
    pub denies: u64,
    /// NotApplicable / Indeterminate decisions.
    pub gaps: u64,
    /// Decisions served healthily but behind the repository head
    /// (sanctioned staleness: lag or ServeLastGood riding out a wave).
    pub stale_serves: u64,
    /// Bounded-reconvergence checks run after heals.
    pub convergence_checks: u64,
    /// Reconvergence checks skipped because another partition was active.
    pub convergence_skipped: u64,
    /// Healthy decisions spot-checked against the `agenp_refsem`
    /// reference evaluator (sampled, budget-bounded).
    pub refsem_spot_checks: u64,
}

/// The result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// The run seed.
    pub seed: u64,
    /// Number of parties.
    pub parties: usize,
    /// Logical ticks the run lasted.
    pub ticks: u64,
    /// Final repository head version.
    pub head: u64,
    /// Run counters.
    pub stats: SimStats,
    /// Exact number of invariant violations detected.
    pub invariant_violations: u64,
    /// The first [`MAX_RECORDED`] violations, in detection order.
    pub violations: Vec<Violation>,
    /// FNV-1a hash over the full `(tick, event)` trace. Equal hashes for
    /// equal `(seed, scenario)` runs is the reproducibility contract.
    pub trace_hash: u64,
    /// The full trace lines, when recording was requested (tests and
    /// post-mortems; off by default — hashing is always on).
    pub trace: Option<Vec<String>>,
    /// Healthily-served decision effects (decision, obligations, penalty)
    /// keyed by `(version, workload index)` — the corpus a chaos run's
    /// decisions are compared against when this run is the never-faulted
    /// reference.
    pub served: HashMap<(u64, usize), DecisionEffects>,
    /// Decisions that disagreed with the supplied reference corpus.
    pub reference_mismatches: u64,
    /// Wall-clock time of the run (measured around the event loop; not
    /// part of the simulation).
    pub elapsed: Duration,
}

impl SimReport {
    /// Decisions per wall-clock second (0.0 for an instant run).
    pub fn decisions_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.stats.decisions as f64 / secs
        } else {
            0.0
        }
    }
}

/// Optional run knobs for [`run_scenario_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RunConfig {
    /// Record every trace line (not just the hash). Costs memory at
    /// scale; meant for small-n determinism tests and post-mortems.
    pub record_trace: bool,
}

/// Runs `scenario` from `seed` with default knobs and no reference
/// corpus.
pub fn run_scenario(seed: u64, scenario: &Scenario) -> SimReport {
    run_scenario_with(seed, scenario, RunConfig::default(), None)
}

/// Runs `scenario` from `seed`. When `reference` is supplied (the
/// `served` corpus of a [`Scenario::reference`] run), every healthy
/// decision is additionally checked against it.
pub fn run_scenario_with(
    seed: u64,
    scenario: &Scenario,
    config: RunConfig,
    reference: Option<&HashMap<(u64, usize), DecisionEffects>>,
) -> SimReport {
    let mut sim = Simulation::new(seed, scenario, config, reference);
    sim.schedule_initial();
    let start = Instant::now();
    while let Some((tick, event)) = sim.queue.pop() {
        sim.record(tick, &event);
        sim.handle(tick, event);
    }
    let elapsed = start.elapsed();
    sim.into_report(elapsed)
}

struct Simulation<'a> {
    seed: u64,
    scenario: &'a Scenario,
    injector: ChaosInjector,
    queue: EventQueue,
    parties: Vec<SimParty>,
    head: u64,
    next_message_id: u64,
    stats: SimStats,
    checker: InvariantChecker,
    workload: Vec<Request>,
    trace_hash: u64,
    trace: Option<Vec<String>>,
    served: HashMap<(u64, usize), DecisionEffects>,
    reference: Option<&'a HashMap<(u64, usize), DecisionEffects>>,
    reference_mismatches: u64,
}

impl<'a> Simulation<'a> {
    fn new(
        seed: u64,
        scenario: &'a Scenario,
        config: RunConfig,
        reference: Option<&'a HashMap<(u64, usize), DecisionEffects>>,
    ) -> Simulation<'a> {
        let parties = (0..scenario.parties)
            .map(|i| {
                // A quarter of the fleet rides out faults on its last
                // good snapshot; the rest fails safe.
                let mode = if i % 4 == 3 {
                    DegradedMode::ServeLastGood
                } else {
                    DegradedMode::DenyByDefault
                };
                SimParty::new(i, mode)
            })
            .collect();
        Simulation {
            seed,
            scenario,
            injector: FaultInjector::new(seed, FaultPlan::default()).chaos(scenario.plan.clone()),
            queue: EventQueue::new(),
            parties,
            head: 0,
            next_message_id: 0,
            stats: SimStats::default(),
            checker: InvariantChecker::new(),
            workload: decision_workload(),
            trace_hash: FNV_OFFSET,
            trace: config.record_trace.then(Vec::new),
            served: HashMap::new(),
            reference,
            reference_mismatches: 0,
        }
    }

    /// Node id of the shared policy repository.
    fn repo(&self) -> NodeId {
        self.parties.len()
    }

    fn schedule_initial(&mut self) {
        let s = self.scenario;
        for i in 0..s.parties {
            // Staggered phases so the fleet's periodic traffic spreads
            // across ticks instead of spiking.
            self.queue.push(
                1 + (i as u64 % s.gossip_interval),
                Event::Gossip {
                    party: i,
                    periodic: true,
                },
            );
            self.queue.push(
                2 + (i as u64 % s.refresh_interval),
                Event::RefreshTick { party: i },
            );
        }
        self.queue.push(1, Event::DecideWave);
        for &t in &s.publish_at {
            self.queue.push(t, Event::PublishVersion);
        }
        for &t in &s.mass_refresh_at {
            self.queue.push(t, Event::MassRefresh);
        }
        for (idx, p) in s.plan.partitions.iter().enumerate() {
            self.queue.push(p.at, Event::PartitionStart { idx });
            self.queue.push(p.heal_at, Event::PartitionHeal { idx });
        }
        for (idx, w) in s.plan.crash_waves.iter().enumerate() {
            self.queue.push(w.at, Event::CrashWaveStart { idx });
            self.queue
                .push(w.at + w.restart_after, Event::CrashWaveRestart { idx });
        }
        for (idx, w) in s.plan.degraded_waves.iter().enumerate() {
            self.queue.push(w.from, Event::DegradedWaveStart { idx });
            self.queue.push(w.until, Event::DegradedWaveEnd { idx });
        }
        self.queue.push(s.ticks, Event::FinalCheck);
    }

    /// Folds the event into the trace hash (and the recorded trace, when
    /// on). The trace covers every event *popped*, in order — the chaos
    /// outcomes downstream are pure functions of this sequence, so equal
    /// traces imply equal runs.
    fn record(&mut self, tick: u64, event: &Event) {
        let line = format!("{tick:06} {event:?}");
        for &b in line.as_bytes() {
            self.trace_hash ^= u64::from(b);
            self.trace_hash = self.trace_hash.wrapping_mul(FNV_PRIME);
        }
        if let Some(trace) = &mut self.trace {
            trace.push(line);
        }
    }

    fn handle(&mut self, tick: u64, event: Event) {
        match event {
            Event::PublishVersion => self.publish_version(tick),
            Event::MassRefresh => {
                self.stats.mass_refreshes += 1;
                for p in 0..self.parties.len() {
                    self.attempt_refresh(tick, p);
                }
            }
            Event::Gossip { party, periodic } => self.gossip(tick, party, periodic),
            Event::RefreshTick { party } => {
                let next = tick + self.scenario.refresh_interval;
                if next <= self.scenario.ticks {
                    self.queue.push(next, Event::RefreshTick { party });
                }
                self.attempt_refresh(tick, party);
            }
            Event::Deliver { message } => self.deliver(tick, message),
            Event::DecideWave => self.decide_wave(tick),
            Event::PartitionStart { idx } => {
                self.stats.partitions += 1;
                let _ = idx;
                agenp_obs::dump_if_enabled("chaos.partition");
            }
            Event::PartitionHeal { idx } => {
                self.stats.heals += 1;
                let _ = idx;
                self.queue.push(
                    tick + self.scenario.reconvergence_bound(),
                    Event::ConvergenceCheck {
                        floor: self.head,
                        heal_tick: tick,
                    },
                );
                agenp_obs::dump_if_enabled("chaos.heal");
            }
            Event::CrashWaveStart { idx } => {
                let wave = self.scenario.plan.crash_waves[idx];
                for p in 0..self.parties.len() {
                    if wave.hits(p) && self.parties[p].up {
                        self.parties[p].crash();
                        self.stats.crashes += 1;
                    }
                }
                agenp_obs::dump_if_enabled("chaos.crash");
            }
            Event::CrashWaveRestart { idx } => {
                let wave = self.scenario.plan.crash_waves[idx];
                let repo = self.repo();
                for p in 0..self.parties.len() {
                    if wave.hits(p) && !self.parties[p].up {
                        self.parties[p].restart();
                        self.stats.restarts += 1;
                        // A restarted party refreshes immediately rather
                        // than waiting out its periodic interval.
                        self.send(tick, p, repo, Payload::RefreshReq);
                    }
                }
                agenp_obs::dump_if_enabled("chaos.restart");
            }
            Event::DegradedWaveStart { idx } => {
                let _ = idx;
                agenp_obs::dump_if_enabled("chaos.degraded-wave");
            }
            Event::DegradedWaveEnd { idx } => {
                let _ = idx;
                agenp_obs::dump_if_enabled("chaos.degraded-wave-end");
            }
            Event::ConvergenceCheck { floor, heal_tick } => {
                self.convergence_check(tick, floor, heal_tick)
            }
            Event::FinalCheck => self.final_check(tick),
        }
    }

    fn publish_version(&mut self, tick: u64) {
        self.head += 1;
        self.stats.publishes += 1;
        let head = self.head;
        let repo = self.repo();
        let n = self.parties.len() as u64;
        let mut rng = SimRng::from_parts(&[self.seed, STREAM_PUSH, head]);
        for _ in 0..self.scenario.push_fanout {
            let to = rng.below(n) as usize;
            self.send(tick, repo, to, Payload::Advertise { version: head });
        }
    }

    fn gossip(&mut self, tick: u64, party: usize, periodic: bool) {
        if periodic {
            let next = tick + self.scenario.gossip_interval;
            if next <= self.scenario.ticks {
                self.queue.push(
                    next,
                    Event::Gossip {
                        party,
                        periodic: true,
                    },
                );
            }
        }
        let p = &self.parties[party];
        if !p.up || p.recovering || p.version == 0 {
            return;
        }
        let version = p.version;
        let n = self.parties.len();
        let mut rng = SimRng::from_parts(&[self.seed, STREAM_PEERS, tick, party as u64]);
        for _ in 0..self.scenario.fanout {
            let mut peer = rng.below((n - 1) as u64) as usize;
            if peer >= party {
                peer += 1;
            }
            self.send(tick, party, peer, Payload::Advertise { version });
        }
    }

    /// One refresh attempt by `party`: under a degraded wave the attempt
    /// fails party-side (deny-by-default parties publish a degraded
    /// denying snapshot); otherwise a request goes to the repository.
    fn attempt_refresh(&mut self, tick: u64, party: usize) {
        if !self.parties[party].up {
            return;
        }
        if self.injector.wave_failing(tick, party) {
            self.stats.refresh_failures += 1;
            let p = &mut self.parties[party];
            if p.mode == DegradedMode::DenyByDefault && p.serving != Serving::Denying {
                p.publish_denying(AmsError::Unavailable(format!(
                    "refresh failed under degraded wave at tick {tick}"
                )));
                self.stats.degraded_publishes += 1;
            }
            return;
        }
        let repo = self.repo();
        self.send(tick, party, repo, Payload::RefreshReq);
    }

    /// Hands a message to the fabric: the chaos layer may lose it,
    /// duplicate it, or delay it into reordering. Delivery is scheduled
    /// on the logical clock; partitions cut messages at delivery time
    /// (in-flight messages crossing a fresh partition boundary die).
    fn send(&mut self, tick: u64, from: NodeId, to: NodeId, payload: Payload) {
        let id = self.next_message_id;
        self.next_message_id += 1;
        self.stats.messages_sent += 1;
        if self.injector.drops_message(tick, id) {
            self.stats.dropped_loss += 1;
            return;
        }
        let (delay, straggler) = self.injector.message_delay(tick, id);
        if straggler {
            self.stats.stragglers += 1;
        }
        let message = Message {
            id,
            from,
            to,
            payload,
        };
        if self.injector.duplicates_message(tick, id) {
            self.stats.duplicated += 1;
            // The copy takes its own (independent) delay, keyed off a
            // disjoint id so the two deliveries can reorder.
            let (dup_delay, dup_straggler) = self.injector.message_delay(tick, id | (1 << 63));
            if dup_straggler {
                self.stats.stragglers += 1;
            }
            self.queue.push(
                tick + dup_delay,
                Event::Deliver {
                    message: message.clone(),
                },
            );
        }
        self.queue.push(tick + delay, Event::Deliver { message });
    }

    fn deliver(&mut self, tick: u64, message: Message) {
        if self.injector.severed(tick, message.from, message.to) {
            self.stats.dropped_partition += 1;
            return;
        }
        self.stats.delivered += 1;
        if message.to == self.repo() {
            if message.payload == Payload::RefreshReq {
                let head = self.head;
                let repo = self.repo();
                self.send(
                    tick,
                    repo,
                    message.from,
                    Payload::RefreshAck { version: head },
                );
            }
            return;
        }
        if !self.parties[message.to].up {
            self.stats.dropped_down += 1;
            return;
        }
        match message.payload {
            Payload::Advertise { version } | Payload::RefreshAck { version } => {
                self.try_adopt(tick, message.to, version)
            }
            Payload::RefreshReq => {}
        }
    }

    /// Adoption rule: take any strictly newer version; a denying party
    /// (bootstrap, crash-restart, degraded) also re-adopts its own
    /// version to get back to healthy serving. Parties under a degraded
    /// wave have their policy intake down entirely.
    fn try_adopt(&mut self, tick: u64, party: usize, version: u64) {
        if version == 0 || self.injector.wave_failing(tick, party) {
            return;
        }
        let p = &mut self.parties[party];
        let adopt = version > p.version || (p.serving == Serving::Denying && version >= p.version);
        if !adopt {
            return;
        }
        p.publish_healthy(version, coalition_policies(version));
        self.stats.adoptions += 1;
        // Rumor: a fresh adoption gossips once, off-cycle, spreading new
        // versions epidemically instead of waiting for the next period.
        self.queue.push(
            tick + 1,
            Event::Gossip {
                party,
                periodic: false,
            },
        );
    }

    fn decide_wave(&mut self, tick: u64) {
        let s = self.scenario;
        let next = tick + s.decide_every;
        if next <= s.ticks {
            self.queue.push(next, Event::DecideWave);
        }
        let n = self.parties.len();
        let wave = (tick / s.decide_every) as usize;
        let mut rng = SimRng::from_parts(&[self.seed, STREAM_WORKLOAD, tick]);
        for k in 0..s.decide_parties {
            let party = (wave.wrapping_mul(s.decide_parties) + k) % n;
            if !self.parties[party].up {
                continue;
            }
            // Serve the wave as one batch: the snapshot is pinned and
            // revalidated once, duplicates inside the wave are answered
            // once, and every outcome shares the wave's epoch.
            let idxs: Vec<usize> = (0..s.decide_batch)
                .map(|_| rng.below(self.workload.len() as u64) as usize)
                .collect();
            let wave_requests: Vec<agenp_policy::Request> =
                idxs.iter().map(|&i| self.workload[i].clone()).collect();
            let mut pin = self.parties[party].handle().pin();
            let outcomes = pin.decide_batch(&wave_requests);
            for (&idx, outcome) in idxs.iter().zip(&outcomes) {
                let outcome = outcome.clone();
                self.stats.decisions += 1;
                match outcome.decision {
                    Decision::Permit => self.stats.permits += 1,
                    Decision::Deny => self.stats.denies += 1,
                    Decision::NotApplicable | Decision::Indeterminate => self.stats.gaps += 1,
                }
                let serving_version = match self.parties[party].serving {
                    Serving::Healthy { version } => Some(version),
                    Serving::Denying => None,
                };
                self.checker.check_outcome(
                    tick,
                    party,
                    serving_version,
                    self.parties[party].last_publish_epoch,
                    self.head,
                    idx,
                    &self.workload[idx],
                    &outcome,
                );
                if let Some(version) = serving_version {
                    if version < self.head {
                        self.stats.stale_serves += 1;
                    }
                    if outcome.error.is_none() {
                        let effects = outcome.effects();
                        if let Some(reference) = self.reference {
                            if let Some(want) = reference.get(&(version, idx)) {
                                if *want != effects {
                                    self.reference_mismatches += 1;
                                    self.checker.report(
                                        tick,
                                        Some(party),
                                        "decision-parity",
                                        format!(
                                            "reference run disagrees at v{version} request \
                                             {idx}: {effects:?} vs {want:?}"
                                        ),
                                    );
                                }
                            }
                        }
                        // Differential spot-check against the independent
                        // refsem reference evaluator: sampled on the
                        // decision counter and budget-bounded, with no RNG
                        // draws, so replay stays byte-identical.
                        if self.stats.decisions.is_multiple_of(REFSEM_SPOT_EVERY)
                            && self.stats.refsem_spot_checks < REFSEM_SPOT_BUDGET
                        {
                            self.stats.refsem_spot_checks += 1;
                            let want = agenp_refsem::reference::effects_reference(
                                &coalition_policies(version),
                                CombiningAlg::DenyOverrides,
                                &self.workload[idx],
                            );
                            if effects != want {
                                self.checker.report(
                                    tick,
                                    Some(party),
                                    "refsem-parity",
                                    format!(
                                        "refsem reference disagrees at v{version} request \
                                         {idx}: {effects:?} vs {want:?}"
                                    ),
                                );
                            }
                        }
                        self.served.insert((version, idx), effects);
                    }
                }
            }
        }
    }

    /// Bounded reconvergence: every party that was reachable since the
    /// heal must have caught up to the head as of heal time. Parties
    /// still recovering from a crash or sitting in a degraded wave that
    /// overlaps the window are exempt; if another partition started in
    /// the meantime the check is skipped (its own heal schedules a new
    /// one).
    fn convergence_check(&mut self, tick: u64, floor: u64, heal_tick: u64) {
        self.stats.convergence_checks += 1;
        if self.injector.partition_at(tick).is_some() {
            self.stats.convergence_skipped += 1;
            return;
        }
        for party in 0..self.parties.len() {
            let p = &self.parties[party];
            if !p.up || p.recovering || self.injector.wave_overlaps(party, heal_tick, tick) {
                continue;
            }
            if p.version < floor {
                let version = p.version;
                self.checker.report(
                    tick,
                    Some(party),
                    "reconvergence",
                    format!(
                        "still at v{version} (< v{floor}) {} ticks after heal",
                        tick - heal_tick
                    ),
                );
            }
        }
    }

    /// End-of-run sweep: chaos has long quiesced, so every party must be
    /// up, recovered, and serving exactly the head version.
    fn final_check(&mut self, tick: u64) {
        let head = self.head;
        for party in 0..self.parties.len() {
            let p = &self.parties[party];
            if !p.up || p.recovering || p.serving != (Serving::Healthy { version: head }) {
                let detail = format!(
                    "up={} recovering={} serving={:?} head=v{head}",
                    p.up, p.recovering, p.serving
                );
                self.checker
                    .report(tick, Some(party), "final-convergence", detail);
            }
        }
    }

    fn into_report(self, elapsed: Duration) -> SimReport {
        SimReport {
            scenario: self.scenario.name,
            seed: self.seed,
            parties: self.parties.len(),
            ticks: self.scenario.ticks,
            head: self.head,
            stats: self.stats,
            invariant_violations: self.checker.total(),
            trace_hash: self.trace_hash,
            trace: self.trace,
            served: self.served,
            reference_mismatches: self.reference_mismatches,
            violations: self.checker.into_recorded(),
            elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_converges_with_zero_violations() {
        let scenario = Scenario::mass_reground(32);
        let report = run_scenario(7, &scenario);
        assert_eq!(
            report.invariant_violations, 0,
            "violations: {:?}",
            report.violations
        );
        assert_eq!(report.head, scenario.publish_at.len() as u64);
        assert!(report.stats.decisions > 0);
        assert!(report.stats.adoptions >= 32, "every party must adopt");
        assert!(report.stats.refresh_failures > 0, "the wave must bite");
        assert!(report.stats.degraded_publishes > 0);
        assert!(!report.served.is_empty());
    }

    #[test]
    fn chaos_run_matches_reference_corpus() {
        let scenario = Scenario::crash_restart(24);
        let reference = run_scenario(11, &scenario.reference());
        assert_eq!(reference.invariant_violations, 0);
        assert_eq!(reference.stats.crashes, 0);
        let chaos = run_scenario_with(11, &scenario, RunConfig::default(), Some(&reference.served));
        assert_eq!(
            chaos.invariant_violations, 0,
            "violations: {:?}",
            chaos.violations
        );
        assert_eq!(chaos.reference_mismatches, 0);
        assert!(chaos.stats.crashes > 0);
        assert_eq!(chaos.stats.crashes, chaos.stats.restarts);
    }
}
