//! The deterministic discrete-event scheduler: a logical clock and a
//! priority queue of timestamped events. No wall clock, no threads — the
//! simulation core is a single loop popping events in `(tick, sequence)`
//! order, where the sequence number is assigned at push time so same-tick
//! events retain FIFO order. Two runs that push the same events in the
//! same order therefore pop them in the same order, which is the
//! foundation of the fabric's byte-identical replay guarantee.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A node in the simulated fabric: parties are `0..n`, and the shared
/// policy repository is node `n` (see [`crate::sim`]).
pub type NodeId = usize;

/// What a fabric message carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Gossip: "I have adopted coalition policy version `version`".
    /// Receivers behind that version refresh up to it (the policy set is
    /// derivable from the version — the gossip carries the policy).
    Advertise {
        /// The sender's adopted version.
        version: u64,
    },
    /// A refresh request to the shared repository.
    RefreshReq,
    /// The repository's reply: the current head version.
    RefreshAck {
        /// The repository head at reply time.
        version: u64,
    },
}

/// One in-flight fabric message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Unique, deterministic message id (send order).
    pub id: u64,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The payload.
    pub payload: Payload,
}

/// Everything that can happen in the simulation, scheduled on the logical
/// clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// The shared repository publishes the next coalition policy version
    /// (a context shift) and pushes it to a few seed parties.
    PublishVersion,
    /// Every party refreshes against the repository at once (the paper's
    /// mass re-ground after a context shift).
    MassRefresh,
    /// A party runs one gossip round. Periodic rounds reschedule
    /// themselves; rumor-triggered rounds (after an adoption) fire once.
    Gossip {
        /// The gossiping party.
        party: NodeId,
        /// Whether this round reschedules itself.
        periodic: bool,
    },
    /// A party's periodic anti-entropy refresh against the repository.
    RefreshTick {
        /// The refreshing party.
        party: NodeId,
    },
    /// A message arrives at its destination (chaos permitting).
    Deliver {
        /// The message being delivered.
        message: Message,
    },
    /// One tick's worth of decision traffic: a rotating slice of parties
    /// each serves a batch of requests through its `PdpHandle`.
    DecideWave,
    /// A scheduled partition begins.
    PartitionStart {
        /// Index into the chaos plan's partition list.
        idx: usize,
    },
    /// A scheduled partition heals.
    PartitionHeal {
        /// Index into the chaos plan's partition list.
        idx: usize,
    },
    /// A crash wave fires: its victims lose all state and go down.
    CrashWaveStart {
        /// Index into the chaos plan's crash-wave list.
        idx: usize,
    },
    /// A crash wave's victims restart (recovering, deny-by-default).
    CrashWaveRestart {
        /// Index into the chaos plan's crash-wave list.
        idx: usize,
    },
    /// A degraded-mode wave begins (refreshes start failing for victims).
    DegradedWaveStart {
        /// Index into the chaos plan's degraded-wave list.
        idx: usize,
    },
    /// A degraded-mode wave ends.
    DegradedWaveEnd {
        /// Index into the chaos plan's degraded-wave list.
        idx: usize,
    },
    /// Bounded-reconvergence check scheduled after a partition heal:
    /// every eligible party must have caught up to `floor` by now.
    ConvergenceCheck {
        /// The repository head at heal time.
        floor: u64,
        /// The tick the partition healed.
        heal_tick: u64,
    },
    /// End-of-run sweep: with chaos quiesced, every party must be up,
    /// recovered, and serving the head version.
    FinalCheck,
}

#[derive(Clone, Debug)]
struct Scheduled {
    at: u64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Scheduled) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Scheduled) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Scheduled) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (tick, seq)
        // pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The event queue: a seeded simulation's only source of "time".
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue at tick 0.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules `event` at tick `at`. Same-tick events pop in push order.
    pub fn push(&mut self, at: u64, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pops the earliest event as `(tick, event)`.
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Events still scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_tick_then_fifo_order() {
        let mut q = EventQueue::new();
        q.push(5, Event::PublishVersion);
        q.push(3, Event::DecideWave);
        q.push(3, Event::MassRefresh);
        q.push(1, Event::FinalCheck);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((1, Event::FinalCheck)));
        // Same tick: FIFO by push order, deterministically.
        assert_eq!(q.pop(), Some((3, Event::DecideWave)));
        assert_eq!(q.pop(), Some((3, Event::MassRefresh)));
        assert_eq!(q.pop(), Some((5, Event::PublishVersion)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn identical_push_sequences_pop_identically() {
        let build = || {
            let mut q = EventQueue::new();
            for i in 0..200u64 {
                q.push(
                    i % 7,
                    Event::Gossip {
                        party: i as usize,
                        periodic: i % 2 == 0,
                    },
                );
            }
            q
        };
        let (mut a, mut b) = (build(), build());
        while let Some(x) = a.pop() {
            assert_eq!(Some(x), b.pop());
        }
        assert!(b.pop().is_none());
    }
}
