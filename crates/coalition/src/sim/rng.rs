//! Seeded, allocation-free pseudo-randomness for the simulation fabric.
//!
//! The chaos fabric's reproducibility contract — identical `(seed,
//! scenario)` runs produce byte-identical event traces — rules out any
//! source of entropy outside the seed. This module provides the two
//! primitives everything else derives randomness from:
//!
//! * [`mix`] — a stateless SplitMix64-style finalizer over a slice of
//!   words. Point decisions (does message 4711 get dropped? which group
//!   does party 17 land in?) hash `(seed, stream, id…)` directly, so the
//!   answer is a pure function with no hidden state to drift.
//! * [`SimRng`] — a SplitMix64 sequence for the few places that need a
//!   stream of values (gossip peer selection, workload sampling), always
//!   forked from `(seed, stream, …)` so event-processing order cannot
//!   perturb unrelated draws.

/// The SplitMix64 increment (the golden-ratio constant).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output finalizer: a strong 64-bit avalanche.
#[inline]
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a sequence of words into one well-mixed 64-bit value. Pure and
/// order-sensitive: `mix(&[a, b]) != mix(&[b, a])` in general.
pub fn mix(parts: &[u64]) -> u64 {
    let mut acc: u64 = 0x243F_6A88_85A3_08D3; // pi, for a non-zero empty hash
    for &p in parts {
        acc = finalize(acc.wrapping_add(GOLDEN).wrapping_add(p));
    }
    acc
}

/// Maps a hash to the unit interval `[0, 1)` with 53 bits of precision.
#[inline]
pub fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A SplitMix64 pseudo-random stream.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A stream seeded from `parts` (typically `(seed, stream, tick, …)`).
    pub fn from_parts(parts: &[u64]) -> SimRng {
        SimRng { state: mix(parts) }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        finalize(self.state)
    }

    /// A uniform value in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift reduction: unbiased enough for simulation use,
        // and (unlike rejection sampling) consumes exactly one draw, so
        // the stream position stays schedule-independent.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        unit(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_pure_and_order_sensitive() {
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[3, 2, 1]));
        assert_ne!(mix(&[0]), mix(&[]));
    }

    #[test]
    fn streams_are_reproducible_and_bounded() {
        let mut a = SimRng::from_parts(&[42, 7]);
        let mut b = SimRng::from_parts(&[42, 7]);
        for _ in 0..1000 {
            let x = a.below(13);
            assert_eq!(x, b.below(13));
            assert!(x < 13);
            let u = a.unit_f64();
            assert!((0.0..1.0).contains(&u));
            b.unit_f64();
        }
        let mut c = SimRng::from_parts(&[43, 7]);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
