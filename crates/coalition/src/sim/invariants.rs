//! Continuously-asserted invariants for chaos runs.
//!
//! Every decision a simulated party renders is checked on the spot:
//!
//! * **No stale-epoch serves** — the outcome's epoch must be exactly the
//!   epoch of the party's most recent publish; an older epoch means a
//!   decision escaped a snapshot swap.
//! * **Deny-by-default** — a party whose current snapshot is denying
//!   (bootstrap, crash-restart state loss, degraded publish) must render
//!   `Deny` and carry the degradation error on every decision.
//! * **Decision parity** — a healthy party serving version `v` must
//!   render exactly what [`coalition_policies`]`(v)` evaluates to for the
//!   request (memoized per `(version, request)`) — the **full** decision
//!   effects: decision, obligations, and penalty, not just permit/deny —
//!   and must never be ahead of the repository head.
//!
//! Scheduled checks (bounded reconvergence after heal, final
//! convergence) report through the same [`InvariantChecker`]. Violations
//! are counted exactly and the first [`MAX_RECORDED`] are kept with full
//! detail for the post-mortem.

use super::scenario::coalition_policies;
use agenp_core::arch::DecisionOutcome;
use agenp_policy::{evaluate_policies_effects, CombiningAlg, Decision, DecisionEffects, Request};
use std::collections::HashMap;

/// Violations kept with full detail (the count is always exact).
pub const MAX_RECORDED: usize = 32;

/// One invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Tick the violation was detected.
    pub tick: u64,
    /// The party involved, if party-specific.
    pub party: Option<usize>,
    /// Stable violation kind: `stale-epoch`, `deny-by-default`,
    /// `decision-parity`, `refsem-parity`, `version-ahead`,
    /// `reconvergence`, `final-convergence`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// Checks every decision and scheduled assertion in a chaos run.
#[derive(Debug, Default)]
pub struct InvariantChecker {
    expected: HashMap<(u64, usize), DecisionEffects>,
    recorded: Vec<Violation>,
    total: u64,
}

impl InvariantChecker {
    /// A fresh checker.
    pub fn new() -> InvariantChecker {
        InvariantChecker::default()
    }

    /// The expected decision effects for workload request `idx` under
    /// coalition policy version `version` (memoized pure evaluation).
    pub fn expected(&mut self, version: u64, idx: usize, request: &Request) -> &DecisionEffects {
        self.expected.entry((version, idx)).or_insert_with(|| {
            evaluate_policies_effects(
                &coalition_policies(version),
                CombiningAlg::DenyOverrides,
                request,
            )
        })
    }

    /// Records a violation (detail kept for the first [`MAX_RECORDED`]).
    pub fn report(&mut self, tick: u64, party: Option<usize>, kind: &'static str, detail: String) {
        self.total += 1;
        if self.recorded.len() < MAX_RECORDED {
            self.recorded.push(Violation {
                tick,
                party,
                kind,
                detail,
            });
        }
    }

    /// Checks one rendered decision. `serving_version` is `Some(v)` when
    /// the party's current snapshot is healthy at version `v`, `None`
    /// when it is denying; `last_publish_epoch` is the epoch the party's
    /// most recent publish was assigned; `head` is the repository head.
    #[allow(clippy::too_many_arguments)] // one call site; a params struct would only rename the nine fields
    pub fn check_outcome(
        &mut self,
        tick: u64,
        party: usize,
        serving_version: Option<u64>,
        last_publish_epoch: u64,
        head: u64,
        idx: usize,
        request: &Request,
        outcome: &DecisionOutcome,
    ) {
        if outcome.epoch != last_publish_epoch {
            self.report(
                tick,
                Some(party),
                "stale-epoch",
                format!(
                    "outcome epoch {} but last publish was {}",
                    outcome.epoch, last_publish_epoch
                ),
            );
        }
        match serving_version {
            None => {
                if outcome.decision != Decision::Deny || outcome.error.is_none() {
                    self.report(
                        tick,
                        Some(party),
                        "deny-by-default",
                        format!(
                            "denying snapshot rendered {:?} (error: {})",
                            outcome.decision,
                            outcome.error.is_some()
                        ),
                    );
                }
            }
            Some(version) => {
                if version > head {
                    self.report(
                        tick,
                        Some(party),
                        "version-ahead",
                        format!("serving v{version} but repository head is v{head}"),
                    );
                }
                let want = self.expected(version, idx, request).clone();
                if outcome.error.is_some() || outcome.effects() != want {
                    self.report(
                        tick,
                        Some(party),
                        "decision-parity",
                        format!(
                            "v{version} request {idx}: got {:?} (error: {}), expected {want:?}",
                            outcome.effects(),
                            outcome.error.is_some(),
                        ),
                    );
                }
            }
        }
    }

    /// Exact number of violations detected.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The recorded violations (first [`MAX_RECORDED`], in order).
    pub fn recorded(&self) -> &[Violation] {
        &self.recorded
    }

    /// Consumes the checker into its recorded violations.
    pub fn into_recorded(self) -> Vec<Violation> {
        self.recorded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agenp_core::arch::{AmsError, DecisionSnapshot, PdpHandle};
    use agenp_policy::CombiningAlg;

    fn outcome_for(version: u64, request: &Request) -> (DecisionOutcome, u64) {
        let handle = PdpHandle::new();
        let epoch = handle.publish(DecisionSnapshot::new(
            coalition_policies(version),
            CombiningAlg::DenyOverrides,
        ));
        (handle.decide(request), epoch)
    }

    #[test]
    fn clean_outcomes_pass_and_violations_are_caught() {
        let mut c = InvariantChecker::new();
        let req = Request::new()
            .subject("role", "auditor")
            .action("kind", "read");
        let (ok, epoch) = outcome_for(1, &req);
        c.check_outcome(5, 0, Some(1), epoch, 1, 0, &req, &ok);
        assert_eq!(c.total(), 0);

        // Same outcome claimed against a newer publish: stale epoch.
        c.check_outcome(6, 0, Some(1), epoch + 1, 1, 0, &req, &ok);
        assert_eq!(c.total(), 1);
        assert_eq!(c.recorded()[0].kind, "stale-epoch");

        // A healthy permit from a party that should be denying.
        c.check_outcome(7, 1, None, epoch, 1, 0, &req, &ok);
        assert!(c.recorded().iter().any(|v| v.kind == "deny-by-default"));

        // Serving ahead of the repository head.
        c.check_outcome(8, 2, Some(3), epoch, 1, 0, &req, &ok);
        assert!(c.recorded().iter().any(|v| v.kind == "version-ahead"));

        // Wrong decision for the claimed version: operator is only
        // permitted on odd versions.
        let op = Request::new()
            .subject("role", "operator")
            .action("kind", "read");
        let (odd, odd_epoch) = outcome_for(1, &op);
        c.check_outcome(9, 3, Some(2), odd_epoch, 2, 4, &op, &odd);
        assert!(c.recorded().iter().any(|v| v.kind == "decision-parity"));
    }

    #[test]
    fn denying_outcomes_must_carry_the_error() {
        let mut c = InvariantChecker::new();
        let req = Request::new()
            .subject("role", "guest")
            .action("kind", "read");
        let handle = PdpHandle::new();
        let epoch = handle.publish(
            DecisionSnapshot::new(Vec::new(), CombiningAlg::DenyOverrides)
                .degraded(AmsError::Unavailable("test".into())),
        );
        let out = handle.decide(&req);
        c.check_outcome(1, 0, None, epoch, 0, 0, &req, &out);
        assert_eq!(c.total(), 0, "degraded deny with error is legitimate");
    }

    #[test]
    fn recording_caps_but_counting_does_not() {
        let mut c = InvariantChecker::new();
        for i in 0..(MAX_RECORDED as u64 + 10) {
            c.report(i, None, "reconvergence", "lag".to_owned());
        }
        assert_eq!(c.total(), MAX_RECORDED as u64 + 10);
        assert_eq!(c.recorded().len(), MAX_RECORDED);
    }
}
