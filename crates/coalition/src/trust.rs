//! A simple evidence-based trust model over coalition partners: trust in a
//! partner rises when their contributions are validated and falls when they
//! cause violations (paper §III-A-3: shared policies come from *trusted*
//! AMSs; §IV-D: "the trust among partners is not absolute").

use std::collections::HashMap;
use std::fmt;

/// Trust scores in `[0, 1]` per partner, with evidence-based updates.
#[derive(Clone, Debug, Default)]
pub struct TrustModel {
    scores: HashMap<String, f64>,
    /// Score assigned to partners never seen before.
    pub default_trust: f64,
}

impl TrustModel {
    /// A model with a neutral 0.5 default.
    pub fn new() -> TrustModel {
        TrustModel {
            scores: HashMap::new(),
            default_trust: 0.5,
        }
    }

    /// The current trust in a partner.
    pub fn trust(&self, partner: &str) -> f64 {
        self.scores
            .get(partner)
            .copied()
            .unwrap_or(self.default_trust)
    }

    /// Sets trust explicitly (clamped to `[0, 1]`).
    pub fn set(&mut self, partner: &str, value: f64) {
        self.scores
            .insert(partner.to_owned(), value.clamp(0.0, 1.0));
    }

    /// Positive evidence: move trust toward 1 by `rate`.
    pub fn reward(&mut self, partner: &str, rate: f64) {
        let t = self.trust(partner);
        self.set(partner, t + (1.0 - t) * rate.clamp(0.0, 1.0));
    }

    /// Negative evidence: move trust toward 0 by `rate`.
    pub fn penalize(&mut self, partner: &str, rate: f64) {
        let t = self.trust(partner);
        self.set(partner, t - t * rate.clamp(0.0, 1.0));
    }

    /// Partners with trust at or above the threshold.
    pub fn trusted(&self, threshold: f64) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .scores
            .iter()
            .filter(|(_, &t)| t >= threshold)
            .map(|(p, _)| p.as_str())
            .collect();
        v.sort_unstable();
        v
    }

    /// A discrete trust level 0–3 (used in symbolic contexts).
    pub fn level(&self, partner: &str) -> i64 {
        (self.trust(partner) * 4.0).floor().min(3.0) as i64
    }
}

impl fmt::Display for TrustModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<_> = self.scores.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        write!(f, "trust{{")?;
        for (i, (p, t)) in entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}: {t:.2}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evidence_updates_move_trust() {
        let mut t = TrustModel::new();
        assert!((t.trust("uk") - 0.5).abs() < 1e-9);
        t.reward("uk", 0.5);
        assert!(t.trust("uk") > 0.7);
        t.penalize("uk", 0.9);
        assert!(t.trust("uk") < 0.2);
        t.set("us", 2.0);
        assert!((t.trust("us") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn levels_are_discrete() {
        let mut t = TrustModel::new();
        t.set("a", 0.1);
        t.set("b", 0.6);
        t.set("c", 0.99);
        assert_eq!(t.level("a"), 0);
        assert_eq!(t.level("b"), 2);
        assert_eq!(t.level("c"), 3);
    }

    #[test]
    fn trusted_filter_sorts() {
        let mut t = TrustModel::new();
        t.set("zulu", 0.9);
        t.set("alpha", 0.8);
        t.set("mike", 0.2);
        assert_eq!(t.trusted(0.5), vec!["alpha", "zulu"]);
    }
}
