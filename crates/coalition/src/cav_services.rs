//! CAV capability sharing (paper §IV-A, second half): "CAVs of lower LOA
//! may be able to utilize capabilities or services from nearby CAVs of
//! higher LOA … the feasibility of these enhanced capabilities will require
//! policy sharing and will also be subject to temporal, spatial, and
//! utility constraints."
//!
//! A provider vehicle learns a GPM deciding whether to provide a service to
//! a requester, constrained spatially (distance), temporally (the mission
//! window), by capability (the provider's LOA must cover the service's
//! requirement), and by utility (no point providing what the requester can
//! already do itself).

use agenp_asp::{CmpOp, Program, Term};
use agenp_grammar::{Asg, ProdId};
use agenp_learn::{
    Example, HypothesisSpace, LearningTask, ModeArg, ModeAtom, ModeBias, ModeCmp, ModeLiteral,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shareable services and the provider LOA they require.
pub const SERVICES: [(&str, i64); 3] = [("sensing", 3), ("monitoring", 4), ("path_planning", 5)];

/// A service request between two vehicles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServiceRequest {
    /// Index into [`SERVICES`].
    pub service: usize,
    /// Provider vehicle LOA (0–5).
    pub provider_loa: i64,
    /// Requester vehicle LOA (0–5).
    pub requester_loa: i64,
    /// Grid distance between the vehicles (0–6).
    pub distance: i64,
    /// Is the request inside the mission's service window?
    pub in_window: bool,
}

impl ServiceRequest {
    /// Samples a random request.
    pub fn random(rng: &mut StdRng) -> ServiceRequest {
        ServiceRequest {
            service: rng.gen_range(0..SERVICES.len()),
            provider_loa: rng.gen_range(0..=5),
            requester_loa: rng.gen_range(0..=5),
            distance: rng.gen_range(0..=6),
            in_window: rng.gen_bool(0.7),
        }
    }

    /// The ASP context facts for the request.
    pub fn context(&self) -> Program {
        format!(
            "provider_loa({}). requester_loa({}). dist({}). in_window({}).",
            self.provider_loa,
            self.requester_loa,
            self.distance,
            if self.in_window { "yes" } else { "no" },
        )
        .parse()
        .expect("request facts always parse")
    }

    /// The policy string asking for the service.
    pub fn policy_text(&self) -> String {
        format!("provide {}", SERVICES[self.service].0)
    }
}

/// The ground-truth oracle: provide iff the provider's LOA covers the
/// service (capability), the vehicles are within range 2 (spatial), the
/// request is inside the mission window (temporal), and the requester
/// cannot perform the service itself (utility).
pub fn oracle(r: &ServiceRequest) -> bool {
    let req = SERVICES[r.service].1;
    r.provider_loa >= req && r.distance <= 2 && r.in_window && r.requester_loa < req
}

/// The service-sharing grammar.
pub fn grammar() -> Asg {
    let mut src = String::from("policy -> \"provide\" service { svc_req(X) :- sreq(X)@2. }\n");
    for (svc, req) in SERVICES {
        src.push_str(&format!(
            "service -> \"{svc}\" {{ svc({svc}). sreq({req}). }}\n"
        ));
    }
    src.parse().expect("service grammar is well-formed")
}

/// The production id of the provide rule.
pub fn provide_production() -> ProdId {
    ProdId::from_index(0)
}

/// The hypothesis space over capability, distance, window, and requester
/// LOA.
pub fn hypothesis_space() -> HypothesisSpace {
    ModeBias::constraints(
        vec![provide_production()],
        vec![
            ModeLiteral::positive(ModeAtom::local("svc_req", vec![ModeArg::Var])),
            ModeLiteral::positive(ModeAtom::local("provider_loa", vec![ModeArg::Var])),
            ModeLiteral::positive(ModeAtom::local("requester_loa", vec![ModeArg::Var])),
            ModeLiteral::positive(ModeAtom::local("dist", vec![ModeArg::Var])),
            ModeLiteral::positive(ModeAtom::local(
                "in_window",
                vec![ModeArg::Choice(vec![Term::sym("yes"), Term::sym("no")])],
            )),
        ],
    )
    .max_body(2)
    .max_vars(2)
    .with_comparisons(vec![ModeCmp {
        ops: vec![CmpOp::Ge],
        constants: vec![Term::Int(2), Term::Int(3), Term::Int(4)],
    }])
    .with_var_comparisons(vec![CmpOp::Lt, CmpOp::Le])
    .generate()
}

/// Builds the learning task from `n` labelled requests.
pub fn learning_task(n: usize, seed: u64) -> LearningTask {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut task = LearningTask::new(grammar(), hypothesis_space());
    for _ in 0..n {
        let r = ServiceRequest::random(&mut rng);
        let e = Example::in_context(r.policy_text(), r.context());
        if oracle(&r) {
            task = task.pos(e);
        } else {
            task = task.neg(e);
        }
    }
    task
}

/// Accuracy of a learned GPM on fresh requests.
pub fn gpm_accuracy(gpm: &Asg, n: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let correct = (0..n)
        .filter(|_| {
            let r = ServiceRequest::random(&mut rng);
            let predicted = gpm
                .with_context(&r.context())
                .accepts(&r.policy_text())
                .unwrap_or(false);
            predicted == oracle(&r)
        })
        .count();
    correct as f64 / n.max(1) as f64
}

/// Outcome of a fleet simulation: how many tasks low-LOA vehicles completed
/// with and without capability sharing.
#[derive(Clone, Copy, Debug)]
pub struct FleetOutcome {
    /// Tasks completed using a shared service under the learned policy.
    pub shared_completions: usize,
    /// Tasks completed without any sharing (own capability only).
    pub solo_completions: usize,
    /// Total tasks attempted.
    pub attempts: usize,
    /// Shares the learned policy granted that the oracle would refuse.
    pub improper_shares: usize,
}

/// Simulates a fleet: each round a random low-LOA vehicle needs a service;
/// a random nearby vehicle may provide it under the learned GPM.
pub fn simulate_fleet(gpm: &Asg, rounds: usize, seed: u64) -> FleetOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shared = 0;
    let mut solo = 0;
    let mut improper = 0;
    for _ in 0..rounds {
        let service = rng.gen_range(0..SERVICES.len());
        let req = SERVICES[service].1;
        let requester_loa = rng.gen_range(0..=5);
        if requester_loa >= req {
            solo += 1;
            continue;
        }
        let r = ServiceRequest {
            service,
            provider_loa: rng.gen_range(0..=5),
            requester_loa,
            distance: rng.gen_range(0..=6),
            in_window: rng.gen_bool(0.7),
        };
        let granted = gpm
            .with_context(&r.context())
            .accepts(&r.policy_text())
            .unwrap_or(false);
        if granted {
            shared += 1;
            if !oracle(&r) {
                improper += 1;
            }
        }
    }
    FleetOutcome {
        shared_completions: shared,
        solo_completions: solo,
        attempts: rounds,
        improper_shares: improper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agenp_learn::Learner;

    #[test]
    fn oracle_encodes_all_four_constraint_kinds() {
        let base = ServiceRequest {
            service: 0, // sensing, req 3
            provider_loa: 4,
            requester_loa: 1,
            distance: 1,
            in_window: true,
        };
        assert!(oracle(&base));
        assert!(!oracle(&ServiceRequest {
            provider_loa: 2,
            ..base
        })); // capability
        assert!(!oracle(&ServiceRequest {
            distance: 4,
            ..base
        })); // spatial
        assert!(!oracle(&ServiceRequest {
            in_window: false,
            ..base
        })); // temporal
        assert!(!oracle(&ServiceRequest {
            requester_loa: 5,
            ..base
        })); // utility
    }

    #[test]
    fn learns_service_sharing_policy() {
        let task = learning_task(100, 31);
        let h = Learner::new().learn(&task).expect("learnable");
        let gpm = h.apply(&task.grammar);
        let acc = gpm_accuracy(&gpm, 400, 77);
        assert!(acc > 0.93, "accuracy {acc}; hypothesis:\n{h}");
    }

    #[test]
    fn governed_fleet_shares_properly() {
        let task = learning_task(120, 5);
        let h = Learner::new().learn(&task).expect("learnable");
        let gpm = h.apply(&task.grammar);
        let outcome = simulate_fleet(&gpm, 300, 99);
        assert!(outcome.shared_completions > 0, "{outcome:?}");
        assert!(
            (outcome.improper_shares as f64) < 0.1 * outcome.shared_completions as f64 + 3.0,
            "{outcome:?}"
        );
        assert!(outcome.solo_completions > 0);
    }

    #[test]
    fn ungoverned_grammar_overshares() {
        // The unconstrained grammar grants everything: many improper shares.
        let gpm = grammar();
        let outcome = simulate_fleet(&gpm, 300, 99);
        assert!(outcome.improper_shares > 50, "{outcome:?}");
    }
}
