//! Deterministic fault injection for coalition tests and chaos drills.
//!
//! A [`FaultPlan`] is an explicit list of [`Fault`]s keyed by node index;
//! the [`FaultInjector`] carries the plan plus the run seed and answers
//! point queries (`panics`, `slow_down`, `drops_report`, …) purely from
//! `(node, attempt)` — no hidden RNG state — so the same plan and seed
//! reproduce the same failure schedule on every run.

use std::time::Duration;

/// One injected fault, addressed to a node index in spawn order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The node's learning round panics on its first `times` attempts
    /// (`u32::MAX` = every attempt, i.e. a permanently crashed party).
    Panic {
        /// Target node index.
        node: usize,
        /// Number of attempts that panic before the node recovers.
        times: u32,
    },
    /// The node sleeps for `delay` at the start of every attempt.
    Slow {
        /// Target node index.
        node: usize,
        /// Added latency per attempt.
        delay: Duration,
    },
    /// The node's report is dropped (lost message) on its first `times`
    /// attempts; the fabric sees a failure and retries.
    DropReport {
        /// Target node index.
        node: usize,
        /// Number of attempts whose report is lost.
        times: u32,
    },
    /// The node's report is delayed by `delay` before delivery.
    DelayReport {
        /// Target node index.
        node: usize,
        /// Delivery latency.
        delay: Duration,
    },
    /// Every [`CasWiki`](crate::CasWiki) contribution the node makes has
    /// its validity flag flipped — a corrupted write.
    CorruptContribution {
        /// Target node index.
        node: usize,
    },
}

impl Fault {
    fn node(&self) -> usize {
        match self {
            Fault::Panic { node, .. }
            | Fault::Slow { node, .. }
            | Fault::DropReport { node, .. }
            | Fault::DelayReport { node, .. }
            | Fault::CorruptContribution { node } => *node,
        }
    }
}

/// An ordered collection of faults to inject into one coalition run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault to the plan.
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// The planned faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True if no faults are planned.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Applies a [`FaultPlan`] deterministically. Cloneable and cheap; pass by
/// reference into each party.
#[derive(Clone, Debug, Default)]
pub struct FaultInjector {
    seed: u64,
    plan: FaultPlan,
}

impl FaultInjector {
    /// An injector for `plan`, seeded for jitter reproducibility.
    pub fn new(seed: u64, plan: FaultPlan) -> FaultInjector {
        FaultInjector { seed, plan }
    }

    /// An injector that never fires (empty plan).
    pub fn none() -> FaultInjector {
        FaultInjector::default()
    }

    /// The run seed (also feeds backoff jitter).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Should attempt `attempt` (0-based) on `node` panic?
    pub fn panics(&self, node: usize, attempt: u32) -> bool {
        self.plan.faults().iter().any(
            |f| matches!(f, Fault::Panic { times, .. } if f.node() == node && attempt < *times),
        )
    }

    /// Extra latency for every attempt on `node`, if any.
    pub fn slow_down(&self, node: usize) -> Option<Duration> {
        self.plan.faults().iter().find_map(|f| match f {
            Fault::Slow { node: n, delay } if *n == node => Some(*delay),
            _ => None,
        })
    }

    /// Is the report of attempt `attempt` on `node` dropped?
    pub fn drops_report(&self, node: usize, attempt: u32) -> bool {
        self.plan.faults().iter().any(|f| {
            matches!(f, Fault::DropReport { times, .. } if f.node() == node && attempt < *times)
        })
    }

    /// Delivery latency for `node`'s report, if any.
    pub fn report_delay(&self, node: usize) -> Option<Duration> {
        self.plan.faults().iter().find_map(|f| match f {
            Fault::DelayReport { node: n, delay } if *n == node => Some(*delay),
            _ => None,
        })
    }

    /// Are `node`'s wiki contributions corrupted?
    pub fn corrupts(&self, node: usize) -> bool {
        self.plan
            .faults()
            .iter()
            .any(|f| matches!(f, Fault::CorruptContribution { .. } if f.node() == node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_injector_never_fires() {
        let inj = FaultInjector::none();
        for node in 0..4 {
            for attempt in 0..4 {
                assert!(!inj.panics(node, attempt));
                assert!(!inj.drops_report(node, attempt));
            }
            assert_eq!(inj.slow_down(node), None);
            assert_eq!(inj.report_delay(node), None);
            assert!(!inj.corrupts(node));
        }
    }

    #[test]
    fn faults_target_their_node_and_attempts() {
        let plan = FaultPlan::new()
            .with(Fault::Panic { node: 1, times: 2 })
            .with(Fault::Slow {
                node: 2,
                delay: Duration::from_millis(5),
            })
            .with(Fault::DropReport { node: 3, times: 1 })
            .with(Fault::DelayReport {
                node: 0,
                delay: Duration::from_millis(7),
            })
            .with(Fault::CorruptContribution { node: 4 });
        let inj = FaultInjector::new(9, plan);
        assert_eq!(inj.seed(), 9);
        assert!(inj.panics(1, 0));
        assert!(inj.panics(1, 1));
        assert!(!inj.panics(1, 2)); // recovers on the third attempt
        assert!(!inj.panics(0, 0));
        assert_eq!(inj.slow_down(2), Some(Duration::from_millis(5)));
        assert!(inj.drops_report(3, 0));
        assert!(!inj.drops_report(3, 1));
        assert_eq!(inj.report_delay(0), Some(Duration::from_millis(7)));
        assert!(inj.corrupts(4));
        assert!(!inj.corrupts(1));
    }

    #[test]
    fn permanent_panic_uses_max_times() {
        let inj = FaultInjector::new(
            0,
            FaultPlan::new().with(Fault::Panic {
                node: 0,
                times: u32::MAX,
            }),
        );
        assert!(inj.panics(0, 0));
        assert!(inj.panics(0, 1_000_000));
    }
}
