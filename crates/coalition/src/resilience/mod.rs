//! Resilience primitives for the coalition fabric: deterministic fault
//! injection, retry/backoff policies, and the shared run-budget types.
//!
//! The paper's coalition setting (§III-A-3, §IV-A) expects parties to keep
//! managing policies under partial failure — a party crashing, a slow
//! link, a corrupted shared-repository write. This module makes those
//! failure modes *first-class and reproducible*: a [`FaultPlan`] names the
//! faults, a [`FaultInjector`] applies them deterministically from a seed,
//! [`RetryPolicy`]/[`Backoff`] govern how the fabric recovers, and a
//! [`ChaosPlan`]/[`ChaosInjector`] extends the same seed into fabric-wide
//! chaos — message loss/duplication/reordering, named partitions with
//! heals, crash-restart waves, and degraded-mode waves — for the
//! deterministic simulation in [`crate::sim`]. See `docs/RESILIENCE.md`
//! for the full fault model.

mod backoff;
mod chaos;
mod faults;

pub use agenp_asp::{Deadline, Exhausted, RunBudget};
pub use backoff::{Backoff, RetryPolicy};
pub use chaos::{ChaosInjector, ChaosPlan, CrashWave, DegradedWave, PartitionSpec};
pub use faults::{Fault, FaultInjector, FaultPlan};

/// Renders a panic payload (as returned by `catch_unwind` or
/// `JoinHandle::join`) into a displayable reason string.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_messages_are_extracted() {
        let caught = std::panic::catch_unwind(|| panic!("boom")).expect_err("closure must panic");
        assert_eq!(panic_message(caught.as_ref()), "boom");
        let caught = std::panic::catch_unwind(|| panic!("{} {}", "formatted", 42))
            .expect_err("closure must panic");
        assert_eq!(panic_message(caught.as_ref()), "formatted 42");
    }
}
