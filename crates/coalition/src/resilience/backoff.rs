//! Exponential backoff with seeded jitter, and the retry policy built on
//! it. No RNG dependency: jitter derives from a splitmix64 hash of the
//! seed and attempt number, so a fixed seed yields identical delays on
//! every run.

use std::time::Duration;

/// Exponential backoff: `base * 2^attempt`, capped at `cap`, plus a
/// deterministic jitter fraction in `[0, jitter)` of the computed delay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Backoff {
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single delay (pre-jitter).
    pub cap: Duration,
    /// Jitter amplitude as a fraction of the delay (0.0 = none).
    pub jitter: f64,
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(100),
            jitter: 0.5,
        }
    }
}

impl Backoff {
    /// The delay before retry number `attempt` (0-based), seeded so the
    /// same `(attempt, seed)` pair always yields the same delay.
    pub fn delay(&self, attempt: u32, seed: u64) -> Duration {
        let exp = attempt.min(16);
        let raw = self.base.saturating_mul(1u32 << exp).min(self.cap);
        if self.jitter <= 0.0 {
            return raw;
        }
        // splitmix64 → uniform fraction in [0, 1).
        let h = splitmix64(seed ^ (u64::from(attempt) << 32));
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        raw + raw.mul_f64(self.jitter * frac)
    }
}

/// How many times a failed party round is retried, and how long to wait
/// between attempts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff schedule between attempts.
    pub backoff: Backoff,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            backoff: Backoff::default(),
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let b = Backoff {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(20),
            jitter: 0.0,
        };
        assert_eq!(b.delay(0, 7), Duration::from_millis(2));
        assert_eq!(b.delay(1, 7), Duration::from_millis(4));
        assert_eq!(b.delay(2, 7), Duration::from_millis(8));
        assert_eq!(b.delay(10, 7), Duration::from_millis(20)); // capped
        assert_eq!(b.delay(40, 7), Duration::from_millis(20)); // exp clamped
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let b = Backoff::default();
        assert_eq!(b.delay(3, 42), b.delay(3, 42));
        // Different seeds almost surely differ (fixed inputs: they do).
        assert_ne!(b.delay(3, 42), b.delay(3, 43));
        // Jitter is bounded by the configured fraction.
        let raw = Backoff {
            jitter: 0.0,
            ..Backoff::default()
        }
        .delay(3, 42);
        let jittered = b.delay(3, 42);
        assert!(jittered >= raw);
        assert!(jittered <= raw + raw.mul_f64(b.jitter));
    }

    #[test]
    fn retry_policy_defaults() {
        let r = RetryPolicy::default();
        assert_eq!(r.max_retries, 2);
        assert!(r.backoff.base <= r.backoff.cap);
    }
}
