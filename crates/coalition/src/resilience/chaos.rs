//! The chaos layer: scheduled network- and process-level faults for the
//! deterministic simulation fabric (`crate::sim`).
//!
//! Where the original [`FaultInjector`](super::FaultInjector) answers
//! point queries about one party's learning attempts, a [`ChaosInjector`]
//! extends the same seed into *fabric-wide* failure modes: message loss,
//! duplication, and delay-induced reordering decided per message id;
//! named network partitions with heal events; coordinated crash-restart
//! waves with state loss; and degraded-mode waves during which refreshes
//! fail. Every answer is a pure function of `(seed, plan, query)` — no
//! RNG state advances — so a chaos run replays exactly from its seed.

use super::faults::FaultInjector;
use crate::sim::rng::{mix, unit};

// Disjoint hash streams so e.g. the loss roll for message 7 cannot
// correlate with its delay roll.
const STREAM_LOSS: u64 = 0xA1;
const STREAM_DUP: u64 = 0xA2;
const STREAM_DELAY: u64 = 0xA3;
const STREAM_REORDER: u64 = 0xA4;
const STREAM_GROUP: u64 = 0xA5;

/// A network partition: between ticks `at` (inclusive) and `heal_at`
/// (exclusive) the fabric splits into `groups` named islands and messages
/// crossing islands are dropped in flight. Group membership is decided by
/// hashing `(seed, partition-index, node)`, so the islands are stable for
/// the whole window and reproducible from the seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Tick the partition starts.
    pub at: u64,
    /// Tick the partition heals (exclusive).
    pub heal_at: u64,
    /// Number of islands the fabric splits into (≥ 2 to sever anything).
    pub groups: u32,
}

/// A coordinated crash wave: at tick `at`, every party with
/// `party % modulo == phase` crashes with full state loss (its serving
/// snapshot and adopted policy version are gone); all of them restart
/// `restart_after` ticks later in recovering (deny-by-default) state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashWave {
    /// Tick the wave crashes its victims.
    pub at: u64,
    /// Ticks until the victims restart.
    pub restart_after: u64,
    /// Victim selector modulus.
    pub modulo: usize,
    /// Victim selector phase (`party % modulo == phase`).
    pub phase: usize,
}

impl CrashWave {
    /// Is `party` a victim of this wave?
    pub fn hits(&self, party: usize) -> bool {
        self.modulo > 0 && party % self.modulo == self.phase
    }
}

/// A degraded-mode wave: between `from` (inclusive) and `until`
/// (exclusive), every refresh attempt by a party with
/// `party % modulo == phase` fails, driving `DenyByDefault` parties into
/// degraded denying snapshots and `ServeLastGood` parties into sanctioned
/// staleness until the wave passes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradedWave {
    /// Tick the wave starts.
    pub from: u64,
    /// Tick the wave ends (exclusive).
    pub until: u64,
    /// Victim selector modulus.
    pub modulo: usize,
    /// Victim selector phase.
    pub phase: usize,
}

impl DegradedWave {
    /// Is `party` failing refreshes at `tick` under this wave?
    pub fn hits(&self, tick: u64, party: usize) -> bool {
        self.modulo > 0
            && party % self.modulo == self.phase
            && (self.from..self.until).contains(&tick)
    }
}

/// The full chaos schedule for one simulation run. Probabilities apply
/// per message while `tick < chaos_until`; scheduled faults fire at their
/// configured ticks. [`ChaosPlan::none`] is the never-faulted reference
/// configuration.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosPlan {
    /// Per-message loss probability.
    pub loss: f64,
    /// Per-message duplication probability (the copy takes its own delay).
    pub duplicate: f64,
    /// Per-message probability of a late-straggler delay spike (4× the
    /// jitter), the explicit reordering knob on top of ordinary jitter.
    pub reorder: f64,
    /// Base in-fabric latency, in ticks (a floor of 1 is applied).
    pub base_delay: u64,
    /// Uniform extra latency in `[0, jitter]` ticks; any jitter at all
    /// already reorders messages relative to send order.
    pub jitter: u64,
    /// Probabilistic chaos (loss/duplicate/reorder) is active only while
    /// `tick < chaos_until`, so every scenario ends with a quiet tail in
    /// which convergence is guaranteed rather than probabilistic.
    pub chaos_until: u64,
    /// Scheduled partitions.
    pub partitions: Vec<PartitionSpec>,
    /// Scheduled crash-restart waves.
    pub crash_waves: Vec<CrashWave>,
    /// Scheduled degraded-mode waves.
    pub degraded_waves: Vec<DegradedWave>,
}

impl ChaosPlan {
    /// The empty plan: reliable delivery, no partitions, no crashes, no
    /// waves. This is the reference run every chaos run is compared to.
    pub fn none() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// The worst-case delivery latency any single message can incur.
    pub fn max_message_delay(&self) -> u64 {
        self.base_delay.max(1) + self.jitter + self.jitter.saturating_mul(4)
    }

    /// The last tick at which any scheduled fault is still active.
    pub fn last_fault_tick(&self) -> u64 {
        let p = self.partitions.iter().map(|p| p.heal_at).max().unwrap_or(0);
        let c = self
            .crash_waves
            .iter()
            .map(|w| w.at + w.restart_after)
            .max()
            .unwrap_or(0);
        let d = self
            .degraded_waves
            .iter()
            .map(|w| w.until)
            .max()
            .unwrap_or(0);
        self.chaos_until.max(p).max(c).max(d)
    }
}

/// A [`FaultInjector`] extended with a [`ChaosPlan`]: the same seed now
/// also drives fabric-wide message chaos, partitions, crash waves, and
/// degraded waves. Obtained via [`FaultInjector::chaos`].
#[derive(Clone, Debug)]
pub struct ChaosInjector {
    injector: FaultInjector,
    plan: ChaosPlan,
}

impl FaultInjector {
    /// Extends this injector into a fabric-wide chaos layer driven by the
    /// same seed.
    pub fn chaos(self, plan: ChaosPlan) -> ChaosInjector {
        ChaosInjector {
            injector: self,
            plan,
        }
    }
}

impl ChaosInjector {
    /// The underlying point-fault injector (and the shared seed).
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// The run seed.
    pub fn seed(&self) -> u64 {
        self.injector.seed()
    }

    /// The chaos schedule.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    #[inline]
    fn roll(&self, stream: u64, id: u64) -> f64 {
        unit(mix(&[self.seed(), stream, id]))
    }

    #[inline]
    fn probabilistic(&self, tick: u64) -> bool {
        tick < self.plan.chaos_until
    }

    /// Is the message with `id`, sent at `tick`, lost in the fabric?
    pub fn drops_message(&self, tick: u64, id: u64) -> bool {
        self.probabilistic(tick)
            && self.plan.loss > 0.0
            && self.roll(STREAM_LOSS, id) < self.plan.loss
    }

    /// Is the message duplicated (a second copy delivered independently)?
    pub fn duplicates_message(&self, tick: u64, id: u64) -> bool {
        self.probabilistic(tick)
            && self.plan.duplicate > 0.0
            && self.roll(STREAM_DUP, id) < self.plan.duplicate
    }

    /// Delivery latency in ticks for the message with `id` sent at `tick`:
    /// base delay, plus uniform jitter, plus — with probability `reorder` —
    /// a 4× straggler spike. Always ≥ 1 so delivery is never same-tick.
    /// Returns `(delay, straggler)`.
    pub fn message_delay(&self, tick: u64, id: u64) -> (u64, bool) {
        let mut delay = self.plan.base_delay.max(1);
        if self.probabilistic(tick) {
            if self.plan.jitter > 0 {
                delay += mix(&[self.seed(), STREAM_DELAY, id]) % (self.plan.jitter + 1);
            }
            if self.plan.reorder > 0.0 && self.roll(STREAM_REORDER, id) < self.plan.reorder {
                return (delay + self.plan.jitter.saturating_mul(4), true);
            }
        }
        (delay, false)
    }

    /// The partition active at `tick`, if any, as `(index, spec)`.
    pub fn partition_at(&self, tick: u64) -> Option<(usize, &PartitionSpec)> {
        self.plan
            .partitions
            .iter()
            .enumerate()
            .find(|(_, p)| (p.at..p.heal_at).contains(&tick))
    }

    /// The island `node` belongs to under partition `idx` (stable for the
    /// partition's whole window). Islands are "named" by their group id:
    /// `island-{group}`.
    pub fn group_of(&self, idx: usize, node: usize) -> u32 {
        let spec = &self.plan.partitions[idx];
        (mix(&[self.seed(), STREAM_GROUP, idx as u64, node as u64]) % u64::from(spec.groups.max(1)))
            as u32
    }

    /// Are `a` and `b` on different islands at `tick`? (Messages crossing
    /// islands are dropped in flight.)
    pub fn severed(&self, tick: u64, a: usize, b: usize) -> bool {
        match self.partition_at(tick) {
            Some((idx, spec)) if spec.groups >= 2 => self.group_of(idx, a) != self.group_of(idx, b),
            _ => false,
        }
    }

    /// Is `party` failing refreshes at `tick` under any degraded wave?
    pub fn wave_failing(&self, tick: u64, party: usize) -> bool {
        self.plan.degraded_waves.iter().any(|w| w.hits(tick, party))
    }

    /// Does any degraded wave touch `party` within `[from, to)`? Used to
    /// exempt wave victims from reconvergence deadlines that overlap the
    /// wave.
    pub fn wave_overlaps(&self, party: usize, from: u64, to: u64) -> bool {
        self.plan
            .degraded_waves
            .iter()
            .any(|w| w.modulo > 0 && party % w.modulo == w.phase && w.from < to && from < w.until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm_plan() -> ChaosPlan {
        ChaosPlan {
            loss: 0.1,
            duplicate: 0.05,
            reorder: 0.02,
            base_delay: 1,
            jitter: 3,
            chaos_until: 1000,
            partitions: vec![PartitionSpec {
                at: 10,
                heal_at: 20,
                groups: 3,
            }],
            crash_waves: vec![CrashWave {
                at: 30,
                restart_after: 5,
                modulo: 7,
                phase: 2,
            }],
            degraded_waves: vec![DegradedWave {
                from: 40,
                until: 50,
                modulo: 4,
                phase: 1,
            }],
        }
    }

    #[test]
    fn same_seed_same_answers() {
        let a = FaultInjector::new(99, Default::default()).chaos(storm_plan());
        let b = FaultInjector::new(99, Default::default()).chaos(storm_plan());
        for id in 0..5000 {
            assert_eq!(a.drops_message(5, id), b.drops_message(5, id));
            assert_eq!(a.duplicates_message(5, id), b.duplicates_message(5, id));
            assert_eq!(a.message_delay(5, id), b.message_delay(5, id));
        }
        // A different seed gives a different schedule somewhere.
        let c = FaultInjector::new(100, Default::default()).chaos(storm_plan());
        assert!((0..5000).any(|id| a.drops_message(5, id) != c.drops_message(5, id)));
    }

    #[test]
    fn probabilistic_chaos_quiesces() {
        let inj = FaultInjector::new(7, Default::default()).chaos(storm_plan());
        for id in 0..2000 {
            assert!(!inj.drops_message(1000, id), "loss after chaos_until");
            assert!(!inj.duplicates_message(1000, id));
            let (delay, straggler) = inj.message_delay(1000, id);
            assert_eq!(delay, 1, "quiet tail uses the base delay only");
            assert!(!straggler);
        }
    }

    #[test]
    fn partitions_are_stable_and_heal() {
        let inj = FaultInjector::new(3, Default::default()).chaos(storm_plan());
        assert!(inj.partition_at(9).is_none());
        assert!(inj.partition_at(10).is_some());
        assert!(inj.partition_at(19).is_some());
        assert!(inj.partition_at(20).is_none(), "heal_at is exclusive");
        // Group membership is stable across the window and severs only
        // across islands.
        for node in 0..50 {
            let g = inj.group_of(0, node);
            assert!(g < 3);
            assert!(!inj.severed(15, node, node));
            for other in 0..50 {
                assert_eq!(
                    inj.severed(15, node, other),
                    inj.group_of(0, node) != inj.group_of(0, other)
                );
                assert!(!inj.severed(25, node, other), "healed fabric never severs");
            }
        }
        // With 50 nodes in 3 groups, something must be severed.
        assert!((0..50).any(|n| inj.severed(12, 0, n)));
    }

    #[test]
    fn waves_select_by_modulo_and_window() {
        let inj = FaultInjector::new(3, Default::default()).chaos(storm_plan());
        assert!(inj.wave_failing(45, 5)); // 5 % 4 == 1
        assert!(!inj.wave_failing(45, 6));
        assert!(!inj.wave_failing(39, 5));
        assert!(!inj.wave_failing(50, 5), "until is exclusive");
        assert!(inj.wave_overlaps(5, 45, 60));
        assert!(!inj.wave_overlaps(5, 50, 60));
        assert!(!inj.wave_overlaps(6, 0, 100));
        let wave = CrashWave {
            at: 0,
            restart_after: 1,
            modulo: 7,
            phase: 2,
        };
        assert!(wave.hits(9));
        assert!(!wave.hits(10));
    }

    #[test]
    fn plan_bounds_are_conservative() {
        let plan = storm_plan();
        assert_eq!(plan.max_message_delay(), 1 + 3 + 12);
        assert_eq!(plan.last_fault_tick(), 1000);
        assert_eq!(ChaosPlan::none().last_fault_tick(), 0);
        assert_eq!(ChaosPlan::none().max_message_delay(), 1);
    }
}
