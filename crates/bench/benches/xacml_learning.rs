//! XACML policy-learning benchmark (experiment E2): learn time vs log size.

use agenp_core::scenarios::xacml::{self, NoiseHandling, SpaceConfig};
use agenp_learn::Learner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_xacml(c: &mut Criterion) {
    let mut group = c.benchmark_group("xacml_learning");
    group.sample_size(10);
    for n in [40usize, 120] {
        let log = xacml::generate_log(n, 7, 0.0);
        let task = xacml::learning_task(&log, SpaceConfig::default(), NoiseHandling::Filter);
        group.bench_with_input(BenchmarkId::new("clean_log", n), &task, |b, task| {
            b.iter(|| Learner::new().learn(task).expect("learnable").cost)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_xacml);
criterion_main!(benches);
