//! Learning scalability: learn time vs number of examples and vs
//! hypothesis-space size (experiment E7; the paper's §III-B performance
//! challenge).

use agenp_core::scenarios::cav;
use agenp_learn::Learner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_learning(c: &mut Criterion) {
    let mut group = c.benchmark_group("learning_scale");
    group.sample_size(10);
    for n in [8usize, 32, 128] {
        let train = cav::samples(n, 7);
        let task = cav::learning_task(&train, None);
        group.bench_with_input(BenchmarkId::new("cav_examples", n), &task, |b, task| {
            b.iter(|| Learner::new().learn(task).expect("learnable").cost)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_learning);
criterion_main!(benches);
