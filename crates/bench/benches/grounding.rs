//! Grounding benchmarks: instantiation cost vs domain size (experiment E7).

use agenp_asp::ground;
use agenp_bench::transitive_closure_program;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_grounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("grounding");
    group.sample_size(20);
    for n in [10usize, 30, 60] {
        let p = transitive_closure_program(n);
        group.bench_with_input(BenchmarkId::new("transitive_closure", n), &p, |b, p| {
            b.iter(|| ground(p).expect("grounds").len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grounding);
criterion_main!(benches);
