//! Policy-quality assessment benchmark (experiment E8): PCP assessment cost
//! vs request-space size.

use agenp_core::scenarios::xacml;
use agenp_policy::{QualityChecker, Request};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_quality(c: &mut Criterion) {
    let mut group = c.benchmark_group("quality_metrics");
    group.sample_size(20);
    let policy = xacml::ground_truth_policy();
    for n in [50usize, 200, 800] {
        let mut rng = StdRng::seed_from_u64(42);
        let space: Vec<Request> = (0..n)
            .map(|_| xacml::XacmlRequest::random(&mut rng).to_request())
            .collect();
        group.bench_with_input(BenchmarkId::new("assess", n), &space, |b, space| {
            b.iter(|| {
                QualityChecker::new()
                    .assess(std::slice::from_ref(&policy), space)
                    .assessed
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quality);
criterion_main!(benches);
