//! The E6 comparison as a benchmark: symbolic learning vs decision-tree
//! fitting at matched training sizes.

use agenp_baselines::DecisionTree;
use agenp_core::scenarios::cav;
use agenp_learn::Learner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_curve(c: &mut Criterion) {
    let mut group = c.benchmark_group("cav_learning_curve");
    group.sample_size(10);
    for n in [16usize, 64] {
        let train = cav::samples(n, 7);
        let task = cav::learning_task(&train, None);
        group.bench_with_input(BenchmarkId::new("asg_gpm", n), &task, |b, task| {
            b.iter(|| Learner::new().learn(task).expect("learnable").rules.len())
        });
        let tab = cav::to_dataset(&train);
        group.bench_with_input(BenchmarkId::new("decision_tree", n), &tab, |b, tab| {
            b.iter(|| DecisionTree::fit(tab).node_count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_curve);
criterion_main!(benches);
