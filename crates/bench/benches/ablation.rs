//! Ablation benchmarks (experiment E12): stratified fast path vs DPLL,
//! monotone vs generic learning, batch vs incremental learning.

use agenp_asp::{ground, Solver};
use agenp_bench::birds_program;
use agenp_core::scenarios::cav;
use agenp_learn::{LearnOptions, Learner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    let g = ground(&birds_program(200)).expect("grounds");
    group.bench_function("solver_stratified", |b| {
        b.iter(|| Solver::new().solve(&g).models().len())
    });
    group.bench_function("solver_forced_dpll", |b| {
        b.iter(|| Solver::new().force_search(true).solve(&g).models().len())
    });

    // The generic subset search is exponential; keep sizes small.
    for n in [4usize, 6] {
        let train = cav::samples(n, 7);
        let task = cav::learning_task(&train, None);
        group.bench_with_input(BenchmarkId::new("learner_monotone", n), &task, |b, task| {
            b.iter(|| Learner::new().learn(task).expect("learnable").cost)
        });
        group.bench_with_input(BenchmarkId::new("learner_generic", n), &task, |b, task| {
            b.iter(|| {
                Learner::with_options(
                    LearnOptions::default()
                        .with_force_generic(true)
                        .with_max_nodes(50_000_000),
                )
                .learn(task)
                .expect("learnable")
                .cost
            })
        });
    }

    let train = cav::samples(64, 7);
    let task = cav::learning_task(&train, None);
    group.bench_function("learner_batch_64", |b| {
        b.iter(|| Learner::new().learn(&task).expect("learnable").cost)
    });
    group.bench_function("learner_incremental_64", |b| {
        b.iter(|| {
            Learner::new()
                .learn_incremental(&task)
                .expect("learnable")
                .0
                .cost
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
