//! ASG membership benchmarks: `s ∈ L(G)` cost vs string length on the
//! context-sensitive showcase grammar, and per-decision cost on the CAV
//! grammar (experiment E7; the paper's real-time concern in §IV-A).

use agenp_bench::{anbncn_grammar, anbncn_string};
use agenp_core::scenarios::cav;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("asg_membership");
    group.sample_size(20);
    let g = anbncn_grammar();
    for n in [2usize, 6, 10] {
        let s = anbncn_string(n);
        group.bench_with_input(BenchmarkId::new("anbncn", n), &s, |b, s| {
            b.iter(|| g.accepts(s).expect("membership succeeds"))
        });
    }
    // Per-decision latency of a learned CAV model.
    let train = cav::samples(64, 7);
    let task = cav::learning_task(&train, None);
    let h = agenp_learn::Learner::new().learn(&task).expect("learnable");
    let gpm = h.apply(&task.grammar);
    let ctx = cav::CavContext {
        loa: 3,
        limit: 4,
        rain: true,
        emergency: false,
    };
    group.bench_function("cav_decision", |b| {
        b.iter(|| {
            gpm.with_context(&ctx.to_program())
                .accepts("accept overtake")
                .expect("decision succeeds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_membership);
criterion_main!(benches);
