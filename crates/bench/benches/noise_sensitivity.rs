//! Noise-handling benchmark (experiment E5): learning cost under noisy logs
//! with filtering vs penalties.

use agenp_core::scenarios::xacml::{self, NoiseHandling, SpaceConfig};
use agenp_learn::Learner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_noise(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise_sensitivity");
    group.sample_size(10);
    for p in [5usize, 15] {
        let log = xacml::generate_log(80, 13, p as f64 / 100.0);
        let filtered = xacml::learning_task(&log, SpaceConfig::default(), NoiseHandling::Filter);
        group.bench_with_input(BenchmarkId::new("filtered", p), &filtered, |b, task| {
            b.iter(|| Learner::new().learn(task).expect("learnable").cost)
        });
        let penalized =
            xacml::learning_task(&log, SpaceConfig::default(), NoiseHandling::Penalty(1));
        group.bench_with_input(BenchmarkId::new("penalty", p), &penalized, |b, task| {
            b.iter(|| Learner::new().learn(task).expect("learnable").cost)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_noise);
criterion_main!(benches);
