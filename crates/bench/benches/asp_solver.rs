//! Solver benchmarks: answer-set enumeration and satisfiability on
//! stratified and non-stratified programs (experiment E7).

use agenp_asp::{ground, Solver};
use agenp_bench::{birds_program, coloring_program};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("asp_solver");
    group.sample_size(20);
    for n in [8usize, 12, 16] {
        let g = ground(&coloring_program(n)).expect("grounds");
        group.bench_with_input(BenchmarkId::new("coloring_all_models", n), &g, |b, g| {
            b.iter(|| Solver::new().solve(g).models().len())
        });
        group.bench_with_input(BenchmarkId::new("coloring_first_model", n), &g, |b, g| {
            b.iter(|| Solver::new().max_models(1).solve(g).satisfiable())
        });
    }
    for n in [100usize, 400] {
        let g = ground(&birds_program(n)).expect("grounds");
        group.bench_with_input(BenchmarkId::new("stratified_birds", n), &g, |b, g| {
            b.iter(|| Solver::new().solve(g).models().len())
        });
    }
    // Branch-and-bound optimization over weak constraints.
    for n in [6usize, 10] {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!(
                "a{i} :- not b{i}. b{i} :- not a{i}. :~ a{i}. [{}]\n",
                i + 1
            ));
        }
        src.push_str(":- b0, b1.\n");
        let p: agenp_asp::Program = src.parse().expect("parses");
        let g = ground(&p).expect("grounds");
        group.bench_with_input(BenchmarkId::new("optimize_bnb", n), &g, |b, g| {
            b.iter(|| Solver::new().optimize(g).cost().cloned())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
