//! # agenp-bench — workloads and helpers for the AGENP benchmark harness
//!
//! Shared workload builders used by the Criterion benches and by the
//! `report` binary that regenerates every figure and quantitative claim of
//! the paper (see EXPERIMENTS.md for the experiment index).

#![warn(missing_docs)]

use agenp_asp::Program;
use agenp_grammar::Asg;

pub mod json;

/// A 2-colorable ring-coloring program over `n` nodes — a classic
/// non-stratified benchmark with answer sets for the solver to enumerate.
pub fn coloring_program(n: usize) -> Program {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("node({i}). "));
        src.push_str(&format!("edge({i}, {}). ", (i + 1) % n));
    }
    src.push_str(
        "
        red(X)  :- node(X), not blue(X).
        blue(X) :- node(X), not red(X).
        :- edge(X, Y), red(X), red(Y).
        :- edge(X, Y), blue(X), blue(Y).
    ",
    );
    src.parse().expect("coloring program parses")
}

/// A stratified transitive-closure program over a chain of `n` nodes.
pub fn transitive_closure_program(n: usize) -> Program {
    let mut src = String::new();
    for i in 0..n.saturating_sub(1) {
        src.push_str(&format!("edge({i}, {}). ", i + 1));
    }
    src.push_str(
        "
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- edge(X, Y), path(Y, Z).
    ",
    );
    src.parse().expect("transitive closure program parses")
}

/// A stratified default-reasoning program over `n` individuals.
pub fn birds_program(n: usize) -> Program {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("bird(b{i}). "));
        if i % 3 == 0 {
            src.push_str(&format!("abnormal(b{i}). "));
        }
    }
    src.push_str("flies(X) :- bird(X), not abnormal(X).");
    src.parse().expect("birds program parses")
}

/// The aⁿbⁿcⁿ answer set grammar from the ASG paper \[12\].
pub fn anbncn_grammar() -> Asg {
    r#"
        start -> as bs cs {
            :- size(X)@1, not size(X)@2.
            :- size(X)@2, not size(X)@3.
            :- size(X)@3, not size(X)@1.
        }
        as -> "a" as { size(X + 1) :- size(X)@2. }
        as -> { size(0). }
        bs -> "b" bs { size(X + 1) :- size(X)@2. }
        bs -> { size(0). }
        cs -> "c" cs { size(X + 1) :- size(X)@2. }
        cs -> { size(0). }
    "#
    .parse()
    .expect("anbncn grammar parses")
}

/// The string `aⁿ bⁿ cⁿ` (whitespace-tokenized).
pub fn anbncn_string(n: usize) -> String {
    let mut parts: Vec<&str> = Vec::with_capacity(3 * n);
    parts.extend(std::iter::repeat_n("a", n));
    parts.extend(std::iter::repeat_n("b", n));
    parts.extend(std::iter::repeat_n("c", n));
    parts.join(" ")
}

/// Formats a fraction as a percent string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Times `f` with one untimed warmup call followed by `runs` timed calls,
/// returning the best (minimum) duration in microseconds and the final
/// run's result. First-touch allocation, interner population, and lazy
/// thread spawning land in the warmup instead of polluting the first
/// measured row; the minimum is the stable estimator for short runs on a
/// noisy box.
pub fn time_best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (u128, T) {
    let mut result = f();
    let mut best = u128::MAX;
    for _ in 0..runs.max(1) {
        let t = std::time::Instant::now();
        result = f();
        best = best.min(t.elapsed().as_micros());
    }
    (best, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agenp_asp::{ground, Solver};

    #[test]
    fn coloring_has_two_models_on_even_ring() {
        let g = ground(&coloring_program(4)).unwrap();
        let r = Solver::new().solve(&g);
        assert_eq!(r.models().len(), 2);
    }

    #[test]
    fn odd_ring_is_uncolorable() {
        let g = ground(&coloring_program(5)).unwrap();
        assert!(!Solver::new().has_answer_set(&g));
    }

    #[test]
    fn tc_and_birds_are_stratified() {
        for p in [transitive_closure_program(10), birds_program(10)] {
            let g = ground(&p).unwrap();
            let r = Solver::new().solve(&g);
            assert!(r.stats().used_stratified);
            assert_eq!(r.models().len(), 1);
        }
    }

    #[test]
    fn anbncn_builders_agree() {
        let g = anbncn_grammar();
        assert!(g.accepts(&anbncn_string(3)).unwrap());
        assert!(!g.accepts("a a b c").unwrap());
    }
}
