//! Minimal validating JSON parser shared by the harness binaries (the
//! workspace deliberately has no JSON dependency). Accepts exactly the
//! RFC 8259 grammar; reports a byte position on failure.

/// Validates that `input` is one well-formed JSON value with nothing
/// trailing.
///
/// # Errors
///
/// A message naming the offending byte position.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'u') => {
                        if bytes.len() < *pos + 5
                            || !bytes[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {pos}"));
                        }
                        *pos += 5;
                    }
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control character at byte {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if bytes.len() >= *pos + lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("expected number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("bad fraction at byte {pos}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("bad exponent at byte {pos}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "{\"a\": [1, 2.5, -3e2, true, false, null, \"s\\n\"]}",
            "  {\"nested\": {\"x\": []}}  ",
        ] {
            assert!(validate(ok).is_ok(), "{ok} should validate");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1, ]",
            "{\"a\": 1} trailing",
            "{'single': 1}",
            "{\"n\": 01e}",
        ] {
            assert!(validate(bad).is_err(), "{bad} should be rejected");
        }
    }
}
