//! `obs` — overhead and flight-recorder validation harness for the
//! unified observability subsystem (`agenp-obs`; `docs/OBSERVABILITY.md`).
//!
//! Three phases, writing `BENCH_obs.json` at the repository root:
//!
//! 1. **Disabled baseline** — drives the shared-snapshot PDP workload with
//!    `ObsConfig::disabled()` and asserts the telemetry layer stays
//!    completely cold (no spans recorded, no `serve.*` counters moved).
//! 2. **Enabled overhead** — the same workload with telemetry on; reports
//!    the enabled/disabled throughput ratio and gates on it.
//! 3. **Autonomic-loop dump** — a full learn → adopt → decide-under-load
//!    run plus a supervised coalition round with telemetry enabled, dumped
//!    through the exporter; the dump must validate as JSON and contain
//!    spans from the asp, learn, core/serve, and coalition layers.
//!
//! Usage: `cargo run -p agenp-bench --bin obs --release [-- --smoke]`
//!
//! `--smoke` runs reduced scales suitable for CI and exits nonzero on any
//! gate failure (the gates run in both modes; smoke only shrinks scales).

use agenp_coalition::resilience::FaultInjector;
use agenp_coalition::{supervised_cav_learning, CoalitionConfig};
use agenp_core::arch::{Ams, DecisionSnapshot, Feedback, PdpHandle, PdpServer};
use agenp_grammar::{Asg, ProdId};
use agenp_learn::HypothesisSpace;
use agenp_obs::{MemoryExporter, ObsConfig, ObsSnapshot};
use agenp_policy::{CombiningAlg, Policy, Request};
use std::path::PathBuf;

/// Throughput of one (mode, threads) pdp run.
struct ThroughputRow {
    telemetry: bool,
    threads: usize,
    decisions: u64,
    micros: u128,
    throughput: f64,
}

/// What phase 3's flight-recorder dump contained.
struct DumpOutcome {
    json_valid: bool,
    bytes: usize,
    span_total: usize,
    dropped: u64,
    prefix_counts: Vec<(&'static str, usize)>,
}

/// Span-name prefixes the autonomic-loop dump must cover, one per
/// instrumented layer (asp, learn, core control loop, serving tier,
/// coalition fabric).
const REQUIRED_PREFIXES: &[&str] = &["asp.", "learn.", "ams.", "serve.", "coalition."];

/// Enabled-mode throughput must stay above this fraction of the disabled
/// run. Telemetry on the decide path is two monotonic clock reads, one
/// histogram record, and two sharded counter bumps; 0.25 leaves headroom
/// for noisy shared CI runners while still catching accidental locks or
/// allocation on the hot path.
const MIN_ENABLED_RATIO: f64 = 0.25;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let distinct = if smoke { 64 } else { 256 };
    let per_thread = if smoke { 20_000 } else { 200_000 };
    let workload = build_workload(distinct);
    let policies = vec![clearance_policy()];
    let thread_counts: &[usize] = &[1, 4];

    // Phase 1: disabled baseline, and proof that disabled mode stays cold.
    agenp_obs::install(ObsConfig::disabled());
    agenp_obs::recorder().clear();
    let spans_before = agenp_obs::recorder().recorded();
    let serve_before = agenp_obs::registry().counter("serve.decisions").value();
    let mut rows: Vec<ThroughputRow> = thread_counts
        .iter()
        .map(|&t| run_throughput(false, t, &workload, &policies, per_thread))
        .collect();
    let disabled_clean = agenp_obs::recorder().recorded() == spans_before
        && agenp_obs::registry().counter("serve.decisions").value() == serve_before;

    // Phase 2: the same workload with telemetry enabled.
    agenp_obs::install(ObsConfig::enabled());
    rows.extend(
        thread_counts
            .iter()
            .map(|&t| run_throughput(true, t, &workload, &policies, per_thread)),
    );
    let overhead_1t = enabled_ratio(&rows, 1);

    // Phase 3: full autonomic loop + coalition round, dumped and validated.
    agenp_obs::recorder().clear();
    let exporter = MemoryExporter::new();
    agenp_obs::set_exporter(Box::new(exporter.clone()));
    run_autonomic_loop(smoke);
    run_coalition_round(smoke);
    let snapshot = agenp_obs::snapshot("bench");
    let dumped = agenp_obs::dump("bench").expect("memory exporter cannot fail");
    assert!(dumped, "an exporter was installed");
    let dump_line = exporter
        .exports()
        .pop()
        .expect("dump() delivered one export");
    let dump = inspect_dump(&snapshot, &dump_line);
    agenp_obs::clear_exporter();
    agenp_obs::install(ObsConfig::disabled());

    print_tables(&rows, overhead_1t, &dump, disabled_clean);

    let json = render_json(smoke, &rows, overhead_1t, &dump, disabled_clean, &dump_line);
    let path = output_path();
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("obs: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("\nwrote {}", path.display());

    // Gates (smoke and full mode alike).
    let on_disk = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("obs: cannot re-read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    if let Err(e) = agenp_bench::json::validate(&on_disk) {
        eprintln!("obs: BENCH_obs.json is not valid JSON: {e}");
        std::process::exit(1);
    }
    if !disabled_clean {
        eprintln!("obs: disabled mode leaked into the registry or recorder");
        std::process::exit(1);
    }
    if !dump.json_valid {
        eprintln!("obs: the flight-recorder dump failed JSON validation");
        std::process::exit(1);
    }
    for (prefix, n) in &dump.prefix_counts {
        if *n == 0 {
            eprintln!("obs: dump has no spans with prefix {prefix:?}");
            std::process::exit(1);
        }
    }
    if let Some(r) = overhead_1t {
        if r < MIN_ENABLED_RATIO {
            eprintln!(
                "obs: telemetry-enabled 1-thread throughput fell to {:.0}% of the \
                 disabled run (gate: >= {:.0}%)",
                r * 100.0,
                MIN_ENABLED_RATIO * 100.0
            );
            std::process::exit(1);
        }
    }
    println!(
        "BENCH_obs.json validated (disabled clean, {} spans across {} layers, \
         enabled/disabled {}%)",
        dump.span_total,
        dump.prefix_counts.len(),
        match overhead_1t {
            Some(r) => format!("{:.0}", r * 100.0),
            None => "n/a".to_string(),
        }
    );
}

/// `BENCH_obs.json` lives at the repository root regardless of the cwd
/// cargo chose for the binary.
fn output_path() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir).join("../..").join("BENCH_obs.json"),
        Err(_) => PathBuf::from("BENCH_obs.json"),
    }
}

/// A policy permitting high-clearance subjects — enough structure for the
/// cache to discriminate requests.
fn clearance_policy() -> Policy {
    use agenp_policy::{Category, Cond, Effect, PolicyRule};
    Policy::new(
        "clearance",
        vec![
            PolicyRule::new(
                "allow-high",
                Effect::Permit,
                Cond::eq(Category::Subject, "clearance", "high"),
            ),
            PolicyRule::new(
                "deny-low",
                Effect::Deny,
                Cond::eq(Category::Subject, "clearance", "low"),
            ),
        ],
    )
}

fn build_workload(distinct: usize) -> Vec<Request> {
    (0..distinct)
        .map(|i| {
            Request::new()
                .subject(
                    "clearance",
                    match i % 3 {
                        0 => "high",
                        1 => "low",
                        _ => "none",
                    },
                )
                .subject("uid", format!("u{i}").as_str())
        })
        .collect()
}

fn run_throughput(
    telemetry: bool,
    threads: usize,
    workload: &[Request],
    policies: &[Policy],
    per_thread: usize,
) -> ThroughputRow {
    let handle = PdpHandle::new();
    handle.publish(DecisionSnapshot::new(
        policies.to_vec(),
        CombiningAlg::DenyOverrides,
    ));
    let report = PdpServer::new(handle)
        .with_threads(threads)
        .run(workload, per_thread);
    ThroughputRow {
        telemetry,
        threads,
        decisions: report.decisions,
        micros: report.elapsed.as_micros(),
        throughput: report.throughput,
    }
}

/// Enabled-mode throughput as a fraction of disabled-mode at `threads`.
fn enabled_ratio(rows: &[ThroughputRow], threads: usize) -> Option<f64> {
    let off = rows.iter().find(|r| !r.telemetry && r.threads == threads)?;
    let on = rows.iter().find(|r| r.telemetry && r.threads == threads)?;
    if off.throughput > 0.0 {
        Some(on.throughput / off.throughput)
    } else {
        None
    }
}

/// The gated grammar the `agenp-core` AMS tests use: adaptation learns that
/// permits are invalid under lockdown.
fn gate_ams() -> Ams {
    let g: Asg = r#"
        policy -> effect "if" "subject" "clearance" "=" level
        effect -> "permit" { e(permit). }
        effect -> "deny"   { e(deny). }
        level -> "low"  { lvl(low). }
        level -> "high" { lvl(high). }
    "#
    .parse()
    .expect("bench grammar parses");
    let space = HypothesisSpace::from_texts(&[
        (ProdId::from_index(1), ":- lockdown."),
        (ProdId::from_index(2), ":- not lockdown."),
    ]);
    Ams::new("obs-bench", g, space)
}

/// Learn → adopt → decide under load: generates policies, serves a
/// multi-threaded decision burst, feeds back lockdown experience, adapts,
/// and serves again — the full control loop under telemetry.
fn run_autonomic_loop(smoke: bool) {
    let mut ams = gate_ams();
    ams.refresh_policies().expect("initial refresh succeeds");

    let requests: Vec<Request> = (0..16)
        .map(|i| Request::new().subject("clearance", if i % 2 == 0 { "high" } else { "low" }))
        .collect();
    let per_thread = if smoke { 2_000 } else { 20_000 };
    PdpServer::new(ams.serving_handle())
        .with_threads(2)
        .run(&requests, per_thread);

    let lockdown: agenp_asp::Program = "lockdown.".parse().expect("context parses");
    ams.set_context(lockdown.clone());
    ams.observe(Feedback::invalid(
        "permit if subject clearance = high",
        lockdown.clone(),
    ));
    ams.observe(Feedback::invalid(
        "permit if subject clearance = low",
        lockdown.clone(),
    ));
    ams.observe(Feedback::valid(
        "deny if subject clearance = high",
        lockdown,
    ));
    ams.adapt().expect("adaptation succeeds");
    PdpServer::new(ams.serving_handle())
        .with_threads(2)
        .run(&requests, per_thread);
}

/// One fault-free supervised coalition round, small enough for CI.
fn run_coalition_round(smoke: bool) {
    let samples = if smoke { 40 } else { 120 };
    let cfg = CoalitionConfig::new(2, samples, 7);
    let wiki = agenp_coalition::CasWiki::new();
    supervised_cav_learning(&cfg, &wiki, &FaultInjector::none())
        .expect("fault-free coalition round succeeds");
}

fn inspect_dump(snapshot: &ObsSnapshot, dump_line: &str) -> DumpOutcome {
    DumpOutcome {
        json_valid: agenp_bench::json::validate(dump_line).is_ok(),
        bytes: dump_line.len(),
        span_total: snapshot.spans.len(),
        dropped: snapshot.dropped_spans,
        prefix_counts: REQUIRED_PREFIXES
            .iter()
            .map(|&p| (p, snapshot.spans_with_prefix(p).len()))
            .collect(),
    }
}

fn print_tables(
    rows: &[ThroughputRow],
    overhead_1t: Option<f64>,
    dump: &DumpOutcome,
    disabled_clean: bool,
) {
    println!("pdp decide throughput, telemetry off vs on (closed loop):");
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>14}",
        "telemetry", "threads", "decisions", "micros", "decisions/s"
    );
    for r in rows {
        println!(
            "{:>10} {:>8} {:>12} {:>12} {:>14.0}",
            if r.telemetry { "on" } else { "off" },
            r.threads,
            r.decisions,
            r.micros,
            r.throughput
        );
    }
    if let Some(r) = overhead_1t {
        println!(
            "\n1-thread enabled/disabled throughput: {}",
            agenp_bench::pct(r)
        );
    }
    println!(
        "disabled mode stayed cold: {}",
        if disabled_clean { "yes" } else { "NO" }
    );
    println!(
        "\nflight-recorder dump: {} bytes, {} spans ({} dropped), JSON {}",
        dump.bytes,
        dump.span_total,
        dump.dropped,
        if dump.json_valid { "valid" } else { "INVALID" }
    );
    for (prefix, n) in &dump.prefix_counts {
        println!("  {prefix:<12} {n:>6} spans");
    }
}

fn render_json(
    smoke: bool,
    rows: &[ThroughputRow],
    overhead_1t: Option<f64>,
    dump: &DumpOutcome,
    disabled_clean: bool,
    dump_line: &str,
) -> String {
    let throughput: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"telemetry\": {}, \"threads\": {}, \"decisions\": {}, \
                 \"micros\": {}, \"decisions_per_sec\": {:.1}}}",
                r.telemetry, r.threads, r.decisions, r.micros, r.throughput
            )
        })
        .collect();
    let prefixes: Vec<String> = dump
        .prefix_counts
        .iter()
        .map(|(p, n)| format!("{{\"prefix\": \"{p}\", \"spans\": {n}}}"))
        .collect();
    format!(
        "{{\n\"schema\": \"agenp-bench/obs/v1\",\n\"smoke\": {},\n\
         \"throughput\": [\n{}\n],\n\
         \"claims\": {{\"enabled_over_disabled_1t\": {}, \"disabled_clean\": {}, \
         \"cpus\": {}}},\n\
         \"dump\": {{\"json_valid\": {}, \"bytes\": {}, \"spans\": {}, \
         \"dropped_spans\": {}, \"layers\": [{}]}},\n\
         \"flight_recorder\": {}\n}}\n",
        smoke,
        throughput.join(",\n"),
        match overhead_1t {
            Some(r) => format!("{r:.3}"),
            None => "null".to_string(),
        },
        disabled_clean,
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        dump.json_valid,
        dump.bytes,
        dump.span_total,
        dump.dropped,
        prefixes.join(", "),
        dump_line.trim_end()
    )
}
