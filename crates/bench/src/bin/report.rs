//! `report` — regenerates every figure and quantitative claim of the paper
//! as plain-text tables (the per-experiment index lives in EXPERIMENTS.md).
//!
//! Usage: `cargo run -p agenp-bench --bin report [--release] [EXPERIMENT…]`
//! where EXPERIMENT ∈ {fig1, fig3a, fig3b, curve, scale, quality, sharing,
//! federated, resupply, ablation, all}. Default: all.

use agenp_asp::{ground, Solver};
use agenp_baselines::{Classifier, DecisionTree, Knn, NaiveBayes};
use agenp_bench::{anbncn_grammar, anbncn_string, coloring_program, pct};
use agenp_coalition::{
    datashare, distributed_cav_learning, federated, warm_start_comparison, CasWiki, TrustModel,
};
use agenp_core::scenarios::{cav, resupply, xacml};
use agenp_learn::{LearnOptions, Learner};
use agenp_policy::QualityChecker;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig1",
            "fig3a",
            "fig3b",
            "curve",
            "scale",
            "quality",
            "sharing",
            "federated",
            "resupply",
            "services",
            "hybrid",
            "explain",
            "ablation",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for w in wanted {
        match w {
            "fig1" => fig1(),
            "fig3a" => fig3a(),
            "fig3b" => fig3b(),
            "curve" => curve(),
            "scale" => scale(),
            "quality" => quality(),
            "sharing" => sharing(),
            "federated" => federated_report(),
            "resupply" => resupply_report(),
            "services" => services_report(),
            "hybrid" => hybrid_report(),
            "explain" => explain_report(),
            "ablation" => ablation(),
            other => eprintln!("unknown experiment `{other}` (see EXPERIMENTS.md)"),
        }
    }
}

fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// E1 — Fig. 1: the ILASP learning workflow on the CAV GPM.
fn fig1() {
    header("E1 (Fig. 1) — learning ASGs with ILASP: initial GPM + examples -> learned GPM");
    let train = cav::samples(64, 7);
    let task = cav::learning_task(&train, None);
    println!(
        "initial GPM: {} productions, hypothesis space: {} candidates, examples: {}+{}",
        task.grammar.cfg().production_count(),
        task.space.len(),
        task.positive.len(),
        task.negative.len()
    );
    let t = Instant::now();
    let h = Learner::new().learn(&task).expect("CAV task is learnable");
    println!("learned in {:?}:\n{h}", t.elapsed());
    println!("learned GPM (ASG):\n{}", h.apply(&task.grammar));
}

/// E2 — Fig. 3a: correctly learned XACML policies.
fn fig3a() {
    header("E2 (Fig. 3a) — correctly learned access-control policies");
    let log = xacml::generate_log(150, 7, 0.0);
    let task = xacml::learning_task(
        &log,
        xacml::SpaceConfig::default(),
        xacml::NoiseHandling::Filter,
    );
    let h = Learner::new().learn(&task).expect("clean log is learnable");
    let policy = xacml::learned_policy(&h.rules);
    println!("{policy}");
    println!(
        "ground truth for comparison:\n{}",
        xacml::ground_truth_policy()
    );
    println!(
        "accuracy vs ground truth on 1000 fresh requests: {}",
        pct(xacml::policy_accuracy(&policy, 1000, 99))
    );
}

/// E3/E4/E5 — Fig. 3b: the three incorrect-learning modes + mitigations.
fn fig3b() {
    header("E3 (Fig. 3b-1) — overfitting without statistical background");
    let sparse = vec![
        (
            xacml::XacmlRequest {
                role: 1,
                age: 30,
                rtype: 1,
                action: 0,
            },
            xacml::Response::Permit,
        ),
        (
            xacml::XacmlRequest {
                role: 3,
                age: 40,
                rtype: 2,
                action: 2,
            },
            xacml::Response::Deny,
        ),
    ];
    let cfg = xacml::SpaceConfig {
        include_age: true,
        require_subject_attribute: false,
    };
    let h = Learner::new()
        .learn(&xacml::learning_task(
            &sparse,
            cfg,
            xacml::NoiseHandling::Filter,
        ))
        .expect("sparse task is learnable");
    println!("from a 2-entry log the minimal hypothesis is over-specific:");
    println!("{}", xacml::learned_policy(&h.rules));
    println!("mitigation — statistics (a 150-entry log across the role's users):");
    let log = xacml::generate_log(150, 21, 0.0);
    let h2 = Learner::new()
        .learn(&xacml::learning_task(
            &log,
            cfg,
            xacml::NoiseHandling::Filter,
        ))
        .expect("learnable");
    let p2 = xacml::learned_policy(&h2.rules);
    println!("{p2}");
    println!("accuracy: {}", pct(xacml::policy_accuracy(&p2, 1000, 31)));

    header("E4 (Fig. 3b-2) — unsafe generalization and target-based restrictions");
    let unrestricted = xacml::hypothesis_space(xacml::SpaceConfig::default());
    let restricted = xacml::hypothesis_space(xacml::SpaceConfig {
        include_age: false,
        require_subject_attribute: true,
    });
    println!(
        "hypothesis space: {} candidates; {} after requiring an explicit subject attribute",
        unrestricted.len(),
        restricted.len()
    );
    let n_subjectless = unrestricted
        .candidates()
        .iter()
        .filter(|c| {
            !c.rule.body.iter().any(|l| {
                l.atom()
                    .is_some_and(|a| a.pred.with_name(|n| n == "role" || n == "age"))
            })
        })
        .count();
    println!("candidates with under-specified subjects removed: {n_subjectless}");

    header("E5 (Fig. 3b-3) — noisy logs: NotApplicable responses");
    println!(
        "{:<10} {:<32} {:>10} {:>8}",
        "noise", "handling", "accuracy", "rules"
    );
    for p_na in [0.0, 0.05, 0.1, 0.2] {
        // Deduplicate requests so the naive misinterpretation yields a
        // *wrong* policy (Fig. 3b-3's Policy 3) rather than an outright
        // inconsistency; with duplicates it is typically unsatisfiable.
        let mut log = xacml::generate_log(240, 13, p_na);
        let mut seen = std::collections::HashSet::new();
        log.retain(|(r, _)| seen.insert(format!("{r:?}")));
        log.truncate(40);
        for (name, handling) in [
            ("naive (NA treated as Deny)", xacml::NoiseHandling::Naive),
            ("filtered (NA pruned)", xacml::NoiseHandling::Filter),
            ("penalty (soft examples)", xacml::NoiseHandling::Penalty(5)),
        ] {
            let t = xacml::learning_task(&log, xacml::SpaceConfig::default(), handling);
            match Learner::new().learn(&t) {
                Ok(h) => {
                    let pol = xacml::learned_policy(&h.rules);
                    println!(
                        "{:<10} {:<32} {:>10} {:>8}",
                        pct(p_na),
                        name,
                        pct(xacml::policy_accuracy(&pol, 600, 5)),
                        pol.rules.len()
                    );
                }
                Err(e) => {
                    println!(
                        "{:<10} {:<32} {:>10} {:>8}",
                        pct(p_na),
                        name,
                        format!("{e}"),
                        "-"
                    )
                }
            }
        }
    }
}

/// E6 — the §IV-A claim: ASG-GPM vs shallow ML learning curves.
fn curve() {
    header("E6 (§IV-A claim) — ASG-based GPM vs shallow ML: accuracy vs training-set size");
    let test = cav::samples(500, 2024);
    let test_tab = cav::to_dataset(&test);
    println!(
        "{:>8} {:>10} {:>14} {:>12} {:>8}",
        "n_train", "ASG-GPM", "DecisionTree", "NaiveBayes", "kNN(5)"
    );
    for n in [4usize, 8, 16, 32, 64, 128, 256] {
        // Average over 3 seeds to smooth sampling noise.
        let mut accs = [0.0f64; 4];
        let seeds = [7u64, 77, 777];
        for &seed in &seeds {
            let train = cav::samples(n, seed);
            let task = cav::learning_task(&train, None);
            accs[0] += match Learner::new().learn(&task) {
                Ok(h) => cav::gpm_accuracy(&h.apply(&task.grammar), &test),
                Err(_) => 0.5,
            };
            let tab = cav::to_dataset(&train);
            accs[1] += DecisionTree::fit(&tab).accuracy(&test_tab);
            accs[2] += NaiveBayes::fit(&tab).accuracy(&test_tab);
            accs[3] += Knn::fit(&tab, 5.min(n)).accuracy(&test_tab);
        }
        for a in &mut accs {
            *a /= seeds.len() as f64;
        }
        println!(
            "{n:>8} {:>10} {:>14} {:>12} {:>8}",
            pct(accs[0]),
            pct(accs[1]),
            pct(accs[2]),
            pct(accs[3])
        );
    }
}

/// E7 — scalability: timing of solving, membership, and learning.
fn scale() {
    header("E7 (§III-B / §IV-B) — performance: solving, membership, learning");
    println!("-- answer-set solving (ring coloring, all models) --");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12}",
        "nodes", "models", "ground", "solve", "decisions"
    );
    let solver = Solver::new();
    for n in [6usize, 10, 14, 18] {
        let p = coloring_program(n);
        let tg = Instant::now();
        let g = ground(&p).expect("grounds");
        let ground_time = tg.elapsed();
        let ts = Instant::now();
        let r = solver.solve(&g);
        println!(
            "{n:>8} {:>10} {:>12?} {:>12?} {:>12}",
            r.models().len(),
            ground_time,
            ts.elapsed(),
            r.stats().decisions
        );
    }
    println!("\n-- ASG membership (a^n b^n c^n) --");
    println!("{:>8} {:>12} {:>10}", "n", "time", "member");
    let g = anbncn_grammar();
    for n in [2usize, 4, 8, 12] {
        let s = anbncn_string(n);
        let t = Instant::now();
        let member = g.accepts(&s).expect("membership check succeeds");
        println!("{n:>8} {:>12?} {:>10}", t.elapsed(), member);
    }
    println!("\n-- symbolic learning time vs examples (CAV) --");
    println!("{:>8} {:>12} {:>10} {:>10}", "n", "time", "cost", "rules");
    for n in [8usize, 16, 32, 64, 128] {
        let train = cav::samples(n, 7);
        let task = cav::learning_task(&train, None);
        let t = Instant::now();
        match Learner::new().learn(&task) {
            Ok(h) => println!(
                "{n:>8} {:>12?} {:>10} {:>10}",
                t.elapsed(),
                h.cost,
                h.rules.len()
            ),
            Err(e) => println!("{n:>8} {:>12?} {e}", t.elapsed()),
        }
    }
}

/// E8 — §V-A: policy quality assessment.
fn quality() {
    header("E8 (§V-A) — policy quality: consistency, relevance, minimality, completeness");
    // Learned XACML policies assessed over a request space.
    let log = xacml::generate_log(150, 11, 0.0);
    let task = xacml::learning_task(
        &log,
        xacml::SpaceConfig::default(),
        xacml::NoiseHandling::Filter,
    );
    let h = Learner::new().learn(&task).expect("learnable");
    let learned = xacml::learned_policy(&h.rules);
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(42);
    let space: Vec<agenp_policy::Request> = (0..200)
        .map(|_| xacml::XacmlRequest::random(&mut rng).to_request())
        .collect();
    let checker = QualityChecker::new();
    println!("learned policy set: {}", checker.assess(&[learned], &space));
    println!(
        "ground-truth set:   {}",
        checker.assess(&[xacml::ground_truth_policy()], &space)
    );

    // Context-dependent conflicts: the paper's Crypto-project/postdoc case.
    println!("-- context-dependent conflict detection (crypto-project vs postdoc) --");
    use agenp_policy::{Category, Cond, Effect, Policy, PolicyRule, Request};
    let policies = vec![
        Policy::new(
            "proj",
            vec![PolicyRule::new(
                "crypto-members",
                Effect::Permit,
                Cond::And(vec![
                    Cond::eq(Category::Subject, "project", "crypto"),
                    Cond::eq(Category::Action, "action-id", "modify"),
                ]),
            )],
        ),
        Policy::new(
            "role",
            vec![PolicyRule::new(
                "no-postdocs",
                Effect::Deny,
                Cond::And(vec![
                    Cond::eq(Category::Subject, "position", "postdoc"),
                    Cond::eq(Category::Action, "action-id", "modify"),
                ]),
            )],
        ),
    ];
    println!(
        "static potential conflicts: {}",
        checker.potential_conflicts(&policies).len()
    );
    let ctx_a = vec![Request::new()
        .subject("project", "crypto")
        .subject("position", "faculty")
        .action("action-id", "modify")];
    let ctx_b = vec![Request::new()
        .subject("project", "crypto")
        .subject("position", "postdoc")
        .action("action-id", "modify")];
    println!(
        "confirmed in context A (no postdoc crypto members): {}",
        checker.assess(&policies, &ctx_a).conflicts.len()
    );
    println!(
        "confirmed in context B (a postdoc crypto member):   {}",
        checker.assess(&policies, &ctx_b).conflicts.len()
    );

    // Learned, context-dependent conflict-resolution strategies (§V-A:
    // "learning from human decisions about conflict resolutions").
    use agenp_core::scenarios::conflict;
    let task = conflict::learning_task(160, 17);
    let h = Learner::new().learn(&task).expect("doctrine is learnable");
    let gpm = h.apply(&task.grammar);
    println!("\n-- learned conflict-resolution doctrine --\n{h}");
    println!(
        "strategy-selection accuracy vs administrator doctrine: {}",
        pct(conflict::selector_accuracy(&gpm, 500, 88))
    );
}

/// E9 — §IV-D: coalition data sharing + CASWiki warm start.
fn sharing() {
    header("E9 (§IV-D / §III-A-3) — coalition sharing: CASWiki warm start and trust shifts");
    let wiki = CasWiki::new();
    let reports = distributed_cav_learning(3, 50, 5, &wiki);
    for r in &reports {
        println!(
            "  {:<10} {} local examples -> {} rules, accuracy {}",
            r.name,
            r.local_examples,
            r.learned_rules,
            pct(r.accuracy)
        );
    }
    let mut trust = TrustModel::new();
    for r in &reports {
        trust.set(&r.name, 0.9);
    }
    println!(
        "{:>10} {:>10} {:>10} {:>8}",
        "local_n", "cold", "warm", "shared"
    );
    for local_n in [2usize, 4, 8, 16] {
        let o = warm_start_comparison(local_n, &wiki, &trust, 0.5, 4242 + local_n as u64);
        println!(
            "{local_n:>10} {:>10} {:>10} {:>8}",
            pct(o.cold_accuracy),
            pct(o.warm_accuracy),
            o.shared_used
        );
    }

    println!("\n-- data-sharing policy under coalition change (§V-C) --");
    let partners = ["amber", "bravo", "delta"];
    let mut before = TrustModel::new();
    before.set("amber", 0.95);
    before.set("bravo", 0.6);
    before.set("delta", 0.6);
    let mut after = before.clone();
    after.set("delta", 0.05);
    let o = datashare::coalition_shift_experiment(&partners, &before, &after, 120, 17);
    println!("{:>24} {:>10} {:>10}", "", "symbolic", "dec.tree");
    println!(
        "{:>24} {:>10} {:>10}",
        "before shift",
        pct(o.symbolic_before),
        pct(o.statistical_before)
    );
    println!(
        "{:>24} {:>10} {:>10}",
        "after shift",
        pct(o.symbolic_after),
        pct(o.statistical_after)
    );
}

/// E10 — §IV-E: federated-learning governance.
fn federated_report() {
    header("E10 (§IV-E) — federated-learning governance");
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(12);
    let offers: Vec<federated::ModelOffer> = (0..80)
        .map(|_| federated::ModelOffer::random(&mut rng))
        .collect();
    let task = federated::learning_task(&offers);
    let h = Learner::new()
        .learn(&task)
        .expect("governance is learnable");
    println!("learned governance constraints:\n{h}");
    let gpm = h.apply(&task.grammar);
    println!(
        "governance accuracy vs oracle: {}",
        pct(federated::governance_accuracy(&gpm, 500, 777))
    );
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "rounds", "governed", "ungoverned", "adoptions"
    );
    for rounds in [20usize, 40, 60] {
        let o = federated::simulate_federation(&gpm, rounds, 99 + rounds as u64);
        println!(
            "{rounds:>8} {:>12.1} {:>12.1} {:>10}",
            o.governed_final_acc, o.ungoverned_final_acc, o.governed_adoptions
        );
    }
}

/// E11 — §IV-B: logistical resupply learning curve + risk-appetite shift.
fn resupply_report() {
    header("E11 (§IV-B) — logistical resupply: accuracy vs missions flown");
    println!("{:>10} {:>10} {:>10}", "missions", "examples", "accuracy");
    let mut last = None;
    for n in [2usize, 4, 8, 16, 32] {
        let data = resupply::reviews(n, 3, 9);
        let task = resupply::learning_task(&data);
        match Learner::new().learn(&task) {
            Ok(h) => {
                let gpm = h.apply(&task.grammar);
                let acc = resupply::gpm_accuracy(&gpm, 50, 555);
                println!("{n:>10} {:>10} {:>10}", data.len(), pct(acc));
                last = Some(gpm);
            }
            Err(e) => println!("{n:>10} {:>10} learn failed: {e}", data.len()),
        }
    }
    if let Some(gpm) = last.clone() {
        // Utility-based plan selection via weak constraints (§I type iii).
        let pref = resupply::with_preferences(&gpm);
        let mission = resupply::Mission {
            threat: [0, 2, 1],
            rain: true,
            appetite: 2,
        };
        if let Some((plan, cost)) = resupply::preferred_plan(&pref, mission) {
            println!(
                "utility-preferred plan for {mission:?}: {} (cost {cost})",
                plan.text()
            );
        }
    }
    // Convoy composition (§IV-B: "how the convoy should be made up").
    {
        let reviews = resupply::convoy_reviews(80, 5, 11);
        let task = resupply::convoy_learning_task(&reviews);
        match Learner::new().learn(&task) {
            Ok(h) => {
                let gpm = h.apply(&task.grammar);
                println!(
                    "\nconvoy composition doctrine learned from {} reviews:\n{h}",
                    reviews.len()
                );
                println!(
                    "full-plan accuracy (route x slot x composition): {}",
                    pct(resupply::convoy_gpm_accuracy(&gpm, 30, 777))
                );
            }
            Err(e) => println!("convoy learning failed: {e}"),
        }
    }
    if let Some(gpm) = last {
        let cautious = resupply::Mission {
            threat: [2, 3, 3],
            rain: false,
            appetite: 1,
        };
        let bold = resupply::Mission {
            appetite: 2,
            ..cautious
        };
        let plan = resupply::Plan { route: 0, slot: 0 };
        let a = gpm
            .with_context(&cautious.to_program())
            .accepts(&plan.text())
            .unwrap_or(false);
        let b = gpm
            .with_context(&bold.to_program())
            .accepts(&plan.text())
            .unwrap_or(false);
        println!(
            "risk-appetite shift: plan `{}` appetite 1 -> {}, appetite 2 -> {}",
            plan.text(),
            if a { "admitted" } else { "discounted" },
            if b { "admitted" } else { "discounted" }
        );
    }
}

/// E14 — §IV-A (capability sharing): temporal/spatial/utility-constrained
/// service sharing between CAVs.
fn services_report() {
    use agenp_coalition::cav_services;
    header("E14 (§IV-A) — CAV capability sharing between vehicles");
    let task = cav_services::learning_task(100, 31);
    let h = Learner::new().learn(&task).expect("learnable");
    println!("learned sharing constraints:\n{h}");
    let gpm = h.apply(&task.grammar);
    println!(
        "policy accuracy vs oracle: {}",
        pct(cav_services::gpm_accuracy(&gpm, 500, 77))
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10}",
        "attempts", "shared", "solo", "improper"
    );
    for (label, g) in [("learned", &gpm), ("ungoverned", &cav_services::grammar())] {
        let o = cav_services::simulate_fleet(g, 300, 99);
        println!(
            "{:>10} {:>10} {:>10} {:>10}  ({label})",
            o.attempts, o.shared_completions, o.solo_completions, o.improper_shares
        );
    }
}

/// E15 — §V-C: statistical atomic concepts feeding symbolic policies.
fn hybrid_report() {
    use agenp_core::scenarios::hybrid;
    header("E15 (§V-C) — hybrid: statistical concept detection + symbolic policy");
    let hybrid = hybrid::HybridPolicy::train_with_regime(200, 200, 11, (2, 5));
    let e2e = hybrid::train_end_to_end_with_regime(200, 11, (2, 5));
    println!(
        "symbolic layer learned on detector-inferred weather facts:\n{}",
        hybrid.gpm()
    );
    println!("{:>28} {:>10} {:>12}", "regime", "hybrid", "end-to-end");
    for (label, range) in [
        ("training (limits 2-5)", (2i64, 5i64)),
        ("shifted (limits 0-1)", (0, 1)),
    ] {
        let (h, s) = hybrid::compare(&hybrid, &e2e, 500, 77, range);
        println!("{label:>28} {:>10} {:>12}", pct(h), pct(s));
    }
}

/// E13 — §V-B: policy explainability (derivations + counterfactuals).
fn explain_report() {
    use agenp_core::explain::{counterfactual, explain_policy, MutableFact};
    header("E13 (§V-B) — policy explainability");
    let train = cav::samples(64, 7);
    let task = cav::learning_task(&train, None);
    let h = Learner::new().learn(&task).expect("learnable");
    let gpm = h.apply(&task.grammar);
    let low = cav::CavContext {
        loa: 2,
        limit: 5,
        rain: false,
        emergency: false,
    };
    println!("why is `accept park` not generated at {low:?}?");
    println!(
        "{}",
        explain_policy(&gpm, &low.to_program(), "accept park").expect("explanation")
    );
    let mutable = vec![MutableFact::parse(
        "loa(2).",
        &["loa(0).", "loa(1).", "loa(3).", "loa(4).", "loa(5)."],
    )];
    match counterfactual(
        &gpm,
        &low.to_program(),
        "accept overtake",
        &mutable,
        true,
        1,
    )
    .expect("counterfactual search")
    {
        Some(cf) => println!("counterfactual: {cf}, the task would have been accepted."),
        None => println!("no single-change counterfactual"),
    }
}

/// E12 — ablations of the design choices in DESIGN.md §5.
fn ablation() {
    header("E12 — ablations: stratified fast path, monotone learner, incremental learning");
    println!("-- solver: stratified fast path vs forced DPLL (birds, n individuals) --");
    println!("{:>8} {:>14} {:>14}", "n", "stratified", "dpll");
    for n in [50usize, 200, 800] {
        let p = agenp_bench::birds_program(n);
        let g = ground(&p).expect("grounds");
        let t1 = Instant::now();
        let r1 = Solver::new().solve(&g);
        let e1 = t1.elapsed();
        let t2 = Instant::now();
        let r2 = Solver::new().force_search(true).solve(&g);
        let e2 = t2.elapsed();
        assert_eq!(r1.models().len(), r2.models().len());
        println!("{n:>8} {e1:>14?} {e2:>14?}");
    }
    println!("\n-- learner: monotone fast path vs generic subset search (CAV) --");
    println!("{:>8} {:>14} {:>14}", "n", "monotone", "generic");
    for n in [4usize, 8, 12] {
        let train = cav::samples(n, 7);
        let task = cav::learning_task(&train, None);
        let t1 = Instant::now();
        let fast = Learner::new().learn(&task);
        let e1 = t1.elapsed();
        let t2 = Instant::now();
        let slow = Learner::with_options(
            LearnOptions::default()
                .with_force_generic(true)
                .with_max_nodes(50_000_000),
        )
        .learn(&task);
        let e2 = t2.elapsed();
        let note = match (&fast, &slow) {
            (Ok(a), Ok(b)) if a.cost == b.cost => "",
            _ => " (!)",
        };
        println!("{n:>8} {e1:>14?} {e2:>14?}{note}");
    }
    println!("\n-- learner backends: native BnB vs ASP meta-encoding --");
    println!("{:>8} {:>14} {:>14}", "n", "native", "meta");
    for n in [4usize, 6, 8] {
        let train = cav::samples(n, 7);
        let task = cav::learning_task(&train, None);
        let t1 = Instant::now();
        let a = Learner::new().learn(&task);
        let e1 = t1.elapsed();
        let t2 = Instant::now();
        let b = Learner::new().learn_meta(&task);
        let e2 = t2.elapsed();
        let note = match (&a, &b) {
            (Ok(x), Ok(y)) if x.cost == y.cost => "",
            _ => " (!)",
        };
        println!("{n:>8} {e1:>14?} {e2:>14?}{note}");
    }

    println!("\n-- learner branching: guided vs cost-first (search nodes) --");
    println!("{:>8} {:>14} {:>14}", "n", "guided", "cost-first");
    for n in [32usize, 64, 128] {
        let train = cav::samples(n, 7);
        let task = cav::learning_task(&train, None);
        let guided = Learner::new().learn_with_stats(&task).expect("learnable").1;
        let costfirst = Learner::with_options(
            LearnOptions::default().with_branching(agenp_learn::Branching::CostFirst),
        )
        .learn_with_stats(&task)
        .expect("learnable")
        .1;
        println!(
            "{n:>8} {:>14} {:>14}",
            guided.search_nodes, costfirst.search_nodes
        );
    }

    println!("\n-- learner: batch vs incremental (relevant examples) --");
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "n", "batch", "incremental", "relevant"
    );
    for n in [32usize, 64, 128, 256] {
        let train = cav::samples(n, 7);
        let task = cav::learning_task(&train, None);
        let t1 = Instant::now();
        let _ = Learner::new().learn(&task);
        let e1 = t1.elapsed();
        let t2 = Instant::now();
        let inc = Learner::new().learn_incremental(&task);
        let e2 = t2.elapsed();
        let rel = inc.as_ref().map(|(_, s)| s.relevant).unwrap_or(0);
        println!("{n:>8} {e1:>14?} {e2:>14?} {rel:>10}");
    }
}
