//! `perf` — machine-readable performance harness for the ASP pipeline.
//!
//! Times grounding (semi-naive vs the retained naive reference, with work
//! counters), solving, and end-to-end CAV/XACML learning at several scales,
//! then writes `BENCH_asp.json` at the repository root alongside a
//! human-readable table. The JSON schema is documented in
//! `docs/PERFORMANCE.md`.
//!
//! Usage: `cargo run -p agenp-bench --bin perf --release [-- --smoke]`
//!
//! `--smoke` runs reduced scales suitable for CI, re-reads the emitted JSON
//! through a validating parser, and exits nonzero if the file is malformed
//! or a headline counter claim regresses.

use agenp_asp::{ground_with_stats, GroundMode, GroundOptions, GroundStats, Program, Solver};
use agenp_bench::{birds_program, coloring_program, time_best_of, transitive_closure_program};
use agenp_core::scenarios::{cav, xacml};
use agenp_learn::{CompileOptions, LearnOptions, LearnStats, Learner};
use std::path::PathBuf;
use std::time::Instant;

/// One grounder measurement.
struct GroundRow {
    workload: &'static str,
    n: usize,
    engine: &'static str,
    micros: u128,
    stats: GroundStats,
    atoms: usize,
    rules: usize,
}

/// One solver measurement (grounding and solving timed separately).
struct SolveRow {
    workload: &'static str,
    n: usize,
    ground_micros: u128,
    solve_micros: u128,
    models: usize,
    decisions: u64,
}

/// One end-to-end learning measurement.
struct LearnRow {
    workload: &'static str,
    n: usize,
    config: &'static str,
    micros: u128,
    cost: u64,
    stats: LearnStats,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let ground_rows = run_grounding(smoke);
    let solve_rows = run_solving(smoke);
    let (learn_rows, cav_ratio) = run_learning(smoke);

    print_tables(&ground_rows, &solve_rows, &learn_rows, cav_ratio);

    let tc_waste = waste_ratio(&ground_rows, "transitive_closure");
    let json = render_json(smoke, &ground_rows, &solve_rows, &learn_rows, cav_ratio);
    let path = output_path();
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("perf: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("\nwrote {}", path.display());

    // Re-read and validate what actually landed on disk.
    let on_disk = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("perf: cannot re-read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    if let Err(e) = agenp_bench::json::validate(&on_disk) {
        eprintln!("perf: BENCH_asp.json is not valid JSON: {e}");
        std::process::exit(1);
    }
    for key in ["\"grounding\"", "\"solving\"", "\"learning\"", "\"claims\""] {
        if !on_disk.contains(key) {
            eprintln!("perf: BENCH_asp.json is missing the {key} section");
            std::process::exit(1);
        }
    }
    if cav_ratio < 2.0 {
        eprintln!(
            "perf: CAV delta grounding must instantiate >= 2x fewer rules than \
             naive re-grounding (measured ratio {cav_ratio:.2})"
        );
        std::process::exit(1);
    }
    if tc_waste > 8.0 {
        eprintln!(
            "perf: transitive-closure ground waste ratio regressed: \
             {tc_waste:.1} join candidates per instantiation (gate: <= 8.0; \
             argument-value join indices should hold this near 4)"
        );
        std::process::exit(1);
    }
    println!(
        "BENCH_asp.json validated (cav naive/delta instantiation ratio {cav_ratio:.1}x, \
         tc ground waste ratio {tc_waste:.1})"
    );
}

/// `BENCH_asp.json` lives at the repository root regardless of the cwd
/// cargo chose for the binary.
fn output_path() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir).join("../..").join("BENCH_asp.json"),
        Err(_) => PathBuf::from("BENCH_asp.json"),
    }
}

// --- measurement -----------------------------------------------------------

/// A named workload family: label, scales to run, and the program builder.
type GroundWorkload = (&'static str, Vec<usize>, fn(usize) -> Program);

fn run_grounding(smoke: bool) -> Vec<GroundRow> {
    let workloads: Vec<GroundWorkload> = if smoke {
        vec![
            ("coloring", vec![6], coloring_program),
            ("transitive_closure", vec![12], transitive_closure_program),
            ("birds", vec![20], birds_program),
        ]
    } else {
        vec![
            ("coloring", vec![10, 20, 40], coloring_program),
            (
                "transitive_closure",
                vec![20, 40, 80],
                transitive_closure_program,
            ),
            ("birds", vec![50, 100, 200], birds_program),
        ]
    };
    let serial = GroundOptions::default().with_parallelism(1);
    let mut rows = Vec::new();
    for (name, scales, build) in workloads {
        let max_n = *scales.last().expect("workloads have scales");
        for n in scales {
            let p = build(n);
            // Warmup + best-of-3: first-touch allocation and interner costs
            // used to make the first seminaive row measure *slower* than
            // naive on small programs.
            let (micros, (g, stats)) = time_best_of(3, || {
                ground_with_stats(&p, serial).expect("workload grounds")
            });
            let serial_render = g.to_string();
            rows.push(GroundRow {
                workload: name,
                n,
                engine: "seminaive",
                micros,
                stats,
                atoms: g.atoms().len(),
                rules: g.len(),
            });
            let (micros, (g, stats)) = time_best_of(3, || {
                ground_with_stats(&p, serial.with_mode(GroundMode::Naive))
                    .expect("workload grounds")
            });
            rows.push(GroundRow {
                workload: name,
                n,
                engine: "naive",
                micros,
                stats,
                atoms: g.atoms().len(),
                rules: g.len(),
            });
            // At the top scale, run the work-stealing pool configuration and
            // hold it to byte-identical output (thread scaling itself is
            // read against the `cpus` claim, as BENCH_pdp.json does).
            if n == max_n {
                let pooled = GroundOptions::default()
                    .with_parallelism(4)
                    .with_parallel_grain(16);
                let (micros, (g, stats)) = time_best_of(3, || {
                    ground_with_stats(&p, pooled).expect("workload grounds")
                });
                assert_eq!(
                    g.to_string(),
                    serial_render,
                    "parallel grounding must be byte-identical to serial ({name} n={n})"
                );
                rows.push(GroundRow {
                    workload: name,
                    n,
                    engine: "seminaive_t4",
                    micros,
                    stats,
                    atoms: g.atoms().len(),
                    rules: g.len(),
                });
            }
        }
    }
    rows
}

/// Join waste (candidates probed per rule actually instantiated) on the
/// largest serial semi-naive row of `workload`. This is the figure the
/// argument-value indices exist to hold down.
fn waste_ratio(rows: &[GroundRow], workload: &str) -> f64 {
    rows.iter()
        .filter(|r| r.workload == workload && r.engine == "seminaive")
        .max_by_key(|r| r.n)
        .map(|r| r.stats.join_candidates as f64 / r.stats.rules_instantiated.max(1) as f64)
        .unwrap_or(0.0)
}

fn run_solving(smoke: bool) -> Vec<SolveRow> {
    let scales: &[usize] = if smoke { &[6] } else { &[6, 10, 14] };
    let solver = Solver::new();
    let mut rows = Vec::new();
    for &n in scales {
        let p = coloring_program(n);
        // Warmup + best-of-3 on both phases: the first solve row used to
        // absorb one-time costs and make larger scales read *faster* than
        // smaller ones.
        let (ground_micros, g) = time_best_of(3, || {
            let (g, _) = ground_with_stats(&p, GroundOptions::default().with_parallelism(1))
                .expect("grounds");
            g
        });
        let (solve_micros, r) = time_best_of(3, || solver.solve(&g));
        rows.push(SolveRow {
            workload: "coloring",
            n,
            ground_micros,
            solve_micros,
            models: r.models().len(),
            decisions: r.stats().decisions,
        });
    }
    rows
}

/// Runs CAV and XACML learning under the default configuration (delta
/// grounding + evaluation memo) and the ablation (naive re-grounding, no
/// memo). Returns the rows plus the headline naive/delta rule-instantiation
/// ratio on the largest CAV scale.
fn run_learning(smoke: bool) -> (Vec<LearnRow>, f64) {
    let cav_scales: &[usize] = if smoke { &[4] } else { &[4, 8, 12] };
    let xacml_scales: &[usize] = if smoke { &[20] } else { &[40, 100] };
    let delta_opts = LearnOptions::default().with_force_generic(true);
    let naive_opts = LearnOptions::default()
        .with_force_generic(true)
        .with_eval_cache(false)
        .with_compile(CompileOptions::default().with_naive_ground(true));
    let mut rows = Vec::new();
    let mut ratio = 0.0;
    for &n in cav_scales {
        let train = cav::samples(n, 7);
        let task = cav::learning_task(&train, None);
        let delta = measure_learn("cav", n, "delta_cached", delta_opts, &task);
        let naive = measure_learn("cav", n, "naive_uncached", naive_opts, &task);
        let delta_work = delta.stats.rules_instantiated.max(1);
        ratio = naive.stats.rules_instantiated as f64 / delta_work as f64;
        rows.push(delta);
        rows.push(naive);
    }
    for &n in xacml_scales {
        let log = xacml::generate_log(n, 11, 0.0);
        let task = xacml::learning_task(
            &log,
            xacml::SpaceConfig::default(),
            xacml::NoiseHandling::Filter,
        );
        rows.push(measure_learn(
            "xacml",
            n,
            "default",
            LearnOptions::default(),
            &task,
        ));
        rows.push(measure_learn(
            "xacml",
            n,
            "naive_ground",
            LearnOptions::default().with_compile(CompileOptions::default().with_naive_ground(true)),
            &task,
        ));
    }
    (rows, ratio)
}

fn measure_learn(
    workload: &'static str,
    n: usize,
    config: &'static str,
    opts: LearnOptions,
    task: &agenp_learn::LearningTask,
) -> LearnRow {
    let t = Instant::now();
    let (h, stats) = Learner::with_options(opts)
        .learn_with_stats(task)
        .expect("benchmark task is learnable");
    LearnRow {
        workload,
        n,
        config,
        micros: t.elapsed().as_micros(),
        cost: h.cost,
        stats,
    }
}

// --- human-readable output -------------------------------------------------

fn print_tables(
    ground_rows: &[GroundRow],
    solve_rows: &[SolveRow],
    learn_rows: &[LearnRow],
    cav_ratio: f64,
) {
    println!("-- grounding: semi-naive vs naive reference --");
    println!(
        "{:>20} {:>6} {:>10} {:>10} {:>7} {:>12} {:>12} {:>8} {:>8}",
        "workload",
        "n",
        "engine",
        "micros",
        "passes",
        "instantiated",
        "candidates",
        "atoms",
        "rules"
    );
    for r in ground_rows {
        println!(
            "{:>20} {:>6} {:>10} {:>10} {:>7} {:>12} {:>12} {:>8} {:>8}",
            r.workload,
            r.n,
            r.engine,
            r.micros,
            r.stats.passes,
            r.stats.rules_instantiated,
            r.stats.join_candidates,
            r.atoms,
            r.rules
        );
    }
    println!("\n-- solving (ground vs solve time) --");
    println!(
        "{:>20} {:>6} {:>12} {:>12} {:>8} {:>10}",
        "workload", "n", "ground_us", "solve_us", "models", "decisions"
    );
    for r in solve_rows {
        println!(
            "{:>20} {:>6} {:>12} {:>12} {:>8} {:>10}",
            r.workload, r.n, r.ground_micros, r.solve_micros, r.models, r.decisions
        );
    }
    println!("\n-- end-to-end learning: delta+memo vs naive ablation --");
    println!(
        "{:>10} {:>6} {:>16} {:>10} {:>6} {:>8} {:>12} {:>8} {:>8} {:>8}",
        "workload",
        "n",
        "config",
        "micros",
        "cost",
        "passes",
        "instantiated",
        "solves",
        "hits",
        "misses"
    );
    for r in learn_rows {
        println!(
            "{:>10} {:>6} {:>16} {:>10} {:>6} {:>8} {:>12} {:>8} {:>8} {:>8}",
            r.workload,
            r.n,
            r.config,
            r.micros,
            r.cost,
            r.stats.grounding_passes,
            r.stats.rules_instantiated,
            r.stats.solver_calls,
            r.stats.eval_cache_hits,
            r.stats.eval_cache_misses
        );
    }
    println!("\ncav naive/delta rule-instantiation ratio: {cav_ratio:.1}x");
}

// --- JSON emission ---------------------------------------------------------

fn render_json(
    smoke: bool,
    ground_rows: &[GroundRow],
    solve_rows: &[SolveRow],
    learn_rows: &[LearnRow],
    cav_ratio: f64,
) -> String {
    let grounding: Vec<String> = ground_rows
        .iter()
        .map(|r| {
            format!(
                "{{\"workload\": \"{}\", \"n\": {}, \"engine\": \"{}\", \"micros\": {}, \
                 \"passes\": {}, \"rules_instantiated\": {}, \"join_candidates\": {}, \
                 \"atoms\": {}, \"rules\": {}}}",
                r.workload,
                r.n,
                r.engine,
                r.micros,
                r.stats.passes,
                r.stats.rules_instantiated,
                r.stats.join_candidates,
                r.atoms,
                r.rules
            )
        })
        .collect();
    let solving: Vec<String> = solve_rows
        .iter()
        .map(|r| {
            format!(
                "{{\"workload\": \"{}\", \"n\": {}, \"ground_micros\": {}, \
                 \"solve_micros\": {}, \"models\": {}, \"decisions\": {}}}",
                r.workload, r.n, r.ground_micros, r.solve_micros, r.models, r.decisions
            )
        })
        .collect();
    let learning: Vec<String> = learn_rows
        .iter()
        .map(|r| {
            format!(
                "{{\"workload\": \"{}\", \"n\": {}, \"config\": \"{}\", \"micros\": {}, \
                 \"cost\": {}, \"grounding_passes\": {}, \"rules_instantiated\": {}, \
                 \"solver_calls\": {}, \"eval_cache_hits\": {}, \"eval_cache_misses\": {}, \
                 \"search_nodes\": {}, \"used_monotone\": {}}}",
                r.workload,
                r.n,
                r.config,
                r.micros,
                r.cost,
                r.stats.grounding_passes,
                r.stats.rules_instantiated,
                r.stats.solver_calls,
                r.stats.eval_cache_hits,
                r.stats.eval_cache_misses,
                r.stats.search_nodes,
                r.stats.used_monotone
            )
        })
        .collect();
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    format!(
        "{{\n\"schema\": \"agenp-bench/perf/v1\",\n\"smoke\": {},\n\
         \"grounding\": [\n{}\n],\n\"solving\": [\n{}\n],\n\"learning\": [\n{}\n],\n\
         \"claims\": {{\"cav_naive_over_delta_rule_instantiations\": {:.3}, \
         \"ground_waste_ratio_coloring\": {:.3}, \
         \"ground_waste_ratio_transitive_closure\": {:.3}, \
         \"ground_waste_ratio_birds\": {:.3}, \
         \"cpus\": {}}}\n}}\n",
        smoke,
        grounding.join(",\n"),
        solving.join(",\n"),
        learning.join(",\n"),
        cav_ratio,
        waste_ratio(ground_rows, "coloring"),
        waste_ratio(ground_rows, "transitive_closure"),
        waste_ratio(ground_rows, "birds"),
        cpus
    )
}
