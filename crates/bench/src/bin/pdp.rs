//! `pdp` — machine-readable throughput harness for the shared-snapshot PDP
//! serving tier.
//!
//! Drives a closed-loop multi-threaded request workload (randomized XACML
//! requests against the scenario's ground-truth policy) through a
//! [`PdpServer`], then writes `BENCH_pdp.json` at the repository root:
//! threads × throughput × cache-hit-rate, a single-thread parity check of
//! the serving tier against the legacy stateful [`Pdp`] path, and a
//! stale-cache stress that swaps snapshots mid-stream and counts decisions
//! served from the wrong epoch. The JSON schema is documented in
//! `docs/SERVING.md`.
//!
//! Since schema v2 the harness also puts the PDP on the wire: it boots an
//! in-process `agenp-pdpd` HTTP/1.1 server on an ephemeral loopback port,
//! drives it with the crate's load client (single connection, multiple
//! connections, and batched bodies), and records throughput plus latency
//! percentiles under the `"http"` section. The load client re-checks every
//! response against the oracle, so the HTTP rows double as a wire-path
//! parity gate.
//!
//! Usage: `cargo run -p agenp-bench --bin pdp --release [-- --smoke]`
//!
//! `--smoke` runs reduced scales suitable for CI, re-reads the emitted JSON
//! through a validating parser, and exits nonzero on any parity mismatch,
//! any stale-cache decision, a single-connection HTTP throughput below
//! 10k decisions/sec, or (on machines with >= 4 CPUs) a 4-thread
//! throughput below 2x the 1-thread run.

use agenp_core::arch::{DecisionSnapshot, PdpHandle, PdpServer};
use agenp_core::scenarios::xacml::{ground_truth_policy, XacmlRequest};
use agenp_pdpd::{run_load, LoadOptions, PdpdServer, ServerOptions};
use agenp_policy::{
    evaluate_policies, CombiningAlg, Decision, Pdp, Policy, PolicyRepository, PolicyRule, Request,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One closed-loop throughput measurement.
struct ThroughputRow {
    threads: usize,
    decisions: u64,
    micros: u128,
    throughput: f64,
    cache_hits: u64,
    cache_misses: u64,
    hit_rate: f64,
}

/// The serving-tier vs legacy-PDP parity result.
struct ParityOutcome {
    requests: usize,
    mismatches: usize,
}

/// The snapshot-swap stress result.
struct StressOutcome {
    decisions: u64,
    swaps: u64,
    stale_served: u64,
}

/// One HTTP load-client measurement against the in-process daemon.
struct HttpRow {
    connections: usize,
    batch: usize,
    decisions: u64,
    throughput: f64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    max_us: u64,
    parity_mismatches: u64,
    stale_epochs: u64,
    http_errors: u64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let distinct = if smoke { 64 } else { 256 };
    let per_thread = if smoke { 20_000 } else { 200_000 };
    let workload = build_workload(distinct, 42);
    let policies = vec![ground_truth_policy()];

    let thread_counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let rows: Vec<ThroughputRow> = thread_counts
        .iter()
        .map(|&t| run_throughput(t, &workload, &policies, per_thread))
        .collect();

    let parity = run_parity(&policies, if smoke { 1000 } else { 5000 }, 7);
    let stress = run_stress(&policies, if smoke { 64 } else { 256 }, 4);
    let http_rows = run_http(&policies, smoke);

    print_tables(&rows, &parity, &stress, &http_rows);

    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    // A thread-scaling claim measured on hardware that cannot run the
    // threads in parallel is noise, not evidence — record null there.
    let speedup_4t = if cpus >= 4 { speedup(&rows, 4) } else { None };
    let json = render_json(smoke, &rows, &parity, &stress, &http_rows, speedup_4t, cpus);
    let path = output_path();
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("pdp: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("\nwrote {}", path.display());

    // Re-read and validate what actually landed on disk.
    let on_disk = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pdp: cannot re-read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    if let Err(e) = agenp_bench::json::validate(&on_disk) {
        eprintln!("pdp: BENCH_pdp.json is not valid JSON: {e}");
        std::process::exit(1);
    }
    for key in [
        "\"throughput\"",
        "\"parity\"",
        "\"stress\"",
        "\"http\"",
        "\"claims\"",
    ] {
        if !on_disk.contains(key) {
            eprintln!("pdp: BENCH_pdp.json is missing the {key} section");
            std::process::exit(1);
        }
    }
    if parity.mismatches > 0 {
        eprintln!(
            "pdp: serving tier disagreed with the legacy Pdp on {} of {} requests",
            parity.mismatches, parity.requests
        );
        std::process::exit(1);
    }
    if stress.stale_served > 0 {
        eprintln!(
            "pdp: {} decisions were served from a stale cache entry across {} snapshot swaps",
            stress.stale_served, stress.swaps
        );
        std::process::exit(1);
    }
    for row in &http_rows {
        if row.parity_mismatches > 0 || row.stale_epochs > 0 || row.http_errors > 0 {
            eprintln!(
                "pdp: HTTP load run ({} conn, batch {}) was not clean: \
                 {} mismatches, {} stale epochs, {} errors",
                row.connections,
                row.batch,
                row.parity_mismatches,
                row.stale_epochs,
                row.http_errors
            );
            std::process::exit(1);
        }
    }
    let single_conn = http_rows
        .iter()
        .find(|r| r.connections == 1 && r.batch == 1)
        .expect("single-connection HTTP row");
    if single_conn.throughput < 10_000.0 {
        eprintln!(
            "pdp: single-connection HTTP throughput {:.0} dec/s is below the 10k floor",
            single_conn.throughput
        );
        std::process::exit(1);
    }
    // The scaling gate only means something when the hardware can actually
    // run 4 workers in parallel (CI runners can; 1-CPU boxes cannot).
    if cpus >= 4 {
        if let Some(s) = speedup_4t {
            if s < 2.0 {
                eprintln!(
                    "pdp: 4-thread throughput must be >= 2x the 1-thread run on a \
                     {cpus}-CPU machine (measured {s:.2}x)"
                );
                std::process::exit(1);
            }
        }
    } else {
        println!("pdp: skipping the 4-thread scaling gate ({cpus} CPU available)");
    }
    println!(
        "BENCH_pdp.json validated (parity {}/{} ok, {} stale across {} swaps, \
         http 1-conn {:.0} dec/s{})",
        parity.requests - parity.mismatches,
        parity.requests,
        stress.stale_served,
        stress.swaps,
        single_conn.throughput,
        match speedup_4t {
            Some(s) => format!(", 4t/1t {s:.2}x"),
            None => String::new(),
        }
    );
}

/// `BENCH_pdp.json` lives at the repository root regardless of the cwd
/// cargo chose for the binary.
fn output_path() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir).join("../..").join("BENCH_pdp.json"),
        Err(_) => PathBuf::from("BENCH_pdp.json"),
    }
}

/// `distinct` seeded random XACML requests, converted to the attribute
/// model the PDP evaluates.
fn build_workload(distinct: usize, seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..distinct)
        .map(|_| XacmlRequest::random(&mut rng).to_request())
        .collect()
}

fn run_throughput(
    threads: usize,
    workload: &[Request],
    policies: &[Policy],
    per_thread: usize,
) -> ThroughputRow {
    let handle = PdpHandle::new();
    handle.publish(DecisionSnapshot::new(
        policies.to_vec(),
        CombiningAlg::DenyOverrides,
    ));
    let report = PdpServer::new(handle)
        .with_threads(threads)
        .run(workload, per_thread);
    ThroughputRow {
        threads,
        decisions: report.decisions,
        micros: report.elapsed.as_micros(),
        throughput: report.throughput,
        cache_hits: report.cache_hits,
        cache_misses: report.cache_misses,
        hit_rate: report.hit_rate(),
    }
}

/// Single-thread parity: the serving tier (cold cache and warm cache both)
/// must render bit-identical decisions to the legacy stateful [`Pdp`] over
/// a fresh randomized request stream.
fn run_parity(policies: &[Policy], requests: usize, seed: u64) -> ParityOutcome {
    let mut repo = PolicyRepository::new();
    for p in policies {
        repo.add(p.clone());
    }
    let mut legacy = Pdp::new(CombiningAlg::DenyOverrides);
    let handle = PdpHandle::new();
    handle.publish(DecisionSnapshot::new(
        policies.to_vec(),
        CombiningAlg::DenyOverrides,
    ));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mismatches = 0usize;
    for _ in 0..requests {
        let req = XacmlRequest::random(&mut rng).to_request();
        let expected = legacy.decide(&repo, &req);
        let cold = handle.decide(&req).decision;
        let warm = handle.decide(&req).decision; // second hit exercises the cache
        if cold != expected || warm != expected {
            mismatches += 1;
        }
    }
    ParityOutcome {
        requests,
        mismatches,
    }
}

/// Snapshot-swap stress: worker threads hammer a small request set while
/// the main thread alternates between the real policy set and a
/// deny-everything set. Each published epoch has a known expected decision
/// function; a decision that disagrees with its own epoch's policy set was
/// served stale.
fn run_stress(policies: &[Policy], swaps: u64, threads: usize) -> StressOutcome {
    let deny_all = vec![Policy::new(
        "deny-all",
        vec![PolicyRule::unconditional(
            "deny-everything",
            agenp_policy::Effect::Deny,
        )],
    )];
    let workload = build_workload(16, 99);
    // Expected decision per request under each policy set, computed once:
    // epoch 0 is the handle's empty initial snapshot, odd epochs serve the
    // real set, even (published) epochs serve deny-all.
    let under_real: Vec<Decision> = workload
        .iter()
        .map(|r| evaluate_policies(policies, CombiningAlg::DenyOverrides, r))
        .collect();
    let under_empty: Vec<Decision> = workload
        .iter()
        .map(|r| evaluate_policies(&[], CombiningAlg::DenyOverrides, r))
        .collect();

    let handle = PdpHandle::new();
    let stop = AtomicBool::new(false);
    let decisions = AtomicU64::new(0);
    let stale = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..threads {
            let h = handle.clone();
            let (stop, decisions, stale) = (&stop, &decisions, &stale);
            let (workload, under_real, under_empty) = (&workload, &under_real, &under_empty);
            s.spawn(move || {
                let mut i = t; // phase-shift the streams
                while !stop.load(Ordering::Relaxed) {
                    let idx = i % workload.len();
                    let outcome = h.decide(&workload[idx]);
                    let expected = match outcome.epoch {
                        0 => under_empty[idx],
                        e if e % 2 == 1 => under_real[idx],
                        _ => Decision::Deny,
                    };
                    if outcome.decision != expected {
                        stale.fetch_add(1, Ordering::Relaxed);
                    }
                    decisions.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        // The swapper: odd epochs get the real set, even epochs deny-all.
        for swap in 0..swaps {
            let snapshot = if swap % 2 == 0 {
                DecisionSnapshot::new(policies.to_vec(), CombiningAlg::DenyOverrides)
            } else {
                DecisionSnapshot::new(deny_all.clone(), CombiningAlg::DenyOverrides)
            };
            handle.publish(snapshot);
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });
    StressOutcome {
        decisions: decisions.load(Ordering::Relaxed),
        swaps,
        stale_served: stale.load(Ordering::Relaxed),
    }
}

/// Boots the `agenp-pdpd` HTTP server in-process on an ephemeral loopback
/// port and drives it with the crate's own load client: one connection
/// (the smoke-gated row), `cpus.min(4)` connections, and a batched run.
/// Every response is parity-checked against the oracle by the client.
fn run_http(policies: &[Policy], smoke: bool) -> Vec<HttpRow> {
    let handle = PdpHandle::new();
    handle.publish(DecisionSnapshot::new(
        policies.to_vec(),
        CombiningAlg::DenyOverrides,
    ));
    let server = PdpdServer::bind(
        "127.0.0.1:0",
        handle,
        ServerOptions {
            threads: std::thread::available_parallelism().map_or(2, usize::from),
            ..ServerOptions::default()
        },
    )
    .expect("pdp: cannot bind the in-process HTTP server on loopback");

    let workload = build_workload(64, 1234);
    let expected: Vec<Decision> = workload
        .iter()
        .map(|r| server.handle().decide(r).decision)
        .collect();

    let requests = if smoke { 20_000 } else { 100_000 };
    let multi_conns = std::thread::available_parallelism()
        .map_or(2, usize::from)
        .min(4);
    let shapes: &[(usize, usize)] = &[(1, 1), (multi_conns, 1), (1, 16)];
    let mut rows = Vec::with_capacity(shapes.len());
    for &(connections, batch) in shapes {
        let report = run_load(
            server.addr(),
            &workload,
            &expected,
            &LoadOptions {
                connections,
                requests,
                batch,
                ..LoadOptions::default()
            },
        )
        .expect("pdp: HTTP load run failed against the in-process server");
        rows.push(HttpRow {
            connections,
            batch,
            decisions: report.decisions,
            throughput: report.throughput,
            p50_us: report.p50_ns / 1000,
            p90_us: report.p90_ns / 1000,
            p99_us: report.p99_ns / 1000,
            max_us: report.max_ns / 1000,
            parity_mismatches: report.parity_mismatches,
            stale_epochs: report.stale_epochs,
            http_errors: report.http_errors,
        });
    }
    drop(server); // shuts down and joins the worker pool
    rows
}

fn speedup(rows: &[ThroughputRow], threads: usize) -> Option<f64> {
    let one = rows.iter().find(|r| r.threads == 1)?;
    let many = rows.iter().find(|r| r.threads == threads)?;
    if one.throughput > 0.0 {
        Some(many.throughput / one.throughput)
    } else {
        None
    }
}

fn print_tables(
    rows: &[ThroughputRow],
    parity: &ParityOutcome,
    stress: &StressOutcome,
    http_rows: &[HttpRow],
) {
    println!("shared-snapshot PDP serving throughput (closed loop):");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>10}",
        "threads", "decisions", "micros", "decisions/s", "hit rate"
    );
    for r in rows {
        println!(
            "{:>8} {:>12} {:>12} {:>14.0} {:>10}",
            r.threads,
            r.decisions,
            r.micros,
            r.throughput,
            agenp_bench::pct(r.hit_rate)
        );
    }
    println!(
        "\nparity vs legacy Pdp: {}/{} identical",
        parity.requests - parity.mismatches,
        parity.requests
    );
    println!(
        "snapshot-swap stress: {} decisions across {} swaps, {} stale",
        stress.decisions, stress.swaps, stress.stale_served
    );
    println!("\nHTTP serving (in-process pdpd, loopback):");
    println!(
        "{:>6} {:>6} {:>12} {:>14} {:>9} {:>9} {:>9} {:>9}",
        "conns", "batch", "decisions", "decisions/s", "p50 us", "p90 us", "p99 us", "max us"
    );
    for r in http_rows {
        println!(
            "{:>6} {:>6} {:>12} {:>14.0} {:>9} {:>9} {:>9} {:>9}",
            r.connections,
            r.batch,
            r.decisions,
            r.throughput,
            r.p50_us,
            r.p90_us,
            r.p99_us,
            r.max_us
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    rows: &[ThroughputRow],
    parity: &ParityOutcome,
    stress: &StressOutcome,
    http_rows: &[HttpRow],
    speedup_4t: Option<f64>,
    cpus: usize,
) -> String {
    let throughput: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"threads\": {}, \"decisions\": {}, \"micros\": {}, \
                 \"decisions_per_sec\": {:.1}, \"cache_hits\": {}, \"cache_misses\": {}, \
                 \"hit_rate\": {:.4}}}",
                r.threads,
                r.decisions,
                r.micros,
                r.throughput,
                r.cache_hits,
                r.cache_misses,
                r.hit_rate
            )
        })
        .collect();
    let http: Vec<String> = http_rows
        .iter()
        .map(|r| {
            format!(
                "{{\"connections\": {}, \"batch\": {}, \"decisions\": {}, \
                 \"decisions_per_sec\": {:.1}, \"p50_us\": {}, \"p90_us\": {}, \
                 \"p99_us\": {}, \"max_us\": {}, \"parity_mismatches\": {}, \
                 \"stale_epochs\": {}, \"http_errors\": {}}}",
                r.connections,
                r.batch,
                r.decisions,
                r.throughput,
                r.p50_us,
                r.p90_us,
                r.p99_us,
                r.max_us,
                r.parity_mismatches,
                r.stale_epochs,
                r.http_errors
            )
        })
        .collect();
    let http_single = http_rows
        .iter()
        .find(|r| r.connections == 1 && r.batch == 1)
        .map_or("null".to_string(), |r| format!("{:.1}", r.throughput));
    format!(
        "{{\n\"schema\": \"agenp-bench/pdp/v2\",\n\"smoke\": {},\n\
         \"throughput\": [\n{}\n],\n\
         \"parity\": {{\"requests\": {}, \"mismatches\": {}}},\n\
         \"stress\": {{\"decisions\": {}, \"swaps\": {}, \"stale_served\": {}}},\n\
         \"http\": [\n{}\n],\n\
         \"claims\": {{\"speedup_4t_over_1t\": {}, \
         \"http_single_conn_decisions_per_sec\": {}, \"cpus\": {}}}\n}}\n",
        smoke,
        throughput.join(",\n"),
        parity.requests,
        parity.mismatches,
        stress.decisions,
        stress.swaps,
        stress.stale_served,
        http.join(",\n"),
        match speedup_4t {
            Some(s) => format!("{s:.3}"),
            None => "null".to_string(),
        },
        http_single,
        cpus
    )
}
