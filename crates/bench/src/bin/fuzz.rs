//! `fuzz` — seeded differential-fuzz gate over the generative harness in
//! `agenp-refsem` (see `docs/TESTING.md`).
//!
//! Each case is one seed pushed through one of the harness's runners:
//! fast-vs-reference differential checks for the ASP solver, the serving
//! PDP (all four `decide`/`decide_batch` paths), and ASG membership, plus
//! the metamorphic transform suites. Any mismatch prints a one-line repro
//! leading with the seed — `(repro: run_pdp_case(8231))` — and exits
//! nonzero, so CI failures replay locally from a single integer.
//!
//! Usage:
//!   cargo run -p agenp-bench --bin fuzz --release [-- FLAGS]
//!
//! Flags:
//!   --smoke        CI mode: at least 1,024 cases mixing every kind,
//!                  base seed 0.
//!   --cases N      case count (default 1,024; the AGENP_FUZZ_CASES env
//!                  var overrides the default for deeper local runs,
//!                  e.g. AGENP_FUZZ_CASES=100000).
//!   --base N       first seed (default 0; shift to explore new ground).

use agenp_refsem::{
    run_asg_case, run_asp_case, run_metamorphic_asp_case, run_metamorphic_pdp_case, run_pdp_case,
};
use std::time::Instant;

/// A seed-driven case runner from `agenp-refsem`.
type CaseRunner = fn(u64) -> Result<(), String>;

/// One rotation of the case mix. ASG membership is exhaustive over all
/// strings up to length 4 per grammar, so it rides on a fraction of seeds
/// rather than a full rotation slot.
const KINDS: [(&str, CaseRunner); 4] = [
    ("asp", run_asp_case),
    ("pdp", run_pdp_case),
    ("metamorphic-asp", run_metamorphic_asp_case),
    ("metamorphic-pdp", run_metamorphic_pdp_case),
];

/// Every `ASG_EVERY`-th case additionally runs the grammar differential.
const ASG_EVERY: u64 = 16;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let default_cases: u64 = std::env::var("AGENP_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_024);
    let mut cases =
        flag_value(&args, "--cases").map_or(default_cases, |v| parse_or_die(&v, "--cases"));
    if smoke && cases < 1_024 {
        cases = 1_024;
    }
    let base: u64 = flag_value(&args, "--base").map_or(0, |v| parse_or_die(&v, "--base"));

    println!("fuzz: {cases} cases, seeds {base}..{}", base + cases);
    let start = Instant::now();
    let mut per_kind = [0u64; KINDS.len()];
    let mut asg_cases = 0u64;
    let mut failures = 0u32;

    for i in 0..cases {
        let seed = base + i;
        let slot = (i % KINDS.len() as u64) as usize;
        let (kind, runner) = KINDS[slot];
        if let Err(msg) = runner(seed) {
            eprintln!("FAIL [{kind}] {msg}");
            failures += 1;
        }
        per_kind[slot] += 1;
        if i % ASG_EVERY == 0 {
            if let Err(msg) = run_asg_case(seed) {
                eprintln!("FAIL [asg] {msg}");
                failures += 1;
            }
            asg_cases += 1;
        }
        if failures >= 10 {
            eprintln!("fuzz: stopping after {failures} failures");
            break;
        }
    }

    let elapsed = start.elapsed();
    for (slot, (kind, _)) in KINDS.iter().enumerate() {
        println!("  {kind}: {} cases", per_kind[slot]);
    }
    println!("  asg: {asg_cases} cases");
    println!(
        "fuzz: {} checks in {:.1}s, {failures} failure(s)",
        per_kind.iter().sum::<u64>() + asg_cases,
        elapsed.as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_or_die(value: &str, flag: &str) -> u64 {
    value.parse().unwrap_or_else(|_| {
        eprintln!("fuzz: {flag} expects an unsigned integer, got {value:?}");
        std::process::exit(2);
    })
}
