//! `coalition` — machine-readable harness for the deterministic chaos
//! fabric (`agenp_coalition::sim`).
//!
//! For every selected scenario the harness runs three simulations from
//! the same seed: the never-faulted **reference** twin (identical
//! protocol schedule, empty chaos plan), the **chaos** run checked live
//! against the reference's served-decision corpus, and a **replay** of
//! the chaos run that must reproduce the exact event-trace hash and
//! counters. Observability is enabled with an in-memory exporter, so the
//! flight-recorder dumps the fabric fires at fault boundaries
//! (`chaos.partition`, `chaos.crash`, ...) are counted into the report.
//! Results land in `BENCH_coalition.json` at the repository root
//! (schema `agenp-bench/coalition/v1`, documented in
//! `docs/RESILIENCE.md`).
//!
//! Usage:
//!   cargo run -p agenp-bench --bin coalition --release [-- FLAGS]
//!
//! Flags:
//!   --smoke            CI mode: 1,000 parties, every scenario, seed 42;
//!                      validates the emitted JSON and exits nonzero on
//!                      any invariant violation, reference mismatch, or
//!                      replay divergence.
//!   --scenario NAME    run one scenario (data-sharing, partition-storm,
//!                      mass-reground, crash-restart).
//!   --seed N           run seed (default 42).
//!   --parties N        fleet size (default 2000; smoke pins 1000).
//!   --trace PATH       also write the chaos run's full event trace to
//!                      PATH (requires --scenario; meant for replaying a
//!                      failing seed, see docs/RESILIENCE.md).

use agenp_coalition::sim::{run_scenario_with, RunConfig, Scenario, SimReport};
use agenp_obs::{MemoryExporter, ObsConfig};
use std::path::PathBuf;

/// Everything measured for one scenario.
struct ScenarioRow {
    reference: SimReport,
    chaos: SimReport,
    deterministic: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = flag_value(&args, "--seed").map_or(42, |v| parse_or_die(&v, "--seed"));
    let parties = if smoke {
        1000
    } else {
        flag_value(&args, "--parties").map_or(2000, |v| parse_or_die(&v, "--parties"))
    };
    let scenario_name = flag_value(&args, "--scenario");
    let trace_path = flag_value(&args, "--trace");
    if trace_path.is_some() && scenario_name.is_none() {
        eprintln!("coalition: --trace requires --scenario (one run, one trace)");
        std::process::exit(2);
    }

    let scenarios = match &scenario_name {
        Some(name) => match Scenario::by_name(name, parties) {
            Some(s) => vec![s],
            None => {
                eprintln!(
                    "coalition: unknown scenario {name:?} (known: {})",
                    Scenario::all(2)
                        .iter()
                        .map(|s| s.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(2);
            }
        },
        None => Scenario::all(parties),
    };

    // Observability on: the fabric dumps the flight recorder at every
    // fault boundary; the exporter lets us count that it actually did.
    agenp_obs::install(ObsConfig::enabled());
    let exporter = MemoryExporter::new();
    agenp_obs::set_exporter(Box::new(exporter.clone()));

    let record = RunConfig {
        record_trace: trace_path.is_some(),
    };
    let rows: Vec<ScenarioRow> = scenarios
        .iter()
        .map(|scenario| run_one(seed, scenario, record))
        .collect();

    if let Some(path) = &trace_path {
        let trace = rows[0]
            .chaos
            .trace
            .as_deref()
            .expect("trace recording was requested");
        if let Err(e) = std::fs::write(path, trace.join("\n") + "\n") {
            eprintln!("coalition: cannot write trace to {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {} trace lines to {path}", trace.len());
    }

    let chaos_dumps = exporter
        .exports()
        .iter()
        .filter(|doc| doc.contains("\"trigger\": \"chaos."))
        .count();

    print_tables(&rows, chaos_dumps);

    let json = render_json(smoke, seed, parties, &rows, chaos_dumps);
    let path = output_path();
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("coalition: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("\nwrote {}", path.display());

    gate(&path, &rows, smoke, parties, chaos_dumps);
}

fn run_one(seed: u64, scenario: &Scenario, record: RunConfig) -> ScenarioRow {
    let reference = run_scenario_with(seed, &scenario.reference(), RunConfig::default(), None);
    let chaos = run_scenario_with(seed, scenario, record, Some(&reference.served));
    // Replay: byte-identical event trace and counters, or the
    // reproducibility contract is broken.
    let replay = run_scenario_with(
        seed,
        scenario,
        RunConfig::default(),
        Some(&reference.served),
    );
    let deterministic = replay.trace_hash == chaos.trace_hash && replay.stats == chaos.stats;
    ScenarioRow {
        reference,
        chaos,
        deterministic,
    }
}

/// Exits nonzero when any hard property failed; validates the JSON that
/// actually landed on disk.
fn gate(path: &PathBuf, rows: &[ScenarioRow], smoke: bool, parties: usize, chaos_dumps: usize) {
    let on_disk = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("coalition: cannot re-read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    if let Err(e) = agenp_bench::json::validate(&on_disk) {
        eprintln!("coalition: BENCH_coalition.json is not valid JSON: {e}");
        std::process::exit(1);
    }
    for key in ["\"scenarios\"", "\"obs\"", "\"claims\""] {
        if !on_disk.contains(key) {
            eprintln!("coalition: BENCH_coalition.json is missing the {key} section");
            std::process::exit(1);
        }
    }

    let mut failed = false;
    for row in rows {
        let name = row.chaos.scenario;
        if row.reference.invariant_violations > 0 {
            eprintln!(
                "coalition: {name}: reference run hit {} invariant violations: {:?}",
                row.reference.invariant_violations, row.reference.violations
            );
            failed = true;
        }
        if row.chaos.invariant_violations > 0 {
            eprintln!(
                "coalition: {name}: chaos run hit {} invariant violations: {:?}",
                row.chaos.invariant_violations, row.chaos.violations
            );
            failed = true;
        }
        if row.chaos.reference_mismatches > 0 {
            eprintln!(
                "coalition: {name}: {} decisions disagreed with the never-faulted reference",
                row.chaos.reference_mismatches
            );
            failed = true;
        }
        if !row.deterministic {
            eprintln!(
                "coalition: {name}: replay diverged from the first run — \
                 the (seed, scenario) reproducibility contract is broken"
            );
            failed = true;
        }
    }
    if smoke {
        if parties < 1000 {
            eprintln!("coalition: smoke must run >= 1000 parties (ran {parties})");
            failed = true;
        }
        if rows.len() < 2 {
            eprintln!(
                "coalition: smoke must cover >= 2 scenarios (ran {})",
                rows.len()
            );
            failed = true;
        }
        if chaos_dumps == 0 {
            eprintln!("coalition: smoke saw no chaos.* flight-recorder dumps");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    let violations: u64 = rows.iter().map(|r| r.chaos.invariant_violations).sum();
    println!(
        "BENCH_coalition.json validated ({} scenarios x {parties} parties, \
         {violations} violations, {chaos_dumps} chaos dumps, all replays identical)",
        rows.len()
    );
}

/// `BENCH_coalition.json` lives at the repository root regardless of the
/// cwd cargo chose for the binary.
fn output_path() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir)
            .join("../..")
            .join("BENCH_coalition.json"),
        Err(_) => PathBuf::from("BENCH_coalition.json"),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_or_die<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("coalition: bad value {value:?} for {flag}");
        std::process::exit(2);
    })
}

fn print_tables(rows: &[ScenarioRow], chaos_dumps: usize) {
    println!("deterministic chaos fabric:");
    println!(
        "{:>16} {:>7} {:>9} {:>10} {:>10} {:>7} {:>7} {:>6} {:>11} {:>7}",
        "scenario",
        "ticks",
        "events*",
        "delivered",
        "decisions",
        "crash",
        "heals",
        "viol",
        "decis/sec",
        "replay"
    );
    for row in rows {
        let c = &row.chaos;
        println!(
            "{:>16} {:>7} {:>9} {:>10} {:>10} {:>7} {:>7} {:>6} {:>11.0} {:>7}",
            c.scenario,
            c.ticks,
            c.stats.messages_sent,
            c.stats.delivered,
            c.stats.decisions,
            c.stats.crashes,
            c.stats.heals,
            c.invariant_violations,
            c.decisions_per_sec(),
            if row.deterministic { "ok" } else { "DIVERGED" },
        );
    }
    println!("(* messages handed to the fabric; {chaos_dumps} chaos.* flight-recorder dumps)");
}

fn render_json(
    smoke: bool,
    seed: u64,
    parties: usize,
    rows: &[ScenarioRow],
    chaos_dumps: usize,
) -> String {
    let scenarios: Vec<String> = rows
        .iter()
        .map(|row| {
            let c = &row.chaos;
            let s = &c.stats;
            format!(
                "{{\"name\": \"{}\", \"ticks\": {}, \"head\": {}, \
                 \"invariant_violations\": {}, \"reference_mismatches\": {}, \
                 \"deterministic\": {}, \"trace_hash\": \"{:#018x}\", \
                 \"elapsed_ms\": {}, \"decisions_per_sec\": {:.1}, \
                 \"reference\": {{\"invariant_violations\": {}, \"decisions\": {}}}, \
                 \"stats\": {{\
                 \"messages_sent\": {}, \"delivered\": {}, \"dropped_loss\": {}, \
                 \"dropped_partition\": {}, \"dropped_down\": {}, \"duplicated\": {}, \
                 \"stragglers\": {}, \"publishes\": {}, \"mass_refreshes\": {}, \
                 \"adoptions\": {}, \"crashes\": {}, \"restarts\": {}, \
                 \"refresh_failures\": {}, \"degraded_publishes\": {}, \
                 \"partitions\": {}, \"heals\": {}, \"decisions\": {}, \
                 \"permits\": {}, \"denies\": {}, \"gaps\": {}, \"stale_serves\": {}, \
                 \"convergence_checks\": {}, \"convergence_skipped\": {}}}}}",
                c.scenario,
                c.ticks,
                c.head,
                c.invariant_violations,
                c.reference_mismatches,
                row.deterministic,
                c.trace_hash,
                c.elapsed.as_millis(),
                c.decisions_per_sec(),
                row.reference.invariant_violations,
                row.reference.stats.decisions,
                s.messages_sent,
                s.delivered,
                s.dropped_loss,
                s.dropped_partition,
                s.dropped_down,
                s.duplicated,
                s.stragglers,
                s.publishes,
                s.mass_refreshes,
                s.adoptions,
                s.crashes,
                s.restarts,
                s.refresh_failures,
                s.degraded_publishes,
                s.partitions,
                s.heals,
                s.decisions,
                s.permits,
                s.denies,
                s.gaps,
                s.stale_serves,
                s.convergence_checks,
                s.convergence_skipped,
            )
        })
        .collect();
    let total_violations: u64 = rows
        .iter()
        .map(|r| r.chaos.invariant_violations + r.reference.invariant_violations)
        .sum();
    let all_deterministic = rows.iter().all(|r| r.deterministic);
    format!(
        "{{\n\"schema\": \"agenp-bench/coalition/v1\",\n\"smoke\": {},\n\
         \"seed\": {},\n\"parties\": {},\n\
         \"scenarios\": [\n{}\n],\n\
         \"obs\": {{\"chaos_dumps\": {}}},\n\
         \"claims\": {{\"scenarios\": {}, \"total_invariant_violations\": {}, \
         \"all_deterministic\": {}, \"cpus\": {}}}\n}}\n",
        smoke,
        seed,
        parties,
        scenarios.join(",\n"),
        chaos_dumps,
        rows.len(),
        total_violations,
        all_deterministic,
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    )
}
