//! `adapt` — the relearn-while-serving harness for the adaptation plane
//! (`crates/adapt`, `docs/ADAPTATION.md`).
//!
//! One [`AdaptPlane`] serves a leveled permit grammar while worker
//! threads hammer its [`PdpHandle`]. The harness measures decide
//! throughput in two phases — idle (no relearner) and relearn (the
//! background [`Relearner`] runs a sequence of adaptation rounds, each
//! mining one new operator denial and republishing a refined policy set)
//! — and validates the serving invariants the whole design rests on:
//!
//! - **zero stale decisions**: every decision agrees with the policy set
//!   of its *own* epoch (each round removes one more level, so a stale
//!   snapshot or cache entry renders a visibly wrong decision);
//! - **epoch monotonicity**: no deciding thread ever observes the epoch
//!   moving backwards;
//! - **time-to-adoption**: per round, the time from trigger until a
//!   deciding thread first serves a decision at the refined epoch.
//!
//! Writes `BENCH_adapt.json` at the repository root. `--smoke` runs
//! reduced scales, re-reads the JSON through the validating parser, and
//! exits nonzero on any stale decision, epoch regression, failed round,
//! or (on machines with >= 4 CPUs) a relearn-phase throughput below 75%
//! of the idle phase.
//!
//! Usage: `cargo run -p agenp-bench --bin adapt --release [-- --smoke]`

use agenp_adapt::{AdaptPlane, Relearner, RoundOutcome};
use agenp_core::arch::PdpHandle;
use agenp_grammar::{Asg, ProdId};
use agenp_learn::HypothesisSpace;
use agenp_policy::{Decision, Request};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One serving phase's aggregate.
struct PhaseRow {
    decisions: u64,
    micros: u128,
    throughput: f64,
}

/// One adaptation round as driven by the harness.
struct RoundRow {
    round: usize,
    epoch: u64,
    examples: usize,
    constraints: usize,
    rules: usize,
    round_ms: f64,
    adoption_ms: f64,
    published: bool,
}

/// Serving-invariant counters shared by the deciding threads.
#[derive(Default)]
struct Invariants {
    stale: AtomicU64,
    regressions: AtomicU64,
    max_epoch_seen: AtomicU64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let levels = if smoke { 8 } else { 12 };
    let rounds = if smoke { 4 } else { 8 };
    let threads = if smoke { 2 } else { 4 };
    let phase = Duration::from_millis(if smoke { 250 } else { 1000 });

    let (gpm, space) = leveled_grammar(levels);
    let mut plane = AdaptPlane::new("bench", gpm, space);
    let first_epoch = plane
        .publish_initial()
        .expect("adapt: initial policy generation failed");
    let handle = plane.handle();
    let log = plane.log();
    let workload: Vec<Request> = (0..levels)
        .map(|i| Request::new().subject("clearance", format!("l{i}")))
        .collect();

    // Phase 1: idle throughput (no relearner running at all).
    let idle_inv = Invariants::default();
    let idle = run_phase(
        &handle,
        &workload,
        threads,
        first_epoch,
        &idle_inv,
        |stop| {
            std::thread::sleep(phase);
            stop.store(true, Ordering::Relaxed);
        },
    );

    // Phase 2: the same serving load while the background relearner runs
    // `rounds` adaptation rounds; the phase lasts at least as long as the
    // idle window and as long as the rounds need.
    let relearn_inv = Invariants::default();
    let relearner = Relearner::spawn(plane);
    let mut round_rows: Vec<RoundRow> = Vec::with_capacity(rounds);
    let relearn = run_phase(
        &handle,
        &workload,
        threads,
        first_epoch,
        &relearn_inv,
        |stop| {
            let started = Instant::now();
            for round in 0..rounds {
                round_rows.push(drive_round(round, &relearner, &handle, &log, &relearn_inv));
            }
            if started.elapsed() < phase {
                std::thread::sleep(phase - started.elapsed());
            }
            stop.store(true, Ordering::Relaxed);
        },
    );
    let plane = relearner.shutdown();

    let ratio = if idle.throughput > 0.0 {
        relearn.throughput / idle.throughput
    } else {
        0.0
    };
    let stale = idle_inv.stale.load(Ordering::Relaxed) + relearn_inv.stale.load(Ordering::Relaxed);
    let regressions = idle_inv.regressions.load(Ordering::Relaxed)
        + relearn_inv.regressions.load(Ordering::Relaxed);
    let published = round_rows.iter().filter(|r| r.published).count();
    let max_adoption = round_rows
        .iter()
        .filter(|r| r.published)
        .map(|r| r.adoption_ms)
        .fold(0.0f64, f64::max);
    let final_epoch = handle.snapshot().epoch();
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);

    print_tables(&idle, &relearn, ratio, &round_rows, stale, regressions);
    println!(
        "epochs {first_epoch} -> {final_epoch}, {} rounds published, {} examples buffered",
        published,
        plane.buffered_examples()
    );

    let json = render_json(
        smoke,
        threads,
        levels,
        &idle,
        &relearn,
        ratio,
        &round_rows,
        stale,
        regressions,
        final_epoch,
        max_adoption,
        cpus,
    );
    let path = output_path();
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("adapt: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("\nwrote {}", path.display());

    let on_disk = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("adapt: cannot re-read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    if let Err(e) = agenp_bench::json::validate(&on_disk) {
        eprintln!("adapt: BENCH_adapt.json is not valid JSON: {e}");
        std::process::exit(1);
    }
    for key in ["\"serving\"", "\"rounds\"", "\"invariants\"", "\"claims\""] {
        if !on_disk.contains(key) {
            eprintln!("adapt: BENCH_adapt.json is missing the {key} section");
            std::process::exit(1);
        }
    }
    if stale > 0 {
        eprintln!("adapt: {stale} decisions disagreed with their own epoch's policy set");
        std::process::exit(1);
    }
    if regressions > 0 {
        eprintln!("adapt: the serving epoch moved backwards {regressions} times");
        std::process::exit(1);
    }
    if published != rounds {
        eprintln!("adapt: only {published} of {rounds} adaptation rounds published");
        std::process::exit(1);
    }
    if final_epoch != first_epoch + rounds as u64 {
        eprintln!(
            "adapt: expected the epoch to advance exactly once per round \
             ({first_epoch} + {rounds}), measured {final_epoch}"
        );
        std::process::exit(1);
    }
    // The throughput-interference gate needs enough CPUs to actually run
    // the deciders and the relearner in parallel.
    if cpus >= 4 {
        if ratio < 0.75 {
            eprintln!(
                "adapt: decide throughput during relearn is {:.1}% of idle \
                 (floor 75%) on a {cpus}-CPU machine",
                ratio * 100.0
            );
            std::process::exit(1);
        }
    } else {
        println!("adapt: skipping the relearn/idle throughput gate ({cpus} CPU available)");
    }
    println!(
        "BENCH_adapt.json validated ({published}/{rounds} rounds, 0 stale, 0 regressions, \
         relearn/idle {:.2}, max adoption {max_adoption:.1} ms)",
        ratio
    );
}

/// A permit-only grammar over `levels` clearance levels, with one
/// hypothesis-space constraint per level (`:- lvl(li).`) so a mined
/// denial of level *i* relearns a GPM whose language drops exactly that
/// permit string. Decisions are therefore *epoch-observable*: at epoch
/// `first + r`, levels below `r` render NotApplicable and the rest
/// Permit.
fn leveled_grammar(levels: usize) -> (Asg, HypothesisSpace) {
    let mut text =
        String::from("policy -> \"permit\" \"if\" \"subject\" \"clearance\" \"=\" level\n");
    for i in 0..levels {
        text.push_str(&format!("level -> \"l{i}\" {{ lvl(l{i}). }}\n"));
    }
    let gpm: Asg = text.parse().expect("adapt: leveled grammar must parse");
    let constraints: Vec<(ProdId, String)> = (0..levels)
        .map(|i| (ProdId::from_index(1 + i), format!(":- lvl(l{i}).")))
        .collect();
    let borrowed: Vec<(ProdId, &str)> = constraints.iter().map(|(p, s)| (*p, s.as_str())).collect();
    (gpm, HypothesisSpace::from_texts(&borrowed))
}

/// Runs `threads` deciding threads against `handle` until `driver` sets
/// the stop flag, checking the per-decision invariants as it goes.
fn run_phase(
    handle: &PdpHandle,
    workload: &[Request],
    threads: usize,
    base_epoch: u64,
    inv: &Invariants,
    driver: impl FnOnce(&AtomicBool),
) -> PhaseRow {
    let stop = AtomicBool::new(false);
    let decisions = AtomicU64::new(0);
    let started = Instant::now();
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|s| {
        for t in 0..threads {
            let h = handle.clone();
            let (stop, decisions) = (&stop, &decisions);
            s.spawn(move || {
                let mut local = 0u64;
                let mut last_epoch = 0u64;
                let mut i = t; // phase-shift the streams
                while !stop.load(Ordering::Relaxed) {
                    let level = i % workload.len();
                    let outcome = h.decide(&workload[level]);
                    // Each published epoch has a known decision function:
                    // round r (epoch base+r) has removed levels < r.
                    let removed = outcome.epoch.saturating_sub(base_epoch) as usize;
                    let expected = if level < removed {
                        Decision::NotApplicable
                    } else {
                        Decision::Permit
                    };
                    if outcome.decision != expected {
                        inv.stale.fetch_add(1, Ordering::Relaxed);
                    }
                    if outcome.epoch < last_epoch {
                        inv.regressions.fetch_add(1, Ordering::Relaxed);
                    }
                    last_epoch = outcome.epoch;
                    inv.max_epoch_seen
                        .fetch_max(outcome.epoch, Ordering::Relaxed);
                    local += 1;
                    i += 1;
                }
                decisions.fetch_add(local, Ordering::Relaxed);
            });
        }
        driver(&stop);
        elapsed = started.elapsed();
    });
    let decisions = decisions.load(Ordering::Relaxed);
    let micros = elapsed.as_micros();
    PhaseRow {
        decisions,
        micros,
        throughput: if micros > 0 {
            decisions as f64 * 1_000_000.0 / micros as f64
        } else {
            0.0
        },
    }
}

/// One adaptation round: log the operator's denial of the next level,
/// trigger the relearner, wait for the outcome, then wait until a
/// deciding thread has actually served at the refined epoch.
fn drive_round(
    round: usize,
    relearner: &Relearner,
    handle: &PdpHandle,
    log: &std::sync::Arc<agenp_adapt::DecisionLog>,
    inv: &Invariants,
) -> RoundRow {
    let req = Request::new().subject("clearance", format!("l{round}"));
    let mut overridden = handle.decide(&req);
    overridden.decision = Decision::Deny; // the operator overrode the permit
    log.record(&req, &overridden);

    let triggered = Instant::now();
    relearner.trigger();
    let outcome = relearner
        .wait_outcome(Duration::from_secs(60))
        .expect("adapt: relearner produced no outcome within 60s");
    let round_ms = triggered.elapsed().as_secs_f64() * 1000.0;
    let mut row = RoundRow {
        round,
        epoch: 0,
        examples: 0,
        constraints: 0,
        rules: 0,
        round_ms,
        adoption_ms: 0.0,
        published: false,
    };
    match outcome {
        RoundOutcome::Published(report) => {
            // Adoption: a deciding thread has served at the new epoch.
            let deadline = Instant::now() + Duration::from_secs(30);
            while inv.max_epoch_seen.load(Ordering::Relaxed) < report.epoch {
                assert!(
                    Instant::now() < deadline,
                    "adapt: epoch {} never reached the deciding threads",
                    report.epoch
                );
                std::thread::yield_now();
            }
            row.adoption_ms = triggered.elapsed().as_secs_f64() * 1000.0;
            row.epoch = report.epoch;
            row.examples = report.examples_used;
            row.constraints = report.constraints_learned;
            row.rules = report.rules_generated;
            row.published = true;
        }
        RoundOutcome::Skipped { buffered, .. } => {
            eprintln!("adapt: round {round} skipped with {buffered} buffered examples");
        }
        RoundOutcome::Failed(e) => {
            eprintln!("adapt: round {round} failed: {e}");
        }
    }
    row
}

/// `BENCH_adapt.json` lives at the repository root regardless of the cwd
/// cargo chose for the binary.
fn output_path() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir).join("../..").join("BENCH_adapt.json"),
        Err(_) => PathBuf::from("BENCH_adapt.json"),
    }
}

fn print_tables(
    idle: &PhaseRow,
    relearn: &PhaseRow,
    ratio: f64,
    rounds: &[RoundRow],
    stale: u64,
    regressions: u64,
) {
    println!("relearn-while-serving (shared handle, background relearner):");
    println!(
        "{:>10} {:>12} {:>12} {:>14}",
        "phase", "decisions", "micros", "decisions/s"
    );
    for (name, row) in [("idle", idle), ("relearn", relearn)] {
        println!(
            "{:>10} {:>12} {:>12} {:>14.0}",
            name, row.decisions, row.micros, row.throughput
        );
    }
    println!("relearn/idle throughput ratio: {ratio:.2}\n");
    println!(
        "{:>6} {:>6} {:>9} {:>12} {:>6} {:>10} {:>12}",
        "round", "epoch", "examples", "constraints", "rules", "round ms", "adoption ms"
    );
    for r in rounds {
        println!(
            "{:>6} {:>6} {:>9} {:>12} {:>6} {:>10.1} {:>12.1}",
            r.round, r.epoch, r.examples, r.constraints, r.rules, r.round_ms, r.adoption_ms
        );
    }
    println!("\nstale decisions: {stale}, epoch regressions: {regressions}");
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    threads: usize,
    levels: usize,
    idle: &PhaseRow,
    relearn: &PhaseRow,
    ratio: f64,
    rounds: &[RoundRow],
    stale: u64,
    regressions: u64,
    final_epoch: u64,
    max_adoption: f64,
    cpus: usize,
) -> String {
    let phase = |row: &PhaseRow| {
        format!(
            "{{\"decisions\": {}, \"micros\": {}, \"decisions_per_sec\": {:.1}}}",
            row.decisions, row.micros, row.throughput
        )
    };
    let round_rows: Vec<String> = rounds
        .iter()
        .map(|r| {
            format!(
                "{{\"round\": {}, \"published\": {}, \"epoch\": {}, \"examples\": {}, \
                 \"constraints\": {}, \"rules\": {}, \"round_ms\": {:.2}, \
                 \"adoption_ms\": {:.2}}}",
                r.round,
                r.published,
                r.epoch,
                r.examples,
                r.constraints,
                r.rules,
                r.round_ms,
                r.adoption_ms
            )
        })
        .collect();
    format!(
        "{{\n\"schema\": \"agenp-bench/adapt/v1\",\n\"smoke\": {},\n\
         \"serving\": {{\"threads\": {}, \"levels\": {}, \"idle\": {}, \"relearn\": {}, \
         \"relearn_over_idle\": {:.4}}},\n\
         \"rounds\": [\n{}\n],\n\
         \"invariants\": {{\"stale_decisions\": {}, \"epoch_regressions\": {}, \
         \"final_epoch\": {}}},\n\
         \"claims\": {{\"relearn_over_idle_throughput\": {:.4}, \
         \"max_adoption_ms\": {:.2}, \"cpus\": {}}}\n}}\n",
        smoke,
        threads,
        levels,
        phase(idle),
        phase(relearn),
        ratio,
        round_rows.join(",\n"),
        stale,
        regressions,
        final_epoch,
        ratio,
        max_adoption,
        cpus
    )
}
