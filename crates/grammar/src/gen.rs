//! Bounded enumeration of a grammar's parse trees (and thus its strings),
//! used by the Policy Refinement Point to *generate* the policies a
//! generative policy model admits in a context.

use crate::cfg::{Cfg, GSym, NtId};
use crate::tree::{ParseTree, TreeChild};
use std::collections::HashMap;

/// Options bounding generation.
#[derive(Clone, Copy, Debug)]
pub struct GenOptions {
    /// Maximum parse-tree height.
    pub max_depth: usize,
    /// Maximum number of trees to return.
    pub max_trees: usize,
}

impl Default for GenOptions {
    fn default() -> GenOptions {
        GenOptions {
            max_depth: 12,
            max_trees: 10_000,
        }
    }
}

/// Enumerates parse trees of a [`Cfg`] bottom-up to a depth bound.
#[derive(Debug)]
pub struct Generator<'g> {
    cfg: &'g Cfg,
}

impl<'g> Generator<'g> {
    /// A generator for `cfg`.
    pub fn new(cfg: &'g Cfg) -> Generator<'g> {
        Generator { cfg }
    }

    /// All parse trees rooted at the start symbol, up to the bounds.
    pub fn trees(&self, opts: GenOptions) -> Vec<ParseTree> {
        let mut memo: HashMap<(NtId, usize), Vec<ParseTree>> = HashMap::new();
        self.trees_of(self.cfg.start(), opts.max_depth, opts.max_trees, &mut memo)
    }

    /// All derivable strings (token sequences joined by spaces), deduplicated,
    /// up to the bounds.
    pub fn strings(&self, opts: GenOptions) -> Vec<String> {
        let mut out: Vec<String> = self.trees(opts).iter().map(ParseTree::text).collect();
        out.sort();
        out.dedup();
        out
    }

    fn trees_of(
        &self,
        nt: NtId,
        depth: usize,
        cap: usize,
        memo: &mut HashMap<(NtId, usize), Vec<ParseTree>>,
    ) -> Vec<ParseTree> {
        if depth == 0 {
            return Vec::new();
        }
        if let Some(cached) = memo.get(&(nt, depth)) {
            return cached.clone();
        }
        let mut out: Vec<ParseTree> = Vec::new();
        for &p in self.cfg.productions_for(nt) {
            let rhs = &self.cfg.production(p).rhs;
            // Cartesian product over children, capped.
            let mut partials: Vec<Vec<TreeChild>> = vec![Vec::new()];
            for sym in rhs {
                let mut next: Vec<Vec<TreeChild>> = Vec::new();
                match sym {
                    GSym::T(t) => {
                        for mut pref in partials {
                            pref.push(TreeChild::Leaf(*t));
                            next.push(pref);
                        }
                    }
                    GSym::Nt(m) => {
                        let subs = self.trees_of(*m, depth - 1, cap, memo);
                        'outer: for pref in &partials {
                            for sub in &subs {
                                let mut np = pref.clone();
                                np.push(TreeChild::Node(sub.clone()));
                                next.push(np);
                                if next.len() >= cap {
                                    break 'outer;
                                }
                            }
                        }
                    }
                }
                partials = next;
                if partials.is_empty() {
                    break;
                }
            }
            for children in partials {
                out.push(ParseTree { prod: p, children });
                if out.len() >= cap {
                    break;
                }
            }
            if out.len() >= cap {
                break;
            }
        }
        memo.insert((nt, depth), out.clone());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{nt, t, CfgBuilder};
    use crate::earley::EarleyParser;

    fn anbn() -> Cfg {
        let mut b = CfgBuilder::new();
        b.production("s", vec![t("a"), nt("s"), t("b")]);
        b.production("s", vec![]);
        b.build().unwrap()
    }

    #[test]
    fn generates_bounded_language() {
        let g = anbn();
        let gen = Generator::new(&g);
        let strings = gen.strings(GenOptions {
            max_depth: 4,
            max_trees: 100,
        });
        // depths 1..=4 give n = 0..=3
        assert_eq!(strings, vec!["", "a a a b b b", "a a b b", "a b"]);
    }

    #[test]
    fn generated_trees_parse_back() {
        // every generated string is recognized by the parser
        let g = anbn();
        let gen = Generator::new(&g);
        let parser = EarleyParser::new(&g);
        for tree in gen.trees(GenOptions {
            max_depth: 5,
            max_trees: 50,
        }) {
            assert!(tree.conforms_to(&g));
            assert!(parser.recognize(&tree.tokens()));
        }
    }

    #[test]
    fn caps_are_respected() {
        let mut b = CfgBuilder::new();
        b.production("bit", vec![t("0")]);
        b.production("bit", vec![t("1")]);
        b.production("s", vec![nt("bit"), nt("bit"), nt("bit")]);
        b.start("s");
        let g = b.build().unwrap();
        let gen = Generator::new(&g);
        let all = gen.trees(GenOptions {
            max_depth: 3,
            max_trees: 5,
        });
        assert_eq!(all.len(), 5);
        let full = gen.trees(GenOptions {
            max_depth: 3,
            max_trees: 100,
        });
        assert_eq!(full.len(), 8);
    }

    #[test]
    fn depth_zero_gives_nothing() {
        let g = anbn();
        let gen = Generator::new(&g);
        assert!(gen
            .trees(GenOptions {
                max_depth: 0,
                max_trees: 10
            })
            .is_empty());
    }
}
