//! # agenp-grammar — context-free grammars and answer set grammars
//!
//! The grammar substrate of the AGENP generative-policy framework: plain
//! [`Cfg`]s with an Earley parser and bounded generator, plus [`Asg`]
//! (answer set grammars, paper §II-A) combining a CFG with per-production
//! annotated ASP programs that act as context-sensitive semantic
//! constraints.
//!
//! ```
//! use agenp_grammar::Asg;
//!
//! // A policy language where `deny` is only valid in an alert context.
//! let g: Asg = r#"
//!     policy -> "allow" { :- alert. }
//!     policy -> "deny"  { :- not alert. }
//! "#.parse()?;
//!
//! let alert: agenp_asp::Program = "alert.".parse()?;
//! assert!(g.with_context(&alert).accepts("deny")?);
//! assert!(!g.with_context(&alert).accepts("allow")?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
mod asg;
mod cfg;
mod earley;
mod gen;
mod text;
mod tree;

pub use analysis::{ambiguity_sample, validate_asg, AsgIssue, CfgAnalysis};
pub use asg::{Asg, AsgError};
pub use cfg::{nt, t, Cfg, CfgBuilder, CfgError, GSym, NtId, ProdId, Production, Rhs};
pub use earley::{EarleyParser, ParseOptions};
pub use gen::{GenOptions, Generator};
pub use text::{parse_asg, GrammarParseError};
pub use tree::{ParseTree, TreeChild};
