//! Earley recognition and parse-forest extraction.
//!
//! Recognition is textbook Earley (with the Aycock–Horspool nullable fix for
//! ε-productions). Tree extraction is a chart-pruned top-down enumeration
//! that returns *all* parse trees up to a configurable cap, so ambiguous
//! policy grammars expose every reading to the answer-set-grammar layer.
//!
//! Grammars with unit cycles (`a → b`, `b → a`) admit infinitely many trees
//! for some strings; enumeration cuts such cycles and returns only the trees
//! that do not revisit a `(nonterminal, span)` pair along a path.

use crate::cfg::{Cfg, GSym, NtId, ProdId};
use crate::tree::{ParseTree, TreeChild};
use agenp_asp::Symbol;
use std::collections::{HashMap, HashSet};

/// Options for parse-forest extraction.
#[derive(Clone, Copy, Debug)]
pub struct ParseOptions {
    /// Maximum number of parse trees to return.
    pub max_trees: usize,
}

impl Default for ParseOptions {
    fn default() -> ParseOptions {
        ParseOptions { max_trees: 64 }
    }
}

/// An Earley parser for a [`Cfg`].
#[derive(Debug)]
pub struct EarleyParser<'g> {
    cfg: &'g Cfg,
    nullable: Vec<bool>,
}

#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
struct Item {
    prod: u32,
    dot: u16,
    origin: u32,
}

impl<'g> EarleyParser<'g> {
    /// Builds a parser for `cfg`.
    pub fn new(cfg: &'g Cfg) -> EarleyParser<'g> {
        let mut nullable = vec![false; cfg.nt_count()];
        loop {
            let mut changed = false;
            for p in cfg.productions() {
                if nullable[p.lhs.0 as usize] {
                    continue;
                }
                let all_nullable = p.rhs.iter().all(|s| match s {
                    GSym::Nt(n) => nullable[n.0 as usize],
                    GSym::T(_) => false,
                });
                if all_nullable {
                    nullable[p.lhs.0 as usize] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        EarleyParser { cfg, nullable }
    }

    /// Runs recognition and returns the set of completed spans
    /// `(nonterminal, from, to)`.
    fn chart(&self, tokens: &[Symbol]) -> HashSet<(NtId, usize, usize)> {
        let n = tokens.len();
        let mut sets: Vec<Vec<Item>> = vec![Vec::new(); n + 1];
        let mut seen: Vec<HashSet<Item>> = vec![HashSet::new(); n + 1];
        let mut spans: HashSet<(NtId, usize, usize)> = HashSet::new();

        let push =
            |sets: &mut Vec<Vec<Item>>, seen: &mut Vec<HashSet<Item>>, i: usize, item: Item| {
                if seen[i].insert(item) {
                    sets[i].push(item);
                }
            };

        for &p in self.cfg.productions_for(self.cfg.start()) {
            push(
                &mut sets,
                &mut seen,
                0,
                Item {
                    prod: p.0,
                    dot: 0,
                    origin: 0,
                },
            );
        }

        for i in 0..=n {
            let mut cursor = 0;
            while cursor < sets[i].len() {
                let item = sets[i][cursor];
                cursor += 1;
                let prod = self.cfg.production(ProdId(item.prod));
                if (item.dot as usize) < prod.rhs.len() {
                    match prod.rhs[item.dot as usize] {
                        GSym::Nt(m) => {
                            // Predict.
                            for &q in self.cfg.productions_for(m) {
                                push(
                                    &mut sets,
                                    &mut seen,
                                    i,
                                    Item {
                                        prod: q.0,
                                        dot: 0,
                                        origin: i as u32,
                                    },
                                );
                            }
                            // Nullable fix: advance over ε-deriving m.
                            if self.nullable[m.0 as usize] {
                                push(
                                    &mut sets,
                                    &mut seen,
                                    i,
                                    Item {
                                        prod: item.prod,
                                        dot: item.dot + 1,
                                        origin: item.origin,
                                    },
                                );
                                spans.insert((m, i, i));
                            }
                        }
                        GSym::T(t) => {
                            // Scan.
                            if i < n && tokens[i] == t {
                                push(
                                    &mut sets,
                                    &mut seen,
                                    i + 1,
                                    Item {
                                        prod: item.prod,
                                        dot: item.dot + 1,
                                        origin: item.origin,
                                    },
                                );
                            }
                        }
                    }
                } else {
                    // Complete.
                    spans.insert((prod.lhs, item.origin as usize, i));
                    let origin = item.origin as usize;
                    let mut j = 0;
                    while j < sets[origin].len() {
                        let waiting = sets[origin][j];
                        j += 1;
                        let wprod = self.cfg.production(ProdId(waiting.prod));
                        if (waiting.dot as usize) < wprod.rhs.len()
                            && wprod.rhs[waiting.dot as usize] == GSym::Nt(prod.lhs)
                        {
                            push(
                                &mut sets,
                                &mut seen,
                                i,
                                Item {
                                    prod: waiting.prod,
                                    dot: waiting.dot + 1,
                                    origin: waiting.origin,
                                },
                            );
                        }
                    }
                }
            }
        }
        spans
    }

    /// True if `tokens` is in the language of the underlying CFG.
    pub fn recognize(&self, tokens: &[Symbol]) -> bool {
        self.chart(tokens)
            .contains(&(self.cfg.start(), 0, tokens.len()))
    }

    /// All parse trees for `tokens`, capped at [`ParseOptions::max_trees`].
    pub fn parse(&self, tokens: &[Symbol]) -> Vec<ParseTree> {
        self.parse_with(tokens, ParseOptions::default())
    }

    /// All parse trees with explicit options.
    pub fn parse_with(&self, tokens: &[Symbol], opts: ParseOptions) -> Vec<ParseTree> {
        let spans = self.chart(tokens);
        if !spans.contains(&(self.cfg.start(), 0, tokens.len())) {
            return Vec::new();
        }
        // Index the end positions available for each (nt, start).
        let mut ends: HashMap<(NtId, usize), Vec<usize>> = HashMap::new();
        for &(nt, i, j) in &spans {
            ends.entry((nt, i)).or_default().push(j);
        }
        for v in ends.values_mut() {
            v.sort_unstable();
        }
        let mut extractor = Extractor {
            cfg: self.cfg,
            tokens,
            ends: &ends,
            memo: HashMap::new(),
            in_progress: HashSet::new(),
            budget: opts.max_trees,
        };
        let (trees, _) = extractor.derive(self.cfg.start(), 0, tokens.len());
        trees.into_iter().take(opts.max_trees).collect()
    }

    /// Convenience: parse a whitespace-tokenized string.
    pub fn parse_text(&self, text: &str) -> Vec<ParseTree> {
        self.parse(&Cfg::tokenize(text))
    }
}

struct Extractor<'a> {
    cfg: &'a Cfg,
    tokens: &'a [Symbol],
    ends: &'a HashMap<(NtId, usize), Vec<usize>>,
    memo: HashMap<(NtId, usize, usize), Vec<ParseTree>>,
    in_progress: HashSet<(NtId, usize, usize)>,
    budget: usize,
}

impl Extractor<'_> {
    /// Returns (trees, tainted). `tainted` marks results truncated by a
    /// cycle cut or the budget; tainted results are not memoized.
    fn derive(&mut self, nt: NtId, i: usize, j: usize) -> (Vec<ParseTree>, bool) {
        if let Some(cached) = self.memo.get(&(nt, i, j)) {
            return (cached.clone(), false);
        }
        if !self.in_progress.insert((nt, i, j)) {
            return (Vec::new(), true);
        }
        let mut out = Vec::new();
        let mut tainted = false;
        for &p in self.cfg.productions_for(nt) {
            let rhs = self.cfg.production(p).rhs.clone();
            let (seqs, t) = self.derive_seq(&rhs, 0, i, j);
            tainted |= t;
            for children in seqs {
                out.push(ParseTree { prod: p, children });
                if out.len() >= self.budget {
                    tainted = true;
                    break;
                }
            }
            if out.len() >= self.budget {
                break;
            }
        }
        self.in_progress.remove(&(nt, i, j));
        if !tainted {
            self.memo.insert((nt, i, j), out.clone());
        }
        (out, tainted)
    }

    /// All ways to derive `rhs[k..]` from `tokens[i..j]`.
    fn derive_seq(
        &mut self,
        rhs: &[GSym],
        k: usize,
        i: usize,
        j: usize,
    ) -> (Vec<Vec<TreeChild>>, bool) {
        if k == rhs.len() {
            return if i == j {
                (vec![Vec::new()], false)
            } else {
                (Vec::new(), false)
            };
        }
        let mut out = Vec::new();
        let mut tainted = false;
        match rhs[k] {
            GSym::T(t) => {
                if i < j && self.tokens[i] == t {
                    let (tails, tt) = self.derive_seq(rhs, k + 1, i + 1, j);
                    tainted |= tt;
                    for mut tail in tails {
                        tail.insert(0, TreeChild::Leaf(t));
                        out.push(tail);
                    }
                }
            }
            GSym::Nt(m) => {
                let splits: Vec<usize> = self
                    .ends
                    .get(&(m, i))
                    .map(|v| v.iter().copied().filter(|&e| e <= j).collect())
                    .unwrap_or_default();
                for split in splits {
                    let (heads, th) = self.derive(m, i, split);
                    tainted |= th;
                    if heads.is_empty() {
                        continue;
                    }
                    let (tails, tt) = self.derive_seq(rhs, k + 1, split, j);
                    tainted |= tt;
                    for head in &heads {
                        for tail in &tails {
                            let mut children = Vec::with_capacity(1 + tail.len());
                            children.push(TreeChild::Node(head.clone()));
                            children.extend(tail.iter().cloned());
                            out.push(children);
                            if out.len() >= self.budget {
                                return (out, true);
                            }
                        }
                    }
                }
            }
        }
        (out, tainted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{nt, t, CfgBuilder};

    fn anbn() -> Cfg {
        // s -> "a" s "b" | ε
        let mut b = CfgBuilder::new();
        b.production("s", vec![t("a"), nt("s"), t("b")]);
        b.production("s", vec![]);
        b.build().unwrap()
    }

    #[test]
    fn recognizes_anbn() {
        let g = anbn();
        let p = EarleyParser::new(&g);
        assert!(p.recognize(&Cfg::tokenize("a a b b")));
        assert!(p.recognize(&Cfg::tokenize("")));
        assert!(!p.recognize(&Cfg::tokenize("a b b")));
        assert!(!p.recognize(&Cfg::tokenize("b a")));
    }

    #[test]
    fn extracts_unique_tree() {
        let g = anbn();
        let p = EarleyParser::new(&g);
        let trees = p.parse_text("a a b b");
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].text(), "a a b b");
        assert!(trees[0].conforms_to(&g));
    }

    #[test]
    fn ambiguous_grammar_yields_all_trees() {
        // e -> e "+" e | "x" : "x + x + x" has 2 trees.
        let mut b = CfgBuilder::new();
        b.production("e", vec![nt("e"), t("+"), nt("e")]);
        b.production("e", vec![t("x")]);
        let g = b.build().unwrap();
        let p = EarleyParser::new(&g);
        let trees = p.parse_text("x + x + x");
        assert_eq!(trees.len(), 2);
        assert!(trees.iter().all(|t| t.text() == "x + x + x"));
        assert_ne!(trees[0], trees[1]);
    }

    #[test]
    fn tree_cap_is_respected() {
        let mut b = CfgBuilder::new();
        b.production("e", vec![nt("e"), t("+"), nt("e")]);
        b.production("e", vec![t("x")]);
        let g = b.build().unwrap();
        let p = EarleyParser::new(&g);
        let long = "x + x + x + x + x + x + x";
        let all = p.parse_with(&Cfg::tokenize(long), ParseOptions { max_trees: 3 });
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn nullable_chains_are_handled() {
        // s -> a b ; a -> ε ; b -> "z" | ε
        let mut b = CfgBuilder::new();
        b.production("s", vec![nt("a"), nt("b")]);
        b.production("a", vec![]);
        b.production("b", vec![t("z")]);
        b.production("b", vec![]);
        let g = b.build().unwrap();
        let p = EarleyParser::new(&g);
        assert!(p.recognize(&[]));
        assert!(p.recognize(&Cfg::tokenize("z")));
        let trees = p.parse_text("z");
        assert_eq!(trees.len(), 1);
    }

    #[test]
    fn unit_cycles_terminate() {
        // a -> b | "x" ; b -> a : unit cycle.
        let mut b = CfgBuilder::new();
        b.production("a", vec![nt("b")]);
        b.production("a", vec![t("x")]);
        b.production("b", vec![nt("a")]);
        let g = b.build().unwrap();
        let p = EarleyParser::new(&g);
        assert!(p.recognize(&Cfg::tokenize("x")));
        let trees = p.parse_text("x");
        assert!(!trees.is_empty());
        assert!(trees.len() <= ParseOptions::default().max_trees);
    }

    #[test]
    fn left_recursion_is_fine() {
        // list -> list "i" | "i"
        let mut b = CfgBuilder::new();
        b.production("list", vec![nt("list"), t("i")]);
        b.production("list", vec![t("i")]);
        let g = b.build().unwrap();
        let p = EarleyParser::new(&g);
        let trees = p.parse_text("i i i i");
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].text(), "i i i i");
    }

    #[test]
    fn rejects_tokens_outside_alphabet() {
        let g = anbn();
        let p = EarleyParser::new(&g);
        assert!(!p.recognize(&Cfg::tokenize("a q b")));
    }
}
