//! Context-free grammars `⟨G_N, G_T, G_PR, G_S⟩` (paper §II-A).
//!
//! Strings are sequences of *tokens* (interned symbols); a convenience
//! whitespace tokenizer is provided for textual policies.

use agenp_asp::Symbol;
use std::collections::HashMap;
use std::fmt;

/// Index of a nonterminal within a [`Cfg`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NtId(pub(crate) u32);

/// Index of a production rule within a [`Cfg`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ProdId(pub(crate) u32);

impl ProdId {
    /// The numeric index of the production (its identifier in hypothesis
    /// spaces, per Definition 3 of the paper).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `ProdId` from a raw index (must be in range for the grammar
    /// it is used with).
    pub fn from_index(i: usize) -> ProdId {
        ProdId(u32::try_from(i).expect("production index overflow"))
    }
}

/// One grammar symbol on the right-hand side of a production.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum GSym {
    /// A nonterminal.
    Nt(NtId),
    /// A terminal token.
    T(Symbol),
}

/// A production rule `n0 → n1 … nk`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Production {
    /// Left-hand-side nonterminal.
    pub lhs: NtId,
    /// Right-hand-side symbols (possibly empty for ε-productions).
    pub rhs: Vec<GSym>,
}

/// A context-free grammar.
#[derive(Clone, Debug)]
pub struct Cfg {
    nt_names: Vec<Symbol>,
    nt_index: HashMap<Symbol, NtId>,
    productions: Vec<Production>,
    by_lhs: Vec<Vec<ProdId>>,
    start: NtId,
}

/// Errors raised while assembling a grammar.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CfgError {
    /// A nonterminal was referenced but has no productions.
    UndefinedNonterminal(String),
    /// The grammar has no productions for the start symbol.
    NoStart,
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::UndefinedNonterminal(n) => {
                write!(f, "nonterminal `{n}` is referenced but never defined")
            }
            CfgError::NoStart => write!(f, "grammar has no start productions"),
        }
    }
}

impl std::error::Error for CfgError {}

/// Incremental builder for [`Cfg`].
#[derive(Clone, Debug, Default)]
pub struct CfgBuilder {
    nt_names: Vec<Symbol>,
    nt_index: HashMap<Symbol, NtId>,
    productions: Vec<Production>,
    start: Option<NtId>,
}

impl CfgBuilder {
    /// A new, empty builder. The first nonterminal to gain a production
    /// becomes the start symbol unless [`CfgBuilder::start`] overrides it.
    pub fn new() -> CfgBuilder {
        CfgBuilder::default()
    }

    fn nt(&mut self, name: &str) -> NtId {
        let sym = Symbol::new(name);
        if let Some(&id) = self.nt_index.get(&sym) {
            return id;
        }
        let id = NtId(u32::try_from(self.nt_names.len()).expect("nonterminal overflow"));
        self.nt_names.push(sym);
        self.nt_index.insert(sym, id);
        id
    }

    /// Declares the start nonterminal.
    pub fn start(&mut self, name: &str) -> &mut CfgBuilder {
        let id = self.nt(name);
        self.start = Some(id);
        self
    }

    /// Adds a production built from [`nt`]/[`t`] right-hand-side elements
    /// and returns its id. The first production's left-hand side becomes the
    /// start symbol unless [`CfgBuilder::start`] was called.
    pub fn production(&mut self, lhs: &str, rhs: Vec<Rhs>) -> ProdId {
        let lhs_id = self.nt(lhs);
        if self.start.is_none() {
            self.start = Some(lhs_id);
        }
        let rhs = rhs
            .into_iter()
            .map(|r| match r {
                Rhs::NtRef(n) => GSym::Nt(self.nt(&n)),
                Rhs::Term(t) => GSym::T(Symbol::new(&t)),
            })
            .collect();
        let id = ProdId(u32::try_from(self.productions.len()).expect("production overflow"));
        self.productions.push(Production { lhs: lhs_id, rhs });
        id
    }

    /// Finalizes the grammar.
    ///
    /// # Errors
    ///
    /// [`CfgError::UndefinedNonterminal`] if a right-hand side references a
    /// nonterminal with no productions; [`CfgError::NoStart`] if empty.
    pub fn build(&self) -> Result<Cfg, CfgError> {
        let start = self.start.ok_or(CfgError::NoStart)?;
        let mut by_lhs: Vec<Vec<ProdId>> = vec![Vec::new(); self.nt_names.len()];
        for (i, p) in self.productions.iter().enumerate() {
            by_lhs[p.lhs.0 as usize].push(ProdId(i as u32));
        }
        for p in &self.productions {
            for s in &p.rhs {
                if let GSym::Nt(n) = s {
                    if by_lhs[n.0 as usize].is_empty() {
                        return Err(CfgError::UndefinedNonterminal(
                            self.nt_names[n.0 as usize].name(),
                        ));
                    }
                }
            }
        }
        if by_lhs[start.0 as usize].is_empty() {
            return Err(CfgError::NoStart);
        }
        Ok(Cfg {
            nt_names: self.nt_names.clone(),
            nt_index: self.nt_index.clone(),
            productions: self.productions.clone(),
            by_lhs,
            start,
        })
    }
}

/// A right-hand-side element for [`CfgBuilder::production`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Rhs {
    /// Reference to a nonterminal by name.
    NtRef(String),
    /// A terminal token.
    Term(String),
}

/// Shorthand for [`Rhs::NtRef`].
pub fn nt(name: &str) -> Rhs {
    Rhs::NtRef(name.to_owned())
}

/// Shorthand for [`Rhs::Term`].
pub fn t(token: &str) -> Rhs {
    Rhs::Term(token.to_owned())
}

impl Cfg {
    /// The start nonterminal.
    pub fn start(&self) -> NtId {
        self.start
    }

    /// Number of productions.
    pub fn production_count(&self) -> usize {
        self.productions.len()
    }

    /// The production with the given id.
    pub fn production(&self, id: ProdId) -> &Production {
        &self.productions[id.0 as usize]
    }

    /// All productions, in id order.
    pub fn productions(&self) -> &[Production] {
        &self.productions
    }

    /// Ids of the productions whose left-hand side is `nt`.
    pub fn productions_for(&self, nt: NtId) -> &[ProdId] {
        &self.by_lhs[nt.0 as usize]
    }

    /// The name of a nonterminal.
    pub fn nt_name(&self, nt: NtId) -> Symbol {
        self.nt_names[nt.0 as usize]
    }

    /// Looks up a nonterminal by name.
    pub fn nt_by_name(&self, name: &str) -> Option<NtId> {
        self.nt_index.get(&Symbol::new(name)).copied()
    }

    /// Number of nonterminals.
    pub fn nt_count(&self) -> usize {
        self.nt_names.len()
    }

    /// Splits `text` into terminal tokens on ASCII whitespace.
    pub fn tokenize(text: &str) -> Vec<Symbol> {
        text.split_ascii_whitespace().map(Symbol::new).collect()
    }

    /// Renders a token sequence back to a string. Reads each interned
    /// name in place — no per-token `String` clones.
    pub fn detokenize(tokens: &[Symbol]) -> String {
        let len: usize = tokens.iter().map(|s| s.with_name(str::len)).sum::<usize>()
            + tokens.len().saturating_sub(1);
        let mut out = String::with_capacity(len);
        for (i, s) in tokens.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            s.with_name(|n| out.push_str(n));
        }
        out
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.productions {
            write!(f, "{} ->", self.nt_names[p.lhs.0 as usize])?;
            for s in &p.rhs {
                match s {
                    GSym::Nt(n) => write!(f, " {}", self.nt_names[n.0 as usize])?,
                    GSym::T(t) => t.with_name(|n| write!(f, " {n:?}"))?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Cfg {
        // start -> as bs ; as -> "a" as | ε ; bs -> "b" bs | ε
        let mut b = CfgBuilder::new();
        b.production("start", vec![nt("as"), nt("bs")]);
        b.production("as", vec![t("a"), nt("as")]);
        b.production("as", vec![]);
        b.production("bs", vec![t("b"), nt("bs")]);
        b.production("bs", vec![]);
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_ids_in_order() {
        let g = abc();
        assert_eq!(g.production_count(), 5);
        assert_eq!(g.nt_count(), 3);
        assert_eq!(g.production(ProdId(1)).rhs.len(), 2);
        assert_eq!(g.productions_for(g.nt_by_name("as").unwrap()).len(), 2);
        assert_eq!(g.nt_name(g.start()).name(), "start");
    }

    #[test]
    fn undefined_nonterminal_is_rejected() {
        let mut b = CfgBuilder::new();
        b.production("s", vec![nt("missing")]);
        assert!(matches!(b.build(), Err(CfgError::UndefinedNonterminal(_))));
    }

    #[test]
    fn empty_grammar_is_rejected() {
        assert_eq!(CfgBuilder::new().build().unwrap_err(), CfgError::NoStart);
    }

    #[test]
    fn tokenize_round_trip() {
        let toks = Cfg::tokenize("allow task if  loa >= 3");
        assert_eq!(toks.len(), 6);
        assert_eq!(Cfg::detokenize(&toks), "allow task if loa >= 3");
    }

    #[test]
    fn display_lists_productions() {
        let g = abc();
        let text = g.to_string();
        assert!(text.contains("start -> as bs"));
        assert!(text.contains("as -> \"a\" as"));
    }
}
