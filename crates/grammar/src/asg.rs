//! Answer Set Grammars (paper §II-A, Definitions 1–2): context-free
//! grammars whose production rules carry annotated ASP programs.
//!
//! A string `s` is in the language of an ASG `G` iff some parse tree `PT` of
//! the underlying CFG for `s` yields a program `G[PT]` — the union over all
//! nodes `n` of the node's annotation instantiated at `trace(n)` — that has
//! at least one answer set.
//!
//! `G(C)` (Definition 3 / §III-A-1) adds the context program `C` to the
//! annotation of every production rule, making context facts visible at
//! every node's local trace.

use crate::cfg::{Cfg, ProdId};
use crate::earley::{EarleyParser, ParseOptions};
use crate::gen::{GenOptions, Generator};
use crate::tree::{ParseTree, TreeChild};
use agenp_asp::{
    ground, ground_with, CostVector, Exhausted, GroundError, GroundOptions, Program, Rule,
    RunBudget, Solver, Symbol,
};
use std::fmt;

/// An answer set grammar: a [`Cfg`] plus one annotated ASP [`Program`] per
/// production rule.
#[derive(Clone, Debug)]
pub struct Asg {
    cfg: Cfg,
    annotations: Vec<Program>,
}

/// Errors raised by ASG operations.
#[derive(Clone, Debug)]
pub enum AsgError {
    /// The ASP program produced for a parse tree failed to ground.
    Ground(GroundError),
    /// A production id was out of range.
    BadProduction(usize),
    /// A budgeted membership/enumeration call ran out of a
    /// [`RunBudget`] resource.
    Exhausted(Exhausted),
}

impl fmt::Display for AsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsgError::Ground(e) => write!(f, "grounding failed: {e}"),
            AsgError::BadProduction(i) => write!(f, "no production with id {i}"),
            AsgError::Exhausted(kind) => write!(f, "grammar evaluation aborted: {kind}"),
        }
    }
}

impl std::error::Error for AsgError {}

impl From<GroundError> for AsgError {
    fn from(e: GroundError) -> AsgError {
        AsgError::Ground(e)
    }
}

impl Asg {
    /// Wraps a CFG with empty annotations.
    pub fn from_cfg(cfg: Cfg) -> Asg {
        let annotations = vec![Program::new(); cfg.production_count()];
        Asg { cfg, annotations }
    }

    /// The underlying CFG (`G_CF`: the grammar with annotations removed).
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The annotation of production `id`.
    pub fn annotation(&self, id: ProdId) -> &Program {
        &self.annotations[id.index()]
    }

    /// Replaces the annotation of production `id`.
    ///
    /// # Errors
    ///
    /// [`AsgError::BadProduction`] if `id` is out of range.
    pub fn set_annotation(&mut self, id: ProdId, program: Program) -> Result<(), AsgError> {
        let slot = self
            .annotations
            .get_mut(id.index())
            .ok_or(AsgError::BadProduction(id.index()))?;
        *slot = program;
        Ok(())
    }

    /// Adds a single rule to the annotation of production `id`.
    ///
    /// # Errors
    ///
    /// [`AsgError::BadProduction`] if `id` is out of range.
    pub fn add_rule(&mut self, id: ProdId, rule: Rule) -> Result<(), AsgError> {
        let slot = self
            .annotations
            .get_mut(id.index())
            .ok_or(AsgError::BadProduction(id.index()))?;
        slot.push(rule);
        Ok(())
    }

    /// `G : H` — the grammar with each hypothesis rule added to its target
    /// production (Definition 3).
    ///
    /// # Errors
    ///
    /// [`AsgError::BadProduction`] for an out-of-range target.
    pub fn with_added_rules<'a>(
        &self,
        additions: impl IntoIterator<Item = &'a (ProdId, Rule)>,
    ) -> Result<Asg, AsgError> {
        let mut g = self.clone();
        for (id, rule) in additions {
            g.add_rule(*id, rule.clone())?;
        }
        Ok(g)
    }

    /// `G(C)` — the grammar with the context program `C` added to the
    /// annotation of every production rule.
    pub fn with_context(&self, context: &Program) -> Asg {
        let mut g = self.clone();
        for a in &mut g.annotations {
            a.extend_from(context);
        }
        g
    }

    /// `G[PT]` — the ASP program induced by a parse tree: each node's
    /// annotation instantiated at the node's trace.
    pub fn tree_program(&self, tree: &ParseTree) -> Program {
        let mut out = Program::new();
        tree.visit_nodes(|node, trace| {
            out.extend_from(&self.annotations[node.prod.index()].instantiate_at(trace));
        });
        out
    }

    /// Does `tree` (a parse tree of the underlying CFG) satisfy the ASG's
    /// semantic conditions, i.e. does `G[PT]` have an answer set?
    ///
    /// # Errors
    ///
    /// [`AsgError::Ground`] if the induced program fails to ground.
    pub fn tree_admitted(&self, tree: &ParseTree) -> Result<bool, AsgError> {
        let program = self.tree_program(tree);
        let g = ground(&program)?;
        Ok(Solver::new().max_models(1).solve(&g).satisfiable())
    }

    /// Like [`Asg::tree_admitted`], but bounded by a [`RunBudget`]: the
    /// grounder honours the budget's atom cap and deadline, the solver its
    /// step cap and deadline.
    ///
    /// # Errors
    ///
    /// [`AsgError::Exhausted`] when a budget resource runs out;
    /// [`AsgError::Ground`] for non-budget grounding failures.
    pub fn tree_admitted_within(
        &self,
        tree: &ParseTree,
        budget: &RunBudget,
    ) -> Result<bool, AsgError> {
        let program = self.tree_program(tree);
        let g = ground_with(
            &program,
            GroundOptions {
                max_atoms: budget.max_atoms,
                deadline: budget.deadline,
                parallelism: budget.effective_parallelism(),
                ..GroundOptions::default()
            },
        )
        .map_err(|e| match e.exhausted() {
            Some(kind) => AsgError::Exhausted(kind),
            None => AsgError::Ground(e),
        })?;
        let r = Solver::new().max_models(1).with_budget(budget).solve(&g);
        if r.satisfiable() {
            return Ok(true);
        }
        if !r.complete() {
            return Err(AsgError::Exhausted(
                r.exhausted().unwrap_or(Exhausted::Steps),
            ));
        }
        Ok(false)
    }

    /// Is the token sequence in `L(G)`? True iff at least one parse tree is
    /// admitted.
    ///
    /// # Errors
    ///
    /// Propagates grounding failures from annotation programs.
    pub fn accepts_tokens(&self, tokens: &[Symbol]) -> Result<bool, AsgError> {
        let mut span = agenp_obs::span!("grammar.membership", tokens = tokens.len());
        let result = self.accepts_tokens_inner(tokens);
        if span.is_live() {
            record_membership(&mut span, &result);
        }
        result
    }

    fn accepts_tokens_inner(&self, tokens: &[Symbol]) -> Result<bool, AsgError> {
        let parser = EarleyParser::new(&self.cfg);
        for tree in parser.parse_with(tokens, ParseOptions::default()) {
            if self.tree_admitted(&tree)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Budgeted variant of [`Asg::accepts_tokens`].
    ///
    /// # Errors
    ///
    /// [`AsgError::Exhausted`] when the budget runs out mid-check; other
    /// failures as in [`Asg::accepts_tokens`].
    pub fn accepts_tokens_within(
        &self,
        tokens: &[Symbol],
        budget: &RunBudget,
    ) -> Result<bool, AsgError> {
        let mut span = agenp_obs::span!("grammar.membership", tokens = tokens.len());
        let result = self.accepts_tokens_within_inner(tokens, budget);
        if span.is_live() {
            record_membership(&mut span, &result);
        }
        result
    }

    fn accepts_tokens_within_inner(
        &self,
        tokens: &[Symbol],
        budget: &RunBudget,
    ) -> Result<bool, AsgError> {
        let parser = EarleyParser::new(&self.cfg);
        for tree in parser.parse_with(tokens, ParseOptions::default()) {
            if budget.deadline.expired() {
                return Err(AsgError::Exhausted(Exhausted::Deadline));
            }
            if self.tree_admitted_within(&tree, budget)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Is the whitespace-tokenized string in `L(G)`?
    ///
    /// # Errors
    ///
    /// See [`Asg::accepts_tokens`].
    pub fn accepts(&self, text: &str) -> Result<bool, AsgError> {
        self.accepts_tokens(&Cfg::tokenize(text))
    }

    /// Budgeted variant of [`Asg::accepts`].
    ///
    /// # Errors
    ///
    /// See [`Asg::accepts_tokens_within`].
    pub fn accepts_within(&self, text: &str, budget: &RunBudget) -> Result<bool, AsgError> {
        self.accepts_tokens_within(&Cfg::tokenize(text), budget)
    }

    /// Enumerates the admitted parse trees of the grammar up to generation
    /// bounds — the *generated policies* of the GPM.
    ///
    /// # Errors
    ///
    /// Propagates grounding failures.
    pub fn admitted_trees(&self, opts: GenOptions) -> Result<Vec<ParseTree>, AsgError> {
        let gen = Generator::new(&self.cfg);
        let mut out = Vec::new();
        for tree in gen.trees(opts) {
            if self.tree_admitted(&tree)? {
                out.push(tree);
            }
        }
        Ok(out)
    }

    /// Budgeted variant of [`Asg::admitted_trees`]: every per-tree
    /// admission check runs under `budget`, and the enumeration itself
    /// stops with [`AsgError::Exhausted`] once the deadline passes.
    ///
    /// # Errors
    ///
    /// [`AsgError::Exhausted`] when the budget runs out; grounding failures
    /// otherwise.
    pub fn admitted_trees_within(
        &self,
        opts: GenOptions,
        budget: &RunBudget,
    ) -> Result<Vec<ParseTree>, AsgError> {
        let gen = Generator::new(&self.cfg);
        let mut out = Vec::new();
        for tree in gen.trees(opts) {
            if budget.deadline.expired() {
                return Err(AsgError::Exhausted(Exhausted::Deadline));
            }
            if self.tree_admitted_within(&tree, budget)? {
                out.push(tree);
            }
        }
        Ok(out)
    }

    /// Enumerates the admitted strings (deduplicated, sorted).
    ///
    /// # Errors
    ///
    /// Propagates grounding failures.
    pub fn language(&self, opts: GenOptions) -> Result<Vec<String>, AsgError> {
        let mut out: Vec<String> = self
            .admitted_trees(opts)?
            .iter()
            .map(ParseTree::text)
            .collect();
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Budgeted variant of [`Asg::language`].
    ///
    /// # Errors
    ///
    /// See [`Asg::admitted_trees_within`].
    pub fn language_within(
        &self,
        opts: GenOptions,
        budget: &RunBudget,
    ) -> Result<Vec<String>, AsgError> {
        let mut out: Vec<String> = self
            .admitted_trees_within(opts, budget)?
            .iter()
            .map(ParseTree::text)
            .collect();
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// The optimal weak-constraint cost of the tree's program — the
    /// *utility* of the policy (paper §I's utility-based policies) — or
    /// `None` if the tree is rejected.
    ///
    /// # Errors
    ///
    /// [`AsgError::Ground`] on grounding failures.
    pub fn tree_cost(&self, tree: &ParseTree) -> Result<Option<CostVector>, AsgError> {
        let program = self.tree_program(tree);
        let g = ground(&program)?;
        let r = Solver::new().optimize(&g);
        Ok(r.cost().cloned())
    }

    /// Enumerates the admitted parse trees together with their costs,
    /// best (lowest-cost) first — the generated policies ranked by the
    /// grammar's weak-constraint preferences.
    ///
    /// ```
    /// use agenp_grammar::{Asg, GenOptions};
    /// let g: Asg = r#"
    ///     route -> "north" { :~ night. [1] }
    ///     route -> "south" { :~ always. [2] }
    /// "#.parse()?;
    /// let ctx: agenp_asp::Program = "always. night.".parse()?;
    /// let ranked = g
    ///     .with_context(&ctx)
    ///     .ranked_trees(GenOptions { max_depth: 3, max_trees: 10 })?;
    /// assert_eq!(ranked[0].0.text(), "north"); // cheaper under this context
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates grounding failures.
    pub fn ranked_trees(&self, opts: GenOptions) -> Result<Vec<(ParseTree, CostVector)>, AsgError> {
        let gen = Generator::new(&self.cfg);
        let mut out = Vec::new();
        for tree in gen.trees(opts) {
            if let Some(cost) = self.tree_cost(&tree)? {
                out.push((tree, cost));
            }
        }
        out.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.text().cmp(&b.0.text())));
        Ok(out)
    }

    /// Pretty-prints a parse tree as nested productions with annotations.
    pub fn explain_tree(&self, tree: &ParseTree) -> String {
        let mut out = String::new();
        tree.visit_nodes(|node, trace| {
            let prod = self.cfg.production(node.prod);
            let lhs = self.cfg.nt_name(prod.lhs);
            let indent = "  ".repeat(trace.depth());
            use std::fmt::Write as _;
            let _ = write!(out, "{indent}{lhs}@[{trace}] (p{})", node.prod.index());
            // Leaf names render straight from the interner — no clones.
            for c in &node.children {
                if let TreeChild::Leaf(s) = c {
                    out.push(' ');
                    s.with_name(|n| out.push_str(n));
                }
            }
            out.push('\n');
        });
        out
    }
}

/// Folds one membership-check outcome into the span and the global
/// `grammar.membership_*` counters (only called for live spans).
fn record_membership(span: &mut agenp_obs::SpanGuard, result: &Result<bool, AsgError>) {
    let r = agenp_obs::registry();
    r.counter("grammar.membership_checks").incr();
    match result {
        Ok(accepted) => {
            span.record("accepted", *accepted);
            if *accepted {
                r.counter("grammar.membership_accepted").incr();
            }
        }
        Err(_) => {
            span.record("error", true);
            r.counter("grammar.membership_errors").incr();
        }
    }
}

impl fmt::Display for Asg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.cfg.productions().iter().enumerate() {
            write!(f, "{} ->", self.cfg.nt_name(p.lhs))?;
            for s in &p.rhs {
                match s {
                    crate::cfg::GSym::Nt(n) => write!(f, " {}", self.cfg.nt_name(*n))?,
                    crate::cfg::GSym::T(t) => t.with_name(|n| write!(f, " {n:?}"))?,
                }
            }
            let ann = &self.annotations[i];
            if ann.is_empty() && ann.weak_constraints().is_empty() {
                writeln!(f)?;
            } else {
                let body = ann
                    .rules()
                    .iter()
                    .map(|r| r.to_string())
                    .chain(ann.weak_constraints().iter().map(|w| w.to_string()))
                    .collect::<Vec<_>>()
                    .join(" ");
                writeln!(f, " {{ {body} }}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{nt, t, CfgBuilder};

    /// The aⁿbⁿcⁿ grammar from the ASG paper [12]: a CFG for a*b*c* whose
    /// annotations force equal counts — a context-sensitive language.
    pub fn anbncn() -> Asg {
        let mut b = CfgBuilder::new();
        let p_start = b.production("start", vec![nt("as"), nt("bs"), nt("cs")]);
        let p_a1 = b.production("as", vec![t("a"), nt("as")]);
        let p_a0 = b.production("as", vec![]);
        let p_b1 = b.production("bs", vec![t("b"), nt("bs")]);
        let p_b0 = b.production("bs", vec![]);
        let p_c1 = b.production("cs", vec![t("c"), nt("cs")]);
        let p_c0 = b.production("cs", vec![]);
        let cfg = b.build().unwrap();
        let mut g = Asg::from_cfg(cfg);
        g.set_annotation(
            p_start,
            ":- size(X)@1, not size(X)@2. :- size(X)@2, not size(X)@3.
             :- size(X)@3, not size(X)@1."
                .parse()
                .unwrap(),
        )
        .unwrap();
        for (inc, zero) in [(p_a1, p_a0), (p_b1, p_b0), (p_c1, p_c0)] {
            g.set_annotation(inc, "size(X + 1) :- size(X)@2.".parse().unwrap())
                .unwrap();
            g.set_annotation(zero, "size(0).".parse().unwrap()).unwrap();
        }
        g
    }

    #[test]
    fn anbncn_membership() {
        let g = anbncn();
        assert!(g.accepts("a b c").unwrap());
        assert!(g.accepts("a a b b c c").unwrap());
        assert!(g.accepts("").unwrap());
        assert!(!g.accepts("a b b c").unwrap());
        assert!(!g.accepts("a a b c").unwrap());
        assert!(!g.accepts("a c b").unwrap()); // not even in the CFG
    }

    #[test]
    fn language_enumeration_filters_by_annotation() {
        let g = anbncn();
        let lang = g
            .language(GenOptions {
                max_depth: 4,
                max_trees: 10_000,
            })
            .unwrap();
        // Depth 4 admits n ∈ {0, 1, 2, 3}; annotation keeps only equal counts
        // (n ≤ 3 on each branch).
        assert!(lang.contains(&String::new()));
        assert!(lang.contains(&"a b c".to_string()));
        assert!(lang.contains(&"a a b b c c".to_string()));
        assert!(!lang.contains(&"a b b c".to_string()));
        for s in &lang {
            let toks = Cfg::tokenize(s);
            let a = toks.iter().filter(|x| x.name() == "a").count();
            let b = toks.iter().filter(|x| x.name() == "b").count();
            let c = toks.iter().filter(|x| x.name() == "c").count();
            assert_eq!(a, b);
            assert_eq!(b, c);
        }
    }

    #[test]
    fn context_facts_gate_the_language() {
        // policy -> "allow" | "deny", allowed only when the context says so.
        let mut b = CfgBuilder::new();
        let p_allow = b.production("policy", vec![t("allow")]);
        let p_deny = b.production("policy", vec![t("deny")]);
        let cfg = b.build().unwrap();
        let mut g = Asg::from_cfg(cfg);
        g.set_annotation(p_allow, ":- not permissive.".parse().unwrap())
            .unwrap();
        g.set_annotation(p_deny, ":- permissive.".parse().unwrap())
            .unwrap();

        let permissive: Program = "permissive.".parse().unwrap();
        let strict = Program::new();
        assert!(g.with_context(&permissive).accepts("allow").unwrap());
        assert!(!g.with_context(&permissive).accepts("deny").unwrap());
        assert!(!g.with_context(&strict).accepts("allow").unwrap());
        assert!(g.with_context(&strict).accepts("deny").unwrap());
    }

    #[test]
    fn with_added_rules_restricts() {
        let mut b = CfgBuilder::new();
        let p_allow = b.production("policy", vec![t("allow")]);
        b.production("policy", vec![t("deny")]);
        let cfg = b.build().unwrap();
        let g = Asg::from_cfg(cfg);
        assert!(g.accepts("allow").unwrap());
        let h = vec![(p_allow, ":- true_fact.".parse::<Rule>().unwrap())];
        let g2 = g.with_added_rules(&h).unwrap();
        // `true_fact` is not derivable, so the constraint is vacuous…
        assert!(g2.accepts("allow").unwrap());
        let h2 = vec![
            (p_allow, "blocked.".parse::<Rule>().unwrap()),
            (p_allow, ":- blocked.".parse::<Rule>().unwrap()),
        ];
        let g3 = g.with_added_rules(&h2).unwrap();
        assert!(!g3.accepts("allow").unwrap());
        assert!(g3.accepts("deny").unwrap());
    }

    #[test]
    fn tree_program_uses_traces() {
        let g = anbncn();
        let parser = EarleyParser::new(g.cfg());
        let trees = parser.parse_text("a b c");
        assert_eq!(trees.len(), 1);
        let prog = g.tree_program(&trees[0]);
        let text = prog.to_string();
        // as-node at trace [1] receives `size(X+1) :- size(X)@1_2.`
        assert!(text.contains("size(0)@1_2"), "program was:\n{text}");
        assert!(text.contains("size(0)@2_2"), "program was:\n{text}");
    }

    #[test]
    fn weak_constraints_rank_generated_policies() {
        // Two policies, both admitted; `fast` is preferred unless the
        // context taxes it.
        let g: Asg = r#"
            policy -> "fast" { mode(fast). :~ congestion. [5] }
            policy -> "slow" { mode(slow). :~ mode(slow). [2] }
        "#
        .parse()
        .unwrap();
        let opts = GenOptions {
            max_depth: 3,
            max_trees: 10,
        };
        let clear = g.ranked_trees(opts).unwrap();
        assert_eq!(clear[0].0.text(), "fast");
        assert!(clear[0].1.is_zero());
        let congested: Program = "congestion.".parse().unwrap();
        let ranked = g.with_context(&congested).ranked_trees(opts).unwrap();
        assert_eq!(ranked[0].0.text(), "slow");
        assert_eq!(ranked[0].1.at_level(0), 2);
        assert_eq!(ranked[1].1.at_level(0), 5);
    }

    #[test]
    fn tree_cost_is_none_for_rejected_trees() {
        let g: Asg = r#"
            policy -> "allow" { :- blocked. :~ e. [1] }
        "#
        .parse()
        .unwrap();
        let blocked: Program = "blocked.".parse().unwrap();
        let g2 = g.with_context(&blocked);
        let tree = Generator::new(g2.cfg())
            .trees(GenOptions {
                max_depth: 2,
                max_trees: 2,
            })
            .pop()
            .unwrap();
        assert!(g2.tree_cost(&tree).unwrap().is_none());
    }

    #[test]
    fn budgeted_membership_matches_unbudgeted() {
        let g = anbncn();
        let budget = RunBudget::default();
        assert!(g.accepts_within("a b c", &budget).unwrap());
        assert!(!g.accepts_within("a b b c", &budget).unwrap());
        let opts = GenOptions {
            max_depth: 4,
            max_trees: 10_000,
        };
        assert_eq!(
            g.language(opts).unwrap(),
            g.language_within(opts, &budget).unwrap()
        );
    }

    #[test]
    fn tight_atom_budget_surfaces_as_exhausted() {
        let g = anbncn();
        let budget = RunBudget::default().with_max_atoms(1);
        match g.accepts_within("a b c", &budget) {
            Err(AsgError::Exhausted(Exhausted::Atoms)) => {}
            other => panic!("expected Exhausted(Atoms), got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_surfaces_as_exhausted() {
        let g = anbncn();
        let budget = RunBudget::default()
            .with_deadline(agenp_asp::Deadline::after(std::time::Duration::ZERO));
        match g.accepts_within("a b c", &budget) {
            Err(AsgError::Exhausted(Exhausted::Deadline)) => {}
            other => panic!("expected Exhausted(Deadline), got {other:?}"),
        }
    }

    #[test]
    fn bad_production_id_errors() {
        let g = anbncn();
        let mut g2 = g.clone();
        assert!(g2
            .add_rule(ProdId::from_index(999), "x.".parse().unwrap())
            .is_err());
    }

    #[test]
    fn display_shows_annotations() {
        let g = anbncn();
        let text = g.to_string();
        assert!(text.contains("start -> as bs cs {"));
        assert!(text.contains("size(0)."));
    }
}
