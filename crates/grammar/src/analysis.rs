//! Grammar analysis: reachability, productivity, useless productions,
//! cycle/ambiguity detection, and ASG annotation validation — the static
//! checks a Policy-Based Management System runs before handing a policy
//! grammar to an autonomous party.

use crate::asg::Asg;
use crate::cfg::{Cfg, GSym, NtId, ProdId};
use crate::earley::EarleyParser;
use crate::gen::{GenOptions, Generator};
use std::collections::HashSet;
use std::fmt;

/// Structural analysis of a [`Cfg`].
#[derive(Clone, Debug)]
pub struct CfgAnalysis {
    /// Nonterminals reachable from the start symbol.
    pub reachable: Vec<NtId>,
    /// Nonterminals that derive at least one terminal string.
    pub productive: Vec<NtId>,
    /// Productions that can never occur in a complete parse of a reachable
    /// sentence (unreachable LHS or unproductive RHS).
    pub useless_productions: Vec<ProdId>,
    /// Nonterminals involved in unit cycles (`a ⇒ b ⇒ … ⇒ a` through
    /// single-nonterminal productions), which make some strings infinitely
    /// ambiguous.
    pub unit_cyclic: Vec<NtId>,
}

impl CfgAnalysis {
    /// Runs the analysis.
    pub fn of(cfg: &Cfg) -> CfgAnalysis {
        // Productive: fixpoint from below.
        let mut productive = vec![false; cfg.nt_count()];
        loop {
            let mut changed = false;
            for p in cfg.productions() {
                if productive[p.lhs.0 as usize] {
                    continue;
                }
                let ok = p.rhs.iter().all(|s| match s {
                    GSym::T(_) => true,
                    GSym::Nt(n) => productive[n.0 as usize],
                });
                if ok {
                    productive[p.lhs.0 as usize] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Reachable: BFS from the start through productions whose RHS we
        // can enter.
        let mut reachable = vec![false; cfg.nt_count()];
        let mut queue = vec![cfg.start()];
        reachable[cfg.start().0 as usize] = true;
        while let Some(nt) = queue.pop() {
            for &pid in cfg.productions_for(nt) {
                for s in &cfg.production(pid).rhs {
                    if let GSym::Nt(m) = s {
                        if !reachable[m.0 as usize] {
                            reachable[m.0 as usize] = true;
                            queue.push(*m);
                        }
                    }
                }
            }
        }
        // Useless productions.
        let mut useless = Vec::new();
        for (i, p) in cfg.productions().iter().enumerate() {
            let lhs_ok = reachable[p.lhs.0 as usize] && productive[p.lhs.0 as usize];
            let rhs_ok = p.rhs.iter().all(|s| match s {
                GSym::T(_) => true,
                GSym::Nt(n) => productive[n.0 as usize],
            });
            if !(lhs_ok && rhs_ok) {
                useless.push(ProdId::from_index(i));
            }
        }
        // Unit cycles: graph over unit productions a -> b.
        let mut unit_edges: Vec<Vec<usize>> = vec![Vec::new(); cfg.nt_count()];
        for p in cfg.productions() {
            if let [GSym::Nt(b)] = p.rhs.as_slice() {
                unit_edges[p.lhs.0 as usize].push(b.0 as usize);
            }
        }
        let mut unit_cyclic = Vec::new();
        for start in 0..cfg.nt_count() {
            // DFS: can `start` reach itself through unit productions?
            let mut seen = HashSet::new();
            let mut stack: Vec<usize> = unit_edges[start].clone();
            while let Some(v) = stack.pop() {
                if v == start {
                    unit_cyclic.push(NtId(start as u32));
                    break;
                }
                if seen.insert(v) {
                    stack.extend(unit_edges[v].iter().copied());
                }
            }
        }
        CfgAnalysis {
            reachable: collect(&reachable),
            productive: collect(&productive),
            useless_productions: useless,
            unit_cyclic,
        }
    }

    /// True if the grammar has no useless productions and no unit cycles.
    pub fn is_clean(&self) -> bool {
        self.useless_productions.is_empty() && self.unit_cyclic.is_empty()
    }
}

fn collect(flags: &[bool]) -> Vec<NtId> {
    flags
        .iter()
        .enumerate()
        .filter(|(_, &f)| f)
        .map(|(i, _)| NtId(i as u32))
        .collect()
}

/// A problem found while validating an ASG's annotations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsgIssue {
    /// An annotation rule is unsafe (a variable not bound positively).
    UnsafeRule {
        /// The production carrying the rule.
        production: usize,
        /// Rendered rule.
        rule: String,
    },
    /// An annotated atom references a child index beyond the production's
    /// right-hand side.
    BadChildIndex {
        /// The production carrying the rule.
        production: usize,
        /// Rendered rule.
        rule: String,
        /// The out-of-range child index.
        index: u16,
        /// The production's arity.
        arity: usize,
    },
    /// An annotated atom references a *terminal* child, which carries no
    /// annotation program and therefore no atoms.
    TerminalChild {
        /// The production carrying the rule.
        production: usize,
        /// Rendered rule.
        rule: String,
        /// The terminal child index referenced.
        index: u16,
    },
}

impl fmt::Display for AsgIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsgIssue::UnsafeRule { production, rule } => {
                write!(f, "p{production}: unsafe rule `{rule}`")
            }
            AsgIssue::BadChildIndex { production, rule, index, arity } => write!(
                f,
                "p{production}: rule `{rule}` references child {index} of a {arity}-symbol production"
            ),
            AsgIssue::TerminalChild { production, rule, index } => write!(
                f,
                "p{production}: rule `{rule}` references terminal child {index}, which has no atoms"
            ),
        }
    }
}

/// Validates an ASG's annotations: safety and child-index sanity.
pub fn validate_asg(asg: &Asg) -> Vec<AsgIssue> {
    let mut issues = Vec::new();
    for (pi, prod) in asg.cfg().productions().iter().enumerate() {
        let annotation = asg.annotation(ProdId::from_index(pi));
        for rule in annotation.rules() {
            if rule.unsafe_var().is_some() {
                issues.push(AsgIssue::UnsafeRule {
                    production: pi,
                    rule: rule.to_string(),
                });
            }
            let mut check_atom = |atom: &agenp_asp::Atom| {
                let idx = atom.trace.indices();
                if idx.is_empty() {
                    return;
                }
                let i = idx[0];
                if i == 0 || i as usize > prod.rhs.len() {
                    issues.push(AsgIssue::BadChildIndex {
                        production: pi,
                        rule: rule.to_string(),
                        index: i,
                        arity: prod.rhs.len(),
                    });
                } else if matches!(prod.rhs[i as usize - 1], GSym::T(_)) {
                    issues.push(AsgIssue::TerminalChild {
                        production: pi,
                        rule: rule.to_string(),
                        index: i,
                    });
                }
            };
            if let Some(h) = &rule.head {
                check_atom(h);
            }
            for lit in &rule.body {
                if let Some(a) = lit.atom() {
                    check_atom(a);
                }
            }
        }
    }
    issues
}

/// Samples the grammar's language for ambiguous strings: generated strings
/// with more than one parse tree. Returns up to `max_report` ambiguous
/// strings with their parse counts.
pub fn ambiguity_sample(cfg: &Cfg, opts: GenOptions, max_report: usize) -> Vec<(String, usize)> {
    let parser = EarleyParser::new(cfg);
    let mut out = Vec::new();
    for s in Generator::new(cfg).strings(opts) {
        let trees = parser.parse_text(&s);
        if trees.len() > 1 {
            out.push((s, trees.len()));
            if out.len() >= max_report {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{nt, t, CfgBuilder};

    #[test]
    fn detects_unreachable_and_unproductive() {
        let mut b = CfgBuilder::new();
        b.production("s", vec![t("x")]);
        b.production("orphan", vec![t("y")]); // unreachable
        b.production("dead", vec![nt("dead")]); // unproductive (and unreachable)
        let g = b.build().unwrap();
        let a = CfgAnalysis::of(&g);
        assert_eq!(a.reachable.len(), 1);
        assert_eq!(a.productive.len(), 2); // s and orphan
        assert_eq!(a.useless_productions.len(), 2);
        assert!(!a.is_clean());
    }

    #[test]
    fn clean_grammar_passes() {
        let mut b = CfgBuilder::new();
        b.production("s", vec![t("a"), nt("s")]);
        b.production("s", vec![]);
        let g = b.build().unwrap();
        let a = CfgAnalysis::of(&g);
        assert!(a.is_clean());
        assert_eq!(a.reachable.len(), 1);
    }

    #[test]
    fn detects_unit_cycles() {
        let mut b = CfgBuilder::new();
        b.production("a", vec![nt("b")]);
        b.production("b", vec![nt("a")]);
        b.production("a", vec![t("x")]);
        let g = b.build().unwrap();
        let a = CfgAnalysis::of(&g);
        assert_eq!(a.unit_cyclic.len(), 2);
    }

    #[test]
    fn validates_asg_annotations() {
        let g: Asg = r#"
            s -> "a" body { ok :- sz(X)@2. bad :- sz(X)@5. worse :- sz(X)@1. }
            body -> "b" { sz(1). }
        "#
        .parse()
        .unwrap();
        let issues = validate_asg(&g);
        assert_eq!(issues.len(), 2, "{issues:?}");
        assert!(issues
            .iter()
            .any(|i| matches!(i, AsgIssue::BadChildIndex { index: 5, .. })));
        assert!(issues
            .iter()
            .any(|i| matches!(i, AsgIssue::TerminalChild { index: 1, .. })));
    }

    #[test]
    fn unsafe_annotations_are_flagged() {
        let g: Asg = r#"
            s -> "a" { p(X) :- not q(X). }
        "#
        .parse()
        .unwrap();
        let issues = validate_asg(&g);
        assert!(issues
            .iter()
            .any(|i| matches!(i, AsgIssue::UnsafeRule { .. })));
    }

    #[test]
    fn ambiguity_sampling_finds_ambiguous_strings() {
        let mut b = CfgBuilder::new();
        b.production("e", vec![nt("e"), t("+"), nt("e")]);
        b.production("e", vec![t("x")]);
        let g = b.build().unwrap();
        let found = ambiguity_sample(
            &g,
            GenOptions {
                max_depth: 4,
                max_trees: 200,
            },
            5,
        );
        assert!(!found.is_empty());
        assert!(found.iter().all(|(_, n)| *n > 1));
        // An unambiguous grammar reports nothing.
        let mut b2 = CfgBuilder::new();
        b2.production("s", vec![t("a"), nt("s")]);
        b2.production("s", vec![]);
        let g2 = b2.build().unwrap();
        assert!(ambiguity_sample(
            &g2,
            GenOptions {
                max_depth: 5,
                max_trees: 100
            },
            5
        )
        .is_empty());
    }
}
