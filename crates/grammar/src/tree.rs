//! Parse trees with traces (paper §II-A: the trace of the root is `[]`, the
//! i-th child of the root is `[i]`, …).

use crate::cfg::{Cfg, GSym, ProdId};
use agenp_asp::{Symbol, Trace};
use std::fmt;

/// A child of a parse-tree node: either a subtree (nonterminal) or a
/// terminal leaf.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TreeChild {
    /// A nonterminal child with its own subtree.
    Node(ParseTree),
    /// A terminal token.
    Leaf(Symbol),
}

/// A parse tree: the production applied at the root plus one child per
/// right-hand-side symbol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseTree {
    /// The production applied at this node.
    pub prod: ProdId,
    /// Children, aligned with the production's right-hand side.
    pub children: Vec<TreeChild>,
}

impl ParseTree {
    /// The concatenated terminal yield of the tree (depth-first, left to
    /// right).
    pub fn tokens(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_tokens(&mut out);
        out
    }

    fn collect_tokens(&self, out: &mut Vec<Symbol>) {
        for c in &self.children {
            match c {
                TreeChild::Node(t) => t.collect_tokens(out),
                TreeChild::Leaf(s) => out.push(*s),
            }
        }
    }

    /// The yield as a whitespace-joined string.
    pub fn text(&self) -> String {
        Cfg::detokenize(&self.tokens())
    }

    /// Visits every nonterminal node with its trace, root first.
    pub fn visit_nodes(&self, mut f: impl FnMut(&ParseTree, &Trace)) {
        self.visit_inner(&Trace::root(), &mut f);
    }

    fn visit_inner(&self, trace: &Trace, f: &mut impl FnMut(&ParseTree, &Trace)) {
        f(self, trace);
        for (i, c) in self.children.iter().enumerate() {
            if let TreeChild::Node(t) = c {
                let child_trace = trace.child((i + 1) as u16);
                t.visit_inner(&child_trace, f);
            }
        }
    }

    /// Number of nonterminal nodes.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|c| match c {
                TreeChild::Node(t) => t.node_count(),
                TreeChild::Leaf(_) => 0,
            })
            .sum::<usize>()
    }

    /// Height of the tree (a node with only leaf children has height 1).
    pub fn height(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|c| match c {
                TreeChild::Node(t) => t.height(),
                TreeChild::Leaf(_) => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Checks structural well-formedness against `cfg`: each node's children
    /// must align with its production's right-hand side.
    pub fn conforms_to(&self, cfg: &Cfg) -> bool {
        let prod = cfg.production(self.prod);
        if prod.rhs.len() != self.children.len() {
            return false;
        }
        prod.rhs
            .iter()
            .zip(&self.children)
            .all(|(sym, child)| match (sym, child) {
                (GSym::T(t), TreeChild::Leaf(l)) => t == l,
                (GSym::Nt(n), TreeChild::Node(sub)) => {
                    cfg.production(sub.prod).lhs == *n && sub.conforms_to(cfg)
                }
                _ => false,
            })
    }
}

impl fmt::Display for ParseTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(p{}", self.prod.index())?;
        for c in &self.children {
            match c {
                TreeChild::Node(t) => write!(f, " {t}")?,
                TreeChild::Leaf(s) => s.with_name(|n| write!(f, " {n:?}"))?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{nt, t, CfgBuilder};

    fn tiny() -> (Cfg, ParseTree) {
        // s -> "a" s | "b"
        let mut b = CfgBuilder::new();
        let p0 = b.production("s", vec![t("a"), nt("s")]);
        let p1 = b.production("s", vec![t("b")]);
        let cfg = b.build().unwrap();
        // tree for "a a b"
        let leaf_b = ParseTree {
            prod: p1,
            children: vec![TreeChild::Leaf(Symbol::new("b"))],
        };
        let mid = ParseTree {
            prod: p0,
            children: vec![TreeChild::Leaf(Symbol::new("a")), TreeChild::Node(leaf_b)],
        };
        let root = ParseTree {
            prod: p0,
            children: vec![TreeChild::Leaf(Symbol::new("a")), TreeChild::Node(mid)],
        };
        (cfg, root)
    }

    #[test]
    fn yield_and_text() {
        let (_, tree) = tiny();
        assert_eq!(tree.text(), "a a b");
        assert_eq!(tree.tokens().len(), 3);
    }

    #[test]
    fn traces_enumerate_nodes() {
        let (_, tree) = tiny();
        let mut traces = Vec::new();
        tree.visit_nodes(|_, tr| traces.push(tr.clone()));
        assert_eq!(traces.len(), 3);
        assert!(traces[0].is_root());
        assert_eq!(traces[1], Trace::from_indices([2]));
        assert_eq!(traces[2], Trace::from_indices([2, 2]));
    }

    #[test]
    fn conformance_checks_structure() {
        let (cfg, tree) = tiny();
        assert!(tree.conforms_to(&cfg));
        let bad = ParseTree {
            prod: tree.prod,
            children: vec![],
        };
        assert!(!bad.conforms_to(&cfg));
    }

    #[test]
    fn metrics() {
        let (_, tree) = tiny();
        assert_eq!(tree.node_count(), 3);
        assert_eq!(tree.height(), 3);
    }
}
